//! Prepared statements and the shared plan cache: hit/miss accounting,
//! every invalidation path (DDL, options, ACL, session strategy), DML
//! rebinding, transaction bypass, and typed bind errors.

use flock_sql::{Database, SqlError, Value};

fn db_with_items() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE items (id INT NOT NULL, price DOUBLE, tag VARCHAR)")
        .unwrap();
    db.execute(
        "INSERT INTO items VALUES \
         (1, 10.0, 'a'), (2, 20.0, 'b'), (3, 30.0, 'a'), (4, 40.0, 'c')",
    )
    .unwrap();
    db
}

/// (hits, misses, invalidations) snapshot of the plan cache.
fn cache_stats(db: &Database) -> (u64, u64, u64) {
    use std::sync::atomic::Ordering;
    let c = db.plan_cache();
    let [(_, h), (_, m), (_, i), _] = c.counters();
    (
        h.load(Ordering::Relaxed),
        m.load(Ordering::Relaxed),
        i.load(Ordering::Relaxed),
    )
}

#[test]
fn prepared_execution_hits_plan_cache() {
    let db = db_with_items();
    let mut s = db.session("admin");
    let p = s
        .prepare("SELECT id, price FROM items WHERE price > ? ORDER BY id")
        .unwrap();

    let (h0, m0, _) = cache_stats(&db);
    let b = s
        .execute_prepared(&p, &[Value::Float(15.0)])
        .unwrap()
        .batch
        .unwrap();
    assert_eq!(b.num_rows(), 3);
    let (h1, m1, _) = cache_stats(&db);
    assert_eq!(h1, h0, "first execution is a cold miss");
    assert_eq!(m1, m0 + 1);

    // Different parameter value, same plan.
    let b = s
        .execute_prepared(&p, &[Value::Float(35.0)])
        .unwrap()
        .batch
        .unwrap();
    assert_eq!(b.num_rows(), 1);
    assert_eq!(b.column(0).get(0), Value::Int(4));
    let (h2, m2, _) = cache_stats(&db);
    assert_eq!(h2, h1 + 1, "second execution hits");
    assert_eq!(m2, m1);
}

#[test]
fn normalized_literals_share_one_plan() {
    let db = db_with_items();
    let mut s = db.session("admin");
    // Statements differing only in literal constants normalize to the
    // same fingerprint, so the second prepared statement's first
    // execution already hits the plan inserted by the first.
    let p1 = s.prepare("SELECT id FROM items WHERE price > 15.0").unwrap();
    let p2 = s.prepare("SELECT id FROM items WHERE price > 25.0").unwrap();
    assert_eq!(s.execute_prepared(&p1, &[]).unwrap().batch.unwrap().num_rows(), 3);
    let (h0, _, _) = cache_stats(&db);
    assert_eq!(s.execute_prepared(&p2, &[]).unwrap().batch.unwrap().num_rows(), 2);
    let (h1, _, _) = cache_stats(&db);
    assert_eq!(h1, h0 + 1, "normalized twin shares the cached plan");
}

#[test]
fn unprepared_selects_cache_on_raw_tokens() {
    let db = db_with_items();
    let mut s = db.session("admin");
    let (_, m0, _) = cache_stats(&db);
    s.execute("SELECT tag FROM items WHERE id = 2").unwrap();
    let (h1, m1, _) = cache_stats(&db);
    assert_eq!(m1, m0 + 1);
    s.execute("SELECT tag FROM items WHERE id = 2").unwrap();
    let (h2, _, _) = cache_stats(&db);
    assert_eq!(h2, h1 + 1, "identical text re-executes from cache");
}

#[test]
fn ddl_on_referenced_table_invalidates() {
    let db = db_with_items();
    let mut s = db.session("admin");
    let p = s.prepare("SELECT id FROM items WHERE price > ?").unwrap();
    s.execute_prepared(&p, &[Value::Float(0.0)]).unwrap();
    s.execute_prepared(&p, &[Value::Float(0.0)]).unwrap();
    let (_, _, i0) = cache_stats(&db);

    db.execute("ALTER TABLE items ADD COLUMN note VARCHAR").unwrap();
    let b = s
        .execute_prepared(&p, &[Value::Float(0.0)])
        .unwrap()
        .batch
        .unwrap();
    assert_eq!(b.num_rows(), 4, "replanned result stays correct");
    let (_, _, i1) = cache_stats(&db);
    assert_eq!(i1, i0 + 1, "DDL epoch tick kills the cached plan");
}

#[test]
fn drop_and_recreate_replans_against_new_schema() {
    let db = db_with_items();
    let mut s = db.session("admin");
    let p = s.prepare("SELECT * FROM items").unwrap();
    assert_eq!(
        s.execute_prepared(&p, &[]).unwrap().batch.unwrap().num_columns(),
        3
    );
    db.execute("DROP TABLE items").unwrap();
    db.execute("CREATE TABLE items (id INT NOT NULL)").unwrap();
    db.execute("INSERT INTO items VALUES (9)").unwrap();
    let b = s.execute_prepared(&p, &[]).unwrap().batch.unwrap();
    assert_eq!(b.num_columns(), 1, "cached plan never outlives the table");
    assert_eq!(b.column(0).get(0), Value::Int(9));
}

#[test]
fn dml_rebinds_cached_plan_to_fresh_version() {
    let db = db_with_items();
    let mut s = db.session("admin");
    let p = s.prepare("SELECT COUNT(*) FROM items").unwrap();
    let count = |r: flock_sql::QueryResult| r.batch.unwrap().column(0).get(0);
    assert_eq!(count(s.execute_prepared(&p, &[]).unwrap()), Value::Int(4));
    db.execute("INSERT INTO items VALUES (5, 50.0, 'd')").unwrap();
    let (h0, _, i0) = cache_stats(&db);
    // Plain DML must NOT invalidate: the plan re-binds to the moved
    // table version (counts as a hit) and sees the new row.
    assert_eq!(count(s.execute_prepared(&p, &[]).unwrap()), Value::Int(5));
    let (h1, _, i1) = cache_stats(&db);
    assert_eq!(h1, h0 + 1);
    assert_eq!(i1, i0);
}

#[test]
fn revoked_user_cannot_score_through_cached_plan() {
    let db = db_with_items();
    db.execute("CREATE USER intern").unwrap();
    db.execute("GRANT SELECT ON TABLE items TO intern").unwrap();
    let mut intern = db.session("intern");
    let p = intern.prepare("SELECT id FROM items WHERE id = ?").unwrap();
    intern.execute_prepared(&p, &[Value::Int(1)]).unwrap();
    intern.execute_prepared(&p, &[Value::Int(1)]).unwrap(); // plan is hot

    db.execute("REVOKE SELECT ON TABLE items FROM intern").unwrap();
    let err = intern.execute_prepared(&p, &[Value::Int(1)]).unwrap_err();
    assert!(
        matches!(err, SqlError::AccessDenied(_)),
        "expected AccessDenied, got {err:?}"
    );
}

#[test]
fn exec_options_change_invalidates() {
    let db = db_with_items();
    let mut s = db.session("admin");
    let p = s.prepare("SELECT id FROM items").unwrap();
    s.execute_prepared(&p, &[]).unwrap();
    s.execute_prepared(&p, &[]).unwrap();
    let (_, _, i0) = cache_stats(&db);
    db.set_exec_options(db.exec_options());
    s.execute_prepared(&p, &[]).unwrap();
    let (_, _, i1) = cache_stats(&db);
    assert_eq!(i1, i0 + 1, "options epoch tick replans");
}

#[test]
fn set_predict_strategy_keys_the_cache_per_session() {
    let db = db_with_items();
    let mut s = db.session("admin");
    let p = s.prepare("SELECT id FROM items WHERE price > ?").unwrap();
    s.execute_prepared(&p, &[Value::Float(0.0)]).unwrap();
    let (h0, m0, _) = cache_stats(&db);
    s.execute("SET predict_strategy = 'batched'").unwrap();
    // New key: the override is part of the cache identity.
    s.execute_prepared(&p, &[Value::Float(0.0)]).unwrap();
    let (h1, m1, _) = cache_stats(&db);
    assert_eq!(m1, m0 + 1);
    assert_eq!(h1, h0);
    // Back to default: the original entry is still live and hits.
    s.execute("SET predict_strategy = DEFAULT").unwrap();
    s.execute_prepared(&p, &[Value::Float(0.0)]).unwrap();
    let (h2, _, _) = cache_stats(&db);
    assert_eq!(h2, h1 + 1);
}

#[test]
fn set_predict_strategy_rejects_garbage() {
    let db = db_with_items();
    let mut s = db.session("admin");
    for sql in [
        "SET predict_strategy = 'warp-speed'",
        "SET predict_strategy = 42",
    ] {
        let err = s.execute(sql).unwrap_err();
        assert!(matches!(err, SqlError::Plan(_)), "{sql}: {err:?}");
    }
    for sql in [
        "SET predict_strategy = 'row'",
        "SET predict_strategy = 'vectorized'",
        "SET predict_strategy = 'batched'",
        "SET predict_strategy = 'parallel'",
        "SET predict_strategy = 'auto'",
    ] {
        s.execute(sql).unwrap();
    }
}

#[test]
fn arity_mismatch_is_a_typed_error() {
    let db = db_with_items();
    let mut s = db.session("admin");
    let p = s
        .prepare("SELECT id FROM items WHERE price > ? AND tag = ?")
        .unwrap();
    for params in [
        vec![],
        vec![Value::Float(1.0)],
        vec![Value::Float(1.0), Value::Text("a".into()), Value::Int(3)],
    ] {
        let err = s.execute_prepared(&p, &params).unwrap_err();
        let SqlError::Plan(msg) = err else {
            panic!("expected Plan error, got {err:?}");
        };
        assert!(msg.contains("expects 2 parameter(s)"), "{msg}");
    }
    // The handle still works after bad binds.
    let b = s
        .execute_prepared(&p, &[Value::Float(5.0), Value::Text("a".into())])
        .unwrap()
        .batch
        .unwrap();
    assert_eq!(b.num_rows(), 2);
}

#[test]
fn open_transaction_bypasses_the_shared_cache() {
    let db = db_with_items();
    let mut s = db.session("admin");
    let p = s.prepare("SELECT COUNT(*) FROM items").unwrap();
    s.execute_prepared(&p, &[]).unwrap(); // seed the cache
    let before = cache_stats(&db);
    s.execute("BEGIN").unwrap();
    s.execute("INSERT INTO items VALUES (6, 60.0, 'e')").unwrap();
    let b = s.execute_prepared(&p, &[]).unwrap().batch.unwrap();
    assert_eq!(
        b.column(0).get(0),
        Value::Int(5),
        "sees uncommitted state inside the txn"
    );
    s.execute("ROLLBACK").unwrap();
    assert_eq!(
        cache_stats(&db),
        before,
        "in-txn execution never touches the shared cache"
    );
    let b = s.execute_prepared(&p, &[]).unwrap().batch.unwrap();
    assert_eq!(b.column(0).get(0), Value::Int(4), "rollback is honored");
}

#[test]
fn prepared_gauge_tracks_live_handles() {
    use std::sync::atomic::Ordering;
    let db = db_with_items();
    let gauge = db.plan_cache().prepared_active.clone();
    let mut s = db.session("admin");
    let base = gauge.load(Ordering::Relaxed);
    let p1 = s.prepare("SELECT id FROM items").unwrap();
    let p2 = s.prepare("SELECT tag FROM items WHERE id = ?").unwrap();
    assert_eq!(gauge.load(Ordering::Relaxed), base + 2);
    drop(p1);
    assert_eq!(gauge.load(Ordering::Relaxed), base + 1);
    drop(p2);
    assert_eq!(gauge.load(Ordering::Relaxed), base);
}
