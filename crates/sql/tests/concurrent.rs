//! Session-safety tests: the seeded concurrent stress harness plus the
//! regression tests for cooperative cancellation, `statement_timeout`,
//! admission control, per-query budgets, per-session metrics, and
//! concurrent log-id assignment.
//!
//! The harness runs N threads of a seeded mixed read/write workload
//! against one `Database` under both WAL modes and under random mid-run
//! cancellations, then proves the final state is equivalent to *some*
//! serial order of the committed transactions. Every committed effect is
//! commutative (balance deposits, append-only ledger inserts with unique
//! `(thread, seq)` keys), so "some serial order" has a closed form: the
//! final sums and the ledger row set must match exactly the set of
//! transactions the clients saw commit — nothing lost, nothing duplicated,
//! no effect from an aborted transaction.

use flock_rng::rngs::StdRng;
use flock_rng::{Rng, SeedableRng};
use flock_sql::ast::PredictStrategy;
use flock_sql::column::ColumnVector;
use flock_sql::exec::{CancelHandle, CancelToken, ExecOptions};
use flock_sql::types::DataType;
use flock_sql::udf::InferenceProvider;
use flock_sql::{Database, DurabilityOptions, MemFs, Result, SqlError, Value};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const N_THREADS: usize = 4;
const N_ACCOUNTS: i64 = 8;
const STEPS: usize = 40;
const INITIAL_BALANCE: i64 = 1_000;

/// Seeds to sweep. CI raises the sweep via `FLOCK_STRESS_SEEDS`; the
/// default keeps a plain `cargo test` fast.
fn seeds() -> Vec<u64> {
    let n = std::env::var("FLOCK_STRESS_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(2);
    (0..n.max(1)).map(|i| 0xF10C + i * 7919).collect()
}

/// Effects of the transactions one worker saw commit.
#[derive(Default)]
struct Committed {
    deposits: i64,
    ledger: Vec<(i64, i64, i64)>, // (thread, seq, delta)
    read_cancels: u64,
}

/// Errors the workload may legitimately hit: optimistic write-write
/// conflicts at commit, "no open transaction" from the cleanup ROLLBACK,
/// and chaos-injected cancellations. Anything else (a panic, a poisoned
/// lock, an untyped error) fails the harness.
fn acceptable(e: &SqlError) -> bool {
    matches!(e, SqlError::Transaction(_) | SqlError::Cancelled(_))
}

fn f64_of(v: &Value) -> f64 {
    v.as_f64().unwrap_or_else(|| panic!("expected number, got {v:?}"))
}

fn stress(seed: u64, fsync: bool, chaos: bool) {
    let mem = MemFs::new();
    let opts = DurabilityOptions {
        fsync_on_commit: fsync,
        checkpoint_every_commits: 16,
        keep_checkpoints: 2,
    };
    let db = Database::open_with_fs(mem.clone(), opts).unwrap();
    db.execute("CREATE TABLE accounts (id INT, balance INT)").unwrap();
    for id in 0..N_ACCOUNTS {
        db.execute(&format!("INSERT INTO accounts VALUES ({id}, {INITIAL_BALANCE})"))
            .unwrap();
    }
    db.execute("CREATE TABLE ledger (thread INT, seq INT, delta INT)").unwrap();

    let handles: Arc<Mutex<Vec<CancelHandle>>> = Arc::new(Mutex::new(Vec::new()));
    let done = Arc::new(AtomicBool::new(false));

    let per_worker: Vec<Committed> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..N_THREADS)
            .map(|t| {
                let db = db.clone();
                let handles = handles.clone();
                scope.spawn(move || worker(&db, t, seed, &handles))
            })
            .collect();
        let chaos_thread = chaos.then(|| {
            let handles = handles.clone();
            let done = done.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A05);
                while !done.load(Ordering::Relaxed) {
                    let targets = handles.lock().unwrap();
                    if !targets.is_empty() {
                        targets[rng.gen_range(0usize..targets.len())].cancel();
                    }
                    drop(targets);
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        });
        let results: Vec<Committed> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        done.store(true, Ordering::Relaxed);
        if let Some(c) = chaos_thread {
            c.join().unwrap();
        }
        results
    });

    // --- serial-order equivalence of the committed transactions --------
    let committed_deposits: i64 = per_worker.iter().map(|c| c.deposits).sum();
    let expected: HashSet<(i64, i64, i64)> =
        per_worker.iter().flat_map(|c| c.ledger.iter().copied()).collect();
    let committed_count: usize = per_worker.iter().map(|c| c.ledger.len()).sum();
    assert_eq!(expected.len(), committed_count, "(thread, seq) keys are unique by construction");

    let total = db.query("SELECT SUM(balance) FROM accounts").unwrap();
    assert_eq!(
        f64_of(&total.column(0).get(0)) as i64,
        N_ACCOUNTS * INITIAL_BALANCE + committed_deposits,
        "seed {seed}: final balances must reflect exactly the committed deposits"
    );
    let rows = db.query("SELECT thread, seq, delta FROM ledger").unwrap();
    assert_eq!(
        rows.num_rows(),
        committed_count,
        "seed {seed}: ledger row count != committed transaction count"
    );
    let mut seen = HashSet::new();
    for r in 0..rows.num_rows() {
        let key = (
            f64_of(&rows.column(0).get(r)) as i64,
            f64_of(&rows.column(1).get(r)) as i64,
            f64_of(&rows.column(2).get(r)) as i64,
        );
        assert!(seen.insert(key), "seed {seed}: duplicate ledger row {key:?}");
        assert!(expected.contains(&key), "seed {seed}: phantom ledger row {key:?}");
    }

    // --- log ids stayed unique and gap-free under concurrency ----------
    let log = db.query_log();
    let mut ids: Vec<u64> = log.iter().map(|e| e.id).collect();
    ids.sort_unstable();
    assert_eq!(
        ids,
        (1..=log.len() as u64).collect::<Vec<_>>(),
        "seed {seed}: query-log ids must be unique and gap-free"
    );
    let audit = db.audit_log();
    let mut seqs: Vec<u64> = audit.iter().map(|a| a.seq).collect();
    seqs.sort_unstable();
    assert_eq!(
        seqs,
        (1..=audit.len() as u64).collect::<Vec<_>>(),
        "seed {seed}: audit seqs must be unique and gap-free"
    );

    // --- cancellation surfaced as typed errors and counted --------------
    let read_cancels: u64 = per_worker.iter().map(|c| c.read_cancels).sum();
    let metrics: std::collections::HashMap<_, _> =
        db.engine_metrics().rows().into_iter().collect();
    assert!(
        metrics["queries_cancelled"] >= read_cancels,
        "seed {seed}: every typed read cancellation must be counted \
         ({} counter vs {read_cancels} observed)",
        metrics["queries_cancelled"]
    );
    assert_eq!(db.admission().active(), 0, "seed {seed}: leaked admission slot");

    // --- durability: recovery reproduces the live state bit-for-bit ----
    // The images are copies, so recovering never perturbs the live WAL.
    let live = db.state_digest();
    let reopened = Database::open_with_fs(mem.clean_image(), opts).unwrap();
    assert_eq!(
        reopened.state_digest(),
        live,
        "seed {seed}: clean-shutdown recovery diverged (fsync={fsync})"
    );
    if fsync {
        // With fsync-on-commit every acknowledged commit survives a crash.
        let recovered = Database::open_with_fs(mem.crash_image(), opts).unwrap();
        assert_eq!(
            recovered.state_digest(),
            live,
            "seed {seed}: crash recovery lost an acknowledged commit"
        );
    }
}

fn worker(db: &Database, t: usize, seed: u64, handles: &Mutex<Vec<CancelHandle>>) -> Committed {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(1009).wrapping_add(t as u64));
    let mut s = db.session("admin");
    handles.lock().unwrap().push(s.cancel_handle());
    let mut out = Committed::default();
    for seq in 0..STEPS {
        match rng.gen_range(0u32..10) {
            // Deposit transaction: commutative balance bump + unique
            // (thread, seq) ledger row. Committed iff COMMIT returned Ok.
            0..=5 => {
                let acct = rng.gen_range(0i64..N_ACCOUNTS);
                let delta = rng.gen_range(1i64..100);
                let res = (|| -> Result<()> {
                    s.execute("BEGIN")?;
                    s.execute(&format!(
                        "UPDATE accounts SET balance = balance + {delta} WHERE id = {acct}"
                    ))?;
                    s.execute(&format!("INSERT INTO ledger VALUES ({t}, {seq}, {delta})"))?;
                    s.execute("COMMIT")?;
                    Ok(())
                })();
                match res {
                    Ok(()) => {
                        out.deposits += delta;
                        out.ledger.push((t as i64, seq as i64, delta));
                    }
                    Err(e) => {
                        assert!(acceptable(&e), "worker {t} seq {seq}: unexpected error {e}");
                        // Clear any transaction a mid-txn failure left open.
                        let _ = s.execute("ROLLBACK");
                    }
                }
            }
            // Aggregate read: must either succeed or die a *typed* death.
            6 | 7 => match s.query("SELECT SUM(balance), COUNT(*) FROM accounts") {
                Ok(b) => assert_eq!(b.num_rows(), 1),
                Err(e) => {
                    assert!(acceptable(&e), "worker {t} seq {seq}: unexpected error {e}");
                    if matches!(e, SqlError::Cancelled(_)) {
                        out.read_cancels += 1;
                    }
                }
            },
            // Join-shaped read.
            8 => match s.query(
                "SELECT a.id, COUNT(*), SUM(l.delta) FROM accounts a \
                 JOIN ledger l ON a.id = l.thread \
                 GROUP BY a.id ORDER BY a.id",
            ) {
                Ok(_) => {}
                Err(e) => {
                    assert!(acceptable(&e), "worker {t} seq {seq}: unexpected error {e}");
                    if matches!(e, SqlError::Cancelled(_)) {
                        out.read_cancels += 1;
                    }
                }
            },
            // Point read through ORDER BY (sort operator under chaos).
            _ => match s.query("SELECT id, balance FROM accounts ORDER BY balance DESC, id") {
                Ok(b) => assert_eq!(b.num_rows() as i64, N_ACCOUNTS),
                Err(e) => {
                    assert!(acceptable(&e), "worker {t} seq {seq}: unexpected error {e}");
                    if matches!(e, SqlError::Cancelled(_)) {
                        out.read_cancels += 1;
                    }
                }
            },
        }
    }
    out
}

#[test]
fn stress_buffered_wal() {
    for seed in seeds() {
        stress(seed, false, false);
    }
}

#[test]
fn stress_fsync_wal() {
    for seed in seeds() {
        stress(seed, true, false);
    }
}

#[test]
fn stress_with_chaos_cancellation() {
    for seed in seeds() {
        stress(seed, false, true);
        stress(seed, true, true);
    }
}

// ===================================================================
// Conflict-aborted transactions leave no WAL trace
// ===================================================================

#[test]
fn conflict_aborted_txn_leaves_no_wal_trace() {
    let mem = MemFs::new();
    let opts = DurabilityOptions {
        fsync_on_commit: true,
        checkpoint_every_commits: 64,
        keep_checkpoints: 2,
    };
    let db = Database::open_with_fs(mem.clone(), opts).unwrap();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();

    let mut s1 = db.session("admin");
    let mut s2 = db.session("admin");
    s1.execute("BEGIN").unwrap();
    s2.execute("BEGIN").unwrap();
    s1.execute("UPDATE t SET a = 2").unwrap();
    s2.execute("UPDATE t SET a = 3").unwrap();
    s1.execute("COMMIT").unwrap();
    let committed = db.state_digest();

    let err = s2.execute("COMMIT").unwrap_err();
    assert!(
        matches!(err, SqlError::Transaction(_)),
        "conflict must be a typed transaction error, got {err:?}"
    );
    assert_eq!(
        db.state_digest(),
        committed,
        "aborted txn must not perturb committed in-memory state"
    );

    // Kill point: crash right after the conflict abort. Recovery must
    // replay the aborted transaction to *nothing* — only s1's commit.
    let recovered = Database::open_with_fs(mem.crash_image(), opts).unwrap();
    assert_eq!(
        recovered.state_digest(),
        committed,
        "aborted txn left a trace in the WAL"
    );
    let b = recovered.query("SELECT a FROM t").unwrap();
    assert_eq!(b.column(0).get(0), Value::Int(2));

    // next_txn advances monotonically across the restart: a transaction
    // committed after recovery gets a fresh id, even though the aborted
    // txn's id was never persisted.
    let max_before = db.query_log().iter().map(|e| e.txn_id).max().unwrap();
    let mut s = recovered.session("admin");
    s.execute("INSERT INTO t VALUES (9)").unwrap();
    let max_after = recovered.query_log().iter().map(|e| e.txn_id).max().unwrap();
    assert!(
        max_after > max_before,
        "txn ids must stay monotonic across recovery ({max_after} vs {max_before})"
    );
}

// ===================================================================
// Concurrent log appends: 8 sessions, ids unique and gap-free
// ===================================================================

#[test]
fn concurrent_sessions_keep_log_ids_gap_free_and_metrics_consistent() {
    const SESSIONS: usize = 8;
    const PER_SESSION: usize = 12;
    let db = Database::new();
    let metrics_before: std::collections::HashMap<_, _> =
        db.engine_metrics().rows().into_iter().collect();

    std::thread::scope(|scope| {
        for t in 0..SESSIONS {
            let db = db.clone();
            scope.spawn(move || {
                let mut s = db.session("admin");
                s.execute(&format!("CREATE TABLE t{t} (x INT)")).unwrap();
                for i in 0..PER_SESSION {
                    s.execute(&format!("INSERT INTO t{t} VALUES ({i})")).unwrap();
                    let b = s.query(&format!("SELECT COUNT(*) FROM t{t}")).unwrap();
                    assert_eq!(b.column(0).get(0), Value::Int(i as i64 + 1));
                }
            });
        }
    });

    let log = db.query_log();
    let mut ids: Vec<u64> = log.iter().map(|e| e.id).collect();
    let sorted_already = ids.windows(2).all(|w| w[0] < w[1]);
    assert!(sorted_already, "log ids must be assigned in append order");
    ids.sort_unstable();
    assert_eq!(
        ids,
        (1..=log.len() as u64).collect::<Vec<_>>(),
        "concurrent appends must not duplicate or skip log ids"
    );
    let audit = db.audit_log();
    let mut seqs: Vec<u64> = audit.iter().map(|a| a.seq).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (1..=audit.len() as u64).collect::<Vec<_>>());

    // No lost counter updates: exactly SESSIONS * PER_SESSION SELECTs ran,
    // each returning one row.
    let metrics: std::collections::HashMap<_, _> =
        db.engine_metrics().rows().into_iter().collect();
    let queries = metrics["queries"] - metrics_before["queries"];
    let returned = metrics["rows_returned"] - metrics_before["rows_returned"];
    assert_eq!(queries, (SESSIONS * PER_SESSION) as u64);
    assert_eq!(returned, (SESSIONS * PER_SESSION) as u64);
}

// ===================================================================
// Per-session last_query_metrics (regression: engine-global clobbering)
// ===================================================================

#[test]
fn session_metrics_survive_other_sessions_in_lockstep() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3), (4), (5)").unwrap();

    let mut s1 = db.session("admin");
    let mut s2 = db.session("admin");
    // Lockstep: each round, s1 reads 5 rows, then s2 reads 2. Before the
    // fix a session's snapshot lived on the Database and the later query
    // clobbered the earlier session's numbers.
    for _ in 0..3 {
        s1.query("SELECT x FROM t").unwrap();
        s2.query("SELECT x FROM t WHERE x <= 2").unwrap();
        let m1 = s1.last_query_metrics().expect("s1 ran a query");
        let m2 = s2.last_query_metrics().expect("s2 ran a query");
        assert_eq!(m1.rows_out, 5, "s1's snapshot clobbered by s2");
        assert_eq!(m2.rows_out, 2);
        // The engine-global snapshot is documented to be last-writer-wins.
        assert_eq!(db.last_query_metrics().unwrap().rows_out, 2);
    }
}

// ===================================================================
// Typed cancellation / timeout / admission / budget errors
// ===================================================================

/// An inference provider that blocks until the statement's token fires,
/// making cancellation and timeout tests fully deterministic: the query
/// cannot complete on its own.
struct BlockUntilCancelled;

impl InferenceProvider for BlockUntilCancelled {
    fn output_type(&self, _model: &str) -> Result<DataType> {
        Ok(DataType::Float)
    }
    fn input_arity(&self, _model: &str) -> Result<usize> {
        Ok(1)
    }
    fn predict(
        &self,
        _model: &str,
        inputs: &[ColumnVector],
        _strategy: PredictStrategy,
        _user: &str,
    ) -> Result<ColumnVector> {
        // Only reachable through the non-cancellable entry point, which
        // the engine never uses; return zeros to keep the trait total.
        Ok(ColumnVector::from_f64(vec![0.0; inputs[0].len()]))
    }
    fn predict_cancellable(
        &self,
        _model: &str,
        _inputs: &[ColumnVector],
        _strategy: PredictStrategy,
        _user: &str,
        cancel: &CancelToken,
    ) -> Result<ColumnVector> {
        loop {
            cancel.check()?;
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

fn blocking_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (x DOUBLE)").unwrap();
    db.execute("INSERT INTO t VALUES (1.0), (2.0), (3.0)").unwrap();
    db.set_inference_provider(Arc::new(BlockUntilCancelled));
    db
}

#[test]
fn cancel_mid_query_is_typed_and_releases_resources() {
    let db = blocking_db();
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = {
        let db = db.clone();
        std::thread::spawn(move || {
            let mut s = db.session("admin");
            tx.send(s.cancel_handle()).unwrap();
            let err = s.query("SELECT PREDICT(m, x) FROM t").unwrap_err();
            assert!(matches!(err, SqlError::Cancelled(_)), "got {err:?}");
            // Partial metrics survive the unwind.
            assert!(s.last_query_metrics().is_some());
        })
    };
    let handle = rx.recv().unwrap();
    // The flag resets at statement start, so keep setting it until the
    // worker observes the cancellation and exits.
    while !worker.is_finished() {
        handle.cancel();
        std::thread::sleep(Duration::from_millis(1));
    }
    worker.join().unwrap();

    let m: std::collections::HashMap<_, _> = db.engine_metrics().rows().into_iter().collect();
    assert!(m["queries_cancelled"] >= 1);
    assert_eq!(db.admission().active(), 0, "cancelled query leaked its slot");
    // The engine is still healthy: no poisoned lock, plain queries run.
    assert_eq!(db.query("SELECT COUNT(*) FROM t").unwrap().column(0).get(0), Value::Int(3));
}

#[test]
fn statement_timeout_is_typed_and_resettable() {
    let db = blocking_db();
    let mut s = db.session("admin");

    s.execute("SET statement_timeout = 15").unwrap();
    assert_eq!(s.statement_timeout(), Some(15));
    let err = s.query("SELECT PREDICT(m, x) FROM t").unwrap_err();
    assert!(matches!(err, SqlError::Timeout(_)), "got {err:?}");
    assert!(s.last_query_metrics().is_some(), "partial metrics must survive a timeout");

    let m: std::collections::HashMap<_, _> = db.engine_metrics().rows().into_iter().collect();
    assert!(m["queries_timed_out"] >= 1);
    assert_eq!(db.admission().active(), 0, "timed-out query leaked its slot");

    // DEFAULT restores the engine-wide setting (off here) and the session
    // works again — the timeout must not stick to later statements.
    s.execute("SET statement_timeout = DEFAULT").unwrap();
    assert_eq!(s.statement_timeout(), None);
    assert_eq!(s.query("SELECT COUNT(*) FROM t").unwrap().column(0).get(0), Value::Int(3));

    // `SET statement_timeout = 0` disables it explicitly (kept as an
    // override, distinct from DEFAULT); the `TO` spelling is accepted.
    s.execute("SET statement_timeout TO 0").unwrap();
    assert_eq!(s.statement_timeout(), Some(0));
}

#[test]
fn engine_wide_statement_timeout_applies_without_session_override() {
    let db = blocking_db();
    db.set_exec_options(ExecOptions {
        statement_timeout_ms: 15,
        ..ExecOptions::default()
    });
    let err = db.query("SELECT PREDICT(m, x) FROM t").unwrap_err();
    assert!(matches!(err, SqlError::Timeout(_)), "got {err:?}");

    // A session-level `SET statement_timeout = 0` overrides the engine
    // default to "disabled" (a plain query stands in for the blocking
    // PREDICT, which would now hang forever by design).
    let mut s = db.session("admin");
    s.execute("SET statement_timeout = 0").unwrap();
    assert_eq!(s.query("SELECT COUNT(*) FROM t").unwrap().column(0).get(0), Value::Int(3));
}

#[test]
fn set_rejects_bad_values_and_unknown_variables() {
    let db = Database::new();
    let mut s = db.session("admin");
    assert!(s.execute("SET statement_timeout = 'abc'").is_err());
    assert!(s.execute("SET statement_timeout = -5").is_err());
    assert!(s.execute("SET nonexistent_variable = 1").is_err());
    // Constant expressions fold before validation.
    s.execute("SET statement_timeout = 10 + 5").unwrap();
    assert_eq!(s.statement_timeout(), Some(15));
}

#[test]
fn admission_controller_rejects_at_capacity_with_typed_error() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.set_exec_options(ExecOptions {
        max_concurrent_queries: 1,
        ..ExecOptions::default()
    });

    // Occupy the single slot, as a long-running query would.
    let slot = db.admission().try_acquire(1).expect("first slot");
    let err = db.query("SELECT x FROM t").unwrap_err();
    assert!(matches!(err, SqlError::Admission(_)), "got {err:?}");
    let m: std::collections::HashMap<_, _> = db.engine_metrics().rows().into_iter().collect();
    assert!(m["admission_rejected"] >= 1);

    drop(slot);
    assert_eq!(db.query("SELECT x FROM t").unwrap().num_rows(), 1);
    assert_eq!(db.admission().active(), 0);
}

#[test]
fn query_budget_rejects_oversized_queries_with_typed_error() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x INT)").unwrap();
    let rows: Vec<String> = (0..200).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", rows.join(", "))).unwrap();

    db.set_exec_options(ExecOptions {
        max_rows_budget: 50,
        ..ExecOptions::default()
    });
    let err = db.query("SELECT x FROM t").unwrap_err();
    assert!(matches!(err, SqlError::Budget(_)), "got {err:?}");
    let m: std::collections::HashMap<_, _> = db.engine_metrics().rows().into_iter().collect();
    assert!(m["budget_rejected"] >= 1);
    assert_eq!(db.admission().active(), 0, "over-budget query leaked its slot");

    db.set_exec_options(ExecOptions {
        max_mem_bytes: 64, // 200 rows * 8 bytes blows this immediately
        ..ExecOptions::default()
    });
    let err = db.query("SELECT x FROM t").unwrap_err();
    assert!(matches!(err, SqlError::Budget(_)), "got {err:?}");

    // Removing the limits restores normal execution.
    db.set_exec_options(ExecOptions::default());
    assert_eq!(db.query("SELECT x FROM t").unwrap().num_rows(), 200);
}
