//! Disk-resident part tests: memory-budget offload must be invisible to
//! queries, zone maps must prune, merges must stay purely physical, and
//! every crash point across part flush / merge / checkpoint must recover
//! to a committed state. Extends the recovery kill-point matrix over the
//! part lifecycle and pins the checkpoint-prune regression (retained
//! generations must never reference deleted part files).

use flock_sql::{Database, DurabilityOptions, FailpointFs, MemFs, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// Small enough that a few dozen rows of (INT, DOUBLE, VARCHAR) overflow
/// it: 3 columns x 8 bytes/cell => over budget past 170 resident rows,
/// flushed in 85-row parts.
const BUDGET: u64 = 4096;

fn opts_fsync() -> DurabilityOptions {
    DurabilityOptions {
        fsync_on_commit: true,
        checkpoint_every_commits: 4,
        keep_checkpoints: 2,
    }
}

/// INSERT `n` rows starting at key `lo`: monotone `k`, exact-binary `v`
/// (k/2, so float sums are order-independent), low-cardinality `cat`.
fn insert_chunk(db: &Database, lo: i64, n: i64) -> flock_sql::Result<()> {
    let rows: Vec<String> = (lo..lo + n)
        .map(|k| format!("({k}, {}.{}, 'c{}')", k / 2, if k % 2 == 0 { 0 } else { 5 }, k % 3))
        .collect();
    db.execute(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
        .map(|_| ())
}

fn rows_of(b: &flock_sql::RecordBatch) -> Vec<Vec<Value>> {
    (0..b.num_rows())
        .map(|i| (0..b.num_columns()).map(|c| b.column(c).get(i)).collect())
        .collect()
}

/// Run every comparison query on both databases and assert identical
/// results (the workload has no NULLs, so plain equality is exact).
fn assert_same_results(budgeted: &Database, reference: &Database, context: &str) {
    for q in [
        "SELECT k, v, cat FROM t ORDER BY k",
        "SELECT COUNT(*), SUM(v), MIN(k), MAX(k) FROM t",
        "SELECT cat, COUNT(*), SUM(v) FROM t GROUP BY cat ORDER BY cat",
        "SELECT k, v FROM t WHERE k BETWEEN 100 AND 110 ORDER BY k",
        "SELECT COUNT(*) FROM t WHERE cat = 'c1'",
    ] {
        let a = budgeted.query(q).unwrap_or_else(|e| panic!("{context}: {q}: {e}"));
        let b = reference.query(q).unwrap();
        assert_eq!(rows_of(&a), rows_of(&b), "{context}: {q}");
    }
}

fn metric(db: &Database, name: &str) -> i64 {
    let b = db
        .query(&format!("SELECT value FROM flock_metrics WHERE metric = '{name}'"))
        .unwrap();
    assert_eq!(b.num_rows(), 1, "metric {name} not registered");
    match b.column(0).get(0) {
        Value::Int(v) => v,
        other => panic!("metric {name}: {other:?}"),
    }
}

/// Budgeted durable database plus an unbudgeted in-memory reference fed
/// the same rows.
fn budgeted_pair(total_rows: i64) -> (Database, Database, Arc<MemFs>) {
    let mem = MemFs::new();
    let db = Database::open_with_fs(mem.clone(), opts_fsync()).unwrap();
    db.set_table_memory_budget(BUDGET);
    let reference = Database::new();
    for d in [&db, &reference] {
        d.execute("CREATE TABLE t (k INT, v DOUBLE, cat VARCHAR)").unwrap();
    }
    let mut lo = 0;
    while lo < total_rows {
        let n = 48.min(total_rows - lo);
        insert_chunk(&db, lo, n).unwrap();
        insert_chunk(&reference, lo, n).unwrap();
        lo += n;
    }
    (db, reference, mem)
}

// --------------------------------------------------- offload correctness

#[test]
fn offloaded_table_matches_resident_reference_through_merge_and_reopen() {
    let (db, reference, mem) = budgeted_pair(384);
    assert!(
        metric(&db, "parts_total") >= 4,
        "384 rows under a {BUDGET}-byte budget must have flushed parts"
    );
    assert_same_results(&db, &reference, "after offload");

    // Merging is purely physical: same answers, same logical digest. The
    // scan-sized budget blocks merges (a merged part would overflow the
    // scan envelope), so lift it for the merge pass.
    let before = db.state_digest();
    db.set_table_memory_budget(0);
    assert!(db.merge_now() > 0, "consecutive level-0 parts must merge");
    db.set_table_memory_budget(BUDGET);
    assert_eq!(db.state_digest(), before, "merge must not change the logical state");
    assert!(metric(&db, "parts_merged") > 0);
    assert_same_results(&db, &reference, "after merge");

    // Reopen from a clean shutdown: parts + WAL tail reconstruct the
    // exact state.
    db.checkpoint_now().unwrap();
    let digest = db.state_digest();
    drop(db);
    let rec = Database::open_with_fs(mem.clean_image(), opts_fsync()).unwrap();
    assert_eq!(rec.state_digest(), digest, "reopen must be bit-identical");
    rec.set_table_memory_budget(BUDGET);
    assert_same_results(&rec, &reference, "after reopen");

    // The reopened engine keeps offloading: more writes, still correct.
    insert_chunk(&rec, 384, 48).unwrap();
    insert_chunk(&reference, 384, 48).unwrap();
    insert_chunk(&rec, 432, 48).unwrap();
    insert_chunk(&reference, 432, 48).unwrap();
    assert_same_results(&rec, &reference, "writes after reopen");
}

#[test]
fn update_delete_and_alter_see_offloaded_rows() {
    let (db, reference, _mem) = budgeted_pair(384);
    for d in [&db, &reference] {
        d.execute("UPDATE t SET v = 0.0 WHERE k < 10").unwrap();
        d.execute("DELETE FROM t WHERE k >= 300").unwrap();
        d.execute("ALTER TABLE t ADD COLUMN flag INT").unwrap();
    }
    assert_same_results(&db, &reference, "after rewrite DML over parts");
    let a = db.query("SELECT COUNT(*), SUM(v) FROM t WHERE v = 0.0").unwrap();
    let b = reference.query("SELECT COUNT(*), SUM(v) FROM t WHERE v = 0.0").unwrap();
    assert_eq!(rows_of(&a), rows_of(&b));
}

#[test]
fn set_table_memory_budget_knob() {
    let mem = MemFs::new();
    let db = Database::open_with_fs(mem, opts_fsync()).unwrap();
    let mut s = db.session("admin");
    s.execute(&format!("SET table_memory_budget = {BUDGET}")).unwrap();
    assert_eq!(db.table_memory_budget(), BUDGET);
    db.execute("CREATE TABLE t (k INT, v DOUBLE, cat VARCHAR)").unwrap();
    insert_chunk(&db, 0, 200).unwrap();
    assert!(metric(&db, "parts_total") > 0, "SET budget must enable offload");
    s.execute("SET table_memory_budget = DEFAULT").unwrap();
    assert_eq!(db.table_memory_budget(), 0);
    assert!(s.execute("SET table_memory_budget = 'lots'").is_err());
    assert!(s.execute("SET table_memory_budget = -1").is_err());
}

// ------------------------------------------------- pruning & observability

#[test]
fn explain_analyze_reports_zone_map_pruning() {
    let (db, _reference, _mem) = budgeted_pair(384);
    let b = db
        .query("EXPLAIN ANALYZE SELECT SUM(v) FROM t WHERE k BETWEEN 0 AND 40")
        .unwrap();
    let tree: String = (0..b.num_rows())
        .map(|i| match b.column(0).get(i) {
            Value::Text(s) => s + "\n",
            other => panic!("{other:?}"),
        })
        .collect();
    assert!(tree.contains("PartScan"), "{tree}");
    assert!(tree.contains("parts pruned"), "{tree}");
    // k is monotone across parts, so a low-range predicate must prune
    // at least one part whose zone lies entirely above it.
    let pruned_before = metric(&db, "zonemap_parts_pruned");
    db.query("SELECT SUM(v) FROM t WHERE k BETWEEN 0 AND 40").unwrap();
    assert!(
        metric(&db, "zonemap_parts_pruned") > pruned_before,
        "selective scan must prune parts via zone maps: {tree}"
    );
    assert!(metric(&db, "zonemap_parts_scanned") > 0);
}

#[test]
fn part_and_merge_counters_surface_in_flock_metrics() {
    let (db, _reference, _mem) = budgeted_pair(384);
    db.query("SELECT SUM(v) FROM t WHERE k < 40").unwrap();
    assert!(metric(&db, "parts_total") > 0);
    assert!(metric(&db, "part_bytes_on_disk") > 0);
    // RLE/FOR on the monotone int column and a dictionary on the
    // low-cardinality text column must beat the raw footprint.
    assert!(
        metric(&db, "part_bytes_uncompressed") > metric(&db, "part_bytes_on_disk"),
        "compressed parts must be smaller than their decoded form"
    );
    assert!(metric(&db, "zonemap_parts_scanned") > 0);
    assert_eq!(metric(&db, "parts_merged"), 0);
    db.set_table_memory_budget(0);
    db.merge_now();
    assert!(metric(&db, "parts_merged") > 0);
}

// --------------------------------------------------- kill-point matrix

/// Deterministic workload covering the part lifecycle: offload inside an
/// INSERT commit, a synchronous merge pass, checkpoints that make parts
/// reachable, and rewrite DML that materializes parts back through the
/// budget. Every step leaves the engine in a digestable committed state.
const STEPS: usize = 15;

fn apply_step(db: &Database, i: usize) -> flock_sql::Result<()> {
    match i {
        0 => db
            .execute("CREATE TABLE t (k INT, v DOUBLE, cat VARCHAR)")
            .map(|_| ()),
        1 => insert_chunk(db, 0, 48),
        2 => insert_chunk(db, 48, 48),
        3 => insert_chunk(db, 96, 48),
        // 192 resident rows > budget: this commit flushes 3 parts.
        4 => insert_chunk(db, 144, 48),
        5 => insert_chunk(db, 192, 48),
        6 => insert_chunk(db, 240, 48),
        7 => insert_chunk(db, 288, 48),
        // second flush: 6 level-0 parts on disk now
        8 => insert_chunk(db, 336, 48),
        9 => {
            // Merge under the default cap (physical only, no WAL traffic;
            // a failed write mid-merge must leave the state untouched).
            db.set_table_memory_budget(0);
            db.merge_now();
            db.set_table_memory_budget(BUDGET);
            Ok(())
        }
        10 => db.checkpoint_now().map(|_| ()),
        // rewrite paths materialize parts, then re-offload on commit
        11 => db.execute("UPDATE t SET v = 0.0 WHERE k < 10").map(|_| ()),
        12 => db.execute("DELETE FROM t WHERE k >= 360").map(|_| ()),
        13 => db.checkpoint_now().map(|_| ()),
        14 => db.query("SELECT cat, COUNT(*) FROM t GROUP BY cat").map(|_| ()),
        _ => unreachable!("workload has {STEPS} steps"),
    }
}

fn open_budgeted(fs: Arc<dyn flock_sql::DurableFs>, opts: DurabilityOptions) -> Database {
    let db = Database::open_with_fs(fs, opts).unwrap();
    db.set_table_memory_budget(BUDGET);
    db
}

fn count_ops(opts: DurabilityOptions) -> u64 {
    let fp = FailpointFs::new(MemFs::new(), u64::MAX);
    let db = open_budgeted(fp.clone(), opts);
    for i in 0..STEPS {
        apply_step(&db, i).unwrap();
    }
    fp.ops_attempted()
}

/// The recovery-test kill matrix, extended over part flush, merge, and
/// checkpoint-of-parts boundaries. With fsync-on-commit, recovery must
/// reproduce the killed instance's surviving state digest-exactly —
/// including states whose tables live mostly in disk parts.
fn kill_matrix(opts: DurabilityOptions, exact_when_fsync: bool) {
    let total_ops = count_ops(opts);
    assert!(total_ops > 40, "workload too small to exercise part kill points");

    for k in 0..=total_ops {
        let mem = MemFs::new();
        let fp = FailpointFs::new(mem.clone(), k);
        let db = open_budgeted(fp.clone(), opts);
        let mut prefix_digests: HashSet<u64> = HashSet::from([db.state_digest()]);
        let mut steps_ok = 0usize;
        for i in 0..STEPS {
            match apply_step(&db, i) {
                Ok(()) => {
                    steps_ok += 1;
                    prefix_digests.insert(db.state_digest());
                }
                Err(e) => {
                    assert!(
                        fp.killed(),
                        "kill point {k} step {i}: failed before the kill: {e}"
                    );
                    prefix_digests.insert(db.state_digest());
                }
            }
        }
        let survivor = db.state_digest();

        let image = mem.crash_image();
        let rec = Database::open_with_fs(image, opts)
            .unwrap_or_else(|e| panic!("recovery failed at kill point {k}: {e}"));
        let recovered = rec.state_digest();

        assert!(
            prefix_digests.contains(&recovered),
            "kill point {k}: recovered digest {recovered:#x} is not any \
             committed prefix ({steps_ok} steps committed)"
        );
        if exact_when_fsync {
            assert_eq!(
                recovered, survivor,
                "kill point {k}: fsynced recovery diverged from the \
                 surviving in-memory state ({steps_ok} steps committed)"
            );
        }
    }
}

#[test]
fn kill_point_matrix_over_part_lifecycle_fsync_recovers_exactly() {
    kill_matrix(opts_fsync(), true);
}

#[test]
fn kill_point_matrix_over_part_lifecycle_buffered_recovers_a_prefix() {
    let opts = DurabilityOptions {
        fsync_on_commit: false,
        checkpoint_every_commits: 4,
        keep_checkpoints: 2,
    };
    kill_matrix(opts, false);
}

// --------------------------------------------- torn files and fallback

#[test]
fn orphaned_part_tmp_is_swept_on_open() {
    let (db, _reference, mem) = budgeted_pair(384);
    db.checkpoint_now().unwrap();
    let digest = db.state_digest();
    drop(db);
    let image = mem.clean_image();
    // A crash mid-part-write leaves only a `.tmp`: recovery must ignore
    // and remove it without touching the logical state.
    image.put_file("part.00099999.tmp", vec![0xDE, 0xAD, 0xBE, 0xEF]);
    let rec = Database::open_with_fs(image.clone(), opts_fsync()).unwrap();
    assert_eq!(rec.state_digest(), digest);
    assert!(
        !image.file_names().iter().any(|n| n.ends_with(".tmp")),
        "part tmps must be swept at open: {:?}",
        image.file_names()
    );
}

#[test]
fn corrupt_or_missing_part_falls_back_a_checkpoint_generation() {
    let opts = opts_fsync();
    let mem = MemFs::new();
    let db = Database::open_with_fs(mem.clone(), opts).unwrap();
    db.execute("CREATE TABLE t (k INT, v DOUBLE, cat VARCHAR)").unwrap();
    // Generation 1: resident-only state, checkpointed without parts.
    insert_chunk(&db, 0, 48).unwrap();
    db.checkpoint_now().unwrap();
    // Generation 2: offload, then checkpoint a part-referencing snapshot.
    db.set_table_memory_budget(BUDGET);
    insert_chunk(&db, 48, 144).unwrap();
    db.checkpoint_now().unwrap();
    assert!(metric(&db, "parts_total") > 0);
    let digest = db.state_digest();
    drop(db);

    let parts: Vec<String> = mem
        .clean_image()
        .file_names()
        .into_iter()
        .filter(|n| n.starts_with("part.") && !n.ends_with(".tmp"))
        .collect();
    assert!(!parts.is_empty());

    // Torn part (byte flip): the newest checkpoint references a part that
    // no longer checksums, so recovery must reject that generation and
    // replay the WAL from the older one to the same final state.
    let image = mem.clean_image();
    let mut bytes = image.file(&parts[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    image.put_file(&parts[0], bytes);
    let rec = Database::open_with_fs(image, opts).expect("fallback must succeed");
    assert_eq!(rec.state_digest(), digest, "fallback after part corruption");

    // Missing part file entirely: same fallback.
    let image = mem.clean_image();
    image.remove_file(&parts[0]);
    let rec = Database::open_with_fs(image, opts).expect("fallback must succeed");
    assert_eq!(rec.state_digest(), digest, "fallback after part deletion");

    // Corrupt newest manifest (checkpoint) with parts in play: also falls
    // back a generation.
    let image = mem.clean_image();
    let mut checkpoints: Vec<String> = image
        .file_names()
        .into_iter()
        .filter(|n| n.starts_with("checkpoint."))
        .collect();
    checkpoints.sort();
    assert!(checkpoints.len() >= 2, "need two generations: {checkpoints:?}");
    let newest = checkpoints.last().unwrap().clone();
    let mut garbage = image.file(&newest).unwrap();
    let mid = garbage.len() / 2;
    garbage[mid] ^= 0xFF;
    image.put_file(&newest, garbage);
    let rec = Database::open_with_fs(image, opts).unwrap();
    assert_eq!(rec.state_digest(), digest, "fallback after manifest corruption");
}

/// Regression: checkpoint pruning must compute the live part set as the
/// union over ALL retained generations — pruning by the newest alone
/// deletes files an older retained checkpoint still references, which
/// turns a routine fallback into data loss.
#[test]
fn prune_then_recover_from_older_generation() {
    let opts = opts_fsync();
    let mem = MemFs::new();
    let db = Database::open_with_fs(mem.clone(), opts).unwrap();
    db.set_table_memory_budget(BUDGET);
    db.execute("CREATE TABLE t (k INT, v DOUBLE, cat VARCHAR)").unwrap();
    for step in 0..8 {
        insert_chunk(&db, step * 48, 48).unwrap();
    }
    let small_parts = mem
        .file_names()
        .iter()
        .filter(|n| n.starts_with("part.") && !n.ends_with(".tmp"))
        .count();
    assert!(small_parts >= 6);

    // Merge retires the small parts logically; two checkpoint generations
    // later no retained manifest references them, and pruning may delete
    // the files.
    db.set_table_memory_budget(0);
    assert!(db.merge_now() > 0);
    db.set_table_memory_budget(BUDGET);
    db.checkpoint_now().unwrap();
    insert_chunk(&db, 384, 8).unwrap();
    db.checkpoint_now().unwrap();
    insert_chunk(&db, 392, 8).unwrap();
    db.checkpoint_now().unwrap();
    let remaining = mem
        .file_names()
        .iter()
        .filter(|n| n.starts_with("part.") && !n.ends_with(".tmp"))
        .count();
    assert!(
        remaining < small_parts,
        "pruning must reclaim merged-away part files ({small_parts} -> {remaining})"
    );
    let digest = db.state_digest();
    drop(db);

    // Every retained generation must still be fully readable: recover
    // from the newest, then force fallback by deleting it and recover
    // from the older generation. If pruning had deleted a part the older
    // generation references, this is where it would detonate.
    let image = mem.clean_image();
    assert_eq!(
        Database::open_with_fs(image.clone(), opts).unwrap().state_digest(),
        digest
    );
    let mut checkpoints: Vec<String> = image
        .file_names()
        .into_iter()
        .filter(|n| n.starts_with("checkpoint."))
        .collect();
    checkpoints.sort();
    assert!(checkpoints.len() >= 2, "{checkpoints:?}");
    image.remove_file(checkpoints.last().unwrap());
    let rec = Database::open_with_fs(image, opts)
        .expect("older retained generation must recover after prune");
    assert_eq!(rec.state_digest(), digest, "fallback generation lost part data");
}

/// Wide frame-of-reference columns (deltas needing ~61-63 bits) must
/// round-trip through the part codec bit-exactly. Regression for the FOR
/// bit-packer's u64 accumulator dropping high bits once width + residual
/// bits exceeded 64 (folded in from the since-removed tmp_for_width.rs).
#[test]
fn wide_for_roundtrip() {
    use flock_sql::batch::RecordBatch;
    use flock_sql::column::ColumnVector;
    use flock_sql::parts::{decode_part, encode_part};
    use flock_sql::schema::Schema;
    use flock_sql::types::DataType;

    // distinct values spanning ~2^61 so FOR with width 61-63 is chosen
    let vals: Vec<i64> = (0..1000i64).map(|i| i * 3_000_000_000_000_000).collect();
    let schema = Arc::new(Schema::from_pairs(&[("k", DataType::Int)]));
    let b = RecordBatch::new(schema, vec![ColumnVector::from_i64(vals.clone())]).unwrap();
    let (file, _) = encode_part(1, 0, &b);
    let p = decode_part(&file, None).unwrap();
    for (i, v) in vals.iter().enumerate() {
        assert_eq!(p.batch.column(0).get(i), Value::Int(*v), "row {i}");
    }
}
