//! Parallel-vs-serial determinism: every morsel-parallel operator must
//! produce the same result as the serial path, row for row, at every
//! thread count. Morsel boundaries are fixed-size, so even floating-point
//! partial-aggregate association is identical across thread counts; the
//! serial-vs-parallel comparison allows an epsilon for re-association.

use flock_sql::ast::PredictStrategy;
use flock_sql::column::ColumnVector;
use flock_sql::exec::ExecOptions;
use flock_sql::types::DataType;
use flock_sql::udf::InferenceProvider;
use flock_sql::{Database, RecordBatch, Result, SqlError, Value};
use std::sync::Arc;

/// Rows in the generated fact table — enough for dozens of 64-row morsels.
const N_ORDERS: usize = 2000;
const N_CUSTOMERS: usize = 150;

/// Deterministic LCG so the fixture needs no external RNG crate.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn fixture() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE customers (cust INT, name VARCHAR, segment VARCHAR)")
        .unwrap();
    db.execute("CREATE TABLE orders (o_id INT, cust INT, amount DOUBLE, region VARCHAR, qty INT)")
        .unwrap();

    let segments = ["retail", "wholesale", "online"];
    let mut rng = Lcg(42);
    let rows: Vec<String> = (0..N_CUSTOMERS)
        .map(|i| {
            format!(
                "({i}, 'cust_{i}', '{}')",
                segments[rng.below(3) as usize]
            )
        })
        .collect();
    db.execute(&format!("INSERT INTO customers VALUES {}", rows.join(", ")))
        .unwrap();

    let regions = ["emea", "amer", "apac", "latam"];
    // batch the inserts to keep statement size sane
    for chunk in (0..N_ORDERS).collect::<Vec<_>>().chunks(500) {
        let rows: Vec<String> = chunk
            .iter()
            .map(|&i| {
                // reference some customers that don't exist (unmatched joins)
                let cust = rng.below(N_CUSTOMERS as u64 + 20);
                let amount = (rng.below(100_000) as f64) / 97.0;
                let region = regions[rng.below(4) as usize];
                let qty = if rng.below(10) == 0 {
                    "NULL".to_string()
                } else {
                    rng.below(50).to_string()
                };
                format!("({i}, {cust}, {amount:.6}, '{region}', {qty})")
            })
            .collect();
        db.execute(&format!("INSERT INTO orders VALUES {}", rows.join(", ")))
            .unwrap();
    }
    db
}

/// A deterministic, strategy-insensitive inference provider: a logistic
/// score over two features. What PREDICT returns must not depend on how
/// the engine schedules it.
struct TestScorer;

impl InferenceProvider for TestScorer {
    fn output_type(&self, _model: &str) -> Result<DataType> {
        Ok(DataType::Float)
    }
    fn input_arity(&self, _model: &str) -> Result<usize> {
        Ok(2)
    }
    fn predict(
        &self,
        model: &str,
        inputs: &[ColumnVector],
        _strategy: PredictStrategy,
        _user: &str,
    ) -> Result<ColumnVector> {
        if model != "score" {
            return Err(SqlError::Execution(format!("unknown model '{model}'")));
        }
        let n = inputs[0].len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = inputs[0].get(i).as_f64();
            let b = inputs[1].get(i).as_f64();
            out.push(match (a, b) {
                (Some(a), Some(b)) => {
                    let raw = 0.004 * a - 0.11 * b + 0.3;
                    1.0 / (1.0 + (-raw).exp())
                }
                // missing features score 0.0 — keeps WHERE comparisons total
                _ => 0.0,
            });
        }
        Ok(ColumnVector::from_f64(out))
    }
}

/// Execution options that force fan-out even on this small fixture:
/// threshold 1 and 64-row morsels.
fn parallel_options(threads: usize) -> ExecOptions {
    ExecOptions {
        threads,
        parallel_row_threshold: 1,
        morsel_rows: 64,
        default_predict: PredictStrategy::Vectorized,
        ..ExecOptions::default()
    }
}

fn assert_batches_match(serial: &RecordBatch, parallel: &RecordBatch, ctxt: &str) {
    assert_eq!(
        serial.num_rows(),
        parallel.num_rows(),
        "{ctxt}: row count mismatch"
    );
    assert_eq!(
        serial.num_columns(),
        parallel.num_columns(),
        "{ctxt}: column count mismatch"
    );
    for r in 0..serial.num_rows() {
        for c in 0..serial.num_columns() {
            let a = serial.column(c).get(r);
            let b = parallel.column(c).get(r);
            let ok = match (&a, &b) {
                (Value::Float(x), Value::Float(y)) => {
                    // identical except for FP re-association in partial sums
                    (x.is_nan() && y.is_nan())
                        || (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
                }
                // group_eq: NULL == NULL (SQL PartialEq has NULL != NULL)
                _ => a.group_eq(&b),
            };
            assert!(ok, "{ctxt}: row {r} col {c}: {a:?} vs {b:?}");
        }
    }
}

/// TPC-H-flavored queries covering every parallel-capable operator:
/// filter+project, grouped/global aggregation (with and without DISTINCT),
/// equi-join (inner + left + residual filter), sort, distinct, union.
const QUERIES: &[&str] = &[
    "SELECT o_id, amount * 1.1, UPPER(region) FROM orders WHERE amount > 500 AND qty IS NOT NULL",
    "SELECT region, COUNT(*), SUM(amount), AVG(amount), MIN(qty), MAX(qty) \
     FROM orders GROUP BY region ORDER BY region",
    "SELECT COUNT(*), SUM(amount), STDDEV(amount), VARIANCE(amount) FROM orders",
    "SELECT COUNT(DISTINCT region), COUNT(DISTINCT qty) FROM orders",
    "SELECT region, SUM(DISTINCT qty), AVG(DISTINCT amount) FROM orders \
     GROUP BY region ORDER BY region",
    "SELECT c.name, o.amount FROM orders o JOIN customers c ON o.cust = c.cust \
     WHERE o.amount > 700 ORDER BY o.o_id",
    "SELECT o.o_id, c.segment FROM orders o LEFT JOIN customers c ON o.cust = c.cust \
     ORDER BY o.o_id",
    "SELECT c.segment, COUNT(*), SUM(o.amount) \
     FROM orders o JOIN customers c ON o.cust = c.cust \
     GROUP BY c.segment ORDER BY c.segment",
    "SELECT o_id, amount FROM orders ORDER BY region, amount DESC, o_id",
    "SELECT DISTINCT region, qty FROM orders ORDER BY region, qty LIMIT 40",
    "SELECT region FROM orders WHERE qty > 40 UNION ALL SELECT segment FROM customers",
];

#[test]
fn relational_queries_identical_across_thread_counts() {
    let db = fixture();
    for q in QUERIES {
        db.set_exec_options(ExecOptions::serial());
        let serial = db.query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        let mut by_threads = Vec::new();
        for threads in [2usize, 8] {
            db.set_exec_options(parallel_options(threads));
            let parallel = db.query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
            assert_batches_match(&serial, &parallel, &format!("threads={threads} {q}"));
            by_threads.push(parallel);
        }
        // Fixed morsel boundaries: 2 and 8 threads must agree bit-for-bit,
        // including float partial-sum association.
        let (two, eight) = (&by_threads[0], &by_threads[1]);
        for r in 0..two.num_rows() {
            for c in 0..two.num_columns() {
                let a = two.column(c).get(r);
                let b = eight.column(c).get(r);
                let bit_equal = match (&a, &b) {
                    (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                    _ => a.group_eq(&b),
                };
                assert!(bit_equal, "threads 2 vs 8 differ: {q}: row {r} col {c}: {a:?} vs {b:?}");
            }
        }
    }
}

#[test]
fn predict_pipeline_identical_across_thread_counts() {
    let db = fixture();
    db.set_inference_provider(Arc::new(TestScorer));
    let q = "SELECT o_id, PREDICT(score, amount, qty) \
             FROM orders WHERE PREDICT(score, amount, qty) >= 0.5 AND qty IS NOT NULL \
             ORDER BY o_id";
    db.set_exec_options(ExecOptions::serial());
    let serial = db.query(q).unwrap();
    assert!(serial.num_rows() > 0, "pipeline query selects some rows");
    for threads in [2usize, 8] {
        let mut options = parallel_options(threads);
        options.default_predict = PredictStrategy::Parallel(threads);
        db.set_exec_options(options);
        let parallel = db.query(q).unwrap();
        assert_batches_match(&serial, &parallel, &format!("predict threads={threads}"));
    }
}

#[test]
fn null_ordering_identical_across_thread_counts() {
    // Regression test for ORDER BY NULL placement: the documented default
    // is NULLS LAST ascending / NULLS FIRST descending, and the parallel
    // merge path must agree with the serial sort exactly.
    let db = fixture();
    for q in [
        "SELECT o_id, qty FROM orders ORDER BY qty, o_id",
        "SELECT o_id, qty FROM orders ORDER BY qty DESC, o_id",
    ] {
        db.set_exec_options(ExecOptions::serial());
        let serial = db.query(q).unwrap();
        let n = serial.num_rows();
        assert!(n > 0);
        let desc = q.contains("DESC");
        // NULL qty rows (~10% of the fixture) cluster at the documented end
        let nulls: Vec<usize> = (0..n)
            .filter(|&r| serial.column(1).get(r).is_null())
            .collect();
        assert!(!nulls.is_empty(), "fixture must contain NULL qty rows");
        if desc {
            assert_eq!(nulls, (0..nulls.len()).collect::<Vec<_>>(), "{q}: NULLs first");
        } else {
            assert_eq!(
                nulls,
                (n - nulls.len()..n).collect::<Vec<_>>(),
                "{q}: NULLs last"
            );
        }
        for threads in [2usize, 8] {
            db.set_exec_options(parallel_options(threads));
            let parallel = db.query(q).unwrap();
            assert_batches_match(&serial, &parallel, &format!("threads={threads} {q}"));
        }
    }
}

#[test]
fn degenerate_options_are_clamped_not_panicking() {
    let db = fixture();
    db.set_exec_options(ExecOptions {
        threads: 0,
        parallel_row_threshold: 0,
        morsel_rows: 0,
        default_predict: PredictStrategy::Parallel(0),
        ..ExecOptions::default()
    });
    let b = db
        .query("SELECT region, COUNT(*) FROM orders GROUP BY region ORDER BY region")
        .unwrap();
    assert_eq!(b.num_rows(), 4);
    let opts = db.exec_options();
    assert!(opts.threads >= 1 && opts.parallel_row_threshold >= 1 && opts.morsel_rows >= 1);
}
