//! Streaming ingestion + continuous queries, end to end: stream DDL and
//! append-only enforcement, tumbling/sliding windowed aggregates that
//! must be bit-equal to the equivalent batch GROUP BY over the same
//! captured events (including across crash/recovery), late-event
//! accounting, continuous PREDICT through the batched serving path, and
//! the policy monitor whose threshold breach places a model on hold.

use flock_sql::ast::PredictStrategy;
use flock_sql::column::ColumnVector;
use flock_sql::types::DataType;
use flock_sql::udf::InferenceProvider;
use flock_sql::{
    Database, DurabilityOptions, FailpointFs, MemFs, RecordBatch, Result, SqlError, Value,
};
use std::sync::Arc;

// ---------------------------------------------------------------- helpers

fn rows_of(b: &RecordBatch) -> Vec<Vec<Value>> {
    (0..b.num_rows()).map(|i| b.row(i)).collect()
}

fn metric(db: &Database, name: &str) -> i64 {
    let b = db
        .query(&format!(
            "SELECT value FROM flock_metrics WHERE metric = '{name}'"
        ))
        .unwrap();
    assert_eq!(b.num_rows(), 1, "metric '{name}' missing");
    match b.column(0).get(0) {
        Value::Int(v) => v,
        other => panic!("metric '{name}' is not an int: {other:?}"),
    }
}

/// The batch reference for one window: the same aggregate over the same
/// events, restricted to `[start, start+size)` by a plain WHERE.
fn batch_window(db: &Database, select: &str, start: i64, size: i64) -> Vec<Vec<Value>> {
    let q = format!("{select} WHERE et >= {start} AND et < {} GROUP BY k", start + size);
    rows_of(&db.query(&q).unwrap())
}

/// Compare a sink against per-window batch references, bit for bit. The
/// sink's first column is `window_start`; remaining columns must equal
/// the batch rows (same values, same group order).
fn assert_sink_matches_batch(db: &Database, sink: &str, select: &str, size: i64) {
    let sink_rows = rows_of(&db.query(&format!("SELECT * FROM {sink}")).unwrap());
    assert!(!sink_rows.is_empty(), "sink '{sink}' is empty");
    let mut starts: Vec<i64> = sink_rows
        .iter()
        .map(|r| match r[0] {
            Value::Int(s) => s,
            ref other => panic!("window_start is not an int: {other:?}"),
        })
        .collect();
    starts.dedup();
    let mut at = 0usize;
    for start in starts {
        let expect = batch_window(db, select, start, size);
        for want in &expect {
            let got = &sink_rows[at];
            assert_eq!(Value::Int(start), got[0]);
            assert_eq!(
                want[..],
                got[1..],
                "window [{start}, {}) diverged from batch GROUP BY",
                start + size
            );
            at += 1;
        }
    }
    assert_eq!(at, sink_rows.len(), "sink holds rows no batch window explains");
}

/// Deterministic two-feature scorer (strategy-insensitive), used for the
/// continuous-PREDICT and policy-hold tests.
struct RiskScorer;

impl InferenceProvider for RiskScorer {
    fn output_type(&self, _model: &str) -> Result<DataType> {
        Ok(DataType::Float)
    }
    fn input_arity(&self, _model: &str) -> Result<usize> {
        Ok(2)
    }
    fn predict(
        &self,
        model: &str,
        inputs: &[ColumnVector],
        _strategy: PredictStrategy,
        _user: &str,
    ) -> Result<ColumnVector> {
        if model != "risk" {
            return Err(SqlError::Execution(format!("unknown model '{model}'")));
        }
        let n = inputs[0].len();
        let vals: Vec<Value> = (0..n)
            .map(|i| match (inputs[0].get(i).as_f64(), inputs[1].get(i).as_f64()) {
                (Some(a), Some(b)) => Value::Float((a / 100.0 + b / 10.0).min(1.0)),
                _ => Value::Float(0.0),
            })
            .collect();
        ColumnVector::from_values(DataType::Float, &vals)
    }
}

// -------------------------------------------------------------------- DDL

#[test]
fn create_stream_ddl_and_show() {
    let db = Database::new();
    db.execute("CREATE STREAM clicks (et INT, k INT, v INT) WATERMARK (et, 50)")
        .unwrap();
    // duplicate rejected; IF NOT EXISTS tolerated
    let err = db
        .execute("CREATE STREAM clicks (et INT, k INT) WATERMARK (et, 0)")
        .unwrap_err();
    assert!(err.to_string().contains("already exists"), "{err}");
    db.execute("CREATE STREAM IF NOT EXISTS clicks (et INT, k INT) WATERMARK (et, 0)")
        .unwrap();

    db.execute("INSERT INTO clicks VALUES (10, 1, 5), (20, 2, 6)")
        .unwrap();
    let b = db.query("SHOW STREAMS").unwrap();
    assert_eq!(b.num_rows(), 1);
    assert_eq!(b.schema().names(), vec![
        "name",
        "event_time",
        "lag_ms",
        "rows",
        "continuous_queries"
    ]);
    assert_eq!(b.column(0).get(0), Value::Text("clicks".into()));
    assert_eq!(b.column(1).get(0), Value::Text("et".into()));
    assert_eq!(b.column(2).get(0), Value::Int(50));
    assert_eq!(b.column(3).get(0), Value::Int(2));
    assert_eq!(b.column(4).get(0), Value::Int(0));

    // streams are queryable like tables
    let b = db.query("SELECT SUM(v) FROM clicks").unwrap();
    assert_eq!(b.column(0).get(0), Value::Int(11));
}

#[test]
fn watermark_column_must_be_an_int_column() {
    let db = Database::new();
    let err = db
        .execute("CREATE STREAM s (et DOUBLE, k INT) WATERMARK (et, 0)")
        .unwrap_err();
    assert!(err.to_string().contains("must be INT"), "{err}");
    let err = db
        .execute("CREATE STREAM s (et INT, k INT) WATERMARK (missing, 0)")
        .unwrap_err();
    assert!(err.to_string().contains("not a column"), "{err}");
}

#[test]
fn streams_are_append_only() {
    let db = Database::new();
    db.execute("CREATE STREAM s (et INT, v INT) WATERMARK (et, 0)")
        .unwrap();
    db.execute("INSERT INTO s VALUES (1, 10)").unwrap();
    for sql in [
        "UPDATE s SET v = 0",
        "DELETE FROM s",
        "ALTER TABLE s ADD COLUMN z INT",
    ] {
        let err = db.execute(sql).unwrap_err();
        assert!(err.to_string().contains("append-only"), "{sql}: {err}");
    }
    let err = db.execute("DROP TABLE s").unwrap_err();
    assert!(err.to_string().contains("DROP STREAM"), "{err}");
    db.execute("DROP STREAM s").unwrap();
    assert_eq!(db.query("SHOW STREAMS").unwrap().num_rows(), 0);
}

#[test]
fn drop_stream_refuses_while_a_cq_reads_it() {
    let db = Database::new();
    db.execute("CREATE STREAM s (et INT, k INT) WATERMARK (et, 0)")
        .unwrap();
    db.execute(
        "CREATE CONTINUOUS QUERY counts ON s WINDOW TUMBLING (100) \
         EMIT INTO s_counts AS SELECT k, COUNT(*) AS n FROM s GROUP BY k",
    )
    .unwrap();
    let err = db.execute("DROP STREAM s").unwrap_err();
    assert!(err.to_string().contains("continuous query"), "{err}");
    db.execute("DROP CONTINUOUS QUERY counts").unwrap();
    db.execute("DROP STREAM s").unwrap();
    // the sink survives as ordinary data
    assert_eq!(db.query("SELECT * FROM s_counts").unwrap().num_rows(), 0);
}

#[test]
fn create_cq_validates_up_front() {
    let db = Database::new();
    db.execute("CREATE STREAM s (et INT, k INT) WATERMARK (et, 0)")
        .unwrap();
    // sliding window must tile the size
    let err = db
        .execute(
            "CREATE CONTINUOUS QUERY c ON s WINDOW SLIDING (100, 33) \
             EMIT INTO out AS SELECT k, COUNT(*) AS n FROM s GROUP BY k",
        )
        .unwrap_err();
    assert!(err.to_string().contains("multiple"), "{err}");
    // query must read the CQ's stream
    let err = db
        .execute(
            "CREATE CONTINUOUS QUERY c ON s WINDOW TUMBLING (100) \
             EMIT INTO out AS SELECT k, COUNT(*) AS n FROM elsewhere GROUP BY k",
        )
        .unwrap_err();
    assert!(err.to_string().contains("must read stream"), "{err}");
    // unknown stream
    let err = db
        .execute(
            "CREATE CONTINUOUS QUERY c ON ghost WINDOW TUMBLING (100) \
             EMIT INTO out AS SELECT k, COUNT(*) AS n FROM ghost GROUP BY k",
        )
        .unwrap_err();
    assert!(err.to_string().contains("does not exist"), "{err}");
    // nothing half-created
    assert!(db.query("SELECT * FROM out").is_err());
}

// ------------------------------------------------- windowed bit-equality

#[test]
fn tumbling_window_matches_batch_group_by() {
    let db = Database::new();
    db.execute("CREATE STREAM s (et INT, k INT, v INT) WATERMARK (et, 0)")
        .unwrap();
    db.execute(
        "CREATE CONTINUOUS QUERY agg ON s WINDOW TUMBLING (100) \
         EMIT INTO s_agg AS \
         SELECT k, COUNT(*) AS n, SUM(v) AS total, AVG(v) AS mean FROM s GROUP BY k",
    )
    .unwrap();
    db.execute(
        "INSERT INTO s VALUES \
         (10, 1, 5), (20, 2, 7), (30, 1, 9), (110, 1, 1), \
         (150, 3, 8), (190, 2, 4), (205, 1, 2), (390, 9, 9)",
    )
    .unwrap();
    let emitted = db.stream_tick_now();
    // watermark 390 closes [0,100), [100,200), [200,300); [300,400) stays open
    assert_eq!(emitted, 3);
    assert_sink_matches_batch(
        &db,
        "s_agg",
        "SELECT k, COUNT(*) AS n, SUM(v) AS total, AVG(v) AS mean FROM s",
        100,
    );
    // idempotent: a tick with no new events emits nothing
    assert_eq!(db.stream_tick_now(), 0);
    assert_eq!(metric(&db, "stream_windows_closed"), 3);
    assert!(metric(&db, "stream_rows_emitted") >= 3);
}

#[test]
fn sliding_window_matches_batch_group_by() {
    let db = Database::new();
    db.execute("CREATE STREAM s (et INT, k INT, v INT) WATERMARK (et, 25)")
        .unwrap();
    db.execute(
        "CREATE CONTINUOUS QUERY agg ON s WINDOW SLIDING (200, 100) \
         EMIT INTO s_agg AS \
         SELECT k, COUNT(*) AS n, MIN(v) AS lo, MAX(v) AS hi FROM s GROUP BY k",
    )
    .unwrap();
    db.execute(
        "INSERT INTO s VALUES \
         (50, 1, 5), (150, 1, 3), (150, 2, 11), (250, 2, 2), (310, 1, 7), (640, 1, 1)",
    )
    .unwrap();
    let emitted = db.stream_tick_now();
    // watermark 615 closes [-100,100), [0,200), [100,300), [200,400), [300,500)
    // (empty [ -100,100 ) has no groups and emits no rows; [400,600) empty too)
    assert!(emitted >= 4, "emitted {emitted}");
    assert_sink_matches_batch(
        &db,
        "s_agg",
        "SELECT k, COUNT(*) AS n, MIN(v) AS lo, MAX(v) AS hi FROM s",
        200,
    );
    // every event appears in both windows that contain it
    let b = db
        .query("SELECT COUNT(*) FROM s_agg WHERE window_start = 0 OR window_start = 100")
        .unwrap();
    assert!(matches!(b.column(0).get(0), Value::Int(n) if n >= 3));
}

#[test]
fn where_clause_filters_events_but_not_watermark() {
    let db = Database::new();
    db.execute("CREATE STREAM s (et INT, k INT, v INT) WATERMARK (et, 0)")
        .unwrap();
    db.execute(
        "CREATE CONTINUOUS QUERY agg ON s WINDOW TUMBLING (100) \
         EMIT INTO s_agg AS \
         SELECT k, COUNT(*) AS n FROM s WHERE v > 5 GROUP BY k",
    )
    .unwrap();
    // the filtered-out high-et row still advances the watermark
    db.execute("INSERT INTO s VALUES (10, 1, 9), (20, 1, 1), (500, 1, 0)")
        .unwrap();
    assert!(db.stream_tick_now() >= 1);
    let rows = rows_of(&db.query("SELECT * FROM s_agg").unwrap());
    assert_eq!(rows, vec![vec![Value::Int(0), Value::Int(1), Value::Int(1)]]);
}

#[test]
fn late_events_are_dropped_and_counted() {
    let db = Database::new();
    db.execute("CREATE STREAM s (et INT, k INT) WATERMARK (et, 0)")
        .unwrap();
    db.execute(
        "CREATE CONTINUOUS QUERY agg ON s WINDOW TUMBLING (100) \
         EMIT INTO s_agg AS SELECT k, COUNT(*) AS n FROM s GROUP BY k",
    )
    .unwrap();
    db.execute("INSERT INTO s VALUES (10, 1), (350, 1)").unwrap();
    assert!(db.stream_tick_now() >= 1); // closes [0,100) at least
    let before = rows_of(&db.query("SELECT * FROM s_agg").unwrap());
    // arrives after every window containing t=15 closed
    db.execute("INSERT INTO s VALUES (15, 1)").unwrap();
    db.stream_tick_now();
    let after = rows_of(&db.query("SELECT * FROM s_agg").unwrap());
    assert_eq!(before, after, "late event must not reopen a closed window");
    assert_eq!(metric(&db, "stream_late_events"), 1);
}

// --------------------------------------------------- crash and recovery

#[test]
fn windowed_results_survive_crash_recovery_bit_for_bit() {
    let opts = DurabilityOptions {
        fsync_on_commit: true,
        checkpoint_every_commits: 4,
        keep_checkpoints: 2,
    };
    let mem = MemFs::new();
    let fp = FailpointFs::new(mem.clone(), u64::MAX);
    let db = Database::open_with_fs(fp, opts).unwrap();
    db.execute("CREATE STREAM s (et INT, k INT, v INT) WATERMARK (et, 0)")
        .unwrap();
    db.execute(
        "CREATE CONTINUOUS QUERY agg ON s WINDOW TUMBLING (100) \
         EMIT INTO s_agg AS SELECT k, COUNT(*) AS n, SUM(v) AS total FROM s GROUP BY k",
    )
    .unwrap();
    db.execute("INSERT INTO s VALUES (10, 1, 5), (20, 2, 7), (130, 1, 3), (260, 1, 1)")
        .unwrap();
    assert_eq!(db.stream_tick_now(), 2); // closes [0,100), [100,200)
    let sink_before = rows_of(&db.query("SELECT * FROM s_agg").unwrap());
    assert_eq!(sink_before.len(), 3);

    // crash: only fsynced bytes survive
    let rec = Database::open_with_fs(mem.crash_image(), opts).unwrap();
    let sink_after = rows_of(&rec.query("SELECT * FROM s_agg").unwrap());
    assert_eq!(sink_before, sink_after, "sink must survive bit-for-bit");

    // the rebuilt runtime replays the stream from scratch; the durable
    // emission cursor must suppress re-emission of already-sunk windows
    assert_eq!(rec.stream_tick_now(), 0);
    assert_eq!(
        sink_after,
        rows_of(&rec.query("SELECT * FROM s_agg").unwrap()),
        "replay after recovery duplicated windows"
    );

    // and the pipeline keeps going: new events close the next window
    rec.execute("INSERT INTO s VALUES (300, 2, 8), (520, 1, 1)")
        .unwrap();
    assert_eq!(rec.stream_tick_now(), 2); // [200,300), [300,400)
    assert_sink_matches_batch(
        &rec,
        "s_agg",
        "SELECT k, COUNT(*) AS n, SUM(v) AS total FROM s",
        100,
    );
}

/// Kill the process at every durable-write boundary of a streaming
/// workload. Whatever survives, recovery must yield a sink that is
/// bit-equal to the batch GROUP BY over the recovered stream contents —
/// no duplicated windows, no windows from lost events.
#[test]
fn kill_point_matrix_keeps_sink_and_batch_equal() {
    let opts = DurabilityOptions {
        fsync_on_commit: true,
        checkpoint_every_commits: 3,
        keep_checkpoints: 2,
    };
    let workload = |db: &Database| -> flock_sql::Result<()> {
        db.execute("CREATE STREAM s (et INT, k INT, v INT) WATERMARK (et, 0)")?;
        db.execute(
            "CREATE CONTINUOUS QUERY agg ON s WINDOW TUMBLING (100) \
             EMIT INTO s_agg AS SELECT k, COUNT(*) AS n, SUM(v) AS total FROM s GROUP BY k",
        )?;
        db.execute("INSERT INTO s VALUES (10, 1, 5), (60, 2, 7), (150, 1, 3)")?;
        db.stream_tick_now();
        db.execute("INSERT INTO s VALUES (220, 2, 9), (410, 1, 2)")?;
        db.stream_tick_now();
        Ok(())
    };

    // count the durable ops of a full run
    let mem = MemFs::new();
    let fp = FailpointFs::new(mem, u64::MAX);
    let db = Database::open_with_fs(fp.clone(), opts).unwrap();
    workload(&db).unwrap();
    let total_ops = fp.ops_attempted();
    assert!(total_ops > 10, "workload too small");

    for kill in 0..=total_ops {
        let mem = MemFs::new();
        let fp = FailpointFs::new(mem.clone(), kill);
        let db = Database::open_with_fs(fp, opts).unwrap();
        let _ = workload(&db); // fails once the kill point fires
        let rec = match Database::open_with_fs(mem.crash_image(), opts) {
            Ok(rec) => rec,
            Err(e) => panic!("recovery failed at kill point {kill}: {e}"),
        };
        if !rec.catalog().has_extension("cq", "agg") {
            continue; // died before the CQ existed
        }
        // drive the recovered instance: replay + close whatever the
        // recovered events' watermark allows
        rec.stream_tick_now();
        rec.stream_tick_now();
        let sink = rows_of(&rec.query("SELECT * FROM s_agg").unwrap());
        if sink.is_empty() {
            continue;
        }
        assert_sink_matches_batch(
            &rec,
            "s_agg",
            "SELECT k, COUNT(*) AS n, SUM(v) AS total FROM s",
            100,
        );
        // no window emitted twice
        let mut starts: Vec<i64> = sink
            .iter()
            .map(|r| match (&r[0], &r[1]) {
                (Value::Int(s), Value::Int(k)) => s * 1000 + k,
                _ => panic!("unexpected sink row {r:?}"),
            })
            .collect();
        let n = starts.len();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(n, starts.len(), "kill point {kill}: duplicated sink rows");
    }
}

// ------------------------------------- continuous PREDICT + policy hold

#[test]
fn continuous_predict_scores_closed_windows_and_policy_hold_fires() {
    let db = Database::new();
    db.set_inference_provider(Arc::new(RiskScorer));
    let mut admin = db.session("admin");
    admin
        .create_extension_object(
            "model",
            "risk",
            vec![1, 2, 3],
            serde_json::from_str("{}").unwrap(),
        )
        .unwrap();
    db.execute("CREATE STREAM txns (et INT, acct INT, amount INT) WATERMARK (et, 0)")
        .unwrap();
    db.execute(
        "CREATE CONTINUOUS QUERY monitor ON txns WINDOW TUMBLING (100) \
         EMIT INTO txn_scores AS \
         SELECT acct, COUNT(*) AS n, AVG(amount) AS mean_amount, \
                PREDICT(risk, AVG(amount), COUNT(*)) AS score \
         FROM txns GROUP BY acct \
         WHEN score > 0.9 THEN HOLD MODEL risk",
    )
    .unwrap();

    // window 1: calm traffic, no breach
    db.execute("INSERT INTO txns VALUES (10, 1, 20), (40, 1, 10), (160, 2, 5)")
        .unwrap();
    assert_eq!(db.stream_tick_now(), 1);
    assert_eq!(metric(&db, "stream_policy_breaches"), 0);
    let b = db.query("SELECT score FROM txn_scores").unwrap();
    assert_eq!(b.num_rows(), 1);
    // scorer: 15/100 + 2/10 = 0.35
    let Value::Float(x) = b.column(0).get(0) else {
        panic!()
    };
    assert!((x - 0.35).abs() < 1e-9, "score {x}");
    // the held-model path hasn't fired; scoring still allowed
    db.query("SELECT PREDICT(risk, amount, 1) FROM txns").unwrap();

    // window 2: a burst that breaches the threshold
    db.execute(
        "INSERT INTO txns VALUES \
         (210, 7, 95), (220, 7, 99), (230, 7, 97), (240, 7, 98), \
         (250, 7, 96), (260, 7, 94), (270, 7, 99), (280, 7, 98), \
         (290, 7, 97), (295, 7, 95), (400, 1, 1)",
    )
    .unwrap();
    assert!(db.stream_tick_now() >= 1);
    assert_eq!(metric(&db, "stream_policy_breaches"), 1);
    assert!(metric(&db, "stream_predict_windows") >= 2);

    // the breach held the model: PREDICT now refuses, and both the breach
    // and the hold are in the audit log
    let err = db
        .query("SELECT PREDICT(risk, amount, 1) FROM txns")
        .unwrap_err();
    assert!(err.to_string().contains("on hold"), "{err}");
    let audit = db.audit_log();
    assert!(
        audit.iter().any(|r| r.action == "POLICY BREACH"),
        "no POLICY BREACH audit row"
    );
    assert!(
        audit.iter().any(|r| r.action == "MODEL HOLD"),
        "no MODEL HOLD audit row"
    );
    assert!(
        audit.iter().any(|r| r.action == "HOLD BLOCKED"),
        "no HOLD BLOCKED audit row"
    );

    // the monitor's sink keeps the breaching window's scores for forensics
    let b = db
        .query("SELECT COUNT(*) FROM txn_scores WHERE score > 0.9")
        .unwrap();
    assert!(matches!(b.column(0).get(0), Value::Int(n) if n >= 1));
}

#[test]
fn held_model_blocks_cached_plans_too() {
    let db = Database::new();
    db.set_inference_provider(Arc::new(RiskScorer));
    let mut admin = db.session("admin");
    admin
        .create_extension_object(
            "model",
            "risk",
            vec![],
            serde_json::from_str("{}").unwrap(),
        )
        .unwrap();
    db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 2)").unwrap();
    let mut s = db.session("admin");
    let prepared = s.prepare("SELECT PREDICT(risk, a, b) FROM t").unwrap();
    s.execute_prepared(&prepared, &[]).unwrap();
    // hold the model through a policy-style metadata update, then the
    // cached plan must refuse on its next execute
    let cur = db.catalog().extension("model", "risk").unwrap().current().clone();
    let mut meta = cur.metadata.clone();
    meta.as_object_mut()
        .unwrap()
        .insert("hold".into(), serde_json::Value::Bool(true));
    s.update_extension_object("model", "risk", cur.payload.clone(), meta)
        .unwrap();
    let err = s.execute_prepared(&prepared, &[]).unwrap_err();
    assert!(err.to_string().contains("on hold"), "{err}");
}

// ------------------------------------------------------ scheduler thread

#[test]
fn background_scheduler_emits_without_manual_ticks() {
    let db = Database::new();
    db.set_stream_tick_ms(5);
    db.start_stream_scheduler();
    db.execute("CREATE STREAM s (et INT, k INT) WATERMARK (et, 0)")
        .unwrap();
    db.execute(
        "CREATE CONTINUOUS QUERY agg ON s WINDOW TUMBLING (100) \
         EMIT INTO s_agg AS SELECT k, COUNT(*) AS n FROM s GROUP BY k",
    )
    .unwrap();
    db.execute("INSERT INTO s VALUES (10, 1), (20, 1), (250, 2)")
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let n = db.query("SELECT * FROM s_agg").unwrap().num_rows();
        if n >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "scheduler never emitted the closed window"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let rows = rows_of(&db.query("SELECT * FROM s_agg").unwrap());
    assert_eq!(rows, vec![vec![Value::Int(0), Value::Int(1), Value::Int(2)]]);
    db.stop_stream_scheduler();
}

#[test]
fn set_stream_tick_ms_knob() {
    let db = Database::new();
    db.execute("SET stream_tick_ms = 7").unwrap();
    let err = db.execute("SET stream_tick_ms = 0").unwrap_err();
    assert!(err.to_string().contains("positive"), "{err}");
    db.execute("SET stream_tick_ms = DEFAULT").unwrap();
}
