//! Static provenance analysis of Python scripts (paper §4.2, "Provenance
//! in Python").
//!
//! A single forward pass over the parsed statements tracks, per variable:
//! where datasets came from (files or SQL), which variables hold models
//! and featurizers, what hyperparameters they were constructed with, what
//! data they were `fit` on, and which metrics evaluated them. `read_sql`
//! calls are parsed with the SQL engine's own parser, connecting script
//! provenance to table-level lineage (challenge C3).

use crate::ast::{PyExpr, PyStmt};
use crate::kb::{ApiRole, KnowledgeBase};
use crate::parser::parse_script;
use serde::Serialize;
use std::collections::{BTreeSet, HashMap};

/// Where a dataset variable ultimately came from.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum DatasetOrigin {
    /// Loaded from a file path.
    File(String),
    /// Loaded with a SQL query reading these tables.
    SqlTables(Vec<String>),
}

impl DatasetOrigin {
    pub fn describe(&self) -> String {
        match self {
            DatasetOrigin::File(f) => format!("file:{f}"),
            DatasetOrigin::SqlTables(ts) => format!("sql:{}", ts.join(",")),
        }
    }
}

/// A model discovered in the script.
#[derive(Debug, Clone, Serialize)]
pub struct ModelInfo {
    pub var: String,
    pub class_path: String,
    pub hyperparams: Vec<(String, String)>,
    pub training_datasets: Vec<DatasetOrigin>,
    pub metrics: Vec<String>,
}

/// A dataset variable and its origin.
#[derive(Debug, Clone, Serialize)]
pub struct DatasetInfo {
    pub var: String,
    pub origins: Vec<DatasetOrigin>,
}

/// The full analysis result for one script.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ScriptProvenance {
    pub models: Vec<ModelInfo>,
    pub datasets: Vec<DatasetInfo>,
    /// Column names referenced through `df['col']` subscripts.
    pub features: Vec<String>,
    pub statements: usize,
    pub unrecognized_statements: usize,
}

#[derive(Debug, Clone)]
enum VarInfo {
    Module(String),
    ImportedName(String),
    Dataset(BTreeSet<DatasetOrigin>),
    Model(usize), // index into models vec
    Featurizer(#[allow(dead_code)] String),
    Prediction(usize), // model index
}

/// Analyze a script's source code.
pub fn analyze(source: &str, kb: &KnowledgeBase) -> ScriptProvenance {
    let stmts = parse_script(source);
    let mut a = Analyzer {
        kb,
        vars: HashMap::new(),
        out: ScriptProvenance::default(),
        features: BTreeSet::new(),
    };
    a.out.statements = stmts.len();
    for s in &stmts {
        a.statement(s);
    }
    // materialize datasets from var state
    for (var, info) in &a.vars {
        if let VarInfo::Dataset(origins) = info {
            if !origins.is_empty() {
                a.out.datasets.push(DatasetInfo {
                    var: var.clone(),
                    origins: origins.iter().cloned().collect(),
                });
            }
        }
    }
    a.out.datasets.sort_by(|x, y| x.var.cmp(&y.var));
    a.out.features = a.features.into_iter().collect();
    a.out
}

struct Analyzer<'a> {
    kb: &'a KnowledgeBase,
    vars: HashMap<String, VarInfo>,
    out: ScriptProvenance,
    features: BTreeSet<String>,
}

impl<'a> Analyzer<'a> {
    fn statement(&mut self, stmt: &PyStmt) {
        match stmt {
            PyStmt::Import { module, alias } => {
                let name = alias.clone().unwrap_or_else(|| module.clone());
                self.vars.insert(name, VarInfo::Module(module.clone()));
            }
            PyStmt::FromImport { module, names } => {
                for (n, alias) in names {
                    let bound = alias.clone().unwrap_or_else(|| n.clone());
                    self.vars
                        .insert(bound, VarInfo::ImportedName(format!("{module}.{n}")));
                }
            }
            PyStmt::Assign {
                targets,
                value,
                target_exprs,
            } => {
                self.collect_features(value);
                for t in target_exprs {
                    self.collect_features(t);
                }
                self.scan_nested_metrics(value);
                // column assignment `df['x'] = ...` only adds features
                let is_column_assignment = targets.len() == 1
                    && matches!(target_exprs.first(), Some(PyExpr::Subscript(..)));
                if is_column_assignment {
                    return;
                }
                let info = self.eval(value);
                if let Some(VarInfo::Model(idx)) = &info {
                    if let Some(first) = targets.first() {
                        let m = &mut self.out.models[*idx];
                        if m.var.is_empty() {
                            m.var = first.clone();
                        }
                    }
                }
                match (&info, targets.len()) {
                    (Some(v), 1) => {
                        self.vars.insert(targets[0].clone(), v.clone());
                    }
                    (Some(v), _) => {
                        // tuple targets (train_test_split): everything
                        // inherits the same provenance
                        for t in targets {
                            self.vars.insert(t.clone(), v.clone());
                        }
                    }
                    (None, _) => {
                        // unknown value: propagate dataset provenance
                        let origins = self.origins_of(value);
                        if !origins.is_empty() {
                            for t in targets {
                                self.vars
                                    .insert(t.clone(), VarInfo::Dataset(origins.clone()));
                            }
                        }
                    }
                }
            }
            PyStmt::Expr(e) => {
                self.collect_features(e);
                self.scan_nested_metrics(e);
                // bare calls like model.fit(X, y)
                let _ = self.eval(e);
            }
            PyStmt::For { iter, .. } => {
                self.collect_features(iter);
            }
            PyStmt::Other => {
                self.out.unrecognized_statements += 1;
            }
        }
    }

    /// Evaluate an expression's provenance role.
    fn eval(&mut self, e: &PyExpr) -> Option<VarInfo> {
        let PyExpr::Call { func, args, kwargs } = e else {
            return None;
        };
        // method call on a tracked variable?
        if let PyExpr::Attr(base, method) = &**func {
            if let Some(base_var) = base.base_name() {
                if let Some(info) = self.vars.get(base_var).cloned() {
                    match (&info, method.as_str()) {
                        (VarInfo::Model(idx), "fit") => {
                            let mut origins = BTreeSet::new();
                            for a in args {
                                origins.extend(self.origins_of(a));
                            }
                            let model = &mut self.out.models[*idx];
                            for o in origins {
                                if !model.training_datasets.contains(&o) {
                                    model.training_datasets.push(o);
                                }
                            }
                            return Some(VarInfo::Model(*idx));
                        }
                        (
                            VarInfo::Model(idx),
                            "predict" | "predict_proba" | "decision_function" | "score",
                        ) => {
                            return Some(VarInfo::Prediction(*idx));
                        }
                        (VarInfo::Featurizer(_), "fit_transform" | "transform") => {
                            let mut origins = BTreeSet::new();
                            for a in args {
                                origins.extend(self.origins_of(a));
                            }
                            return Some(VarInfo::Dataset(origins));
                        }
                        (VarInfo::Dataset(origins), _) => {
                            // df.dropna(), df.merge(other), ...
                            let mut all = origins.clone();
                            for a in args {
                                all.extend(self.origins_of(a));
                            }
                            return Some(VarInfo::Dataset(all));
                        }
                        _ => {}
                    }
                }
            }
        }

        // free-function / constructor call
        let resolved = self.resolve_path(func)?;
        match self.kb.lookup(&resolved) {
            Some(ApiRole::DatasetFile) => {
                let detail = first_str(args).unwrap_or_else(|| "<unknown>".into());
                Some(VarInfo::Dataset(BTreeSet::from([DatasetOrigin::File(
                    detail,
                )])))
            }
            Some(ApiRole::DatasetSql) => {
                let sql = first_str(args).unwrap_or_default();
                let tables = tables_of_sql(&sql);
                Some(VarInfo::Dataset(BTreeSet::from([
                    DatasetOrigin::SqlTables(tables),
                ])))
            }
            Some(ApiRole::ModelCtor) => {
                let hyperparams: Vec<(String, String)> = kwargs
                    .iter()
                    .filter_map(|(k, v)| v.literal_repr().map(|r| (k.clone(), r)))
                    .collect();
                let idx = self.out.models.len();
                self.out.models.push(ModelInfo {
                    var: String::new(), // filled by assignment
                    class_path: resolved,
                    hyperparams,
                    training_datasets: vec![],
                    metrics: vec![],
                });
                Some(VarInfo::Model(idx))
            }
            Some(ApiRole::Featurizer) => Some(VarInfo::Featurizer(resolved)),
            Some(ApiRole::Splitter) => {
                let mut origins = BTreeSet::new();
                for a in args {
                    origins.extend(self.origins_of(a));
                }
                Some(VarInfo::Dataset(origins))
            }
            Some(ApiRole::Metric) => {
                self.record_metric(&resolved, args);
                None
            }
            None => None,
        }
    }

    /// Attach metric calls found anywhere inside an expression.
    fn scan_nested_metrics(&mut self, e: &PyExpr) {
        match e {
            PyExpr::Call { func, args, kwargs } => {
                if let Some(path) = self.resolve_path(func) {
                    if self.kb.lookup(&path) == Some(ApiRole::Metric) {
                        self.record_metric(&path, args);
                    }
                }
                for a in args {
                    self.scan_nested_metrics(a);
                }
                for (_, v) in kwargs {
                    self.scan_nested_metrics(v);
                }
            }
            PyExpr::Attr(b, _) | PyExpr::Subscript(b, _) => self.scan_nested_metrics(b),
            PyExpr::Bin(a, b) => {
                self.scan_nested_metrics(a);
                self.scan_nested_metrics(b);
            }
            PyExpr::List(items) | PyExpr::Tuple(items) => {
                for i in items {
                    self.scan_nested_metrics(i);
                }
            }
            _ => {}
        }
    }

    fn record_metric(&mut self, path: &str, args: &[PyExpr]) {
        let metric = path.rsplit('.').next().unwrap_or(path).to_string();
        // find the model behind any argument (prediction var or model var)
        let mut names = Vec::new();
        for a in args {
            a.referenced_names(&mut names);
        }
        for n in names {
            match self.vars.get(n) {
                Some(VarInfo::Prediction(idx)) | Some(VarInfo::Model(idx)) => {
                    let m = &mut self.out.models[*idx];
                    if !m.metrics.contains(&metric) {
                        m.metrics.push(metric);
                    }
                    return;
                }
                _ => {}
            }
        }
    }

    /// Resolve an attribute chain through import aliases.
    fn resolve_path(&self, func: &PyExpr) -> Option<String> {
        let path = func.dotted_path()?;
        let mut segments: Vec<&str> = path.split('.').collect();
        let first = segments.first()?;
        match self.vars.get(*first) {
            Some(VarInfo::Module(m)) => {
                let head = m.clone();
                segments.remove(0);
                if segments.is_empty() {
                    Some(head)
                } else {
                    Some(format!("{head}.{}", segments.join(".")))
                }
            }
            Some(VarInfo::ImportedName(full)) => {
                let head = full.clone();
                segments.remove(0);
                if segments.is_empty() {
                    Some(head)
                } else {
                    Some(format!("{head}.{}", segments.join(".")))
                }
            }
            _ => Some(path),
        }
    }

    /// Dataset origins reachable from an expression.
    fn origins_of(&self, e: &PyExpr) -> BTreeSet<DatasetOrigin> {
        let mut names = Vec::new();
        e.referenced_names(&mut names);
        let mut out = BTreeSet::new();
        for n in names {
            if let Some(VarInfo::Dataset(origins)) = self.vars.get(n) {
                out.extend(origins.iter().cloned());
            }
        }
        out
    }

    /// Record `df['col']` accesses as feature names.
    fn collect_features(&mut self, e: &PyExpr) {
        match e {
            PyExpr::Subscript(base, idx) => {
                self.collect_features(base);
                match &**idx {
                    PyExpr::Str(s) => {
                        self.features.insert(s.clone());
                    }
                    PyExpr::List(items) => {
                        for i in items {
                            if let PyExpr::Str(s) = i {
                                self.features.insert(s.clone());
                            }
                        }
                    }
                    other => self.collect_features(other),
                }
            }
            PyExpr::Attr(b, _) => self.collect_features(b),
            PyExpr::Call { func, args, kwargs } => {
                self.collect_features(func);
                for a in args {
                    self.collect_features(a);
                }
                for (_, v) in kwargs {
                    self.collect_features(v);
                }
            }
            PyExpr::Bin(a, b) => {
                self.collect_features(a);
                self.collect_features(b);
            }
            PyExpr::List(items) | PyExpr::Tuple(items) => {
                for i in items {
                    self.collect_features(i);
                }
            }
            _ => {}
        }
    }
}

fn first_str(args: &[PyExpr]) -> Option<String> {
    args.iter().find_map(|a| match a {
        PyExpr::Str(s) => Some(s.clone()),
        _ => None,
    })
}

/// Extract the tables a SQL string reads, using the engine's own parser.
fn tables_of_sql(sql: &str) -> Vec<String> {
    let mut prov = flock_provenance::ProvCatalog::new();
    match flock_provenance::capture_sql(&mut prov, sql, "pyprov") {
        Ok(report) => {
            let g = prov.graph();
            let mut names: Vec<String> = report
                .tables_read
                .iter()
                .map(|id| g.node(*id).name.clone())
                .collect();
            names.sort();
            names.dedup();
            names
        }
        Err(_) => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> ScriptProvenance {
        analyze(src, &KnowledgeBase::standard())
    }

    const TYPICAL: &str = r#"
import pandas as pd
from sklearn.model_selection import train_test_split
from sklearn.ensemble import RandomForestClassifier
from sklearn.metrics import accuracy_score

df = pd.read_csv('customers.csv')
X = df[['age', 'income', 'debt']]
y = df['churned']
X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2)
model = RandomForestClassifier(n_estimators=100, max_depth=6)
model.fit(X_train, y_train)
pred = model.predict(X_test)
acc = accuracy_score(y_test, pred)
"#;

    #[test]
    fn typical_sklearn_script_fully_analyzed() {
        let p = run(TYPICAL);
        assert_eq!(p.models.len(), 1);
        let m = &p.models[0];
        assert_eq!(m.class_path, "sklearn.ensemble.RandomForestClassifier");
        assert_eq!(
            m.hyperparams,
            vec![
                ("n_estimators".to_string(), "100".to_string()),
                ("max_depth".to_string(), "6".to_string())
            ]
        );
        assert_eq!(
            m.training_datasets,
            vec![DatasetOrigin::File("customers.csv".into())]
        );
        assert_eq!(m.metrics, vec!["accuracy_score".to_string()]);
        assert!(p.features.contains(&"age".to_string()));
        assert!(p.features.contains(&"churned".to_string()));
    }

    #[test]
    fn read_sql_connects_to_tables() {
        let p = run(r#"
import pandas as pd
from sklearn.linear_model import LogisticRegression
df = pd.read_sql('SELECT age, income FROM patients JOIN visits ON patients.id = visits.pid', conn)
m = LogisticRegression()
m.fit(df, df['label'])
"#);
        assert_eq!(p.models.len(), 1);
        let DatasetOrigin::SqlTables(tables) = &p.models[0].training_datasets[0] else {
            panic!("{:?}", p.models[0].training_datasets)
        };
        assert_eq!(tables, &vec!["patients".to_string(), "visits".to_string()]);
    }

    #[test]
    fn unknown_apis_reduce_coverage() {
        let p = run(r#"
import secretlib
model = secretlib.MagicModel(depth=3)
model.fit(data)
"#);
        assert_eq!(p.models.len(), 0, "unknown ctor is not identified");
    }

    #[test]
    fn featurizer_transform_propagates_provenance() {
        let p = run(r#"
import pandas as pd
from sklearn.preprocessing import StandardScaler
from sklearn.svm import SVC
raw = pd.read_csv('train.csv')
scaler = StandardScaler()
X = scaler.fit_transform(raw)
clf = SVC(C=2.0)
clf.fit(X, raw['y'])
"#);
        assert_eq!(p.models.len(), 1);
        assert_eq!(
            p.models[0].training_datasets,
            vec![DatasetOrigin::File("train.csv".into())]
        );
        assert_eq!(p.models[0].hyperparams[0].1, "2");
    }

    #[test]
    fn multiple_models_tracked_independently() {
        let p = run(r#"
import pandas as pd
from sklearn.linear_model import LogisticRegression
from sklearn.tree import DecisionTreeClassifier
a = pd.read_csv('a.csv')
b = pd.read_csv('b.csv')
m1 = LogisticRegression()
m1.fit(a, a['y'])
m2 = DecisionTreeClassifier()
m2.fit(b, b['y'])
"#);
        assert_eq!(p.models.len(), 2);
        assert_ne!(
            p.models[0].training_datasets,
            p.models[1].training_datasets
        );
    }

    #[test]
    fn derived_dataframes_keep_origin() {
        let p = run(r#"
import pandas as pd
from sklearn.linear_model import Ridge
df = pd.read_csv('data.csv')
clean = df.dropna()
sub = clean[['a', 'b']]
m = Ridge()
m.fit(sub, clean['t'])
"#);
        assert_eq!(
            p.models[0].training_datasets,
            vec![DatasetOrigin::File("data.csv".into())]
        );
    }

    #[test]
    fn statement_counting() {
        let p = run("x = 1\ndef foo():\n    return 2\n");
        assert!(p.statements >= 2);
        assert!(p.unrecognized_statements >= 1);
    }
}
