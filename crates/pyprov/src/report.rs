//! Coverage evaluation — the measurement behind the paper's table
//! "Kaggle: 95% models / 61% training datasets covered; Microsoft:
//! 100% / 100%".

use crate::analyze::ScriptProvenance;
use serde::Serialize;

/// What a script *actually* contains (known to the corpus generator).
#[derive(Debug, Clone, Default, Serialize)]
pub struct ScriptGroundTruth {
    /// Number of models trained in the script.
    pub models: usize,
    /// Origin descriptions of every training dataset
    /// (`file:train.csv` / `sql:orders,customers`).
    pub training_datasets: Vec<String>,
}

/// Aggregated coverage over a corpus.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CoverageReport {
    pub scripts: usize,
    /// Scripts where every model was identified.
    pub scripts_models_covered: usize,
    /// Scripts where every training dataset was identified.
    pub scripts_datasets_covered: usize,
}

impl CoverageReport {
    pub fn pct_models(&self) -> f64 {
        if self.scripts == 0 {
            return 0.0;
        }
        100.0 * self.scripts_models_covered as f64 / self.scripts as f64
    }

    pub fn pct_datasets(&self) -> f64 {
        if self.scripts == 0 {
            return 0.0;
        }
        100.0 * self.scripts_datasets_covered as f64 / self.scripts as f64
    }
}

/// Does the analysis of one script cover its ground truth?
pub fn script_covered(
    analysis: &ScriptProvenance,
    truth: &ScriptGroundTruth,
) -> (bool, bool) {
    let models_ok = analysis.models.len() >= truth.models;
    let found: Vec<String> = analysis
        .models
        .iter()
        .flat_map(|m| m.training_datasets.iter().map(|d| d.describe()))
        .collect();
    let datasets_ok = truth
        .training_datasets
        .iter()
        .all(|t| found.iter().any(|f| f == t));
    (models_ok, datasets_ok)
}

/// Evaluate a whole corpus.
pub fn evaluate(results: &[(ScriptProvenance, ScriptGroundTruth)]) -> CoverageReport {
    let mut report = CoverageReport {
        scripts: results.len(),
        ..Default::default()
    };
    for (analysis, truth) in results {
        let (m, d) = script_covered(analysis, truth);
        if m {
            report.scripts_models_covered += 1;
        }
        if d {
            report.scripts_datasets_covered += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::kb::KnowledgeBase;

    #[test]
    fn coverage_over_mixed_corpus() {
        let kb = KnowledgeBase::standard();
        let good = analyze(
            "import pandas as pd\nfrom sklearn.svm import SVC\n\
             df = pd.read_csv('a.csv')\nm = SVC()\nm.fit(df, df['y'])\n",
            &kb,
        );
        let bad = analyze(
            "import mysterylib\nm = mysterylib.Net()\nm.fit(data)\n",
            &kb,
        );
        let results = vec![
            (
                good,
                ScriptGroundTruth {
                    models: 1,
                    training_datasets: vec!["file:a.csv".into()],
                },
            ),
            (
                bad,
                ScriptGroundTruth {
                    models: 1,
                    training_datasets: vec!["file:b.csv".into()],
                },
            ),
        ];
        let report = evaluate(&results);
        assert_eq!(report.scripts, 2);
        assert_eq!(report.scripts_models_covered, 1);
        assert_eq!(report.scripts_datasets_covered, 1);
        assert!((report.pct_models() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_corpus_is_zero() {
        let r = evaluate(&[]);
        assert_eq!(r.pct_models(), 0.0);
    }
}
