//! The knowledge base of ML APIs (paper §4.2: "a knowledge base of ML
//! APIs that we maintain").
//!
//! The analyzer resolves call targets to dotted paths and asks the KB for
//! their role. Coverage of real scripts is bounded by this KB — which is
//! exactly the effect the paper's Kaggle-vs-Microsoft coverage table
//! measures.

use std::collections::HashMap;

/// Role a known API plays in a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiRole {
    /// Loads a dataset from a file (first positional arg = path).
    DatasetFile,
    /// Loads a dataset from a SQL query (first positional arg = SQL).
    DatasetSql,
    /// Constructs a model object.
    ModelCtor,
    /// Constructs a featurizer/transformer object.
    Featurizer,
    /// Splits datasets (provenance flows from args to all targets).
    Splitter,
    /// Computes an evaluation metric.
    Metric,
}

/// The knowledge base: dotted path (and bare-name) → role.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    by_path: HashMap<String, ApiRole>,
}

impl KnowledgeBase {
    /// The built-in KB covering the dominant packages the paper's GitHub
    /// analysis identified (numpy/pandas/sklearn plus the popular boosters).
    pub fn standard() -> Self {
        let mut kb = KnowledgeBase::default();
        // dataset loaders
        for f in [
            "pandas.read_csv",
            "pandas.read_parquet",
            "pandas.read_json",
            "pandas.read_excel",
            "pandas.read_pickle",
            "pandas.read_feather",
            "numpy.loadtxt",
            "numpy.load",
        ] {
            kb.insert(f, ApiRole::DatasetFile);
        }
        for f in ["pandas.read_sql", "pandas.read_sql_query", "pandas.read_sql_table"] {
            kb.insert(f, ApiRole::DatasetSql);
        }
        // model constructors
        for f in [
            "sklearn.linear_model.LogisticRegression",
            "sklearn.linear_model.LinearRegression",
            "sklearn.linear_model.Ridge",
            "sklearn.linear_model.Lasso",
            "sklearn.linear_model.SGDClassifier",
            "sklearn.tree.DecisionTreeClassifier",
            "sklearn.tree.DecisionTreeRegressor",
            "sklearn.ensemble.RandomForestClassifier",
            "sklearn.ensemble.RandomForestRegressor",
            "sklearn.ensemble.GradientBoostingClassifier",
            "sklearn.ensemble.GradientBoostingRegressor",
            "sklearn.ensemble.AdaBoostClassifier",
            "sklearn.svm.SVC",
            "sklearn.svm.SVR",
            "sklearn.neighbors.KNeighborsClassifier",
            "sklearn.naive_bayes.GaussianNB",
            "sklearn.cluster.KMeans",
            "sklearn.neural_network.MLPClassifier",
            "xgboost.XGBClassifier",
            "xgboost.XGBRegressor",
            "lightgbm.LGBMClassifier",
            "lightgbm.LGBMRegressor",
        ] {
            kb.insert(f, ApiRole::ModelCtor);
        }
        // featurizers
        for f in [
            "sklearn.preprocessing.StandardScaler",
            "sklearn.preprocessing.MinMaxScaler",
            "sklearn.preprocessing.OneHotEncoder",
            "sklearn.preprocessing.LabelEncoder",
            "sklearn.feature_extraction.text.TfidfVectorizer",
            "sklearn.feature_extraction.text.CountVectorizer",
            "sklearn.impute.SimpleImputer",
            "sklearn.decomposition.PCA",
        ] {
            kb.insert(f, ApiRole::Featurizer);
        }
        // splitters
        kb.insert("sklearn.model_selection.train_test_split", ApiRole::Splitter);
        // metrics
        for f in [
            "sklearn.metrics.accuracy_score",
            "sklearn.metrics.roc_auc_score",
            "sklearn.metrics.f1_score",
            "sklearn.metrics.precision_score",
            "sklearn.metrics.recall_score",
            "sklearn.metrics.mean_squared_error",
            "sklearn.metrics.mean_absolute_error",
            "sklearn.metrics.r2_score",
            "sklearn.metrics.log_loss",
        ] {
            kb.insert(f, ApiRole::Metric);
        }
        kb
    }

    /// Register an API. The bare (last-segment) name is indexed too, so
    /// `from sklearn.svm import SVC; SVC()` resolves.
    pub fn insert(&mut self, path: &str, role: ApiRole) {
        self.by_path.insert(path.to_string(), role);
        if let Some(last) = path.rsplit('.').next() {
            self.by_path.entry(last.to_string()).or_insert(role);
        }
    }

    /// Look up a dotted path, trying the full path then the last segment.
    pub fn lookup(&self, path: &str) -> Option<ApiRole> {
        if let Some(r) = self.by_path.get(path) {
            return Some(*r);
        }
        path.rsplit('.')
            .next()
            .and_then(|last| self.by_path.get(last))
            .copied()
    }

    pub fn len(&self) -> usize {
        self.by_path.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_path.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_kb_resolves_full_and_bare() {
        let kb = KnowledgeBase::standard();
        assert_eq!(
            kb.lookup("sklearn.ensemble.RandomForestClassifier"),
            Some(ApiRole::ModelCtor)
        );
        assert_eq!(kb.lookup("RandomForestClassifier"), Some(ApiRole::ModelCtor));
        assert_eq!(kb.lookup("pandas.read_sql"), Some(ApiRole::DatasetSql));
        // alias-resolved paths still end with the known function
        assert_eq!(kb.lookup("pd.read_csv"), Some(ApiRole::DatasetFile));
        assert_eq!(kb.lookup("made.up.Thing"), None);
    }

    #[test]
    fn custom_entries_extend() {
        let mut kb = KnowledgeBase::standard();
        assert_eq!(kb.lookup("catboost.CatBoostClassifier"), None);
        kb.insert("catboost.CatBoostClassifier", ApiRole::ModelCtor);
        assert_eq!(
            kb.lookup("catboost.CatBoostClassifier"),
            Some(ApiRole::ModelCtor)
        );
    }
}
