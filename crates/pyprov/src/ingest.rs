//! Fold script-analysis results into the shared provenance catalog — the
//! bridge that "connects the datasets used in the Python scripts to the
//! columns of one or more DBMS tables" (challenge C3).

use crate::analyze::{DatasetOrigin, ScriptProvenance};
use flock_provenance::{EdgeKind, NodeId, ProvCatalog};

/// Ingest one analyzed script. Returns the Script node.
pub fn ingest(prov: &mut ProvCatalog, script_name: &str, analysis: &ScriptProvenance) -> NodeId {
    let script = prov.script(script_name);
    for m in &analysis.models {
        let display = if m.var.is_empty() {
            m.class_path.clone()
        } else {
            format!("{script_name}:{}", m.var)
        };
        let model = prov.model(&display, None);
        prov.link(script, model, EdgeKind::Produces);
        for (k, v) in &m.hyperparams {
            let h = prov.hyperparameter(&display, k, v);
            prov.link(model, h, EdgeKind::HasParam);
        }
        for metric in &m.metrics {
            let node = prov.metric(&display, metric, "");
            prov.link(model, node, EdgeKind::Reports);
        }
        for origin in &m.training_datasets {
            match origin {
                DatasetOrigin::File(f) => {
                    let d = prov.dataset(f);
                    prov.link(model, d, EdgeKind::TrainedOn);
                    prov.link(script, d, EdgeKind::Uses);
                }
                DatasetOrigin::SqlTables(tables) => {
                    // connect straight to the DBMS tables the SQL module
                    // also records — cross-system lineage
                    for t in tables {
                        let tn = prov.table(t);
                        prov.link(model, tn, EdgeKind::TrainedOn);
                        prov.link(script, tn, EdgeKind::Uses);
                    }
                }
            }
        }
    }
    for d in &analysis.datasets {
        for origin in &d.origins {
            match origin {
                DatasetOrigin::File(f) => {
                    let node = prov.dataset(f);
                    prov.link(script, node, EdgeKind::Uses);
                }
                DatasetOrigin::SqlTables(tables) => {
                    for t in tables {
                        let node = prov.table(t);
                        prov.link(script, node, EdgeKind::Uses);
                    }
                }
            }
        }
    }
    script
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::kb::KnowledgeBase;
    use flock_provenance::{backward_lineage, capture_sql, NodeKind};

    #[test]
    fn script_models_connect_to_dbms_tables() {
        let mut prov = ProvCatalog::new();
        // SQL side: the ETL that fills `patients`
        capture_sql(
            &mut prov,
            "INSERT INTO patients SELECT * FROM raw_admissions",
            "etl",
        )
        .unwrap();
        // Python side: a script training on patients via read_sql
        let analysis = analyze(
            "import pandas as pd\nfrom sklearn.linear_model import LogisticRegression\n\
             df = pd.read_sql('SELECT age FROM patients', conn)\n\
             m = LogisticRegression()\nm.fit(df, df['y'])\n",
            &KnowledgeBase::standard(),
        );
        ingest(&mut prov, "readmit.py", &analysis);

        let g = prov.graph();
        let model = g
            .nodes_of_kind(NodeKind::Model)
            .into_iter()
            .find(|n| n.name.contains("readmit.py"))
            .unwrap();
        let lineage = backward_lineage(g, model.id);
        let names: Vec<&str> = lineage.iter().map(|id| g.node(*id).name.as_str()).collect();
        // cross-system: the model's lineage reaches the SQL-side raw table
        assert!(names.contains(&"patients"), "{names:?}");
        assert!(names.contains(&"raw_admissions"), "{names:?}");
    }

    #[test]
    fn file_datasets_become_dataset_nodes() {
        let mut prov = ProvCatalog::new();
        let analysis = analyze(
            "import pandas as pd\nfrom sklearn.svm import SVC\n\
             df = pd.read_csv('train.csv')\nm = SVC()\nm.fit(df, df['y'])\n",
            &KnowledgeBase::standard(),
        );
        ingest(&mut prov, "s.py", &analysis);
        assert!(prov
            .graph()
            .find(NodeKind::Dataset, "train.csv", None)
            .is_some());
    }
}
