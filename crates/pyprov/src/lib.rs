//! # flock-pyprov
//!
//! Python-script provenance for Flock (paper §4.2, "Provenance in
//! Python"): a tolerant parser for a Python subset, a **knowledge base of
//! ML APIs**, and a static analysis that identifies — per script — which
//! variables hold **models**, their **hyperparameters**, the **features**
//! touched, the **metrics** computed, and the **training datasets** used,
//! then connects `read_sql` loads to DBMS tables through the shared
//! provenance catalog (challenge C3).

pub mod analyze;
pub mod ast;
pub mod ingest;
pub mod kb;
pub mod lexer;
pub mod parser;
pub mod report;

pub use analyze::{analyze, DatasetOrigin, ModelInfo, ScriptProvenance};
pub use ingest::ingest;
pub use kb::{ApiRole, KnowledgeBase};
pub use parser::parse_script;
pub use report::{evaluate, script_covered, CoverageReport, ScriptGroundTruth};
