//! Tokenizer for the supported Python subset.
//!
//! The provenance analysis is flow-insensitive, so the lexer works on
//! *logical lines*: physical lines are joined while brackets are open or a
//! trailing backslash continues the line; comments are stripped; leading
//! indentation is recorded but otherwise ignored.

/// A token within one logical line.
#[derive(Debug, Clone, PartialEq)]
pub enum PyToken {
    Name(String),
    Number(f64),
    Str(String),
    /// `(`, `)`, `[`, `]`, `{`, `}`, `,`, `:`, `.`, `=`, `==`, `+`, `-`,
    /// `*`, `/`, `%`, `<`, `>`, `<=`, `>=`, `!=`, `->`, `**`, `@`, `;`
    Op(String),
    Eol,
}

/// One logical line of a script.
#[derive(Debug, Clone)]
pub struct LogicalLine {
    pub indent: usize,
    pub tokens: Vec<PyToken>,
}

/// Split a script into logical lines and tokenize each.
pub fn tokenize_script(source: &str) -> Vec<LogicalLine> {
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut buffer = String::new();
    let mut indent = 0usize;
    let mut depth: i32 = 0;
    let mut continuation = false;

    for raw in source.lines() {
        let line = strip_comment(raw);
        if buffer.is_empty() && !continuation {
            if line.trim().is_empty() {
                continue;
            }
            indent = line.len() - line.trim_start().len();
        }
        let trimmed = line.trim_end();
        let backslash = trimmed.ends_with('\\');
        let body = if backslash {
            &trimmed[..trimmed.len() - 1]
        } else {
            trimmed
        };
        buffer.push_str(body);
        buffer.push(' ');
        depth += bracket_delta(body);
        continuation = backslash;
        if depth <= 0 && !continuation {
            let text = std::mem::take(&mut buffer);
            if !text.trim().is_empty() {
                logical.push((indent, text));
            }
            depth = 0;
        }
    }
    if !buffer.trim().is_empty() {
        logical.push((indent, buffer));
    }

    logical
        .into_iter()
        .map(|(indent, text)| LogicalLine {
            indent,
            tokens: tokenize_line(&text),
        })
        .collect()
}

fn strip_comment(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_str: Option<char> = None;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match in_str {
            Some(q) => {
                out.push(c);
                if c == q {
                    in_str = None;
                } else if c == '\\' {
                    if let Some(n) = chars.next() {
                        out.push(n);
                    }
                }
            }
            None => match c {
                '#' => break,
                '\'' | '"' => {
                    in_str = Some(c);
                    out.push(c);
                }
                other => out.push(other),
            },
        }
    }
    out
}

fn bracket_delta(s: &str) -> i32 {
    let mut d = 0;
    let mut in_str: Option<char> = None;
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        match in_str {
            Some(q) => {
                if c == q {
                    in_str = None;
                } else if c == '\\' {
                    chars.next();
                }
            }
            None => match c {
                '\'' | '"' => in_str = Some(c),
                '(' | '[' | '{' => d += 1,
                ')' | ']' | '}' => d -= 1,
                _ => {}
            },
        }
    }
    d
}

fn tokenize_line(text: &str) -> Vec<PyToken> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // decode the current char properly (inputs may be any UTF-8)
        let c = text[i..].chars().next().expect("in-bounds char");
        match c {
            c if c.is_whitespace() => i += c.len_utf8(),
            // string prefixes: f"", r'', b"" etc.
            'f' | 'r' | 'b' | 'u' | 'F' | 'R' | 'B' | 'U'
                if matches!(bytes.get(i + 1), Some(b'\'') | Some(b'"')) =>
            {
                i += 1; // skip prefix, fall through on next loop to quote
            }
            '\'' | '"' => {
                let quote = c;
                // triple-quoted?
                let triple = bytes.get(i + 1) == Some(&(quote as u8))
                    && bytes.get(i + 2) == Some(&(quote as u8));
                let mut j = if triple { i + 3 } else { i + 1 };
                let mut s = String::new();
                loop {
                    if j >= bytes.len() {
                        break; // unterminated: tolerate
                    }
                    let cj = bytes[j] as char;
                    if cj == '\\' && !triple {
                        if j + 1 < bytes.len() {
                            s.push(bytes[j + 1] as char);
                        }
                        j += 2;
                        continue;
                    }
                    if cj == quote {
                        if !triple {
                            j += 1;
                            break;
                        }
                        if bytes.get(j + 1) == Some(&(quote as u8))
                            && bytes.get(j + 2) == Some(&(quote as u8))
                        {
                            j += 3;
                            break;
                        }
                    }
                    s.push(cj);
                    j += 1;
                }
                tokens.push(PyToken::Str(s));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'.'
                        || bytes[i] == b'_')
                {
                    i += 1;
                }
                let lit = text[start..i].replace('_', "");
                let value = lit.trim_end_matches(|c: char| c.is_alphabetic());
                tokens.push(PyToken::Number(value.parse().unwrap_or(f64::NAN)));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                for ch in text[i..].chars() {
                    if ch.is_alphanumeric() || ch == '_' {
                        i += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                tokens.push(PyToken::Name(text[start..i].to_string()));
            }
            _ => {
                // multi-char operators first
                let two: Option<&str> = text.get(i..i + 2);
                let op = match two {
                    Some(op2 @ ("==" | "!=" | "<=" | ">=" | "->" | "**" | "//" | "+="
                    | "-=" | "*=" | "/=")) => {
                        i += 2;
                        op2.to_string()
                    }
                    _ => {
                        i += c.len_utf8();
                        c.to_string()
                    }
                };
                tokens.push(PyToken::Op(op));
            }
        }
    }
    tokens.push(PyToken::Eol);
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_lines_join_brackets() {
        let src = "model = LogisticRegression(\n    C=1.0,\n    max_iter=100)\nx = 1";
        let lines = tokenize_script(src);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].tokens.len() > 8);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let src = "# header\n\nx = 1  # trailing\n";
        let lines = tokenize_script(src);
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0].tokens,
            vec![
                PyToken::Name("x".into()),
                PyToken::Op("=".into()),
                PyToken::Number(1.0),
                PyToken::Eol
            ]
        );
    }

    #[test]
    fn strings_with_hash_not_cut() {
        let src = "q = 'SELECT # weird'";
        let lines = tokenize_script(src);
        assert!(matches!(&lines[0].tokens[2], PyToken::Str(s) if s.contains('#')));
    }

    #[test]
    fn f_string_prefix_handled() {
        let src = "name = f'model_{i}'";
        let lines = tokenize_script(src);
        assert!(matches!(&lines[0].tokens[2], PyToken::Str(_)));
    }

    #[test]
    fn indent_recorded() {
        let src = "for i in range(3):\n    total = total + i";
        let lines = tokenize_script(src);
        assert_eq!(lines[0].indent, 0);
        assert_eq!(lines[1].indent, 4);
    }

    #[test]
    fn operators_tokenize() {
        let lines = tokenize_script("a >= b != c ** 2");
        let ops: Vec<&PyToken> = lines[0]
            .tokens
            .iter()
            .filter(|t| matches!(t, PyToken::Op(_)))
            .collect();
        assert_eq!(ops.len(), 3);
    }
}
