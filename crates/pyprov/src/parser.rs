//! Tolerant parser: logical lines → statements.

use crate::ast::{PyExpr, PyStmt};
use crate::lexer::{tokenize_script, LogicalLine, PyToken};

/// Positional and keyword arguments of a parsed call.
type CallArgs = (Vec<PyExpr>, Vec<(String, PyExpr)>);

/// Parse a script. Unrecognized lines become [`PyStmt::Other`] rather than
/// errors — real notebooks contain plenty of constructs the provenance
/// analysis does not need to understand.
pub fn parse_script(source: &str) -> Vec<PyStmt> {
    tokenize_script(source)
        .into_iter()
        .map(|line| parse_line(&line))
        .collect()
}

fn parse_line(line: &LogicalLine) -> PyStmt {
    let mut p = LineParser {
        tokens: &line.tokens,
        pos: 0,
    };
    p.statement().unwrap_or(PyStmt::Other)
}

struct LineParser<'a> {
    tokens: &'a [PyToken],
    pos: usize,
}

impl<'a> LineParser<'a> {
    fn peek(&self) -> &PyToken {
        self.tokens.get(self.pos).unwrap_or(&PyToken::Eol)
    }

    fn next(&mut self) -> PyToken {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), PyToken::Op(o) if o == op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_name(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), PyToken::Name(n) if n == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn name(&mut self) -> Option<String> {
        match self.next() {
            PyToken::Name(n) => Some(n),
            _ => None,
        }
    }

    fn statement(&mut self) -> Option<PyStmt> {
        if self.eat_name("import") {
            let mut module = self.name()?;
            while self.eat_op(".") {
                module.push('.');
                module.push_str(&self.name()?);
            }
            let alias = if self.eat_name("as") { self.name() } else { None };
            return Some(PyStmt::Import { module, alias });
        }
        if self.eat_name("from") {
            let mut module = self.name()?;
            while self.eat_op(".") {
                module.push('.');
                module.push_str(&self.name()?);
            }
            if !self.eat_name("import") {
                return None;
            }
            let mut names = Vec::new();
            loop {
                let n = self.name()?;
                let alias = if self.eat_name("as") { self.name() } else { None };
                names.push((n, alias));
                if !self.eat_op(",") {
                    break;
                }
            }
            return Some(PyStmt::FromImport { module, names });
        }
        if self.eat_name("for") {
            let target = self.name()?;
            // swallow tuple targets: `for a, b in ...`
            while self.eat_op(",") {
                self.name()?;
            }
            if !self.eat_name("in") {
                return None;
            }
            let iter = self.expr()?;
            return Some(PyStmt::For { target, iter });
        }
        for kw in ["def", "if", "elif", "else", "return", "while", "with", "class", "print",
            "try", "except", "finally", "pass", "break", "continue", "raise", "assert"]
        {
            if matches!(self.peek(), PyToken::Name(n) if n == kw) {
                return Some(PyStmt::Other);
            }
        }

        // assignment or expression
        let first = self.expr()?;
        if self.eat_op("=") {
            let mut target_exprs = vec![first];
            // tuple targets were parsed as Tuple by expr() when separated
            // by commas
            if let PyExpr::Tuple(items) = &target_exprs[0] {
                target_exprs = items.clone();
            }
            let value = self.expr()?;
            let targets = target_exprs
                .iter()
                .filter_map(|t| t.base_name().map(str::to_string))
                .collect();
            return Some(PyStmt::Assign {
                targets,
                value,
                target_exprs,
            });
        }
        if matches!(self.peek(), PyToken::Eol) || self.eat_op(":") {
            return Some(PyStmt::Expr(first));
        }
        Some(PyStmt::Expr(first))
    }

    /// Expression with comma-tuples at top level.
    fn expr(&mut self) -> Option<PyExpr> {
        let first = self.binary()?;
        if matches!(self.peek(), PyToken::Op(o) if o == ",") {
            let mut items = vec![first];
            while self.eat_op(",") {
                if matches!(self.peek(), PyToken::Eol)
                    || matches!(self.peek(), PyToken::Op(o) if o == "=" || o == ")" || o == "]")
                {
                    break; // trailing comma
                }
                items.push(self.binary()?);
            }
            return Some(PyExpr::Tuple(items));
        }
        Some(first)
    }

    /// Binary-ish expression: postfix operands joined by any operator.
    fn binary(&mut self) -> Option<PyExpr> {
        let mut left = self.postfix()?;
        loop {
            let op = match self.peek() {
                PyToken::Op(o)
                    if [
                        "+", "-", "*", "/", "%", "**", "//", "==", "!=", "<", ">", "<=",
                        ">=", "&", "|", "@",
                    ]
                    .contains(&o.as_str()) =>
                {
                    o.clone()
                }
                PyToken::Name(n) if n == "and" || n == "or" || n == "in" || n == "not" => {
                    n.clone()
                }
                _ => break,
            };
            let _ = op;
            self.next();
            // tolerate `not in`, `is not`
            if matches!(self.peek(), PyToken::Name(n) if n == "in" || n == "not") {
                self.next();
            }
            let right = self.postfix()?;
            left = PyExpr::Bin(Box::new(left), Box::new(right));
        }
        Some(left)
    }

    /// Postfix: primary with `.attr`, `(call)`, `[subscript]` suffixes.
    fn postfix(&mut self) -> Option<PyExpr> {
        let mut e = self.primary()?;
        loop {
            if self.eat_op(".") {
                let attr = self.name()?;
                e = PyExpr::Attr(Box::new(e), attr);
            } else if matches!(self.peek(), PyToken::Op(o) if o == "(") {
                self.next();
                let (args, kwargs) = self.call_args()?;
                e = PyExpr::Call {
                    func: Box::new(e),
                    args,
                    kwargs,
                };
            } else if matches!(self.peek(), PyToken::Op(o) if o == "[") {
                self.next();
                let idx = if matches!(self.peek(), PyToken::Op(o) if o == "]") {
                    PyExpr::Opaque
                } else {
                    self.expr()?
                };
                // tolerate slices `a[1:2]`
                while !matches!(self.peek(), PyToken::Op(o) if o == "]") {
                    if matches!(self.peek(), PyToken::Eol) {
                        return Some(PyExpr::Subscript(Box::new(e), Box::new(idx)));
                    }
                    self.next();
                }
                self.next(); // ]
                e = PyExpr::Subscript(Box::new(e), Box::new(idx));
            } else {
                break;
            }
        }
        Some(e)
    }

    fn call_args(&mut self) -> Option<CallArgs> {
        let mut args = Vec::new();
        let mut kwargs = Vec::new();
        if matches!(self.peek(), PyToken::Op(o) if o == ")") {
            self.next();
            return Some((args, kwargs));
        }
        loop {
            // kwarg?
            if let PyToken::Name(n) = self.peek().clone() {
                if matches!(self.tokens.get(self.pos + 1), Some(PyToken::Op(o)) if o == "=") {
                    self.next();
                    self.next();
                    let v = self.binary()?;
                    kwargs.push((n, v));
                    if self.eat_op(",") {
                        continue;
                    }
                    break;
                }
            }
            let a = self.binary()?;
            args.push(a);
            if self.eat_op(",") {
                continue;
            }
            break;
        }
        // swallow to the closing paren
        while !matches!(self.peek(), PyToken::Op(o) if o == ")") {
            if matches!(self.peek(), PyToken::Eol) {
                return Some((args, kwargs));
            }
            self.next();
        }
        self.next();
        Some((args, kwargs))
    }

    fn primary(&mut self) -> Option<PyExpr> {
        match self.next() {
            PyToken::Name(n) => Some(PyExpr::Name(n)),
            PyToken::Number(v) => Some(PyExpr::Num(v)),
            PyToken::Str(s) => Some(PyExpr::Str(s)),
            PyToken::Op(o) if o == "(" => {
                if matches!(self.peek(), PyToken::Op(c) if c == ")") {
                    self.next();
                    return Some(PyExpr::Tuple(vec![]));
                }
                let inner = self.expr()?;
                while !matches!(self.peek(), PyToken::Op(c) if c == ")") {
                    if matches!(self.peek(), PyToken::Eol) {
                        return Some(inner);
                    }
                    self.next();
                }
                self.next();
                Some(inner)
            }
            PyToken::Op(o) if o == "[" => {
                let mut items = Vec::new();
                if matches!(self.peek(), PyToken::Op(c) if c == "]") {
                    self.next();
                    return Some(PyExpr::List(items));
                }
                loop {
                    items.push(self.binary()?);
                    if self.eat_op(",") {
                        continue;
                    }
                    break;
                }
                while !matches!(self.peek(), PyToken::Op(c) if c == "]") {
                    if matches!(self.peek(), PyToken::Eol) {
                        return Some(PyExpr::List(items));
                    }
                    self.next();
                }
                self.next();
                Some(PyExpr::List(items))
            }
            PyToken::Op(o) if o == "{" => {
                // dicts/sets: swallow to matching close, provenance-opaque
                let mut depth = 1;
                while depth > 0 {
                    match self.next() {
                        PyToken::Op(c) if c == "{" => depth += 1,
                        PyToken::Op(c) if c == "}" => depth -= 1,
                        PyToken::Eol => break,
                        _ => {}
                    }
                }
                Some(PyExpr::Opaque)
            }
            PyToken::Op(o) if o == "-" || o == "+" || o == "*" => self.primary(),
            PyToken::Op(_) | PyToken::Eol => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imports_parse() {
        let stmts = parse_script("import pandas as pd\nfrom sklearn.linear_model import LogisticRegression, Ridge as R");
        assert_eq!(
            stmts[0],
            PyStmt::Import {
                module: "pandas".into(),
                alias: Some("pd".into())
            }
        );
        let PyStmt::FromImport { module, names } = &stmts[1] else {
            panic!("{stmts:?}")
        };
        assert_eq!(module, "sklearn.linear_model");
        assert_eq!(names.len(), 2);
        assert_eq!(names[1], ("Ridge".into(), Some("R".into())));
    }

    #[test]
    fn assignment_with_call_parses() {
        let stmts = parse_script("df = pd.read_csv('train.csv', sep=',')");
        let PyStmt::Assign { targets, value, .. } = &stmts[0] else {
            panic!("{stmts:?}")
        };
        assert_eq!(targets, &vec!["df".to_string()]);
        let PyExpr::Call { func, args, kwargs } = value else {
            panic!()
        };
        assert_eq!(func.dotted_path().unwrap(), "pd.read_csv");
        assert_eq!(args.len(), 1);
        assert_eq!(kwargs.len(), 1);
    }

    #[test]
    fn tuple_unpacking_parses() {
        let stmts =
            parse_script("X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2)");
        let PyStmt::Assign { targets, .. } = &stmts[0] else {
            panic!("{stmts:?}")
        };
        assert_eq!(targets.len(), 4);
    }

    #[test]
    fn method_call_statement_parses() {
        let stmts = parse_script("model.fit(X_train, y_train)");
        let PyStmt::Expr(PyExpr::Call { func, args, .. }) = &stmts[0] else {
            panic!("{stmts:?}")
        };
        assert_eq!(func.dotted_path().unwrap(), "model.fit");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn subscript_and_list_parse() {
        let stmts = parse_script("X = df[['age', 'income']]\ny = df['label']");
        let PyStmt::Assign { value, .. } = &stmts[0] else {
            panic!()
        };
        assert!(matches!(value, PyExpr::Subscript(..)));
        let PyStmt::Assign { value, .. } = &stmts[1] else {
            panic!()
        };
        let PyExpr::Subscript(base, idx) = value else {
            panic!()
        };
        assert_eq!(base.dotted_path().unwrap(), "df");
        assert_eq!(**idx, PyExpr::Str("label".into()));
    }

    #[test]
    fn unknown_constructs_become_other() {
        let stmts = parse_script("def foo(x):\n    return x + 1\nif a > b:\n    pass");
        assert!(stmts.iter().any(|s| matches!(s, PyStmt::Other)));
    }

    #[test]
    fn column_target_assignment() {
        let stmts = parse_script("df['new_col'] = df['a'] + df['b']");
        let PyStmt::Assign {
            targets,
            target_exprs,
            ..
        } = &stmts[0]
        else {
            panic!("{stmts:?}")
        };
        assert_eq!(targets, &vec!["df".to_string()]);
        assert!(matches!(&target_exprs[0], PyExpr::Subscript(..)));
    }

    #[test]
    fn chained_methods_parse() {
        let stmts = parse_script("clean = df.dropna().reset_index(drop=True)");
        let PyStmt::Assign { value, .. } = &stmts[0] else {
            panic!()
        };
        assert_eq!(value.base_name(), Some("df"));
    }
}
