//! AST for the analyzed Python subset.

/// An expression. The parser is tolerant: anything it cannot shape
/// precisely becomes [`PyExpr::Opaque`], which the analysis treats as a
/// value with no provenance.
#[derive(Debug, Clone, PartialEq)]
pub enum PyExpr {
    Name(String),
    /// `base.attr`
    Attr(Box<PyExpr>, String),
    Call {
        func: Box<PyExpr>,
        args: Vec<PyExpr>,
        kwargs: Vec<(String, PyExpr)>,
    },
    /// `base[index]`
    Subscript(Box<PyExpr>, Box<PyExpr>),
    Str(String),
    Num(f64),
    List(Vec<PyExpr>),
    Tuple(Vec<PyExpr>),
    /// Binary operation — operands kept, operator dropped (provenance
    /// flows through both sides regardless of the operator).
    Bin(Box<PyExpr>, Box<PyExpr>),
    Opaque,
}

impl PyExpr {
    /// The dotted path of a name/attribute chain (`pd.read_csv` →
    /// `Some("pd.read_csv")`).
    pub fn dotted_path(&self) -> Option<String> {
        match self {
            PyExpr::Name(n) => Some(n.clone()),
            PyExpr::Attr(base, attr) => Some(format!("{}.{attr}", base.dotted_path()?)),
            _ => None,
        }
    }

    /// The leftmost name of an expression (`df.col[0]` → `df`).
    pub fn base_name(&self) -> Option<&str> {
        match self {
            PyExpr::Name(n) => Some(n),
            PyExpr::Attr(base, _) | PyExpr::Subscript(base, _) => base.base_name(),
            PyExpr::Call { func, .. } => func.base_name(),
            _ => None,
        }
    }

    /// Collect every variable name referenced anywhere in the expression.
    pub fn referenced_names<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            PyExpr::Name(n) => out.push(n),
            PyExpr::Attr(base, _) => base.referenced_names(out),
            PyExpr::Call { func, args, kwargs } => {
                func.referenced_names(out);
                for a in args {
                    a.referenced_names(out);
                }
                for (_, v) in kwargs {
                    v.referenced_names(out);
                }
            }
            PyExpr::Subscript(base, idx) => {
                base.referenced_names(out);
                idx.referenced_names(out);
            }
            PyExpr::List(items) | PyExpr::Tuple(items) => {
                for i in items {
                    i.referenced_names(out);
                }
            }
            PyExpr::Bin(a, b) => {
                a.referenced_names(out);
                b.referenced_names(out);
            }
            PyExpr::Str(_) | PyExpr::Num(_) | PyExpr::Opaque => {}
        }
    }

    /// Render a literal value for hyperparameter recording.
    pub fn literal_repr(&self) -> Option<String> {
        match self {
            PyExpr::Str(s) => Some(format!("'{s}'")),
            PyExpr::Num(n) => Some(if n.fract() == 0.0 && n.is_finite() {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }),
            PyExpr::Name(n) if n == "True" || n == "False" || n == "None" => Some(n.clone()),
            _ => None,
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum PyStmt {
    /// `import module [as alias]`
    Import {
        module: String,
        alias: Option<String>,
    },
    /// `from module import name [as alias], ...`
    FromImport {
        module: String,
        names: Vec<(String, Option<String>)>,
    },
    /// `t1, t2 = expr` (single targets are one-element vectors). Targets
    /// that are not simple names (e.g. `df['col']`) are recorded as their
    /// base name.
    Assign {
        targets: Vec<String>,
        value: PyExpr,
        /// Raw target expressions, for column-assignment detection.
        target_exprs: Vec<PyExpr>,
    },
    /// Bare expression (typically a call like `model.fit(X, y)`).
    Expr(PyExpr),
    /// `for target in iter:` — analyzed like an assignment of Opaque.
    For { target: String, iter: PyExpr },
    /// Anything else (def/if/return/...) — opaque but kept for counting.
    Other,
}
