//! Property-based tests: the Python parser and analyzer are total — any
//! input produces a result, never a panic.

use flock_pyprov::{analyze, parse_script, KnowledgeBase};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary text never panics the parser or analyzer.
    #[test]
    fn analyzer_is_total(src in "\\PC{0,300}") {
        let kb = KnowledgeBase::standard();
        let _ = parse_script(&src);
        let _ = analyze(&src, &kb);
    }

    /// Python-shaped garbage exercises deeper paths; still no panics and
    /// statement counting stays consistent.
    #[test]
    fn python_shaped_garbage(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("import pandas as pd".to_string()),
                Just("from sklearn.svm import SVC".to_string()),
                Just("df = pd.read_csv('x.csv')".to_string()),
                Just("m = SVC(C=1.0)".to_string()),
                Just("m.fit(df, df['y'])".to_string()),
                Just("for i in range(10):".to_string()),
                Just("    x = x + i".to_string()),
                Just("def f(a, b):".to_string()),
                Just("    return a".to_string()),
                Just("x = [1, 2, (3), {'a': 1}]".to_string()),
                Just("weird ((( unbalanced".to_string()),
                Just("s = f'{x}'".to_string()),
                Just("a, b = b, a".to_string()),
                "[a-z]{1,8} = [a-z]{1,8}\\.[a-z]{1,8}\\([0-9]{0,3}\\)",
            ],
            0..25,
        )
    ) {
        let src = lines.join("\n");
        let kb = KnowledgeBase::standard();
        let stmts = parse_script(&src);
        let analysis = analyze(&src, &kb);
        prop_assert_eq!(stmts.len(), analysis.statements);
        prop_assert!(analysis.unrecognized_statements <= analysis.statements);
    }

    /// Every model the analyzer reports has a resolvable class path and
    /// deduplicated metrics.
    #[test]
    fn reported_models_are_well_formed(
        n_models in 1usize..4,
        seed in any::<u64>(),
    ) {
        use flock_rng::rngs::StdRng;
        use flock_rng::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let ctors = ["LogisticRegression", "SVC", "RandomForestClassifier"];
        let mut src = String::from(
            "import pandas as pd\nfrom sklearn.linear_model import LogisticRegression\n\
             from sklearn.svm import SVC\nfrom sklearn.ensemble import RandomForestClassifier\n\
             df = pd.read_csv('d.csv')\n",
        );
        for i in 0..n_models {
            let ctor = ctors[rng.gen_range(0..ctors.len())];
            src.push_str(&format!("m{i} = {ctor}()\nm{i}.fit(df, df['y'])\n"));
        }
        let analysis = analyze(&src, &KnowledgeBase::standard());
        prop_assert_eq!(analysis.models.len(), n_models);
        for m in &analysis.models {
            prop_assert!(m.class_path.starts_with("sklearn."), "{}", m.class_path);
            prop_assert!(!m.training_datasets.is_empty());
            let mut metrics = m.metrics.clone();
            metrics.dedup();
            prop_assert_eq!(&metrics, &m.metrics);
        }
    }
}
