//! The knowledge base is the coverage lever (paper: "a knowledge base of
//! ML APIs that we maintain"): extending it with an organization's
//! internal APIs recovers the coverage the public corpus loses.

use flock_pyprov::{analyze, evaluate, ApiRole, KnowledgeBase, ScriptGroundTruth};

fn corpus_results(kb: &KnowledgeBase) -> Vec<(flock_pyprov::ScriptProvenance, ScriptGroundTruth)> {
    flock_corpus::kaggle_corpus(7)
        .iter()
        .map(|s| {
            (
                analyze(&s.source, kb),
                ScriptGroundTruth {
                    models: s.truth.models,
                    training_datasets: s.truth.training_datasets.clone(),
                },
            )
        })
        .collect()
}

#[test]
fn extending_the_kb_recovers_coverage() {
    // baseline: the standard KB misses exotic ctors and the custom loader
    let standard = KnowledgeBase::standard();
    let before = evaluate(&corpus_results(&standard));
    assert!(before.pct_models() < 100.0);
    assert!(before.pct_datasets() < 70.0);

    // an organization registers its internal APIs
    let mut extended = KnowledgeBase::standard();
    extended.insert("fancynets.HyperNet", ApiRole::ModelCtor);
    extended.insert("autodeep.AutoDeepClassifier", ApiRole::ModelCtor);
    extended.insert("proprietaryml.BoostedMixture", ApiRole::ModelCtor);
    extended.insert("mytools.data.load_dataset", ApiRole::DatasetFile);

    let after = evaluate(&corpus_results(&extended));
    assert_eq!(after.pct_models(), 100.0, "all models recovered");
    assert_eq!(after.pct_datasets(), 100.0, "all dataset origins recovered");
}
