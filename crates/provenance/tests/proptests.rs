//! Property-based tests of provenance invariants.

use flock_provenance::{
    backward_lineage, capture_sql, compress, forward_impact, query_template, EdgeKind, NodeKind,
    ProvCatalog,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Capturing any string never panics (errors are fine).
    #[test]
    fn capture_never_panics(sql in "\\PC{0,120}") {
        let mut cat = ProvCatalog::new();
        let _ = capture_sql(&mut cat, &sql, "fuzz");
    }

    /// Query templating is idempotent and literal-free.
    #[test]
    fn templating_idempotent(
        id in 0i64..100_000,
        name in "[a-z]{1,10}",
    ) {
        let sql = format!("SELECT * FROM t WHERE id = {id} AND name = '{name}' AND age > 3.5");
        let t1 = query_template(&sql);
        let t2 = query_template(&t1);
        prop_assert_eq!(&t1, &t2);
        prop_assert!(!t1.contains(&id.to_string()) || id < 10, "{t1}");
        prop_assert!(!t1.contains(&format!("'{name}'")), "{t1}");
    }

    /// Compression never grows the graph and preserves model→table
    /// reachability.
    #[test]
    fn compression_shrinks_and_preserves_reachability(
        n_versions in 1u64..30,
        n_queries in 1usize..30,
    ) {
        let mut cat = ProvCatalog::new();
        let raw = cat.table("raw");
        for v in 1..=n_versions {
            let q = cat.query(&format!("INSERT INTO clean SELECT {v} FROM raw"), "etl");
            cat.link(q, raw, EdgeKind::ReadFrom);
            let tv = cat.table_version("clean", v);
            cat.link(q, tv, EdgeKind::Wrote);
        }
        for i in 0..n_queries {
            let q = cat.query(&format!("SELECT a FROM clean WHERE x = {i}"), "analyst");
            let t = cat.table("clean");
            cat.link(q, t, EdgeKind::ReadFrom);
        }
        let m = cat.model("m", None);
        let latest = cat.table_version("clean", n_versions);
        cat.link(m, latest, EdgeKind::TrainedOn);

        let graph = cat.graph();
        let (small, stats) = compress(graph);
        prop_assert!(small.size() <= graph.size());
        prop_assert!(stats.ratio() >= 1.0);

        let m2 = small.find(NodeKind::Model, "m", None).unwrap();
        let raw2 = small.find(NodeKind::Table, "raw", None).unwrap();
        let lineage = backward_lineage(&small, m2);
        prop_assert!(lineage.contains(&raw2), "lineage broken by compression");
    }

    /// Backward and forward traversal are inverses: if B is upstream of A,
    /// then A is downstream of B.
    #[test]
    fn lineage_direction_duality(n in 2u64..12) {
        let mut cat = ProvCatalog::new();
        // chain: table -> query -> version -> query -> version -> ...
        let t = cat.table("src");
        let mut last = t;
        for v in 1..=n {
            let q = cat.query(&format!("Q{v}"), "u");
            cat.link(q, t, EdgeKind::ReadFrom);
            cat.link(q, last, EdgeKind::ReadFrom);
            let tv = cat.table_version("chain", v);
            cat.link(q, tv, EdgeKind::Wrote);
            last = tv;
        }
        let g = cat.graph();
        let up = backward_lineage(g, last);
        for node in up {
            let down = forward_impact(g, node);
            prop_assert!(down.contains(&last), "duality broken for {:?}", g.node(node));
        }
    }

    /// Eager capture of a well-formed query records at least the table.
    #[test]
    fn capture_records_from_tables(
        table in "t_[a-z]{1,10}",
        col in "c_[a-z]{1,10}",
    ) {
        let mut cat = ProvCatalog::new();
        let sql = format!("SELECT {col} FROM {table} WHERE {col} > 0");
        let report = capture_sql(&mut cat, &sql, "u").unwrap();
        prop_assert_eq!(report.tables_read.len(), 1);
        prop_assert!(cat.graph().find(NodeKind::Table, &table, None).is_some());
    }
}
