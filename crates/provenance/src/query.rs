//! Lineage and impact-analysis queries over the provenance graph.
//!
//! Backward lineage answers "how was this model derived, and from which
//! snapshot of data?"; forward impact answers "if we change this column,
//! which models may need to be invalidated and retrained?" (challenge C3).

use crate::graph::{EdgeKind, NodeId, ProvenanceGraph};
use std::collections::{HashSet, VecDeque};

/// Whether traversing an edge from→to moves toward *sources* (backward
/// lineage) when walked forward, or toward *derivatives* when walked in
/// reverse.
pub(crate) fn points_at_dependency(kind: EdgeKind) -> bool {
    matches!(
        kind,
        EdgeKind::ReadFrom
            | EdgeKind::VersionOf
            | EdgeKind::PartOf
            | EdgeKind::TrainedOn
            | EdgeKind::DerivedFrom
            | EdgeKind::Uses
            | EdgeKind::HasParam
    )
}

/// Edge kinds where the *producer* is upstream of the produced object
/// (edge direction producer → product).
pub(crate) fn points_at_product(kind: EdgeKind) -> bool {
    matches!(kind, EdgeKind::Wrote | EdgeKind::Produces)
}

/// All nodes upstream of `start` (its full derivation), excluding `start`.
pub fn backward_lineage(graph: &ProvenanceGraph, start: NodeId) -> Vec<NodeId> {
    traverse(graph, start, true)
}

/// All nodes downstream of `start` (everything derived from it).
pub fn forward_impact(graph: &ProvenanceGraph, start: NodeId) -> Vec<NodeId> {
    traverse(graph, start, false)
}

fn traverse(graph: &ProvenanceGraph, start: NodeId, backward: bool) -> Vec<NodeId> {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    seen.insert(start);
    queue.push_back(start);
    let mut out = Vec::new();
    while let Some(n) = queue.pop_front() {
        // outgoing dependency edges move upstream
        for e in graph.outgoing(n) {
            let follow = if backward {
                points_at_dependency(e.kind)
            } else {
                points_at_product(e.kind)
            };
            if follow && seen.insert(e.to) {
                out.push(e.to);
                queue.push_back(e.to);
            }
        }
        // incoming producer edges also move upstream
        for e in graph.incoming(n) {
            let follow = if backward {
                points_at_product(e.kind)
            } else {
                points_at_dependency(e.kind)
            };
            if follow && seen.insert(e.from) {
                out.push(e.from);
                queue.push_back(e.from);
            }
        }
    }
    out
}

/// Render a node's backward lineage as an indented tree (for audit
/// reports and CLI output). Shared nodes print once; repeats are marked.
pub fn lineage_report(graph: &ProvenanceGraph, start: NodeId) -> String {
    let mut out = String::new();
    let mut seen: HashSet<NodeId> = HashSet::new();
    render(graph, start, 0, &mut seen, &mut out);
    return out;

    fn label(graph: &ProvenanceGraph, id: NodeId) -> String {
        let n = graph.node(id);
        let version = n.version.map(|v| format!(" v{v}")).unwrap_or_default();
        format!("{:?} {}{}", n.kind, n.name, version)
    }

    fn render(
        graph: &ProvenanceGraph,
        id: NodeId,
        depth: usize,
        seen: &mut HashSet<NodeId>,
        out: &mut String,
    ) {
        let pad = "  ".repeat(depth);
        if !seen.insert(id) {
            out.push_str(&format!("{pad}{} (…)\n", label(graph, id)));
            return;
        }
        out.push_str(&format!("{pad}{}\n", label(graph, id)));
        if depth > 12 {
            return; // report depth guard
        }
        // one step upstream (same direction rules as backward_lineage)
        let mut next: Vec<NodeId> = Vec::new();
        for e in graph.outgoing(id) {
            if super::query::points_at_dependency(e.kind) {
                next.push(e.to);
            }
        }
        for e in graph.incoming(id) {
            if super::query::points_at_product(e.kind) {
                next.push(e.from);
            }
        }
        next.sort();
        next.dedup();
        for child in next {
            render(graph, child, depth + 1, seen, out);
        }
    }
}

/// Models (Model / ModelVersion nodes) that transitively depend on `node`.
pub fn dependent_models(graph: &ProvenanceGraph, node: NodeId) -> Vec<NodeId> {
    use crate::graph::NodeKind;
    forward_impact(graph, node)
        .into_iter()
        .filter(|id| {
            matches!(
                graph.node(*id).kind,
                NodeKind::Model | NodeKind::ModelVersion
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ProvCatalog;
    use crate::graph::NodeKind;

    /// Build: raw_table <-Read- etl_query -Wrote-> clean.v2 <- model trains
    fn scenario() -> (ProvCatalog, NodeId, NodeId, NodeId) {
        let mut cat = ProvCatalog::new();
        let raw = cat.table("raw_events");
        let q = cat.query("INSERT INTO clean SELECT * FROM raw_events", "etl");
        cat.link(q, raw, EdgeKind::ReadFrom);
        let v2 = cat.table_version("clean", 2);
        cat.link(q, v2, EdgeKind::Wrote);
        let m = cat.model("churn", None);
        cat.link(m, v2, EdgeKind::TrainedOn);
        (cat, raw, v2, m)
    }

    #[test]
    fn backward_lineage_of_model_reaches_raw_data() {
        let (cat, raw, v2, m) = scenario();
        let g = cat.graph();
        let lineage = backward_lineage(g, m);
        assert!(lineage.contains(&v2), "training snapshot in lineage");
        assert!(lineage.contains(&raw), "raw source in lineage");
        // and the clean table itself via VersionOf
        let clean = g.find(NodeKind::Table, "clean", None).unwrap();
        assert!(lineage.contains(&clean));
    }

    #[test]
    fn forward_impact_of_raw_data_reaches_model() {
        let (cat, raw, _, m) = scenario();
        let impact = forward_impact(cat.graph(), raw);
        assert!(impact.contains(&m), "model impacted by raw data change");
        assert_eq!(dependent_models(cat.graph(), raw), vec![m]);
    }

    #[test]
    fn column_change_invalidates_models_trained_on_table() {
        let mut cat = ProvCatalog::new();
        let col = cat.column("customers", "income");
        let q = cat.query("SELECT income FROM customers", "ds");
        cat.link(q, col, EdgeKind::ReadFrom);
        let m = cat.model("risk", None);
        cat.link(q, m, EdgeKind::Produces);
        let impacted = dependent_models(cat.graph(), col);
        assert_eq!(impacted, vec![m]);
    }

    #[test]
    fn lineage_report_renders_tree() {
        let (cat, _, _, m) = scenario();
        let report = lineage_report(cat.graph(), m);
        assert!(report.starts_with("Model churn"), "{report}");
        assert!(report.contains("TableVersion clean v2"));
        assert!(report.contains("  ")); // indentation present
        assert!(report.contains("raw_events"));
    }

    #[test]
    fn lineage_excludes_unrelated_nodes() {
        let (mut cat, _, _, m) = scenario();
        let other = cat.table("unrelated");
        let lineage = backward_lineage(cat.graph(), m);
        assert!(!lineage.contains(&other));
    }
}
