//! The provenance catalog — our Apache Atlas stand-in.
//!
//! "The Catalog stores all the provenance information and acts as the
//! bridge between the SQL and the Python Provenance modules" (§4.2). Both
//! capture modules write into one shared [`ProvenanceGraph`] through this
//! API, which is what lets a Python script's `read_sql` connect to the
//! column-level lineage captured on the database side (challenge C3).

use crate::graph::{EdgeKind, NodeId, NodeKind, ProvenanceGraph};

/// Shared provenance store.
#[derive(Debug, Default)]
pub struct ProvCatalog {
    graph: ProvenanceGraph,
    next_query_id: u64,
    next_script_id: u64,
}

impl ProvCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn graph(&self) -> &ProvenanceGraph {
        &self.graph
    }

    pub fn graph_mut(&mut self) -> &mut ProvenanceGraph {
        &mut self.graph
    }

    pub fn into_graph(self) -> ProvenanceGraph {
        self.graph
    }

    // ---- entity helpers shared by capture modules ----

    pub fn table(&mut self, name: &str) -> NodeId {
        self.graph.upsert(NodeKind::Table, name, None)
    }

    pub fn column(&mut self, table: &str, column: &str) -> NodeId {
        let t = self.table(table);
        let c = self
            .graph
            .upsert(NodeKind::Column, &format!("{table}.{column}"), None);
        self.graph.link(c, t, EdgeKind::PartOf);
        c
    }

    /// A specific snapshot of a table ("an INSERT to a table results in a
    /// new version of the table in the provenance data model"). Versions
    /// chain temporally: v derives from v-1 when that snapshot is known.
    pub fn table_version(&mut self, table: &str, version: u64) -> NodeId {
        let t = self.table(table);
        let v = self
            .graph
            .upsert(NodeKind::TableVersion, table, Some(version));
        self.graph.link(v, t, EdgeKind::VersionOf);
        if version > 1 {
            if let Some(prev) = self
                .graph
                .find(NodeKind::TableVersion, table, Some(version - 1))
            {
                self.graph.link(v, prev, EdgeKind::DerivedFrom);
            }
        }
        v
    }

    pub fn user(&mut self, name: &str) -> NodeId {
        self.graph.upsert(NodeKind::User, name, None)
    }

    /// Register a new query execution (never deduplicated).
    pub fn query(&mut self, sql: &str, user: &str) -> NodeId {
        self.next_query_id += 1;
        let q = self
            .graph
            .create(NodeKind::Query, &format!("query#{}", self.next_query_id));
        self.graph.set_property(q, "sql", sql);
        let u = self.user(user);
        self.graph.link(q, u, EdgeKind::IssuedBy);
        q
    }

    /// Register a new script analysis (never deduplicated).
    pub fn script(&mut self, name: &str) -> NodeId {
        self.next_script_id += 1;
        let s = self
            .graph
            .create(NodeKind::Script, &format!("script#{}:{name}", self.next_script_id));
        s
    }

    pub fn model(&mut self, name: &str, version: Option<u64>) -> NodeId {
        match version {
            Some(v) => self.graph.upsert(NodeKind::ModelVersion, name, Some(v)),
            None => self.graph.upsert(NodeKind::Model, name, None),
        }
    }

    pub fn hyperparameter(&mut self, owner: &str, name: &str, value: &str) -> NodeId {
        let h = self
            .graph
            .upsert(NodeKind::Hyperparameter, &format!("{owner}.{name}"), None);
        self.graph.set_property(h, "value", value);
        h
    }

    pub fn metric(&mut self, owner: &str, name: &str, value: &str) -> NodeId {
        let m = self
            .graph
            .upsert(NodeKind::Metric, &format!("{owner}.{name}"), None);
        self.graph.set_property(m, "value", value);
        m
    }

    pub fn dataset(&mut self, name: &str) -> NodeId {
        self.graph.upsert(NodeKind::Dataset, name, None)
    }

    pub fn link(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        self.graph.link(from, to, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_attach_to_tables() {
        let mut c = ProvCatalog::new();
        let col = c.column("orders", "price");
        let t = c.table("orders");
        assert!(c
            .graph()
            .outgoing(col)
            .any(|e| e.to == t && e.kind == EdgeKind::PartOf));
    }

    #[test]
    fn versions_chain_to_table() {
        let mut c = ProvCatalog::new();
        let v1 = c.table_version("t", 1);
        let v2 = c.table_version("t", 2);
        assert_ne!(v1, v2);
        let t = c.table("t");
        assert_eq!(c.graph().incoming(t).count(), 2);
    }

    #[test]
    fn queries_are_distinct_and_attributed() {
        let mut c = ProvCatalog::new();
        let q1 = c.query("SELECT 1", "alice");
        let q2 = c.query("SELECT 1", "alice");
        assert_ne!(q1, q2);
        assert_eq!(c.graph().property(q1, "sql"), Some("SELECT 1"));
        let u = c.user("alice");
        assert_eq!(c.graph().incoming(u).count(), 2);
    }

    #[test]
    fn hyperparams_and_metrics_store_values() {
        let mut c = ProvCatalog::new();
        let h = c.hyperparameter("m1", "max_depth", "6");
        assert_eq!(c.graph().property(h, "value"), Some("6"));
        let m = c.metric("m1", "auc", "0.93");
        assert_eq!(c.graph().node(m).name, "m1.auc");
    }
}
