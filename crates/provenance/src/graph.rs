//! The provenance graph: polymorphic, temporal (paper §4.2, challenge C1).
//!
//! Nodes are typed ("polymorphic": tables, columns, versions, queries,
//! models, hyperparameters, metrics, scripts, users) and versioned
//! ("temporal": a table has one `TableVersion` node per write). Edges are
//! typed with documented direction semantics.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Node identifier (index into the node arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Node types — the polymorphic data model of challenge C1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    Table,
    Column,
    TableVersion,
    Query,
    Model,
    ModelVersion,
    Hyperparameter,
    Metric,
    Script,
    Dataset,
    User,
    Feature,
}

/// Edge types with their direction semantics:
///
/// | kind        | from → to                | meaning                        |
/// |-------------|--------------------------|--------------------------------|
/// | ReadFrom    | Query → Table/Column     | query reads the object         |
/// | Wrote       | Query → TableVersion     | query produced the version     |
/// | VersionOf   | TableVersion → Table     | version belongs to table       |
/// | PartOf      | Column → Table           | column belongs to table        |
/// | TrainedOn   | Model → TableVersion     | model trained on that snapshot |
/// | DerivedFrom | A → B                    | A was derived from B           |
/// | Uses        | Script → Dataset/Table   | script consumes the object     |
/// | Produces    | Script/Query → Model     | producer emitted the model     |
/// | HasParam    | Model → Hyperparameter   | model configured by param      |
/// | Reports     | Model → Metric           | model evaluated by metric      |
/// | IssuedBy    | Query/Script → User      | who ran it                     |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    ReadFrom,
    Wrote,
    VersionOf,
    PartOf,
    TrainedOn,
    DerivedFrom,
    Uses,
    Produces,
    HasParam,
    Reports,
    IssuedBy,
}

/// A provenance node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    pub id: NodeId,
    pub kind: NodeKind,
    /// Qualified name, e.g. `db.orders` or `db.orders.price`.
    pub name: String,
    /// Version number for temporal nodes.
    pub version: Option<u64>,
    /// Free-form properties (sql text, timestamps, metric values, ...).
    pub properties: Vec<(String, String)>,
}

/// A typed, directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    pub from: NodeId,
    pub to: NodeId,
    pub kind: EdgeKind,
}

/// The graph: an arena of nodes plus a deduplicated edge set.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProvenanceGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    #[serde(skip)]
    index: HashMap<(NodeKind, String, Option<u64>), NodeId>,
    #[serde(skip)]
    edge_set: std::collections::HashSet<Edge>,
    #[serde(skip)]
    out_adj: HashMap<NodeId, Vec<usize>>,
    #[serde(skip)]
    in_adj: HashMap<NodeId, Vec<usize>>,
}

impl ProvenanceGraph {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Paper's "size" metric: nodes + edges.
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Get or create the node with this identity. Names are normalized to
    /// lowercase.
    pub fn upsert(&mut self, kind: NodeKind, name: &str, version: Option<u64>) -> NodeId {
        let key = (kind, name.to_ascii_lowercase(), version);
        if let Some(id) = self.index.get(&key) {
            return *id;
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            kind,
            name: key.1.clone(),
            version,
            properties: Vec::new(),
        });
        self.index.insert(key, id);
        id
    }

    /// Always-create node (queries/scripts are never deduplicated).
    pub fn create(&mut self, kind: NodeKind, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            kind,
            name: name.to_string(),
            version: None,
            properties: Vec::new(),
        });
        id
    }

    pub fn set_property(&mut self, id: NodeId, key: &str, value: &str) {
        let props = &mut self.nodes[id.0].properties;
        if let Some(slot) = props.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value.to_string();
        } else {
            props.push((key.to_string(), value.to_string()));
        }
    }

    pub fn property(&self, id: NodeId, key: &str) -> Option<&str> {
        self.nodes[id.0]
            .properties
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Add an edge (idempotent).
    pub fn link(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        let e = Edge { from, to, kind };
        if self.edge_set.insert(e) {
            let idx = self.edges.len();
            self.edges.push(e);
            self.out_adj.entry(from).or_default().push(idx);
            self.in_adj.entry(to).or_default().push(idx);
        }
    }

    /// Find a node by identity.
    pub fn find(&self, kind: NodeKind, name: &str, version: Option<u64>) -> Option<NodeId> {
        self.index
            .get(&(kind, name.to_ascii_lowercase(), version))
            .copied()
    }

    /// All nodes of a kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<&Node> {
        self.nodes.iter().filter(|n| n.kind == kind).collect()
    }

    /// Substring search over node names (the catalog's discovery surface).
    pub fn search(&self, needle: &str) -> Vec<&Node> {
        let needle = needle.to_ascii_lowercase();
        self.nodes
            .iter()
            .filter(|n| n.name.to_ascii_lowercase().contains(&needle))
            .collect()
    }

    pub fn outgoing(&self, id: NodeId) -> impl Iterator<Item = &Edge> {
        self.out_adj
            .get(&id)
            .into_iter()
            .flatten()
            .map(|&i| &self.edges[i])
    }

    pub fn incoming(&self, id: NodeId) -> impl Iterator<Item = &Edge> {
        self.in_adj
            .get(&id)
            .into_iter()
            .flatten()
            .map(|&i| &self.edges[i])
    }

    /// Rebuild the derived indexes (needed after deserialization).
    pub fn rebuild_indexes(&mut self) {
        self.index.clear();
        self.edge_set.clear();
        self.out_adj.clear();
        self.in_adj.clear();
        for n in &self.nodes {
            // queries/scripts created with `create` may collide by name;
            // index only keeps the first, which matches upsert semantics
            self.index
                .entry((n.kind, n.name.to_ascii_lowercase(), n.version))
                .or_insert(n.id);
        }
        for (i, e) in self.edges.iter().enumerate() {
            self.edge_set.insert(*e);
            self.out_adj.entry(e.from).or_default().push(i);
            self.in_adj.entry(e.to).or_default().push(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_deduplicates_by_identity() {
        let mut g = ProvenanceGraph::new();
        let a = g.upsert(NodeKind::Table, "Orders", None);
        let b = g.upsert(NodeKind::Table, "orders", None);
        assert_eq!(a, b);
        let v1 = g.upsert(NodeKind::TableVersion, "orders", Some(1));
        let v2 = g.upsert(NodeKind::TableVersion, "orders", Some(2));
        assert_ne!(v1, v2);
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn create_never_deduplicates() {
        let mut g = ProvenanceGraph::new();
        let a = g.create(NodeKind::Query, "SELECT 1");
        let b = g.create(NodeKind::Query, "SELECT 1");
        assert_ne!(a, b);
    }

    #[test]
    fn edges_dedupe_and_adjacency_works() {
        let mut g = ProvenanceGraph::new();
        let q = g.create(NodeKind::Query, "q");
        let t = g.upsert(NodeKind::Table, "t", None);
        g.link(q, t, EdgeKind::ReadFrom);
        g.link(q, t, EdgeKind::ReadFrom);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.outgoing(q).count(), 1);
        assert_eq!(g.incoming(t).count(), 1);
        assert_eq!(g.size(), 3);
    }

    #[test]
    fn properties_upsert() {
        let mut g = ProvenanceGraph::new();
        let q = g.create(NodeKind::Query, "q");
        g.set_property(q, "sql", "SELECT 1");
        g.set_property(q, "sql", "SELECT 2");
        assert_eq!(g.property(q, "sql"), Some("SELECT 2"));
        assert_eq!(g.property(q, "missing"), None);
    }

    #[test]
    fn search_finds_substrings() {
        let mut g = ProvenanceGraph::new();
        g.upsert(NodeKind::Table, "customer_orders", None);
        g.upsert(NodeKind::Column, "customer_orders.price", None);
        assert_eq!(g.search("orders").len(), 2);
        assert_eq!(g.search("PRICE").len(), 1);
    }

    #[test]
    fn serde_roundtrip_with_index_rebuild() {
        let mut g = ProvenanceGraph::new();
        let q = g.create(NodeKind::Query, "q");
        let t = g.upsert(NodeKind::Table, "t", None);
        g.link(q, t, EdgeKind::ReadFrom);
        let json = serde_json::to_string(&g).unwrap();
        let mut back: ProvenanceGraph = serde_json::from_str(&json).unwrap();
        back.rebuild_indexes();
        assert_eq!(back.size(), g.size());
        assert!(back.find(NodeKind::Table, "t", None).is_some());
        assert_eq!(back.outgoing(q).count(), 1);
    }
}
