//! JSON export/import of provenance graphs (for exchange with external
//! catalogs and for the experiment harnesses).

use crate::graph::ProvenanceGraph;

/// Serialize a graph to pretty JSON.
pub fn to_json(graph: &ProvenanceGraph) -> String {
    serde_json::to_string_pretty(graph).expect("graph serializes")
}

/// Load a graph back (indexes rebuilt).
pub fn from_json(json: &str) -> Result<ProvenanceGraph, String> {
    let mut g: ProvenanceGraph = serde_json::from_str(json).map_err(|e| e.to_string())?;
    g.rebuild_indexes();
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ProvCatalog;
    use crate::graph::{EdgeKind, NodeKind};

    #[test]
    fn roundtrip_preserves_structure() {
        let mut cat = ProvCatalog::new();
        let q = cat.query("SELECT * FROM t", "u");
        let t = cat.table("t");
        cat.link(q, t, EdgeKind::ReadFrom);
        let json = to_json(cat.graph());
        let back = from_json(&json).unwrap();
        assert_eq!(back.size(), cat.graph().size());
        assert!(back.find(NodeKind::Table, "t", None).is_some());
    }

    #[test]
    fn bad_json_is_error() {
        assert!(from_json("{").is_err());
    }
}
