//! Capture model lineage from a live database catalog.
//!
//! Deployed models are extension objects whose metadata JSON records the
//! training table, its exact version, the training statement, the user,
//! and the quality metrics. This module folds all of that into the
//! provenance graph — the end-to-end "model as derived data" record.

use crate::catalog::ProvCatalog;
use crate::graph::{EdgeKind, NodeId};
use flock_sql::Catalog;

/// Capture every deployed model (all versions) from the DB catalog.
/// Returns the Model nodes created.
pub fn capture_models(prov: &mut ProvCatalog, catalog: &Catalog, kind: &str) -> Vec<NodeId> {
    let mut out = Vec::new();
    for obj in catalog.extensions_of_kind(kind) {
        let model_node = prov.model(&obj.name, None);
        out.push(model_node);
        for version in &obj.versions {
            let mv = prov.model(&obj.name, Some(version.version));
            prov.link(mv, model_node, EdgeKind::VersionOf);
            let md = &version.metadata;
            let lineage = md.get("lineage");
            if let Some(l) = lineage {
                if let Some(table) = l.get("training_table").and_then(|v| v.as_str()) {
                    match l
                        .get("training_table_version")
                        .and_then(|v| v.as_u64())
                    {
                        Some(tv) => {
                            let version_node = prov.table_version(table, tv);
                            prov.link(mv, version_node, EdgeKind::TrainedOn);
                        }
                        None => {
                            let t = prov.table(table);
                            prov.link(mv, t, EdgeKind::TrainedOn);
                        }
                    }
                }
                if let Some(user) = l.get("trained_by").and_then(|v| v.as_str()) {
                    let u = prov.user(user);
                    prov.link(mv, u, EdgeKind::IssuedBy);
                }
                if let Some(metrics) = l.get("metrics").and_then(|v| v.as_object()) {
                    for (name, value) in metrics {
                        let m = prov.metric(
                            &format!("{}@v{}", obj.name, version.version),
                            name,
                            &value.to_string(),
                        );
                        prov.link(mv, m, EdgeKind::Reports);
                    }
                }
                if let Some(sql) = l.get("training_query").and_then(|v| v.as_str()) {
                    let owner = l
                        .get("trained_by")
                        .and_then(|v| v.as_str())
                        .unwrap_or("unknown");
                    let q = prov.query(sql, owner);
                    prov.link(q, mv, EdgeKind::Produces);
                }
            }
            if let Some(inputs) = md.get("inputs").and_then(|v| v.as_array()) {
                // inputs are [name, is_text] pairs; record them as features
                for input in inputs {
                    if let Some(name) = input.get(0).and_then(|v| v.as_str()) {
                        let f = prov.graph_mut().upsert(
                            crate::graph::NodeKind::Feature,
                            &format!("{}:{name}", obj.name),
                            None,
                        );
                        prov.link(mv, f, EdgeKind::Uses);
                        // connect the feature to its source column when the
                        // training table is known
                        if let Some(table) = lineage
                            .and_then(|l| l.get("training_table"))
                            .and_then(|v| v.as_str())
                        {
                            let c = prov.column(table, name);
                            prov.link(f, c, EdgeKind::DerivedFrom);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;
    use crate::query::backward_lineage;

    fn catalog_with_model() -> Catalog {
        let mut c = Catalog::new();
        let metadata = serde_json::json!({
            "name": "risk",
            "inputs": [["income", false], ["debt", false]],
            "output": "score",
            "kind": "logistic",
            "complexity": 3,
            "lineage": {
                "training_table": "loans",
                "training_table_version": 4,
                "training_query": "CREATE MODEL risk KIND logistic FROM loans TARGET bad",
                "trained_by": "alice",
                "created_ms": 1,
                "metrics": {"auc": 0.9}
            }
        });
        c.create_extension("model", "risk", "alice", vec![1], metadata, 9)
            .unwrap();
        c
    }

    #[test]
    fn model_lineage_lands_in_graph() {
        let mut prov = ProvCatalog::new();
        let models = capture_models(&mut prov, &catalog_with_model(), "model");
        assert_eq!(models.len(), 1);
        let g = prov.graph();
        let mv = g.find(NodeKind::ModelVersion, "risk", Some(1)).unwrap();
        let lineage = backward_lineage(g, mv);
        let names: Vec<&str> = lineage.iter().map(|id| g.node(*id).name.as_str()).collect();
        assert!(names.contains(&"loans"), "{names:?}");
        assert!(names.contains(&"loans.income"), "feature column linked");
        // the metric node exists with its value
        let m = g.find(NodeKind::Metric, "risk@v1.auc", None).unwrap();
        assert_eq!(g.property(m, "value"), Some("0.9"));
    }

    #[test]
    fn versions_accumulate() {
        let mut catalog = catalog_with_model();
        catalog
            .update_extension("model", "risk", vec![2], serde_json::json!({}), 10)
            .unwrap();
        let mut prov = ProvCatalog::new();
        capture_models(&mut prov, &catalog, "model");
        let g = prov.graph();
        assert!(g.find(NodeKind::ModelVersion, "risk", Some(1)).is_some());
        assert!(g.find(NodeKind::ModelVersion, "risk", Some(2)).is_some());
    }
}
