//! SQL provenance capture (paper §4.2, "Provenance in SQL").
//!
//! Two modes, exactly as the paper describes:
//!
//! * **eager** — given a statement, parse it and extract coarse-grained
//!   provenance: the input tables and columns that affected the output,
//!   with connections modelled as a graph;
//! * **lazy** — given the database's query log, replay the whole history
//!   into the provenance data model (including the exact table versions
//!   each write produced).

use crate::catalog::ProvCatalog;
use crate::graph::{EdgeKind, NodeId};
use flock_sql::ast::{Expr, InsertSource, Query, Statement, TableRef};
use flock_sql::engine::QueryLogEntry;
use flock_sql::lexer::{tokenize, Token};
use flock_sql::parser::parse_statement;
use flock_sql::{Result, SqlError};
use std::collections::HashMap;

/// What one capture produced.
#[derive(Debug, Clone, Default)]
pub struct CaptureReport {
    pub query: Option<NodeId>,
    pub tables_read: Vec<NodeId>,
    pub columns_read: Vec<NodeId>,
    pub tables_written: Vec<NodeId>,
    pub versions_written: Vec<NodeId>,
}

/// Flat extraction of names from a statement.
#[derive(Debug, Default)]
struct Extraction {
    /// (table name, Some(alias)) for every base-table reference.
    tables: Vec<(String, Option<String>)>,
    /// (qualifier, column) for every column reference.
    columns: Vec<(Option<String>, String)>,
    /// tables written by DML/DDL
    written: Vec<String>,
}

/// Eagerly capture one SQL statement into the provenance catalog.
pub fn capture_sql(catalog: &mut ProvCatalog, sql: &str, user: &str) -> Result<CaptureReport> {
    // Flock model DDL is not part of the core SQL grammar; special-case it.
    if sql.trim().to_ascii_uppercase().starts_with("CREATE MODEL") {
        return capture_create_model(catalog, sql, user);
    }
    let stmt = parse_statement(sql)?;
    let mut ex = Extraction::default();
    extract_statement(&stmt, &mut ex);
    Ok(record(catalog, sql, user, &ex, &[]))
}

/// Lazily replay one query-log entry (exact versions included).
pub fn capture_log_entry(catalog: &mut ProvCatalog, entry: &QueryLogEntry) -> CaptureReport {
    let parsed = if entry.sql.trim().to_ascii_uppercase().starts_with("CREATE MODEL") {
        return capture_create_model(catalog, &entry.sql, &entry.user)
            .unwrap_or_default();
    } else {
        parse_statement(&entry.sql).ok()
    };
    let mut ex = Extraction::default();
    match parsed {
        Some(stmt) => extract_statement(&stmt, &mut ex),
        None => {
            // fall back to the engine-recorded table sets
            for t in &entry.tables_read {
                ex.tables.push((t.clone(), None));
            }
            for t in &entry.tables_written {
                ex.written.push(t.clone());
            }
        }
    }
    record(catalog, &entry.sql, &entry.user, &ex, &entry.versions_written)
}

/// Lazily replay a whole query log. Returns one report per entry.
pub fn capture_log(
    catalog: &mut ProvCatalog,
    log: &[QueryLogEntry],
) -> Vec<CaptureReport> {
    log.iter().map(|e| capture_log_entry(catalog, e)).collect()
}

fn record(
    catalog: &mut ProvCatalog,
    sql: &str,
    user: &str,
    ex: &Extraction,
    versions_written: &[(String, u64)],
) -> CaptureReport {
    let q = catalog.query(sql, user);
    let mut report = CaptureReport {
        query: Some(q),
        ..Default::default()
    };

    // alias -> table map for column attribution
    let mut aliases: HashMap<String, String> = HashMap::new();
    for (table, alias) in &ex.tables {
        let t = catalog.table(table);
        catalog.link(q, t, EdgeKind::ReadFrom);
        report.tables_read.push(t);
        aliases.insert(table.to_ascii_lowercase(), table.clone());
        if let Some(a) = alias {
            aliases.insert(a.to_ascii_lowercase(), table.clone());
        }
    }

    let single_table = if ex.tables.len() == 1 {
        Some(ex.tables[0].0.clone())
    } else {
        None
    };
    let mut seen = std::collections::HashSet::new();
    for (qual, col) in &ex.columns {
        let table = match qual {
            Some(qn) => aliases.get(&qn.to_ascii_lowercase()).cloned(),
            None => single_table.clone(),
        };
        let Some(table) = table else {
            continue; // unattributable (subquery alias or ambiguous)
        };
        if !seen.insert((table.to_ascii_lowercase(), col.to_ascii_lowercase())) {
            continue;
        }
        let c = catalog.column(&table, col);
        catalog.link(q, c, EdgeKind::ReadFrom);
        report.columns_read.push(c);
    }

    for table in &ex.written {
        let t = catalog.table(table);
        report.tables_written.push(t);
        let version = versions_written
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case(table))
            .map(|(_, v)| *v);
        match version {
            Some(v) => {
                let tv = catalog.table_version(table, v);
                catalog.link(q, tv, EdgeKind::Wrote);
                report.versions_written.push(tv);
            }
            None => {
                // eager mode has no version number; link the table itself
                catalog.link(q, t, EdgeKind::Wrote);
            }
        }
    }
    report
}

/// Capture `CREATE MODEL name KIND k FROM table TARGET col ...`.
fn capture_create_model(
    catalog: &mut ProvCatalog,
    sql: &str,
    user: &str,
) -> Result<CaptureReport> {
    let tokens = tokenize(sql)?;
    let word = |i: usize| -> Option<&str> {
        match tokens.get(i) {
            Some(Token::Ident(s)) | Some(Token::QuotedIdent(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let name = word(2)
        .ok_or_else(|| SqlError::Parse("CREATE MODEL missing name".into()))?
        .to_string();
    let mut table = None;
    let mut target = None;
    let mut kind = None;
    for i in 0..tokens.len() {
        if let Some(w) = word(i) {
            match w.to_ascii_uppercase().as_str() {
                "FROM" => table = word(i + 1).map(|s| s.to_string()),
                "TARGET" => target = word(i + 1).map(|s| s.to_string()),
                "KIND" => kind = word(i + 1).map(|s| s.to_string()),
                _ => {}
            }
        }
    }
    let q = catalog.query(sql, user);
    let m = catalog.model(&name, None);
    catalog.link(q, m, EdgeKind::Produces);
    if let Some(k) = kind {
        let h = catalog.hyperparameter(&name, "kind", &k);
        catalog.link(m, h, EdgeKind::HasParam);
    }
    let mut report = CaptureReport {
        query: Some(q),
        ..Default::default()
    };
    if let Some(t) = table {
        let tn = catalog.table(&t);
        catalog.link(q, tn, EdgeKind::ReadFrom);
        catalog.link(m, tn, EdgeKind::TrainedOn);
        report.tables_read.push(tn);
        if let Some(col) = target {
            let c = catalog.column(&t, &col);
            catalog.link(q, c, EdgeKind::ReadFrom);
            report.columns_read.push(c);
        }
    }
    Ok(report)
}

// ------------------------------------------------------------ extraction

fn extract_statement(stmt: &Statement, out: &mut Extraction) {
    match stmt {
        Statement::Query(q) => extract_query(q, out),
        Statement::Insert {
            table,
            columns: _,
            source,
        } => {
            out.written.push(table.clone());
            match source {
                InsertSource::Values(rows) => {
                    for row in rows {
                        for e in row {
                            extract_expr(e, out);
                        }
                    }
                }
                InsertSource::Query(q) => extract_query(q, out),
            }
        }
        Statement::Update {
            table,
            assignments,
            selection,
        } => {
            out.written.push(table.clone());
            out.tables.push((table.clone(), None));
            for (_, e) in assignments {
                extract_expr(e, out);
            }
            if let Some(e) = selection {
                extract_expr(e, out);
            }
        }
        Statement::Delete { table, selection } => {
            out.written.push(table.clone());
            out.tables.push((table.clone(), None));
            if let Some(e) = selection {
                extract_expr(e, out);
            }
        }
        Statement::CreateTable { name, .. } => out.written.push(name.clone()),
        Statement::DropTable { name, .. } => out.written.push(name.clone()),
        Statement::CreateView { query, .. } => extract_query(query, out),
        Statement::Explain { statement, .. } => extract_statement(statement, out),
        _ => {}
    }
}

fn extract_query(q: &Query, out: &mut Extraction) {
    extract_select(&q.select, out);
    for arm in &q.unions {
        extract_select(&arm.select, out);
    }
    for item in &q.order_by {
        extract_expr(&item.expr, out);
    }
}

fn extract_select(select: &flock_sql::ast::Select, out: &mut Extraction) {
    for tr in &select.from {
        extract_table_ref(tr, out);
    }
    for item in &select.projection {
        if let flock_sql::ast::SelectItem::Expr { expr, .. } = item {
            extract_expr(expr, out);
        }
    }
    if let Some(e) = &select.selection {
        extract_expr(e, out);
    }
    for e in &select.group_by {
        extract_expr(e, out);
    }
    if let Some(e) = &select.having {
        extract_expr(e, out);
    }
}

fn extract_table_ref(tr: &TableRef, out: &mut Extraction) {
    match tr {
        TableRef::Table { name, alias, .. } => {
            out.tables.push((name.clone(), alias.clone()));
        }
        TableRef::Subquery { query, .. } => extract_query(query, out),
        TableRef::Join {
            left, right, on, ..
        } => {
            extract_table_ref(left, out);
            extract_table_ref(right, out);
            if let Some(e) = on {
                extract_expr(e, out);
            }
        }
    }
}

/// Like `Expr::referenced_columns`, but also descends into subqueries.
fn extract_expr(e: &Expr, out: &mut Extraction) {
    match e {
        Expr::Column { qualifier, name } => {
            out.columns.push((qualifier.clone(), name.clone()));
        }
        Expr::Subquery(q) => extract_query(q, out),
        Expr::Exists { query, .. } => extract_query(query, out),
        Expr::InSubquery { expr, query, .. } => {
            extract_expr(expr, out);
            extract_query(query, out);
        }
        Expr::Binary { left, right, .. } => {
            extract_expr(left, out);
            extract_expr(right, out);
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            extract_expr(expr, out)
        }
        Expr::InList { expr, list, .. } => {
            extract_expr(expr, out);
            for i in list {
                extract_expr(i, out);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            extract_expr(expr, out);
            extract_expr(low, out);
            extract_expr(high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            extract_expr(expr, out);
            extract_expr(pattern, out);
        }
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            if let Some(o) = operand {
                extract_expr(o, out);
            }
            for (w, t) in when_then {
                extract_expr(w, out);
                extract_expr(t, out);
            }
            if let Some(x) = else_expr {
                extract_expr(x, out);
            }
        }
        Expr::Function { args, .. } | Expr::Predict { args, .. } => {
            for a in args {
                extract_expr(a, out);
            }
        }
        Expr::Literal(_) | Expr::Wildcard | Expr::Parameter(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    #[test]
    fn eager_capture_extracts_tables_and_columns() {
        let mut cat = ProvCatalog::new();
        let r = capture_sql(
            &mut cat,
            "SELECT o.price, c.name FROM orders o JOIN customers c ON o.cust_id = c.id \
             WHERE o.price > 10",
            "alice",
        )
        .unwrap();
        assert_eq!(r.tables_read.len(), 2);
        // columns: o.price, c.name, o.cust_id, c.id (deduped price)
        assert_eq!(r.columns_read.len(), 4);
        let g = cat.graph();
        assert!(g.find(NodeKind::Column, "orders.price", None).is_some());
        assert!(g.find(NodeKind::Column, "customers.id", None).is_some());
    }

    #[test]
    fn unqualified_columns_attribute_to_single_table() {
        let mut cat = ProvCatalog::new();
        let r = capture_sql(&mut cat, "SELECT price FROM orders WHERE qty > 1", "u").unwrap();
        assert_eq!(r.columns_read.len(), 2);
    }

    #[test]
    fn subqueries_contribute_tables() {
        let mut cat = ProvCatalog::new();
        let r = capture_sql(
            &mut cat,
            "SELECT a FROM t WHERE id IN (SELECT tid FROM u) AND EXISTS (SELECT 1 FROM v)",
            "u",
        )
        .unwrap();
        assert_eq!(r.tables_read.len(), 3);
    }

    #[test]
    fn union_arms_contribute_tables() {
        let mut cat = ProvCatalog::new();
        let r = capture_sql(
            &mut cat,
            "SELECT id FROM current_users UNION ALL SELECT id FROM archived_users",
            "u",
        )
        .unwrap();
        assert_eq!(r.tables_read.len(), 2);
    }

    #[test]
    fn dml_records_writes() {
        let mut cat = ProvCatalog::new();
        let r = capture_sql(&mut cat, "INSERT INTO t SELECT * FROM s", "u").unwrap();
        assert_eq!(r.tables_written.len(), 1);
        assert_eq!(r.tables_read.len(), 1);
        let r2 = capture_sql(&mut cat, "UPDATE t SET a = b + 1 WHERE c > 0", "u").unwrap();
        assert_eq!(r2.tables_written.len(), 1);
        // reads are b (assignment source) and c (predicate); the target a
        // is written, not read
        assert_eq!(r2.columns_read.len(), 2);
    }

    #[test]
    fn lazy_capture_pins_versions() {
        use flock_sql::engine::StatementKind;
        let mut cat = ProvCatalog::new();
        let entry = QueryLogEntry {
            id: 1,
            txn_id: 7,
            user: "bob".into(),
            sql: "INSERT INTO t VALUES (1)".into(),
            kind: StatementKind::Insert,
            tables_read: vec![],
            tables_written: vec!["t".into()],
            versions_written: vec![("t".into(), 5)],
            timestamp_ms: 0,
            rows_scanned: 0,
            rows_returned: 0,
            elapsed_us: 0,
            parallel_ops: 0,
        };
        let r = capture_log_entry(&mut cat, &entry);
        assert_eq!(r.versions_written.len(), 1);
        assert!(cat
            .graph()
            .find(NodeKind::TableVersion, "t", Some(5))
            .is_some());
    }

    #[test]
    fn create_model_links_model_to_training_table() {
        let mut cat = ProvCatalog::new();
        let r = capture_sql(
            &mut cat,
            "CREATE MODEL churn KIND logistic FROM customers TARGET churned",
            "alice",
        )
        .unwrap();
        assert_eq!(r.tables_read.len(), 1);
        let g = cat.graph();
        let m = g.find(NodeKind::Model, "churn", None).unwrap();
        let t = g.find(NodeKind::Table, "customers", None).unwrap();
        assert!(g
            .outgoing(m)
            .any(|e| e.to == t && e.kind == EdgeKind::TrainedOn));
    }

    #[test]
    fn unparseable_log_entries_fall_back_to_recorded_tables() {
        use flock_sql::engine::StatementKind;
        let mut cat = ProvCatalog::new();
        let entry = QueryLogEntry {
            id: 1,
            txn_id: 1,
            user: "u".into(),
            sql: "MERGE INTO weird SYNTAX".into(),
            kind: StatementKind::Other,
            tables_read: vec!["a".into()],
            tables_written: vec!["b".into()],
            versions_written: vec![],
            timestamp_ms: 0,
            rows_scanned: 0,
            rows_returned: 0,
            elapsed_us: 0,
            parallel_ops: 0,
        };
        let r = capture_log_entry(&mut cat, &entry);
        assert_eq!(r.tables_read.len(), 1);
        assert_eq!(r.tables_written.len(), 1);
    }
}
