//! Provenance compression and summarization (paper §4.2: "we develop
//! optimized capture techniques, through compression and summarization,
//! which are essential towards addressing C1").
//!
//! Two lossy-but-safe reductions:
//! * **version-chain summarization** — a table with thousands of versions
//!   (one per INSERT) keeps its first and latest version nodes plus a
//!   summary node recording the count; queries that wrote the collapsed
//!   versions re-point at the summary.
//! * **query deduplication** — repeated executions of the same statement
//!   template (same SQL after literal masking) collapse into one template
//!   node with an execution count.

use crate::graph::{NodeId, NodeKind, ProvenanceGraph};
use std::collections::HashMap;

/// Statistics about one compression run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompressionStats {
    pub nodes_before: usize,
    pub edges_before: usize,
    pub nodes_after: usize,
    pub edges_after: usize,
}

impl CompressionStats {
    pub fn ratio(&self) -> f64 {
        let before = (self.nodes_before + self.edges_before) as f64;
        let after = (self.nodes_after + self.edges_after) as f64;
        if after == 0.0 {
            1.0
        } else {
            before / after
        }
    }
}

/// Mask literals in a SQL string so repeated parameterized executions map
/// to one template ("SELECT * FROM t WHERE id = 7" -> "... id = ?").
pub fn query_template(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                out.push('?');
                for s in chars.by_ref() {
                    if s == '\'' {
                        break;
                    }
                }
            }
            '0'..='9' => {
                // swallow the rest of the number
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_digit() || n == '.' {
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push('?');
            }
            other => out.push(other),
        }
    }
    out
}

/// Compress a graph, returning the reduced graph and statistics.
pub fn compress(graph: &ProvenanceGraph) -> (ProvenanceGraph, CompressionStats) {
    let mut stats = CompressionStats {
        nodes_before: graph.node_count(),
        edges_before: graph.edge_count(),
        ..Default::default()
    };

    // Decide the fate of every old node: keep (mapped) or collapse into a
    // representative.
    let mut out = ProvenanceGraph::new();
    let mut mapping: HashMap<NodeId, NodeId> = HashMap::new();

    // 1. version-chain summarization: group TableVersion nodes by table
    let mut versions_by_table: HashMap<String, Vec<&crate::graph::Node>> = HashMap::new();
    for n in graph.nodes_of_kind(NodeKind::TableVersion) {
        versions_by_table
            .entry(n.name.clone())
            .or_default()
            .push(n);
    }

    // 2. query templating
    let mut template_nodes: HashMap<String, NodeId> = HashMap::new();
    let mut template_counts: HashMap<String, u64> = HashMap::new();

    for n in graph.nodes() {
        match n.kind {
            NodeKind::TableVersion => {
                let chain = &versions_by_table[&n.name];
                if chain.len() <= 3 {
                    let id = out.upsert(NodeKind::TableVersion, &n.name, n.version);
                    mapping.insert(n.id, id);
                } else {
                    let min = chain.iter().filter_map(|v| v.version).min();
                    let max = chain.iter().filter_map(|v| v.version).max();
                    if n.version == min || n.version == max {
                        let id = out.upsert(NodeKind::TableVersion, &n.name, n.version);
                        mapping.insert(n.id, id);
                    } else {
                        // collapse into the summary node
                        let id = out.upsert(
                            NodeKind::TableVersion,
                            &format!("{}@summary", n.name),
                            None,
                        );
                        out.set_property(id, "collapsed_versions", &(chain.len() - 2).to_string());
                        mapping.insert(n.id, id);
                    }
                }
            }
            NodeKind::Query => {
                let sql = graph.property(n.id, "sql").unwrap_or(&n.name);
                let template = query_template(sql);
                let id = *template_nodes.entry(template.clone()).or_insert_with(|| {
                    let id = out.create(NodeKind::Query, &format!("template:{template}"));
                    out.set_property(id, "sql_template", &template);
                    id
                });
                let count = template_counts.entry(template).or_insert(0);
                *count += 1;
                out.set_property(id, "executions", &count.to_string());
                mapping.insert(n.id, id);
            }
            _ => {
                let id = out.upsert(n.kind, &n.name, n.version);
                for (k, v) in &n.properties {
                    out.set_property(id, k, v);
                }
                mapping.insert(n.id, id);
            }
        }
    }

    for e in graph.edges() {
        let (Some(&f), Some(&t)) = (mapping.get(&e.from), mapping.get(&e.to)) else {
            continue;
        };
        if f == t {
            continue; // self-loop introduced by collapsing
        }
        out.link(f, t, e.kind);
    }

    stats.nodes_after = out.node_count();
    stats.edges_after = out.edge_count();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ProvCatalog;
    use crate::graph::EdgeKind;

    #[test]
    fn templates_mask_literals() {
        assert_eq!(
            query_template("SELECT * FROM t WHERE id = 42 AND name = 'bob'"),
            "SELECT * FROM t WHERE id = ? AND name = ?"
        );
        assert_eq!(query_template("SELECT a FROM t"), "SELECT a FROM t");
    }

    #[test]
    fn long_version_chains_collapse() {
        let mut cat = ProvCatalog::new();
        for v in 1..=20 {
            let tv = cat.table_version("t", v);
            let q = cat.query(&format!("INSERT INTO t VALUES ({v})"), "u");
            cat.link(q, tv, EdgeKind::Wrote);
        }
        let g = cat.graph();
        let (small, stats) = compress(g);
        assert!(stats.ratio() > 2.0, "ratio {}", stats.ratio());
        assert!(small.size() < g.size());
        // first and last survive
        assert!(small.find(NodeKind::TableVersion, "t", Some(1)).is_some());
        assert!(small.find(NodeKind::TableVersion, "t", Some(20)).is_some());
        assert!(small.find(NodeKind::TableVersion, "t", Some(10)).is_none());
        // 20 identical-template queries collapsed to one
        assert_eq!(small.nodes_of_kind(NodeKind::Query).len(), 1);
        let q = small.nodes_of_kind(NodeKind::Query)[0];
        assert_eq!(small.property(q.id, "executions"), Some("20"));
    }

    #[test]
    fn short_chains_are_untouched() {
        let mut cat = ProvCatalog::new();
        cat.table_version("t", 1);
        cat.table_version("t", 2);
        let (small, _) = compress(cat.graph());
        assert!(small.find(NodeKind::TableVersion, "t", Some(1)).is_some());
        assert!(small.find(NodeKind::TableVersion, "t", Some(2)).is_some());
    }

    #[test]
    fn lineage_survives_compression() {
        use crate::query::backward_lineage;
        let mut cat = ProvCatalog::new();
        let raw = cat.table("raw");
        for v in 1..=10 {
            let q = cat.query(&format!("INSERT INTO clean SELECT * FROM raw -- {v}"), "u");
            cat.link(q, raw, EdgeKind::ReadFrom);
            let tv = cat.table_version("clean", v);
            cat.link(q, tv, EdgeKind::Wrote);
        }
        let m = cat.model("churn", None);
        let latest = cat.table_version("clean", 10);
        cat.link(m, latest, EdgeKind::TrainedOn);

        let (small, _) = compress(cat.graph());
        let m2 = small.find(NodeKind::Model, "churn", None).unwrap();
        let raw2 = small.find(NodeKind::Table, "raw", None).unwrap();
        let lineage = backward_lineage(&small, m2);
        assert!(lineage.contains(&raw2), "lineage preserved after compression");
    }
}
