//! # flock-provenance
//!
//! The governance substrate of the Flock architecture (paper §4.2):
//!
//! * a **polymorphic, temporal provenance graph** (challenge C1) — typed
//!   nodes for tables, columns, table versions, queries, models, model
//!   versions, hyperparameters, metrics, scripts and users;
//! * an Atlas-like **catalog** bridging capture modules (challenge C3);
//! * **SQL provenance capture** in both the paper's modes: *eager*
//!   (parse a statement, extract input tables/columns, record the graph)
//!   and *lazy* (replay the engine's query log, pinning exact table
//!   versions);
//! * **model lineage capture** from the DBMS catalog's model objects;
//! * **compression & summarization** of the provenance data model
//!   (version-chain collapsing, query templating);
//! * **lineage queries**: backward derivation and forward impact
//!   analysis ("if we change this column, which models need retraining").

pub mod catalog;
pub mod compress;
pub mod export;
pub mod graph;
pub mod model_capture;
pub mod query;
pub mod sql_capture;

pub use catalog::ProvCatalog;
pub use compress::{compress, query_template, CompressionStats};
pub use graph::{Edge, EdgeKind, Node, NodeId, NodeKind, ProvenanceGraph};
pub use model_capture::capture_models;
pub use query::{backward_lineage, dependent_models, forward_impact, lineage_report};
pub use sql_capture::{capture_log, capture_log_entry, capture_sql, CaptureReport};
