-- Run by the CI server-smoke job after a scheduler-tick delay: the
-- tumbling window [0, 100) over smoke.sql's click inserts must have
-- closed and emitted per-page counts (the job greps the output for the
-- expected rows).
SELECT window_start, page, n FROM click_windows;
SHOW STREAMS
