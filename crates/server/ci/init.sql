-- Boot script for the CI server-smoke job (run by flock-serve --init as
-- admin before the listener starts accepting connections).
CREATE TABLE sensors (id INT, reading DOUBLE, label TEXT);
INSERT INTO sensors VALUES (1, 0.5, 'ok'), (2, 1.5, 'hot'), (3, -0.5, 'cold'), (4, 0.7, 'ok');
CREATE USER analyst;
GRANT SELECT ON TABLE sensors TO analyst
