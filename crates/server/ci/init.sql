-- Boot script for the CI server-smoke job (run by flock-serve --init as
-- admin before the listener starts accepting connections).
CREATE TABLE sensors (id INT, reading DOUBLE, label TEXT);
INSERT INTO sensors VALUES (1, 0.5, 'ok'), (2, 1.5, 'hot'), (3, -0.5, 'cold'), (4, 0.7, 'ok');
CREATE USER analyst;
GRANT SELECT ON TABLE sensors TO analyst;
-- Streaming: an append-only click stream plus a tumbling-window
-- continuous query the background scheduler evaluates while serving.
CREATE STREAM clicks (et INT, page INT) WATERMARK (et, 0);
CREATE CONTINUOUS QUERY click_counts ON clicks WINDOW TUMBLING (100)
  EMIT INTO click_windows AS SELECT page, COUNT(*) AS n FROM clicks GROUP BY page;
GRANT SELECT ON TABLE click_windows TO analyst
