-- Scripted session for the CI server-smoke job: flock-cli runs this
-- against a live flock-serve and exits non-zero if any statement fails.
SELECT id, reading, label FROM sensors WHERE reading > 0.0;
CREATE TABLE readings_copy (id INT, reading DOUBLE);
INSERT INTO readings_copy SELECT id, reading FROM sensors;
SELECT id FROM readings_copy WHERE reading >= 0.5;
SET statement_timeout = 5000;
SET predict_strategy = 'vectorized';
SELECT metric, value FROM flock_metrics WHERE metric = 'server_connections_accepted';
SET statement_timeout = DEFAULT;
SHOW STREAMS;
INSERT INTO clicks VALUES (10, 1), (20, 1), (30, 2), (150, 1);
SELECT metric, value FROM flock_metrics WHERE metric = 'stream_cq_ticks';
