//! Blocking client for the Flock wire protocol.
//!
//! Used by `flock-cli`, the connection-storm bench, and the protocol test
//! suite. Errors split three ways so callers can react without string
//! matching: [`ClientError::Sql`] (typed server-side failure — the
//! connection stays usable), [`ClientError::Protocol`] (this peer or the
//! server violated the framing contract — drop the connection), and
//! [`ClientError::Io`].

use crate::protocol::{
    frame, ClientMsg, FrameError, FrameReader, ServerMsg, WireRows, DEFAULT_MAX_FRAME,
};
use flock_sql::{Value, WireError};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The server answered with a typed SQL error; session still open.
    Sql(WireError),
    /// Framing/sequencing violation on either side; connection is dead.
    Protocol(String),
    Io(std::io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Sql(e) => write!(f, "{e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A prepared-statement handle on the server.
#[derive(Debug, Clone, Copy)]
pub struct StmtHandle {
    pub id: u64,
    pub params: u64,
}

/// One authenticated connection.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    session: u64,
    cancel_key: u64,
    server: String,
}

impl Client {
    /// Connect and authenticate. Fails with [`ClientError::Sql`] carrying
    /// `code = "access_denied"` for an unknown user.
    pub fn connect(addr: SocketAddr, user: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // A generous deadline so a wedged server can't hang the client
        // forever; individual long statements may legitimately take time,
        // so this is minutes, not milliseconds.
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        let mut client = Client {
            stream,
            reader: FrameReader::new(DEFAULT_MAX_FRAME),
            session: 0,
            cancel_key: 0,
            server: String::new(),
        };
        match client.roundtrip(&ClientMsg::Hello { user: user.to_string() })? {
            ServerMsg::Welcome { session, cancel_key, server } => {
                client.session = session;
                client.cancel_key = cancel_key;
                client.server = server;
                Ok(client)
            }
            ServerMsg::Error(e) => Err(ClientError::Sql(e)),
            other => Err(ClientError::Protocol(format!("unexpected reply to hello: {other:?}"))),
        }
    }

    /// Server-assigned session id (cancellation target).
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// Proof-of-authority token for out-of-band [`Client::cancel`].
    pub fn cancel_key(&self) -> u64 {
        self.cancel_key
    }

    /// Server identification from `Welcome`.
    pub fn server_name(&self) -> &str {
        &self.server
    }

    fn send(&mut self, msg: &ClientMsg) -> Result<(), ClientError> {
        let payload = msg.encode().to_string().into_bytes();
        self.stream.write_all(&frame(&payload))?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<ServerMsg, ClientError> {
        loop {
            match self.reader.poll(&mut self.stream)? {
                Some(payload) => return Ok(ServerMsg::decode(&payload)?),
                None => continue,
            }
        }
    }

    fn roundtrip(&mut self, msg: &ClientMsg) -> Result<ServerMsg, ClientError> {
        self.send(msg)?;
        self.recv()
    }

    /// Execute one SQL statement.
    pub fn query(&mut self, sql: &str) -> Result<WireRows, ClientError> {
        match self.roundtrip(&ClientMsg::Query { sql: sql.to_string() })? {
            ServerMsg::Rows(r) => Ok(r),
            ServerMsg::Error(e) => Err(ClientError::Sql(e)),
            other => Err(ClientError::Protocol(format!("unexpected reply to query: {other:?}"))),
        }
    }

    /// Prepare a parameterized statement (server-side plan cache).
    pub fn prepare(&mut self, sql: &str) -> Result<StmtHandle, ClientError> {
        match self.roundtrip(&ClientMsg::Prepare { sql: sql.to_string() })? {
            ServerMsg::Prepared { stmt, params } => Ok(StmtHandle { id: stmt, params }),
            ServerMsg::Error(e) => Err(ClientError::Sql(e)),
            other => Err(ClientError::Protocol(format!("unexpected reply to prepare: {other:?}"))),
        }
    }

    /// Execute a prepared statement with bound parameters.
    pub fn execute(&mut self, stmt: StmtHandle, params: &[Value]) -> Result<WireRows, ClientError> {
        let msg = ClientMsg::Execute { stmt: stmt.id, params: params.to_vec() };
        match self.roundtrip(&msg)? {
            ServerMsg::Rows(r) => Ok(r),
            ServerMsg::Error(e) => Err(ClientError::Sql(e)),
            other => Err(ClientError::Protocol(format!("unexpected reply to execute: {other:?}"))),
        }
    }

    /// Drop a prepared statement.
    pub fn close_stmt(&mut self, stmt: StmtHandle) -> Result<(), ClientError> {
        match self.roundtrip(&ClientMsg::CloseStmt { stmt: stmt.id })? {
            ServerMsg::StmtClosed => Ok(()),
            ServerMsg::Error(e) => Err(ClientError::Sql(e)),
            other => Err(ClientError::Protocol(format!("unexpected reply to close: {other:?}"))),
        }
    }

    /// Orderly close; consumes the client.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        match self.roundtrip(&ClientMsg::Goodbye)? {
            ServerMsg::Goodbye => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected reply to goodbye: {other:?}"))),
        }
    }

    /// Out-of-band cancellation: open a *fresh* connection to `addr` and
    /// ask the server to raise `session`'s cancel flag. Returns whether
    /// the server accepted (session alive and key correct). The statement
    /// itself fails on the victim's own connection with code `cancelled`.
    pub fn cancel(addr: SocketAddr, session: u64, key: u64) -> Result<bool, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let payload = ClientMsg::Cancel { session, key }.encode().to_string().into_bytes();
        stream.write_all(&frame(&payload))?;
        stream.flush()?;
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        loop {
            match reader.poll(&mut stream)? {
                Some(payload) => match ServerMsg::decode(&payload)? {
                    ServerMsg::CancelAck { ok } => return Ok(ok),
                    other => {
                        return Err(ClientError::Protocol(format!(
                            "unexpected reply to cancel: {other:?}"
                        )))
                    }
                },
                None => continue,
            }
        }
    }
}
