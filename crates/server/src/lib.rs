//! # flock-server
//!
//! A TCP server exposing a [`FlockDb`](flock_core::FlockDb) over the Flock
//! wire protocol (see [`protocol`]). The paper's Enterprise-Grade ML
//! system is *served* — governed data and models live behind a service
//! boundary, not linked into the application — so this crate is the
//! boundary: clients authenticate as catalog users, speak SQL (including
//! `PREDICT`, `PREPARE`-style plan-cache hits, and `SET` session knobs),
//! and inherit all of the engine's admission control, statement timeouts,
//! and cooperative cancellation per connection.
//!
//! Design points:
//!
//! * **Thread-per-connection over `std::net`.** No async runtime and no
//!   new dependencies; sessions are cheap and the engine's admission
//!   controller — not the socket layer — bounds concurrent query work.
//! * **One engine session per connection.** The first frame must be
//!   `Hello {user}`; the user must exist in the catalog. Every later
//!   statement runs with that session's grants, timeout, and metrics.
//! * **Out-of-band cancel.** `Welcome` returns a `cancel_key`; a *second*
//!   connection may send `Cancel {session, key}` pre-auth to raise the
//!   victim's cancel flag mid-statement. The engine aborts at the next
//!   row-stride boundary and the admission slot is released by RAII.
//! * **Hardened edges.** Read timeouts make every worker responsive to
//!   shutdown; frames are length-capped and checksummed before parsing;
//!   protocol violations get a typed `Error` reply and a closed
//!   connection; SQL errors leave the connection usable. Counters
//!   (`connections_accepted`, `connections_open`, `auth_failures`,
//!   `frames_rejected`) surface as `flock_metrics` rows.
//! * **Graceful shutdown.** [`ServerHandle::shutdown`] stops the accept
//!   loop, lets each worker finish (and answer) its in-flight statement,
//!   sends `Goodbye`, and joins every thread before returning.

pub mod client;
pub mod protocol;

use flock_core::FlockDb;
use flock_sql::exec::CancelHandle;
use flock_sql::{PreparedStatement, SqlError, WireError};
use protocol::{
    frame, ClientMsg, FrameError, FrameReader, ServerMsg, WireColumn, WireRows,
    DEFAULT_MAX_FRAME,
};
use std::collections::HashMap;
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hash, Hasher};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identification string sent in `Welcome`.
pub const SERVER_NAME: &str = "flock-serve/0.1";

/// Tunables for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (use port 0 to let the OS pick; see
    /// [`ServerHandle::local_addr`]).
    pub bind: SocketAddr,
    /// Cap on a single frame's payload bytes.
    pub max_frame: usize,
    /// Read-poll tick: how quickly workers notice shutdown / cancellation
    /// of the *connection* (statement cancellation is the engine's job).
    pub poll_interval: Duration,
    /// Drop connections idle (no complete frame) for this long. Zero
    /// disables the idle check.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: "127.0.0.1:0".parse().unwrap(),
            max_frame: DEFAULT_MAX_FRAME,
            poll_interval: Duration::from_millis(25),
            idle_timeout: Duration::from_secs(300),
        }
    }
}

/// Per-session entry in the cancel registry.
struct SessionEntry {
    key: u64,
    handle: CancelHandle,
}

/// State shared by the accept loop and every worker.
struct Shared {
    db: Arc<FlockDb>,
    config: ServerConfig,
    shutdown: AtomicBool,
    sessions: Mutex<HashMap<u64, SessionEntry>>,
    next_session: AtomicU64,
    key_seed: RandomState,
    // flock_metrics counters.
    connections_accepted: Arc<AtomicU64>,
    connections_open: Arc<AtomicU64>,
    auth_failures: Arc<AtomicU64>,
    frames_rejected: Arc<AtomicU64>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn cancel_key_for(&self, session: u64) -> u64 {
        // Per-process random keys: RandomState is seeded from OS entropy,
        // so keys are unguessable across runs without adding a rand dep.
        let mut h = self.key_seed.build_hasher();
        session.hash(&mut h);
        0xF10C_5EED_u64.hash(&mut h);
        h.finish()
    }
}

/// A running server. Dropping the handle does *not* stop it; call
/// [`ServerHandle::shutdown`].
pub struct Server;

pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving. Returns once the listener is live.
    pub fn start(db: Arc<FlockDb>, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(config.bind)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            db,
            config,
            shutdown: AtomicBool::new(false),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            key_seed: RandomState::new(),
            connections_accepted: Arc::new(AtomicU64::new(0)),
            connections_open: Arc::new(AtomicU64::new(0)),
            auth_failures: Arc::new(AtomicU64::new(0)),
            frames_rejected: Arc::new(AtomicU64::new(0)),
            workers: Mutex::new(Vec::new()),
        });
        let metrics = shared.db.database().engine_metrics();
        metrics.register("server_connections_accepted", shared.connections_accepted.clone());
        metrics.register("server_connections_open", shared.connections_open.clone());
        metrics.register("server_auth_failures", shared.auth_failures.clone());
        metrics.register("server_frames_rejected", shared.frames_rejected.clone());

        let accept_shared = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("flock-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(ServerHandle { shared, addr, accept_thread: Some(accept_thread) })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently open.
    pub fn connections_open(&self) -> u64 {
        self.shared.connections_open.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, let every worker drain its
    /// in-flight statement, send `Goodbye`, and join all threads.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let workers = std::mem::take(&mut *self.shared.workers.lock().unwrap());
        for w in workers {
            let _ = w.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late client): refuse.
                    drop(stream);
                    break;
                }
                shared.connections_accepted.fetch_add(1, Ordering::Relaxed);
                let conn_shared = shared.clone();
                let worker = std::thread::Builder::new()
                    .name("flock-conn".into())
                    .spawn(move || {
                        conn_shared.connections_open.fetch_add(1, Ordering::Relaxed);
                        // Connection panics must never take down the
                        // server; the counter is restored either way.
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || serve_connection(stream, &conn_shared),
                        ));
                        conn_shared.connections_open.fetch_sub(1, Ordering::Relaxed);
                        if result.is_err() {
                            conn_shared.frames_rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                if let Ok(handle) = worker {
                    shared.workers.lock().unwrap().push(handle);
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept error (EMFILE, ...): keep serving.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Send a message, ignoring socket errors (the peer may already be gone).
fn send(stream: &mut TcpStream, msg: &ServerMsg) {
    let payload = msg.encode().to_string().into_bytes();
    let _ = stream.write_all(&frame(&payload));
    let _ = stream.flush();
}

fn send_protocol_reject(stream: &mut TcpStream, shared: &Shared, err: &FrameError) {
    shared.frames_rejected.fetch_add(1, Ordering::Relaxed);
    send(stream, &ServerMsg::Error(err.to_wire()));
}

/// Outcome of waiting for one frame.
enum Waited {
    Msg(ClientMsg),
    /// Peer disconnected cleanly between frames.
    Hangup,
    /// Server is shutting down / connection idled out.
    Stop,
}

fn wait_for_msg(
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    shared: &Shared,
) -> Result<Waited, FrameError> {
    let idle = shared.config.idle_timeout;
    let started = Instant::now();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(Waited::Stop);
        }
        match reader.poll(stream) {
            Ok(Some(payload)) => return ClientMsg::decode(&payload).map(Waited::Msg),
            Ok(None) => {
                if !idle.is_zero() && started.elapsed() > idle {
                    return Ok(Waited::Stop);
                }
            }
            Err(FrameError::Closed) => return Ok(Waited::Hangup),
            Err(e) => return Err(e),
        }
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new(shared.config.max_frame);

    // First frame: Hello (open a session) or Cancel (out-of-band).
    let user = match wait_for_msg(&mut stream, &mut reader, shared) {
        Ok(Waited::Msg(ClientMsg::Hello { user })) => user,
        Ok(Waited::Msg(ClientMsg::Cancel { session, key })) => {
            let ok = {
                let sessions = shared.sessions.lock().unwrap();
                match sessions.get(&session) {
                    Some(entry) if entry.key == key => {
                        entry.handle.cancel();
                        true
                    }
                    _ => false,
                }
            };
            if !ok {
                shared.auth_failures.fetch_add(1, Ordering::Relaxed);
            }
            send(&mut stream, &ServerMsg::CancelAck { ok });
            return;
        }
        Ok(Waited::Msg(_)) => {
            // Query-before-Hello and friends: typed reject, close.
            let e = FrameError::BadMessage("expected \"hello\" before any other message".into());
            send_protocol_reject(&mut stream, shared, &e);
            return;
        }
        Ok(Waited::Hangup) => return,
        Ok(Waited::Stop) => {
            send(&mut stream, &ServerMsg::Goodbye);
            return;
        }
        Err(e) => {
            send_protocol_reject(&mut stream, shared, &e);
            return;
        }
    };

    // Authenticate: the user must exist in the catalog. ("admin" is the
    // bootstrap superuser; others are CREATE USER objects.)
    if !shared.db.user_exists(&user) {
        shared.auth_failures.fetch_add(1, Ordering::Relaxed);
        send(
            &mut stream,
            &ServerMsg::Error(
                SqlError::AccessDenied(format!("unknown user '{user}'")).to_wire(),
            ),
        );
        return;
    }

    let mut session = shared.db.session(&user);
    let session_id = shared.next_session.fetch_add(1, Ordering::Relaxed);
    let cancel_key = shared.cancel_key_for(session_id);
    shared.sessions.lock().unwrap().insert(
        session_id,
        SessionEntry { key: cancel_key, handle: session.cancel_handle() },
    );
    send(
        &mut stream,
        &ServerMsg::Welcome { session: session_id, cancel_key, server: SERVER_NAME.into() },
    );

    let mut prepared: HashMap<u64, PreparedStatement> = HashMap::new();
    let mut next_stmt: u64 = 1;

    loop {
        match wait_for_msg(&mut stream, &mut reader, shared) {
            Ok(Waited::Msg(msg)) => match msg {
                ClientMsg::Query { sql } => {
                    let reply = match session.execute(&sql) {
                        Ok(r) => ServerMsg::Rows(result_to_wire(&r)),
                        Err(e) => ServerMsg::Error(e.to_wire()),
                    };
                    send(&mut stream, &reply);
                }
                ClientMsg::Prepare { sql } => {
                    let reply = match session.prepare(&sql) {
                        Ok(p) => {
                            let id = next_stmt;
                            next_stmt += 1;
                            let params = p.param_count() as u64;
                            prepared.insert(id, p);
                            ServerMsg::Prepared { stmt: id, params }
                        }
                        Err(e) => ServerMsg::Error(e.to_wire()),
                    };
                    send(&mut stream, &reply);
                }
                ClientMsg::Execute { stmt, params } => {
                    let reply = match prepared.get(&stmt) {
                        Some(p) => match session.execute_prepared(p, &params) {
                            Ok(r) => ServerMsg::Rows(result_to_wire(&r)),
                            Err(e) => ServerMsg::Error(e.to_wire()),
                        },
                        None => ServerMsg::Error(WireError {
                            code: "protocol".into(),
                            message: format!("unknown prepared statement {stmt}"),
                            retryable: false,
                        }),
                    };
                    send(&mut stream, &reply);
                }
                ClientMsg::CloseStmt { stmt } => {
                    prepared.remove(&stmt);
                    send(&mut stream, &ServerMsg::StmtClosed);
                }
                ClientMsg::Goodbye => {
                    send(&mut stream, &ServerMsg::Goodbye);
                    break;
                }
                ClientMsg::Hello { .. } | ClientMsg::Cancel { .. } => {
                    let e = FrameError::BadMessage(
                        "hello/cancel not valid on an open session".into(),
                    );
                    send_protocol_reject(&mut stream, shared, &e);
                    break;
                }
            },
            Ok(Waited::Hangup) => break,
            Ok(Waited::Stop) => {
                send(&mut stream, &ServerMsg::Goodbye);
                break;
            }
            Err(e) => {
                send_protocol_reject(&mut stream, shared, &e);
                break;
            }
        }
    }
    shared.sessions.lock().unwrap().remove(&session_id);
}

fn result_to_wire(r: &flock_sql::QueryResult) -> WireRows {
    let mut out = WireRows {
        columns: Vec::new(),
        rows: Vec::new(),
        rows_affected: r.rows_affected as u64,
        message: r.message.clone(),
    };
    if let Some(batch) = &r.batch {
        out.columns = batch
            .schema()
            .columns()
            .iter()
            .map(|c| WireColumn { name: c.name.clone(), dtype: c.data_type.to_string() })
            .collect();
        out.rows = (0..batch.num_rows()).map(|i| batch.row(i)).collect();
    }
    out
}
