//! `flock-serve` — run a Flock database behind the TCP wire protocol.
//!
//! ```text
//! flock-serve [--bind ADDR:PORT] [--dir PATH] [--init FILE] [--timeout-ms N] [--max-concurrent N] [--table-memory-budget BYTES]
//! ```
//!
//! * `--bind` (default `127.0.0.1:5433`): listen address; port 0 picks a
//!   free port and prints it.
//! * `--dir`: open a durable database in this directory (WAL + checkpoints
//!   survive restarts). Without it the database is in-memory.
//! * `--init`: run a SQL script as `admin` before accepting connections
//!   (create users, tables, models for a demo or a test).
//! * `--timeout-ms`: database-default statement timeout.
//! * `--max-concurrent`: admission-control limit on concurrently executing
//!   queries (0 = unlimited).
//! * `--table-memory-budget`: resident-bytes budget per table (0 =
//!   unlimited). Tables exceeding it spill to compressed columnar parts
//!   on disk; requires `--dir`.
//!
//! The server runs until stdin reaches EOF (`flock-serve < /dev/null`
//! exits immediately after binding; in a terminal, Ctrl-D stops it), then
//! shuts down gracefully: in-flight statements finish and every
//! connection gets a `Goodbye`.

use flock_core::FlockDb;
use flock_server::{Server, ServerConfig};
use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: flock-serve [--bind ADDR:PORT] [--dir PATH] [--init FILE] \
         [--timeout-ms N] [--max-concurrent N] [--table-memory-budget BYTES]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut bind = "127.0.0.1:5433".to_string();
    let mut dir: Option<String> = None;
    let mut init: Option<String> = None;
    let mut timeout_ms: u64 = 0;
    let mut max_concurrent: usize = 0;
    let mut table_memory_budget: u64 = 0;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage()
        });
        match arg.as_str() {
            "--bind" => bind = value("--bind"),
            "--dir" => dir = Some(value("--dir")),
            "--init" => init = Some(value("--init")),
            "--timeout-ms" => {
                timeout_ms = value("--timeout-ms").parse().unwrap_or_else(|_| usage())
            }
            "--max-concurrent" => {
                max_concurrent = value("--max-concurrent").parse().unwrap_or_else(|_| usage())
            }
            "--table-memory-budget" => {
                table_memory_budget =
                    value("--table-memory-budget").parse().unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
    }

    let db = match &dir {
        Some(path) => {
            match FlockDb::open(path, flock_sql::DurabilityOptions::default()) {
                Ok(db) => db,
                Err(e) => {
                    eprintln!("flock-serve: cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => FlockDb::new(),
    };
    // Continuous queries need the tick scheduler even without --dir
    // (Database::open starts it on recovery; in-memory does not).
    db.database().start_stream_scheduler();

    if timeout_ms > 0 || max_concurrent > 0 {
        let mut opts = db.database().exec_options();
        opts.statement_timeout_ms = timeout_ms;
        opts.max_concurrent_queries = max_concurrent;
        db.database().set_exec_options(opts);
    }
    if table_memory_budget > 0 {
        if dir.is_none() {
            eprintln!("flock-serve: --table-memory-budget requires --dir (parts live on disk)");
            return ExitCode::FAILURE;
        }
        db.database().set_table_memory_budget(table_memory_budget);
    }

    if let Some(script) = &init {
        let sql = match std::fs::read_to_string(script) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("flock-serve: cannot read {script}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut session = db.session("admin");
        for stmt in sql.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            if let Err(e) = session.execute(stmt) {
                eprintln!("flock-serve: init statement failed: {e}\n  {stmt}");
                return ExitCode::FAILURE;
            }
        }
    }

    let config = ServerConfig {
        bind: match bind.parse() {
            Ok(a) => a,
            Err(_) => {
                eprintln!("flock-serve: bad --bind address '{bind}'");
                return ExitCode::FAILURE;
            }
        },
        ..ServerConfig::default()
    };

    let handle = match Server::start(Arc::new(db), config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("flock-serve: cannot bind {bind}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("flock-serve listening on {}", handle.local_addr());

    // Block until stdin closes, then drain and exit.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    eprintln!("flock-serve: shutting down");
    handle.shutdown();
    ExitCode::SUCCESS
}
