//! `flock-cli` — line-oriented client for a running `flock-serve`.
//!
//! ```text
//! flock-cli [--addr ADDR:PORT] [--user NAME] [-f FILE]
//! ```
//!
//! Interactive: statements end with `;` (may span lines); `\q` quits.
//! With `-f FILE` the script runs non-interactively and the process exits
//! non-zero if any statement fails — that is what CI's smoke job checks.

use flock_server::client::{Client, ClientError};
use flock_server::protocol::WireRows;
use std::io::{BufRead, Write};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: flock-cli [--addr ADDR:PORT] [--user NAME] [-f FILE]");
    std::process::exit(2);
}

/// Render a result set as an aligned text table.
fn render(r: &WireRows) -> String {
    if r.columns.is_empty() {
        if r.rows_affected > 0 {
            return format!("OK, {} row(s) affected. {}", r.rows_affected, r.message);
        }
        return format!("OK. {}", r.message);
    }
    let mut widths: Vec<usize> = r.columns.iter().map(|c| c.name.len()).collect();
    let cells: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| row.iter().map(|v| v.to_string()).collect())
        .collect();
    for row in &cells {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, c) in r.columns.iter().enumerate() {
        out.push_str(&format!("{:<w$}  ", c.name, w = widths[i]));
    }
    out.push('\n');
    for (i, _) in r.columns.iter().enumerate() {
        out.push_str(&"-".repeat(widths[i]));
        out.push_str("  ");
    }
    out.push('\n');
    for row in &cells {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        out.push('\n');
    }
    out.push_str(&format!("({} row(s))", r.rows.len()));
    out
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:5433".to_string();
    let mut user = "admin".to_string();
    let mut file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage()
        });
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--user" => user = value("--user"),
            "-f" => file = Some(value("-f")),
            _ => usage(),
        }
    }

    let addr = match addr.parse() {
        Ok(a) => a,
        Err(_) => {
            eprintln!("flock-cli: bad --addr '{addr}'");
            return ExitCode::FAILURE;
        }
    };
    let mut client = match Client::connect(addr, &user) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("flock-cli: cannot connect as {user}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let interactive = file.is_none();
    if interactive {
        println!("connected to {} as {} (session {})", client.server_name(), user, client.session_id());
        println!("end statements with ';', quit with \\q");
    }

    let input: Box<dyn BufRead> = match &file {
        Some(path) => match std::fs::File::open(path) {
            Ok(f) => Box::new(std::io::BufReader::new(f)),
            Err(e) => {
                eprintln!("flock-cli: cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };

    let mut failed = false;
    let mut buffer = String::new();
    let mut lines = input.lines();
    loop {
        if interactive {
            print!("{}", if buffer.is_empty() { "flock> " } else { "   ... " });
            let _ = std::io::stdout().flush();
        }
        let line = match lines.next() {
            Some(Ok(l)) => l,
            Some(Err(e)) => {
                eprintln!("flock-cli: read error: {e}");
                failed = true;
                break;
            }
            None => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() && (trimmed.is_empty() || trimmed.starts_with("--")) {
            continue;
        }
        if buffer.is_empty() && (trimmed == "\\q" || trimmed == "\\quit") {
            break;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        // Execute every complete `;`-terminated statement in the buffer.
        while let Some(pos) = buffer.find(';') {
            let stmt = buffer[..pos].trim().to_string();
            buffer = buffer[pos + 1..].to_string();
            if stmt.is_empty() {
                continue;
            }
            match client.query(&stmt) {
                Ok(rows) => println!("{}", render(&rows)),
                Err(ClientError::Sql(e)) => {
                    eprintln!("error [{}{}]: {}", e.code, if e.retryable { ", retryable" } else { "" }, e.message);
                    failed = true;
                }
                Err(e) => {
                    eprintln!("flock-cli: connection lost: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let _ = client.goodbye();
    if failed && file.is_some() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
