//! The Flock wire protocol: length-prefixed, checksummed frames carrying
//! JSON documents.
//!
//! # Frame layout
//!
//! Every message — in both directions — is one frame:
//!
//! ```text
//! [payload_len: u32 LE][fnv1a64(payload): u64 LE][payload bytes]
//! ```
//!
//! This is the WAL's record idiom (`crates/sql/src/wal/codec.rs`) applied
//! to a socket: the length prefix delimits messages on the byte stream and
//! the checksum rejects corruption *before* the payload is parsed. The
//! payload is a single JSON object with a `"type"` tag.
//!
//! # JSON, by hand
//!
//! Documents are built and picked apart at the [`serde_json::Value`] level
//! rather than via derived `Serialize` impls. That pins the byte layout to
//! this module (the wire contract) instead of to derive internals, and it
//! keeps every decoder total: malformed input of any shape surfaces as
//! [`FrameError`], never a panic. SQL `Value`s travel with just enough
//! tagging to round-trip the engine's types: `Null`/`Bool`/`Int`/`Text`
//! map to their JSON natives, `Float` to a JSON float (non-finite floats
//! degrade to `null`, as JSON has no spelling for them), and `Date` to
//! `{"date": days}`.

use flock_sql::wal::fnv64;
use flock_sql::{Value as SqlValue, WireError};
use serde_json::Value as Json;
use std::io::{self, Read, Write};

/// Bytes before the payload: `u32` length + `u64` checksum.
pub const FRAME_HEADER: usize = 12;

/// Default cap on a single frame's payload. Oversized length prefixes are
/// rejected *before* any allocation, so a hostile 4 GiB prefix costs the
/// server nothing.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Protocol version spoken by this build; sent in `Welcome`.
pub const PROTOCOL_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Frame errors
// ---------------------------------------------------------------------------

/// Why a frame could not be produced from the byte stream.
#[derive(Debug)]
pub enum FrameError {
    /// Clean EOF on a frame boundary — the peer hung up, no data lost.
    Closed,
    /// EOF mid-frame: the peer died between header and payload.
    Truncated,
    /// The length prefix exceeds the configured maximum.
    TooLarge { declared: usize, max: usize },
    /// Payload bytes do not hash to the header checksum.
    BadChecksum,
    /// The payload is not a JSON object with a known `"type"` tag.
    BadMessage(String),
    /// Underlying socket error (not a timeout — timeouts are surfaced as
    /// `Ok(None)` by [`FrameReader::poll`] so callers can keep waiting).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds max {max}")
            }
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::BadMessage(m) => write!(f, "bad message: {m}"),
            FrameError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl FrameError {
    /// The stable error code a server sends back before closing, so even a
    /// protocol-level reject is machine-readable.
    pub fn to_wire(&self) -> WireError {
        WireError {
            code: "protocol".to_string(),
            message: self.to_string(),
            retryable: false,
        }
    }
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

/// Serialize one frame around a payload.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Write one message as a frame and flush it.
pub fn write_msg<W: Write>(w: &mut W, doc: &Json) -> io::Result<()> {
    let payload = doc.to_string().into_bytes();
    w.write_all(&frame(&payload))?;
    w.flush()
}

/// Incremental frame reader over a non-blocking-ish stream (a socket with
/// a short read timeout). Bytes received before a timeout are buffered, so
/// a frame that arrives in dribbles across many poll ticks is reassembled
/// losslessly; the caller regains control on every tick to check shutdown
/// flags and idle deadlines.
pub struct FrameReader {
    buf: Vec<u8>,
    max_frame: usize,
}

impl FrameReader {
    pub fn new(max_frame: usize) -> FrameReader {
        FrameReader { buf: Vec::new(), max_frame }
    }

    /// Try to complete one frame. Returns:
    /// * `Ok(Some(payload))` — a whole, checksum-verified frame;
    /// * `Ok(None)` — no complete frame yet (timeout tick); call again;
    /// * `Err(_)` — EOF, corruption, or a hard socket error.
    pub fn poll<R: Read>(&mut self, r: &mut R) -> Result<Option<Vec<u8>>, FrameError> {
        // First drain anything already buffered, then read more.
        loop {
            if let Some(payload) = self.try_extract()? {
                return Ok(Some(payload));
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return Err(if self.buf.is_empty() {
                        FrameError::Closed
                    } else {
                        FrameError::Truncated
                    });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(None);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }

    fn try_extract(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.buf.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().unwrap()) as usize;
        if len > self.max_frame {
            return Err(FrameError::TooLarge { declared: len, max: self.max_frame });
        }
        if self.buf.len() < FRAME_HEADER + len {
            return Ok(None);
        }
        let want = u64::from_le_bytes(self.buf[4..12].try_into().unwrap());
        let payload = self.buf[FRAME_HEADER..FRAME_HEADER + len].to_vec();
        if fnv64(&payload) != want {
            return Err(FrameError::BadChecksum);
        }
        self.buf.drain(..FRAME_HEADER + len);
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed (tests use this).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// Blocking convenience for clients: poll until a frame (or error). The
/// stream should either have no read timeout or the caller tolerates
/// spinning on ticks.
pub fn read_msg<R: Read>(
    reader: &mut FrameReader,
    r: &mut R,
) -> Result<ServerMsg, FrameError> {
    loop {
        if let Some(payload) = reader.poll(r)? {
            return ServerMsg::decode(&payload);
        }
    }
}

// ---------------------------------------------------------------------------
// SQL value <-> JSON
// ---------------------------------------------------------------------------

/// Encode one engine value for the wire.
pub fn value_to_json(v: &SqlValue) -> Json {
    match v {
        SqlValue::Null => Json::Null,
        SqlValue::Bool(b) => Json::Bool(*b),
        SqlValue::Int(i) => Json::from(*i),
        SqlValue::Float(f) => Json::from(*f),
        SqlValue::Text(s) => Json::String(s.clone()),
        SqlValue::Date(d) => {
            let mut m = serde_json::Map::new();
            m.insert("date".to_string(), Json::from(i64::from(*d)));
            Json::Object(m)
        }
    }
}

/// Decode one wire value; `None` on shapes the protocol never emits.
pub fn value_from_json(v: &Json) -> Option<SqlValue> {
    match v {
        Json::Null => Some(SqlValue::Null),
        Json::Bool(b) => Some(SqlValue::Bool(*b)),
        Json::String(s) => Some(SqlValue::Text(s.clone())),
        Json::Object(_) => {
            let days = v.get("date")?.as_i64()?;
            Some(SqlValue::Date(i32::try_from(days).ok()?))
        }
        _ => {
            if let Some(i) = v.as_i64() {
                Some(SqlValue::Int(i))
            } else {
                v.as_f64().map(SqlValue::Float)
            }
        }
    }
}

fn values_to_json(vs: &[SqlValue]) -> Json {
    Json::Array(vs.iter().map(value_to_json).collect())
}

fn values_from_json(v: &Json) -> Option<Vec<SqlValue>> {
    v.as_array()?.iter().map(value_from_json).collect()
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Open a session as a catalog user. Must be the first message.
    Hello { user: String },
    /// Execute one SQL statement.
    Query { sql: String },
    /// Parse + plan a parameterized statement into the plan cache.
    Prepare { sql: String },
    /// Execute a previously prepared statement with bound parameters.
    Execute { stmt: u64, params: Vec<SqlValue> },
    /// Drop a prepared statement handle.
    CloseStmt { stmt: u64 },
    /// Out-of-band cancellation: sent *instead of* `Hello` on a fresh
    /// connection, naming the victim session and proving authority with
    /// the `cancel_key` that `Welcome` handed to that session's owner.
    Cancel { session: u64, key: u64 },
    /// Orderly close.
    Goodbye,
}

impl ClientMsg {
    pub fn encode(&self) -> Json {
        let mut m = serde_json::Map::new();
        match self {
            ClientMsg::Hello { user } => {
                m.insert("type".into(), Json::String("hello".into()));
                m.insert("user".into(), Json::String(user.clone()));
                m.insert("protocol".into(), Json::from(u64::from(PROTOCOL_VERSION)));
            }
            ClientMsg::Query { sql } => {
                m.insert("type".into(), Json::String("query".into()));
                m.insert("sql".into(), Json::String(sql.clone()));
            }
            ClientMsg::Prepare { sql } => {
                m.insert("type".into(), Json::String("prepare".into()));
                m.insert("sql".into(), Json::String(sql.clone()));
            }
            ClientMsg::Execute { stmt, params } => {
                m.insert("type".into(), Json::String("execute".into()));
                m.insert("stmt".into(), Json::from(*stmt));
                m.insert("params".into(), values_to_json(params));
            }
            ClientMsg::CloseStmt { stmt } => {
                m.insert("type".into(), Json::String("close_stmt".into()));
                m.insert("stmt".into(), Json::from(*stmt));
            }
            ClientMsg::Cancel { session, key } => {
                m.insert("type".into(), Json::String("cancel".into()));
                m.insert("session".into(), Json::from(*session));
                m.insert("key".into(), Json::from(*key));
            }
            ClientMsg::Goodbye => {
                m.insert("type".into(), Json::String("goodbye".into()));
            }
        }
        Json::Object(m)
    }

    pub fn decode(payload: &[u8]) -> Result<ClientMsg, FrameError> {
        let doc: Json = serde_json::from_slice(payload)
            .map_err(|e| FrameError::BadMessage(format!("invalid JSON: {e}")))?;
        let typ = doc
            .get("type")
            .and_then(|t| t.as_str())
            .ok_or_else(|| FrameError::BadMessage("missing \"type\" tag".into()))?;
        let field = |name: &str| {
            doc.get(name)
                .cloned()
                .ok_or_else(|| FrameError::BadMessage(format!("{typ}: missing \"{name}\"")))
        };
        let str_field = |name: &str| -> Result<String, FrameError> {
            field(name)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| FrameError::BadMessage(format!("{typ}: \"{name}\" not a string")))
        };
        let u64_field = |name: &str| -> Result<u64, FrameError> {
            field(name)?
                .as_u64()
                .ok_or_else(|| FrameError::BadMessage(format!("{typ}: \"{name}\" not a u64")))
        };
        match typ {
            "hello" => Ok(ClientMsg::Hello { user: str_field("user")? }),
            "query" => Ok(ClientMsg::Query { sql: str_field("sql")? }),
            "prepare" => Ok(ClientMsg::Prepare { sql: str_field("sql")? }),
            "execute" => Ok(ClientMsg::Execute {
                stmt: u64_field("stmt")?,
                params: values_from_json(&field("params")?).ok_or_else(|| {
                    FrameError::BadMessage("execute: bad \"params\" array".into())
                })?,
            }),
            "close_stmt" => Ok(ClientMsg::CloseStmt { stmt: u64_field("stmt")? }),
            "cancel" => Ok(ClientMsg::Cancel {
                session: u64_field("session")?,
                key: u64_field("key")?,
            }),
            "goodbye" => Ok(ClientMsg::Goodbye),
            other => Err(FrameError::BadMessage(format!("unknown type \"{other}\""))),
        }
    }
}

/// One column of a result set: name + declared type.
#[derive(Debug, Clone, PartialEq)]
pub struct WireColumn {
    pub name: String,
    pub dtype: String,
}

/// A result set flattened for the wire.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireRows {
    pub columns: Vec<WireColumn>,
    pub rows: Vec<Vec<SqlValue>>,
    pub rows_affected: u64,
    pub message: String,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Session opened. `cancel_key` authorizes out-of-band `Cancel`.
    Welcome { session: u64, cancel_key: u64, server: String },
    /// A statement's result.
    Rows(WireRows),
    /// A statement was prepared; execute it by handle.
    Prepared { stmt: u64, params: u64 },
    /// Acknowledges `CloseStmt`.
    StmtClosed,
    /// Acknowledges `Cancel`: whether the victim session existed, the key
    /// matched, and the flag was raised.
    CancelAck { ok: bool },
    /// A typed failure. SQL errors leave the connection usable; protocol
    /// errors are followed by the server closing it.
    Error(WireError),
    /// Orderly close (response to `Goodbye`, or server shutdown).
    Goodbye,
}

impl ServerMsg {
    pub fn encode(&self) -> Json {
        let mut m = serde_json::Map::new();
        match self {
            ServerMsg::Welcome { session, cancel_key, server } => {
                m.insert("type".into(), Json::String("welcome".into()));
                m.insert("session".into(), Json::from(*session));
                m.insert("cancel_key".into(), Json::from(*cancel_key));
                m.insert("server".into(), Json::String(server.clone()));
                m.insert("protocol".into(), Json::from(u64::from(PROTOCOL_VERSION)));
            }
            ServerMsg::Rows(r) => {
                m.insert("type".into(), Json::String("rows".into()));
                m.insert(
                    "columns".into(),
                    Json::Array(
                        r.columns
                            .iter()
                            .map(|c| {
                                let mut cm = serde_json::Map::new();
                                cm.insert("name".into(), Json::String(c.name.clone()));
                                cm.insert("dtype".into(), Json::String(c.dtype.clone()));
                                Json::Object(cm)
                            })
                            .collect(),
                    ),
                );
                m.insert(
                    "rows".into(),
                    Json::Array(r.rows.iter().map(|row| values_to_json(row)).collect()),
                );
                m.insert("rows_affected".into(), Json::from(r.rows_affected));
                m.insert("message".into(), Json::String(r.message.clone()));
            }
            ServerMsg::Prepared { stmt, params } => {
                m.insert("type".into(), Json::String("prepared".into()));
                m.insert("stmt".into(), Json::from(*stmt));
                m.insert("params".into(), Json::from(*params));
            }
            ServerMsg::StmtClosed => {
                m.insert("type".into(), Json::String("stmt_closed".into()));
            }
            ServerMsg::CancelAck { ok } => {
                m.insert("type".into(), Json::String("cancel_ack".into()));
                m.insert("ok".into(), Json::Bool(*ok));
            }
            ServerMsg::Error(e) => {
                m.insert("type".into(), Json::String("error".into()));
                m.insert("error".into(), e.to_json());
            }
            ServerMsg::Goodbye => {
                m.insert("type".into(), Json::String("goodbye".into()));
            }
        }
        Json::Object(m)
    }

    pub fn decode(payload: &[u8]) -> Result<ServerMsg, FrameError> {
        let doc: Json = serde_json::from_slice(payload)
            .map_err(|e| FrameError::BadMessage(format!("invalid JSON: {e}")))?;
        let typ = doc
            .get("type")
            .and_then(|t| t.as_str())
            .ok_or_else(|| FrameError::BadMessage("missing \"type\" tag".into()))?;
        let bad = |what: &str| FrameError::BadMessage(format!("{typ}: bad \"{what}\""));
        match typ {
            "welcome" => Ok(ServerMsg::Welcome {
                session: doc.get("session").and_then(|v| v.as_u64()).ok_or_else(|| bad("session"))?,
                cancel_key: doc
                    .get("cancel_key")
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| bad("cancel_key"))?,
                server: doc
                    .get("server")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| bad("server"))?
                    .to_string(),
            }),
            "rows" => {
                let columns = doc
                    .get("columns")
                    .and_then(|v| v.as_array())
                    .ok_or_else(|| bad("columns"))?
                    .iter()
                    .map(|c| {
                        Some(WireColumn {
                            name: c.get("name")?.as_str()?.to_string(),
                            dtype: c.get("dtype")?.as_str()?.to_string(),
                        })
                    })
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| bad("columns"))?;
                let rows = doc
                    .get("rows")
                    .and_then(|v| v.as_array())
                    .ok_or_else(|| bad("rows"))?
                    .iter()
                    .map(values_from_json)
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| bad("rows"))?;
                Ok(ServerMsg::Rows(WireRows {
                    columns,
                    rows,
                    rows_affected: doc
                        .get("rows_affected")
                        .and_then(|v| v.as_u64())
                        .ok_or_else(|| bad("rows_affected"))?,
                    message: doc
                        .get("message")
                        .and_then(|v| v.as_str())
                        .ok_or_else(|| bad("message"))?
                        .to_string(),
                }))
            }
            "prepared" => Ok(ServerMsg::Prepared {
                stmt: doc.get("stmt").and_then(|v| v.as_u64()).ok_or_else(|| bad("stmt"))?,
                params: doc.get("params").and_then(|v| v.as_u64()).ok_or_else(|| bad("params"))?,
            }),
            "stmt_closed" => Ok(ServerMsg::StmtClosed),
            "cancel_ack" => Ok(ServerMsg::CancelAck {
                ok: doc.get("ok").and_then(|v| v.as_bool()).ok_or_else(|| bad("ok"))?,
            }),
            "error" => {
                let e = doc
                    .get("error")
                    .and_then(WireError::from_json)
                    .ok_or_else(|| bad("error"))?;
                Ok(ServerMsg::Error(e))
            }
            "goodbye" => Ok(ServerMsg::Goodbye),
            other => Err(FrameError::BadMessage(format!("unknown type \"{other}\""))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Compare by Debug: `SqlValue`'s PartialEq has SQL semantics where
    // NULL != NULL, which is wrong for asserting wire fidelity.
    fn roundtrip_client(msg: ClientMsg) {
        let bytes = msg.encode().to_string().into_bytes();
        let back = ClientMsg::decode(&bytes).unwrap();
        assert_eq!(format!("{back:?}"), format!("{msg:?}"));
    }

    fn roundtrip_server(msg: ServerMsg) {
        let bytes = msg.encode().to_string().into_bytes();
        let back = ServerMsg::decode(&bytes).unwrap();
        assert_eq!(format!("{back:?}"), format!("{msg:?}"));
    }

    #[test]
    fn client_messages_roundtrip() {
        roundtrip_client(ClientMsg::Hello { user: "alice".into() });
        roundtrip_client(ClientMsg::Query { sql: "SELECT 1".into() });
        roundtrip_client(ClientMsg::Prepare { sql: "SELECT ?".into() });
        roundtrip_client(ClientMsg::Execute {
            stmt: 7,
            params: vec![
                SqlValue::Null,
                SqlValue::Bool(true),
                SqlValue::Int(-42),
                SqlValue::Float(2.5),
                SqlValue::Text("x \"quoted\"\nline".into()),
                SqlValue::Date(19000),
            ],
        });
        roundtrip_client(ClientMsg::CloseStmt { stmt: 7 });
        roundtrip_client(ClientMsg::Cancel { session: 3, key: u64::MAX });
        roundtrip_client(ClientMsg::Goodbye);
    }

    #[test]
    fn server_messages_roundtrip() {
        roundtrip_server(ServerMsg::Welcome {
            session: 1,
            cancel_key: 99,
            server: "flock-serve/0.1".into(),
        });
        roundtrip_server(ServerMsg::Rows(WireRows {
            columns: vec![
                WireColumn { name: "a".into(), dtype: "INT".into() },
                WireColumn { name: "b".into(), dtype: "TEXT".into() },
            ],
            rows: vec![
                vec![SqlValue::Int(1), SqlValue::Text("x".into())],
                vec![SqlValue::Null, SqlValue::Float(0.5)],
            ],
            rows_affected: 0,
            message: "2 rows".into(),
        }));
        roundtrip_server(ServerMsg::Prepared { stmt: 12, params: 2 });
        roundtrip_server(ServerMsg::StmtClosed);
        roundtrip_server(ServerMsg::CancelAck { ok: false });
        roundtrip_server(ServerMsg::Error(WireError {
            code: "admission".into(),
            message: "full".into(),
            retryable: true,
        }));
        roundtrip_server(ServerMsg::Goodbye);
    }

    #[test]
    fn whole_float_survives_as_float() {
        // 2.0 must not come back as Int(2): the JSON text keeps a ".0".
        let v = value_to_json(&SqlValue::Float(2.0));
        let text = v.to_string();
        let back: Json = serde_json::from_str(&text).unwrap();
        assert_eq!(value_from_json(&back), Some(SqlValue::Float(2.0)));
    }

    #[test]
    fn nonfinite_float_degrades_to_null() {
        let v = value_to_json(&SqlValue::Float(f64::NAN));
        let text = v.to_string();
        let back: Json = serde_json::from_str(&text).unwrap();
        assert!(matches!(value_from_json(&back), Some(SqlValue::Null)));
    }

    #[test]
    fn frame_reader_reassembles_dribbled_bytes() {
        let payload = ClientMsg::Query { sql: "SELECT 1".into() }.encode().to_string();
        let framed = frame(payload.as_bytes());
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        // Feed one byte at a time through a cursor that yields WouldBlock
        // after each byte, as a slow socket would.
        struct Dribble<'a> {
            data: &'a [u8],
            pos: usize,
            ready: bool,
        }
        impl Read for Dribble<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if !self.ready {
                    self.ready = true;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
                }
                self.ready = false;
                if self.pos >= self.data.len() {
                    return Ok(0);
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut src = Dribble { data: &framed, pos: 0, ready: true };
        let mut out = None;
        for _ in 0..(framed.len() * 2 + 4) {
            match reader.poll(&mut src) {
                Ok(Some(p)) => {
                    out = Some(p);
                    break;
                }
                Ok(None) => continue,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        let out = out.expect("frame should complete");
        assert_eq!(out, payload.as_bytes());
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn corrupt_frames_are_typed_rejects() {
        // Bad checksum.
        let mut framed = frame(b"{\"type\":\"goodbye\"}");
        let last = framed.len() - 1;
        framed[last] ^= 0xFF;
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        let mut cur = io::Cursor::new(framed);
        assert!(matches!(reader.poll(&mut cur), Err(FrameError::BadChecksum)));

        // Oversized declared length: rejected from the header alone.
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&u32::MAX.to_le_bytes());
        hdr.extend_from_slice(&0u64.to_le_bytes());
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        let mut cur = io::Cursor::new(hdr);
        assert!(matches!(reader.poll(&mut cur), Err(FrameError::TooLarge { .. })));

        // Truncated: header promises more payload than ever arrives.
        let full = frame(b"{\"type\":\"goodbye\"}");
        let cut = &full[..full.len() - 3];
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        let mut cur = io::Cursor::new(cut.to_vec());
        assert!(matches!(reader.poll(&mut cur), Err(FrameError::Truncated)));

        // Valid frame, garbage JSON payload.
        let garbage = frame(b"\x00\x01\x02 not json");
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        let mut cur = io::Cursor::new(garbage);
        let payload = reader.poll(&mut cur).unwrap().unwrap();
        assert!(matches!(ClientMsg::decode(&payload), Err(FrameError::BadMessage(_))));

        // Valid JSON, wrong shape.
        let wrong = frame(b"{\"type\":\"execute\",\"stmt\":\"nope\",\"params\":[]}");
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        let mut cur = io::Cursor::new(wrong);
        let payload = reader.poll(&mut cur).unwrap().unwrap();
        assert!(matches!(ClientMsg::decode(&payload), Err(FrameError::BadMessage(_))));
    }
}
