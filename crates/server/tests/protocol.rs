//! Protocol torture suite: the server must survive everything a hostile
//! or broken peer can put on the socket — truncated frames, oversized
//! length prefixes, bad checksums, out-of-sequence messages, and random
//! bytes — answering each with a typed reject and a closed connection,
//! never a panic or a hung accept thread. Mirrors the WAL torn-tail sweep
//! style in `crates/sql/tests/recovery.rs`: every corruption is exercised
//! against a live server and the server is proven healthy afterwards by
//! running a normal session.

use flock_core::FlockDb;
use flock_rng::rngs::StdRng;
use flock_rng::{Rng, SeedableRng};
use flock_server::client::{Client, ClientError};
use flock_server::protocol::{frame, ClientMsg, FrameReader, ServerMsg, DEFAULT_MAX_FRAME};
use flock_server::{Server, ServerConfig, ServerHandle};
use flock_sql::ast::PredictStrategy;
use flock_sql::column::ColumnVector;
use flock_sql::exec::CancelToken;
use flock_sql::types::DataType;
use flock_sql::udf::InferenceProvider;
use flock_sql::{Result as SqlResult, Value};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Start a server over a fresh in-memory FlockDb with a small demo table.
fn start_server() -> (Arc<FlockDb>, ServerHandle) {
    let db = Arc::new(FlockDb::new());
    db.database().execute("CREATE TABLE t (x INT, label TEXT)").unwrap();
    db.database()
        .execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        .unwrap();
    let handle = Server::start(db.clone(), ServerConfig::default()).unwrap();
    (db, handle)
}

/// Assert the server still serves a normal session end-to-end.
fn assert_healthy(addr: SocketAddr) {
    let mut c = Client::connect(addr, "admin").expect("server must still accept sessions");
    let rows = c.query("SELECT x FROM t WHERE x >= 2").expect("query must work");
    assert_eq!(rows.rows.len(), 2);
    c.goodbye().unwrap();
}

/// One engine-side counter, read over the wire like a client would.
fn metric(c: &mut Client, name: &str) -> i64 {
    let rows = c
        .query(&format!("SELECT value FROM flock_metrics WHERE metric = '{name}'"))
        .unwrap();
    assert_eq!(rows.rows.len(), 1, "metric {name} missing");
    match rows.rows[0][0] {
        Value::Int(v) => v,
        ref other => panic!("metric {name} not an int: {other:?}"),
    }
}

/// Read server frames off a raw socket until EOF; panics on hang.
fn drain_replies(stream: &mut TcpStream) -> Vec<ServerMsg> {
    stream.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
    let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
    let mut out = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "server reply never terminated");
        match reader.poll(stream) {
            Ok(Some(payload)) => out.push(ServerMsg::decode(&payload).unwrap()),
            Ok(None) => continue,
            Err(_) => return out, // EOF / reset: connection closed
        }
    }
}

#[test]
fn query_session_lifecycle_over_the_wire() {
    let (_db, handle) = start_server();
    let addr = handle.local_addr();

    let mut c = Client::connect(addr, "admin").unwrap();
    assert!(c.session_id() > 0);
    assert_eq!(c.server_name(), flock_server::SERVER_NAME);

    // DDL + DML + SELECT through one session.
    c.query("CREATE TABLE nums (n INT)").unwrap();
    let ins = c.query("INSERT INTO nums VALUES (10), (20), (30)").unwrap();
    assert_eq!(ins.rows_affected, 3);
    let rows = c.query("SELECT n FROM nums WHERE n > 10").unwrap();
    assert_eq!(rows.columns[0].name, "n");
    assert_eq!(rows.rows.len(), 2);

    // A SQL error is typed AND leaves the connection usable.
    let err = c.query("SELEC wrong").unwrap_err();
    match err {
        ClientError::Sql(e) => {
            assert_eq!(e.code, "parse");
            assert!(!e.retryable);
        }
        other => panic!("expected Sql error, got {other:?}"),
    }
    let rows = c.query("SELECT n FROM nums").unwrap();
    assert_eq!(rows.rows.len(), 3);

    // Malformed SET is typed too — and doesn't poison the session.
    let err = c.query("SET statement_timeout = 'soon'").unwrap_err();
    assert!(matches!(err, ClientError::Sql(e) if e.code == "plan"));
    c.query("SELECT n FROM nums").unwrap();

    c.goodbye().unwrap();
    assert_healthy(addr);
}

#[test]
fn prepared_statements_hit_the_plan_cache() {
    let (db, handle) = start_server();
    let addr = handle.local_addr();
    let mut c = Client::connect(addr, "admin").unwrap();

    let stmt = c.prepare("SELECT label FROM t WHERE x = ?").unwrap();
    assert_eq!(stmt.params, 1);
    let r1 = c.execute(stmt, &[Value::Int(1)]).unwrap();
    assert!(matches!(&r1.rows[0][0], Value::Text(s) if s == "a"));
    let r2 = c.execute(stmt, &[Value::Int(3)]).unwrap();
    assert!(matches!(&r2.rows[0][0], Value::Text(s) if s == "c"));
    assert!(
        db.database().plan_cache().hits.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "repeat execute must hit the plan cache"
    );

    // Param arity mismatch: typed error, connection usable.
    let err = c.execute(stmt, &[]).unwrap_err();
    assert!(matches!(err, ClientError::Sql(_)));

    // Closing invalidates the handle but not the session.
    c.close_stmt(stmt).unwrap();
    let err = c.execute(stmt, &[Value::Int(1)]).unwrap_err();
    assert!(matches!(err, ClientError::Sql(e) if e.code == "protocol"));
    c.query("SELECT 1 + 1").unwrap();
    c.goodbye().unwrap();
    handle.shutdown();
}

#[test]
fn unknown_user_is_rejected_and_counted() {
    let (_db, handle) = start_server();
    let addr = handle.local_addr();

    match Client::connect(addr, "mallory") {
        Err(ClientError::Sql(e)) => {
            assert_eq!(e.code, "access_denied");
            assert!(!e.retryable);
        }
        Err(other) => panic!("expected access_denied, got {other:?}"),
        Ok(_) => panic!("unknown user must not authenticate"),
    }

    // A created user can connect; the failure was counted.
    let mut admin = Client::connect(addr, "admin").unwrap();
    admin.query("CREATE USER analyst").unwrap();
    assert!(metric(&mut admin, "server_auth_failures") >= 1);
    admin.goodbye().unwrap();
    let c = Client::connect(addr, "analyst").unwrap();
    c.goodbye().unwrap();
    assert_healthy(addr);
}

#[test]
fn query_before_hello_is_a_typed_reject_and_close() {
    let (_db, handle) = start_server();
    let addr = handle.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    let payload = ClientMsg::Query { sql: "SELECT 1".into() }.encode().to_string();
    stream.write_all(&frame(payload.as_bytes())).unwrap();
    let replies = drain_replies(&mut stream);
    assert_eq!(replies.len(), 1);
    match &replies[0] {
        ServerMsg::Error(e) => assert_eq!(e.code, "protocol"),
        other => panic!("expected protocol error, got {other:?}"),
    }

    let mut admin = Client::connect(addr, "admin").unwrap();
    assert!(metric(&mut admin, "server_frames_rejected") >= 1);
    admin.goodbye().unwrap();
    assert_healthy(addr);
}

#[test]
fn corrupt_frame_torture_sweep() {
    let (_db, handle) = start_server();
    let addr = handle.local_addr();

    let hello = ClientMsg::Hello { user: "admin".into() }.encode().to_string();
    let good = frame(hello.as_bytes());

    // Torn tails, WAL-style: every strict prefix of a valid frame, with
    // the connection closed mid-frame afterwards.
    for cut in [1, 4, 11, 12, good.len() - 1] {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&good[..cut]).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        drain_replies(&mut stream); // must terminate, not hang
    }

    // Oversized length prefix: rejected before any payload is read.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&(u32::MAX).to_le_bytes());
        hdr.extend_from_slice(&0u64.to_le_bytes());
        stream.write_all(&hdr).unwrap();
        let replies = drain_replies(&mut stream);
        assert!(
            replies.iter().any(|m| matches!(m, ServerMsg::Error(e) if e.code == "protocol")),
            "oversized frame must get a typed reject, got {replies:?}"
        );
    }

    // Flipped payload byte: checksum reject.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x55;
        stream.write_all(&bad).unwrap();
        let replies = drain_replies(&mut stream);
        assert!(
            replies.iter().any(|m| matches!(m, ServerMsg::Error(e) if e.code == "protocol")),
            "checksum mismatch must get a typed reject, got {replies:?}"
        );
    }

    // Valid frame, garbage payload; then valid JSON of unknown type.
    for payload in [&b"\x00\xffnot json"[..], br#"{"type":"warp_core_breach"}"#] {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&frame(payload)).unwrap();
        let replies = drain_replies(&mut stream);
        assert!(
            replies.iter().any(|m| matches!(m, ServerMsg::Error(e) if e.code == "protocol")),
            "bad message must get a typed reject, got {replies:?}"
        );
    }

    assert_healthy(addr);
}

#[test]
fn random_bytes_fuzz_never_kills_the_server() {
    let (_db, handle) = start_server();
    let addr = handle.local_addr();

    let mut rng = StdRng::seed_from_u64(0xF10C_F422);
    for round in 0..32 {
        let mut stream = TcpStream::connect(addr).unwrap();
        let len = rng.gen_range(1usize..512);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect();
        stream.write_all(&bytes).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        // The server must terminate the exchange (reply or close) quickly.
        drain_replies(&mut stream);
        // Interleave a real session every few rounds to prove liveness
        // while the fuzz is ongoing, not just after.
        if round % 8 == 7 {
            assert_healthy(addr);
        }
    }
    assert_healthy(addr);
}

#[test]
fn mid_query_disconnect_does_not_panic_or_leak_slots() {
    let (db, handle) = start_server();
    let addr = handle.local_addr();
    db.database().set_inference_provider(Arc::new(SlowProvider { ms: 3_000 }));
    db.database().execute("CREATE TABLE f (x DOUBLE)").unwrap();
    db.database().execute("INSERT INTO f VALUES (1.0), (2.0)").unwrap();

    let mut stream = TcpStream::connect(addr).unwrap();
    let hello = ClientMsg::Hello { user: "admin".into() }.encode().to_string();
    stream.write_all(&frame(hello.as_bytes())).unwrap();
    // Wait for Welcome, fire a slow query, then vanish mid-statement.
    stream.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
    let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "no Welcome");
        if let Ok(Some(p)) = reader.poll(&mut stream) {
            assert!(matches!(ServerMsg::decode(&p).unwrap(), ServerMsg::Welcome { .. }));
            break;
        }
    }
    let q = ClientMsg::Query { sql: "SELECT PREDICT(m, x) FROM f".into() }.encode().to_string();
    stream.write_all(&frame(q.as_bytes())).unwrap();
    // Give the server a moment to admit the query, then drop the socket.
    let deadline = Instant::now() + Duration::from_secs(5);
    while db.database().admission().active() == 0 {
        assert!(Instant::now() < deadline, "query never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(stream);

    // The worker finishes the statement into a dead socket; the admission
    // slot must come back and the server must stay up.
    let deadline = Instant::now() + Duration::from_secs(30);
    while db.database().admission().active() > 0 {
        assert!(Instant::now() < deadline, "admission slot leaked");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_healthy(addr);
}

/// Provider that burns wall-clock in cancellable ticks, then returns.
struct SlowProvider {
    ms: u64,
}

impl InferenceProvider for SlowProvider {
    fn output_type(&self, _model: &str) -> SqlResult<DataType> {
        Ok(DataType::Float)
    }
    fn input_arity(&self, _model: &str) -> SqlResult<usize> {
        Ok(1)
    }
    fn predict(
        &self,
        _model: &str,
        inputs: &[ColumnVector],
        _strategy: PredictStrategy,
        _user: &str,
    ) -> SqlResult<ColumnVector> {
        Ok(ColumnVector::from_f64(vec![0.0; inputs[0].len()]))
    }
    fn predict_cancellable(
        &self,
        _model: &str,
        inputs: &[ColumnVector],
        _strategy: PredictStrategy,
        _user: &str,
        cancel: &CancelToken,
    ) -> SqlResult<ColumnVector> {
        for _ in 0..self.ms {
            cancel.check()?;
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(ColumnVector::from_f64(vec![0.0; inputs[0].len()]))
    }
}

#[test]
fn out_of_band_cancel_aborts_and_releases_the_slot() {
    let (db, handle) = start_server();
    let addr = handle.local_addr();
    // Effectively-infinite statement: only a cancel can end it.
    db.database().set_inference_provider(Arc::new(SlowProvider { ms: 600_000 }));
    db.database().execute("CREATE TABLE f (x DOUBLE)").unwrap();
    db.database().execute("INSERT INTO f VALUES (1.0), (2.0)").unwrap();

    let mut victim = Client::connect(addr, "admin").unwrap();
    let session = victim.session_id();
    let key = victim.cancel_key();

    // A wrong key must be refused and counted as an auth failure.
    assert!(!Client::cancel(addr, session, key ^ 1).unwrap());

    let worker = std::thread::spawn(move || {
        let err = victim.query("SELECT PREDICT(m, x) FROM f").unwrap_err();
        match err {
            ClientError::Sql(e) => assert_eq!(e.code, "cancelled"),
            other => panic!("expected cancelled, got {other:?}"),
        }
        // The same session keeps working after the cancellation.
        let rows = victim.query("SELECT x FROM t WHERE x = 1").unwrap();
        assert_eq!(rows.rows.len(), 1);
        victim.goodbye().unwrap();
    });

    // Wait until the statement is admitted, then cancel from a second
    // connection. Cancel in a loop: the flag resets at statement start,
    // so a cancel that lands before admission would be consumed.
    let deadline = Instant::now() + Duration::from_secs(10);
    while db.database().admission().active() == 0 {
        assert!(Instant::now() < deadline, "query never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while !worker.is_finished() {
        assert!(Instant::now() < deadline, "cancel never took effect");
        assert!(Client::cancel(addr, session, key).unwrap());
        std::thread::sleep(Duration::from_millis(5));
    }
    worker.join().unwrap();

    // Slot released; wrong-key attempt was counted.
    assert_eq!(db.database().admission().active(), 0);
    let mut admin = Client::connect(addr, "admin").unwrap();
    assert!(metric(&mut admin, "server_auth_failures") >= 1);
    assert!(metric(&mut admin, "queries_cancelled") >= 1);
    admin.goodbye().unwrap();
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_inflight_statements() {
    let (db, handle) = start_server();
    let addr = handle.local_addr();
    db.database().set_inference_provider(Arc::new(SlowProvider { ms: 400 }));
    db.database().execute("CREATE TABLE f (x DOUBLE)").unwrap();
    db.database().execute("INSERT INTO f VALUES (1.0)").unwrap();

    let worker = std::thread::spawn(move || {
        let mut c = Client::connect(addr, "admin").unwrap();
        // This statement is in flight when shutdown starts; it must still
        // complete and deliver its rows.
        let rows = c.query("SELECT PREDICT(m, x) FROM f").unwrap();
        assert_eq!(rows.rows.len(), 1);
        rows
    });

    let deadline = Instant::now() + Duration::from_secs(10);
    while db.database().admission().active() == 0 {
        assert!(Instant::now() < deadline, "query never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown(); // must block until the worker drained
    worker.join().unwrap();

    // After shutdown the port no longer serves sessions.
    assert!(Client::connect(addr, "admin").is_err());
}

#[test]
fn idle_connections_are_reaped() {
    let db = Arc::new(FlockDb::new());
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let handle = Server::start(db, config).unwrap();
    let addr = handle.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    let hello = ClientMsg::Hello { user: "admin".into() }.encode().to_string();
    stream.write_all(&frame(hello.as_bytes())).unwrap();
    // Send nothing else: the server must Goodbye and close on its own.
    let replies = drain_replies(&mut stream);
    assert!(
        replies.iter().any(|m| matches!(m, ServerMsg::Goodbye)),
        "idle reap should say Goodbye, got {replies:?}"
    );

    // EOF confirmed by drain_replies returning; server is still healthy.
    let mut probe = [0u8; 1];
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert_eq!(stream.read(&mut probe).unwrap_or(0), 0);
    let c = Client::connect(addr, "admin").unwrap();
    c.goodbye().unwrap();
    handle.shutdown();
}
