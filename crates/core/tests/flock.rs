//! End-to-end tests: models as catalog objects, in-DB PREDICT, and the
//! cross-optimizer.

use flock_core::{FlockDb, Lineage, XOptConfig};
use flock_ml::{ColumnPipeline, LinearModel, Model, NumericStep, Pipeline};
use flock_sql::{SqlError, Value};

fn customer_db() -> FlockDb {
    let db = FlockDb::new();
    db.execute(
        "CREATE TABLE customers (id INT, age DOUBLE, income DOUBLE, debt DOUBLE, city VARCHAR)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO customers VALUES \
         (1, 30.0, 90.0, 10.0, 'nyc'), \
         (2, 45.0, 40.0, 45.0, 'sf'), \
         (3, 22.0, 25.0, 60.0, 'nyc'), \
         (4, 58.0, 120.0, 5.0, 'chi'), \
         (5, 35.0, 70.0, 30.0, 'sf')",
    )
    .unwrap();
    db
}

/// risk = 0.05*debt - 0.02*income + 1.0 (linear, income & debt only)
fn risk_pipeline() -> Pipeline {
    Pipeline::new(
        vec![
            ColumnPipeline::numeric("income"),
            ColumnPipeline::numeric("debt"),
            ColumnPipeline::numeric("age"), // zero weight -> prunable
        ],
        Model::Linear(LinearModel::new(vec![-0.02, 0.05, 0.0], 1.0)),
        "risk",
    )
}

#[test]
fn deploy_and_predict_in_sql() {
    let db = customer_db();
    let mut s = db.session("admin");
    s.deploy_model("risk", &risk_pipeline(), Lineage::default())
        .unwrap();
    let b = s
        .query("SELECT id, PREDICT(risk, income, debt, age) AS r FROM customers ORDER BY id")
        .unwrap();
    assert_eq!(b.num_rows(), 5);
    let Value::Float(r1) = b.column(1).get(0) else {
        panic!()
    };
    assert!((r1 - (1.0 - 0.02 * 90.0 + 0.05 * 10.0)).abs() < 1e-9);
}

#[test]
fn predict_works_in_where_and_orderby() {
    let db = customer_db();
    let mut s = db.session("admin");
    s.deploy_model("risk", &risk_pipeline(), Lineage::default())
        .unwrap();
    let b = s
        .query(
            "SELECT id FROM customers WHERE PREDICT(risk, income, debt, age) > 1.5 \
             ORDER BY id",
        )
        .unwrap();
    // risk: c2 = 1 - .8 + 2.25 = 2.45; c3 = 1 - .5 + 3 = 3.5 -> ids 2, 3
    assert_eq!(b.num_rows(), 2);
    assert_eq!(b.column(0).get(0), Value::Int(2));
}

#[test]
fn xopt_inlines_linear_models() {
    let db = customer_db();
    let mut s = db.session("admin");
    s.deploy_model("risk", &risk_pipeline(), Lineage::default())
        .unwrap();
    let res = s
        .execute("EXPLAIN SELECT PREDICT(risk, income, debt, age) AS r FROM customers")
        .unwrap();
    let text: String = {
        let b = res.batch.unwrap();
        (0..b.num_rows())
            .map(|i| b.column(0).get(i).to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert!(
        !text.contains("PREDICT"),
        "linear model should inline away: {text}"
    );
    // and age (zero weight) should not be scanned at all
    assert!(
        text.contains("-> income, debt"),
        "pruned scan expected: {text}"
    );
}

#[test]
fn xopt_disabled_keeps_predict_operator() {
    let db = customer_db();
    db.set_xopt_config(XOptConfig::disabled());
    let mut s = db.session("admin");
    s.deploy_model("risk", &risk_pipeline(), Lineage::default())
        .unwrap();
    let res = s
        .execute("EXPLAIN SELECT PREDICT(risk, income, debt, age) FROM customers")
        .unwrap();
    let text: String = {
        let b = res.batch.unwrap();
        (0..b.num_rows())
            .map(|i| b.column(0).get(i).to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert!(text.contains("PREDICT"), "expected PREDICT survivor: {text}");
}

#[test]
fn xopt_results_match_unoptimized() {
    // same query with optimizer on vs off must agree numerically
    let queries = [
        "SELECT id, PREDICT(risk, income, debt, age) AS r FROM customers ORDER BY id",
        "SELECT id FROM customers WHERE PREDICT(risk, income, debt, age) > 1.5 ORDER BY id",
        "SELECT AVG(PREDICT(risk, income, debt, age)) FROM customers",
    ];
    for q in queries {
        let on = customer_db();
        let off = customer_db();
        off.set_xopt_config(XOptConfig::disabled());
        for db in [&on, &off] {
            let mut s = db.session("admin");
            s.deploy_model("risk", &risk_pipeline(), Lineage::default())
                .unwrap();
        }
        let a = on.query(q).unwrap();
        let b = off.query(q).unwrap();
        assert_eq!(a.num_rows(), b.num_rows(), "{q}");
        for r in 0..a.num_rows() {
            for c in 0..a.num_columns() {
                let (va, vb) = (a.column(c).get(r), b.column(c).get(r));
                match (va.as_f64(), vb.as_f64()) {
                    (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "{q}"),
                    _ => assert_eq!(va, vb, "{q}"),
                }
            }
        }
    }
}

#[test]
fn logistic_predicate_pushup_transforms_to_linear_threshold() {
    let db = customer_db();
    let mut s = db.session("admin");
    let pipeline = Pipeline::new(
        vec![
            ColumnPipeline::numeric("income")
                .with_step(NumericStep::Standardize { mean: 70.0, std: 30.0 }),
            ColumnPipeline::numeric("debt"),
        ],
        Model::Logistic(LinearModel::new(vec![-1.0, 0.1], 0.0)),
        "p_default",
    );
    s.deploy_model("default_risk", &pipeline, Lineage::default())
        .unwrap();
    let res = s
        .execute(
            "EXPLAIN SELECT id FROM customers \
             WHERE PREDICT(default_risk, income, debt) >= 0.5",
        )
        .unwrap();
    let text: String = {
        let b = res.batch.unwrap();
        (0..b.num_rows())
            .map(|i| b.column(0).get(i).to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert!(
        !text.contains("SIGMOID") && !text.contains("PREDICT"),
        "push-up should remove the sigmoid: {text}"
    );
    // numeric equivalence
    let rows = db
        .query("SELECT id FROM customers WHERE PREDICT(default_risk, income, debt) >= 0.5 ORDER BY id")
        .unwrap();
    let off = customer_db();
    off.set_xopt_config(XOptConfig::disabled());
    let mut s2 = off.session("admin");
    s2.deploy_model("default_risk", &pipeline, Lineage::default())
        .unwrap();
    let rows_off = off
        .query("SELECT id FROM customers WHERE PREDICT(default_risk, income, debt) >= 0.5 ORDER BY id")
        .unwrap();
    assert_eq!(rows.num_rows(), rows_off.num_rows());
}

#[test]
fn create_model_ddl_trains_with_lineage() {
    let db = customer_db();
    db.execute("CREATE TABLE labeled (age DOUBLE, income DOUBLE, hi INT)")
        .unwrap();
    db.execute(
        "INSERT INTO labeled VALUES (25.0, 90.0, 1), (52.0, 30.0, 0), \
         (31.0, 85.0, 1), (60.0, 20.0, 0)",
    )
    .unwrap();
    let mut s = db.session("admin");
    s.execute("CREATE MODEL hi_model KIND logistic FROM labeled TARGET hi")
        .unwrap();
    let md = db.model_metadata("hi_model").unwrap();
    assert_eq!(md.lineage.training_table.as_deref(), Some("labeled"));
    assert_eq!(md.lineage.training_table_version, Some(2));
    assert!(md.lineage.metrics.contains_key("auc"));
    assert_eq!(md.inputs.len(), 2);

    let b = db
        .query("SELECT PREDICT(hi_model, age, income) FROM labeled ORDER BY age")
        .unwrap();
    let Value::Float(p_young_rich) = b.column(0).get(0) else {
        panic!()
    };
    let Value::Float(p_old_poor) = b.column(0).get(3) else {
        panic!()
    };
    assert!(p_young_rich > p_old_poor);
}

#[test]
fn show_models_lists_deployments() {
    let db = customer_db();
    let mut s = db.session("admin");
    s.deploy_model("risk", &risk_pipeline(), Lineage::default())
        .unwrap();
    let b = s.query("SHOW MODELS").unwrap();
    assert_eq!(b.num_rows(), 1);
    assert_eq!(b.column(0).get(0), Value::Text("risk".into()));
    assert_eq!(b.column(1).get(0), Value::Text("linear".into()));
    s.execute("DROP MODEL risk").unwrap();
    let b = s.query("SHOW MODELS").unwrap();
    assert_eq!(b.num_rows(), 0);
    // registry emptied too
    assert!(db.model_metadata("risk").is_err());
}

#[test]
fn model_versions_update_transactionally() {
    let db = customer_db();
    let mut s = db.session("admin");
    let v1 = risk_pipeline();
    s.deploy_model("a", &v1, Lineage::default()).unwrap();
    s.deploy_model("b", &v1, Lineage::default()).unwrap();

    // atomically flip both models to doubled weights
    let v2 = Pipeline::new(
        v1.columns.clone(),
        Model::Linear(LinearModel::new(vec![-0.04, 0.10, 0.0], 2.0)),
        "risk",
    );
    s.begin().unwrap();
    s.update_model("a", &v2, Lineage::default()).unwrap();
    // mid-transaction: other sessions still score v1
    let before = db
        .query("SELECT PREDICT(a, income, debt, age) FROM customers WHERE id = 1")
        .unwrap();
    let Value::Float(x) = before.column(0).get(0) else {
        panic!()
    };
    assert!((x - (1.0 - 1.8 + 0.5)).abs() < 1e-9, "v1 still live");
    s.update_model("b", &v2, Lineage::default()).unwrap();
    s.commit().unwrap();

    let catalog = db.database().catalog();
    assert_eq!(catalog.extension("model", "a").unwrap().current().version, 2);
    assert_eq!(catalog.extension("model", "b").unwrap().current().version, 2);
    let after = db
        .query("SELECT PREDICT(a, income, debt, age) FROM customers WHERE id = 1")
        .unwrap();
    let Value::Float(y) = after.column(0).get(0) else {
        panic!()
    };
    assert!((y - (2.0 - 3.6 + 1.0)).abs() < 1e-9, "v2 live after commit");
}

#[test]
fn rollback_discards_model_update() {
    let db = customer_db();
    let mut s = db.session("admin");
    s.deploy_model("risk", &risk_pipeline(), Lineage::default())
        .unwrap();
    s.begin().unwrap();
    let v2 = Pipeline::new(
        risk_pipeline().columns.clone(),
        Model::Linear(LinearModel::new(vec![0.0, 0.0, 0.0], 99.0)),
        "risk",
    );
    s.update_model("risk", &v2, Lineage::default()).unwrap();
    s.rollback().unwrap();
    let catalog = db.database().catalog();
    assert_eq!(
        catalog.extension("model", "risk").unwrap().current().version,
        1
    );
}

#[test]
fn model_access_control() {
    let db = customer_db();
    let mut admin = db.session("admin");
    admin
        .deploy_model("risk", &risk_pipeline(), Lineage::default())
        .unwrap();
    admin.execute("CREATE USER analyst").unwrap();
    admin
        .execute("GRANT SELECT ON TABLE customers TO analyst")
        .unwrap();

    let mut analyst = db.session("analyst");
    // table readable, but scoring denied without EXECUTE on the model
    analyst.query("SELECT id FROM customers").unwrap();
    let err = analyst.query("SELECT PREDICT(risk, income, debt, age) FROM customers");
    assert!(matches!(err, Err(SqlError::AccessDenied(_))), "{err:?}");

    admin
        .execute("GRANT EXECUTE ON MODEL risk TO analyst")
        .unwrap();
    analyst
        .query("SELECT PREDICT(risk, income, debt, age) FROM customers")
        .unwrap();

    // audit trail captured the denial
    let audit = db.database().audit_log();
    assert!(audit
        .iter()
        .any(|a| a.action == "ACCESS DENIED" && a.user == "analyst"));
}

#[test]
fn tree_model_compression_uses_stats() {
    use flock_ml::{DecisionTree, TreeNode};
    let db = customer_db();
    let mut s = db.session("admin");
    // split at income <= 1000 never branches right for this data (max 120)
    let tree = DecisionTree {
        nodes: vec![
            TreeNode::Split {
                feature: 0,
                threshold: 1000.0,
                left: 1,
                right: 2,
            },
            TreeNode::Split {
                feature: 1,
                threshold: 40.0,
                left: 3,
                right: 4,
            },
            TreeNode::Leaf { value: -1.0 },
            TreeNode::Leaf { value: 0.0 },
            TreeNode::Leaf { value: 1.0 },
        ],
    };
    let p = Pipeline::new(
        vec![
            ColumnPipeline::numeric("income"),
            ColumnPipeline::numeric("debt"),
        ],
        Model::Tree(tree),
        "hi_debt",
    );
    s.deploy_model("debt_flag", &p, Lineage::default()).unwrap();
    let b = s
        .query("SELECT id, PREDICT(debt_flag, income, debt) AS f FROM customers ORDER BY id")
        .unwrap();
    assert_eq!(b.column(1).get(0), Value::Float(0.0)); // debt 10
    assert_eq!(b.column(1).get(1), Value::Float(1.0)); // debt 45
    // a compressed variant was parked in the registry
    assert!(db.registry().len() > 1, "derived variant expected");
}

#[test]
fn unknown_model_errors_cleanly() {
    let db = customer_db();
    let err = db.query("SELECT PREDICT(ghost, income) FROM customers");
    assert!(matches!(err, Err(SqlError::Plan(_)) | Err(SqlError::Catalog(_))));
}

#[test]
fn model_survives_fonnx_roundtrip_through_catalog() {
    let db = customer_db();
    let mut s = db.session("admin");
    s.deploy_model("risk", &risk_pipeline(), Lineage::default())
        .unwrap();
    // reload registry from scratch (simulates restart)
    db.registry().remove("risk");
    db.sync_registry();
    let b = db
        .query("SELECT PREDICT(risk, income, debt, age) FROM customers WHERE id = 1")
        .unwrap();
    let Value::Float(x) = b.column(0).get(0) else {
        panic!()
    };
    assert!((x - (1.0 - 1.8 + 0.5)).abs() < 1e-9);
}

#[test]
fn describe_model_shows_version_history() {
    let db = customer_db();
    let mut s = db.session("admin");
    s.deploy_model("risk", &risk_pipeline(), Lineage::default())
        .unwrap();
    let v2 = Pipeline::new(
        risk_pipeline().columns.clone(),
        Model::Linear(LinearModel::new(vec![-0.04, 0.1, 0.0], 2.0)),
        "risk",
    );
    s.update_model("risk", &v2, Lineage::default()).unwrap();

    let b = s.query("DESCRIBE MODEL risk").unwrap();
    assert_eq!(b.num_rows(), 2, "one row per version");
    assert_eq!(b.column(0).get(0), Value::Int(1));
    assert_eq!(b.column(0).get(1), Value::Int(2));
    assert_eq!(b.column(1).get(0), Value::Text("linear".into()));
    assert!(s.query("DESCRIBE MODEL ghost").is_err());
}

#[test]
fn score_drift_detected_after_data_shift() {
    use flock_ml::{DriftVerdict, ScoreProfile};
    let db = customer_db();
    let mut s = db.session("admin");
    s.deploy_model("risk", &risk_pipeline(), Lineage::default())
        .unwrap();

    // baseline: deployment-time score distribution
    let collect = |db: &FlockDb| -> Vec<f64> {
        let b = db
            .query("SELECT PREDICT(risk, income, debt, age) FROM customers")
            .unwrap();
        (0..b.num_rows())
            .map(|r| b.column(0).get(r).as_f64().unwrap())
            .collect()
    };
    let baseline = ScoreProfile::from_scores(&collect(&db), 8);

    // the world changes: a wave of high-debt customers arrives
    let rows: Vec<String> = (0..50)
        .map(|i| format!("({}, 40.0, 15.0, {}, 'nyc')", 100 + i, 200.0 + i as f64))
        .collect();
    db.execute(&format!("INSERT INTO customers VALUES {}", rows.join(", ")))
        .unwrap();

    let report = baseline.check(&collect(&db));
    assert_eq!(report.verdict, DriftVerdict::Major, "{report:?}");
    assert!(report.live_mean > report.baseline_mean);
}

#[test]
fn predict_one_scores_single_decisions() {
    let db = customer_db();
    let mut s = db.session("admin");
    s.deploy_model("risk", &risk_pipeline(), Lineage::default())
        .unwrap();
    let score = s
        .predict_one(
            "risk",
            &[Value::Float(90.0), Value::Float(10.0), Value::Float(30.0)],
        )
        .unwrap();
    assert!((score - (1.0 - 0.02 * 90.0 + 0.05 * 10.0)).abs() < 1e-9);

    // agrees with the SQL path
    let sql = db
        .query("SELECT PREDICT(risk, 90.0, 10.0, 30.0)")
        .unwrap();
    assert!((sql.column(0).get(0).as_f64().unwrap() - score).abs() < 1e-12);

    // arity and ACL errors surface
    assert!(s.predict_one("risk", &[Value::Float(1.0)]).is_err());
    db.execute("CREATE USER rando").unwrap();
    let mut rando = db.session("rando");
    assert!(matches!(
        rando.predict_one("risk", &[Value::Float(1.0), Value::Float(2.0), Value::Float(3.0)]),
        Err(SqlError::AccessDenied(_))
    ));
}

#[test]
fn validation_gate_blocks_bad_models() {
    let db = FlockDb::new();
    db.execute("CREATE TABLE labeled (x DOUBLE, y INT)").unwrap();
    db.execute(
        "INSERT INTO labeled VALUES (1.0, 0), (2.0, 0), (3.0, 0), (10.0, 1), \
         (11.0, 1), (12.0, 1)",
    )
    .unwrap();
    let mut s = db.session("admin");

    let good = Pipeline::new(
        vec![ColumnPipeline::numeric("x")],
        Model::Logistic(LinearModel::new(vec![2.0], -13.0)), // threshold ~6.5
        "p",
    );
    let bad = Pipeline::new(
        vec![ColumnPipeline::numeric("x")],
        Model::Logistic(LinearModel::new(vec![-2.0], 13.0)), // inverted
        "p",
    );
    s.deploy_model("clf", &good, Lineage::default()).unwrap();

    // the good model validates cleanly
    let metrics = s.validate_pipeline(&good, "labeled", "y").unwrap();
    assert!(metrics["accuracy"] > 0.99, "{metrics:?}");
    assert_eq!(metrics["validation_rows"], 6.0);

    // the bad candidate is rejected; v1 stays live
    let err = s.update_model_gated("clf", &bad, Lineage::default(), "labeled", "y", "auc", 0.8);
    assert!(err.is_err(), "gate should reject inverted model");
    let catalog = db.database().catalog();
    assert_eq!(catalog.extension("model", "clf").unwrap().current().version, 1);

    // a good candidate passes and records validation metrics in lineage
    let v = s
        .update_model_gated("clf", &good, Lineage::default(), "labeled", "y", "auc", 0.8)
        .unwrap();
    assert_eq!(v, 2);
    let md = db.model_metadata("clf").unwrap();
    assert!(md.lineage.metrics.contains_key("auc"));
}

#[test]
fn views_can_wrap_predictions_with_acl_intact() {
    let db = customer_db();
    let mut s = db.session("admin");
    s.deploy_model("risk", &risk_pipeline(), Lineage::default())
        .unwrap();
    s.execute(
        "CREATE VIEW risk_scores AS SELECT id, PREDICT(risk, income, debt, age) AS r \
         FROM customers",
    )
    .unwrap();
    let b = db.query("SELECT COUNT(*) FROM risk_scores WHERE r > 1.5").unwrap();
    assert_eq!(b.column(0).get(0), Value::Int(2));

    // the view does not launder access: scoring through it still requires
    // EXECUTE on the model and SELECT on the base table
    db.execute("CREATE USER peeker").unwrap();
    let mut peeker = db.session("peeker");
    assert!(matches!(
        peeker.query("SELECT * FROM risk_scores"),
        Err(SqlError::AccessDenied(_))
    ));
    db.execute("GRANT SELECT ON TABLE customers TO peeker").unwrap();
    assert!(matches!(
        peeker.query("SELECT * FROM risk_scores"),
        Err(SqlError::AccessDenied(_))
    ), "SELECT on the base table is not enough without EXECUTE on the model");
    db.execute("GRANT EXECUTE ON MODEL risk TO peeker").unwrap();
    assert_eq!(peeker.query("SELECT * FROM risk_scores").unwrap().num_rows(), 5);
}

#[test]
fn dropping_a_model_breaks_dependent_queries_cleanly() {
    let db = customer_db();
    let mut s = db.session("admin");
    s.deploy_model("risk", &risk_pipeline(), Lineage::default())
        .unwrap();
    db.query("SELECT PREDICT(risk, income, debt, age) FROM customers").unwrap();
    s.execute("DROP MODEL risk").unwrap();
    let err = db.query("SELECT PREDICT(risk, income, debt, age) FROM customers");
    assert!(err.is_err(), "dangling model reference must error, not panic");
}

#[test]
fn model_packages_move_between_databases() {
    use flock_core::ModelPackage;
    let cloud = customer_db();
    let mut cs = cloud.session("admin");
    cs.deploy_model("risk", &risk_pipeline(), Lineage::default())
        .unwrap();
    let package = cs.export_model("risk").unwrap();
    let wire = package.to_bytes();

    let edge = customer_db();
    let mut es = edge.session("admin");
    es.import_model(&ModelPackage::from_bytes(&wire).unwrap())
        .unwrap();

    // identical predictions on identical inputs
    let q = "SELECT PREDICT(risk, income, debt, age) FROM customers ORDER BY id";
    let a = cloud.query(q).unwrap();
    let b = edge.query(q).unwrap();
    for r in 0..a.num_rows() {
        assert_eq!(a.column(0).get(r), b.column(0).get(r));
    }

    // corrupted packages are rejected before touching the catalog
    let mut bad = package.clone();
    bad.payload = vec![1, 2, 3];
    assert!(es.import_model(&bad).is_err());
    assert!(ModelPackage::from_bytes(b"garbage").is_err());

    // export requires SELECT on the model
    edge.execute("CREATE USER spy").unwrap();
    let mut spy = edge.session("spy");
    assert!(matches!(
        spy.export_model("risk"),
        Err(SqlError::AccessDenied(_))
    ));
}

#[test]
fn every_model_kind_trains_and_scores_via_ddl() {
    let db = FlockDb::new();
    db.execute("CREATE TABLE pts (x DOUBLE, z DOUBLE, y INT)").unwrap();
    let rows: Vec<String> = (0..60)
        .map(|i| {
            let x = (i % 20) as f64;
            let z = ((i * 7) % 13) as f64;
            let y = if x > 9.5 { 1 } else { 0 };
            format!("({x}, {z}, {y})")
        })
        .collect();
    db.execute(&format!("INSERT INTO pts VALUES {}", rows.join(", ")))
        .unwrap();

    for kind in ["linear", "logistic", "tree", "forest", "gbt", "naive_bayes", "knn"] {
        let name = format!("m_{kind}");
        db.execute(&format!(
            "CREATE MODEL {name} KIND {kind} FROM pts TARGET y FEATURES x, z"
        ))
        .unwrap_or_else(|e| panic!("{kind}: {e}"));
        let b = db
            .query(&format!(
                "SELECT AVG(PREDICT({name}, x, z)) FROM pts WHERE x > 9.5"
            ))
            .unwrap();
        let high = b.column(0).get(0).as_f64().unwrap();
        let b = db
            .query(&format!(
                "SELECT AVG(PREDICT({name}, x, z)) FROM pts WHERE x < 9.5"
            ))
            .unwrap();
        let low = b.column(0).get(0).as_f64().unwrap();
        assert!(
            high > low,
            "{kind}: positive region should score higher ({high} vs {low})"
        );
    }
    // all seven live side by side in the catalog
    let models = db.query("SHOW MODELS").unwrap();
    assert_eq!(models.num_rows(), 7);
    // an unknown kind errors cleanly
    assert!(db
        .execute("CREATE MODEL bad KIND quantum FROM pts TARGET y")
        .is_err());
}

#[test]
fn scripted_sessions_execute_multi_statement_workflows() {
    let db = FlockDb::new();
    let mut s = db.session("admin");
    // sql sessions run scripts statement by statement
    let db2 = db.database().clone();
    let mut raw = db2.session("admin");
    let results = raw
        .execute_script(
            "CREATE TABLE w (a INT); INSERT INTO w VALUES (1), (2); \
             BEGIN; INSERT INTO w VALUES (3); COMMIT; SELECT COUNT(*) FROM w;",
        )
        .unwrap();
    let last = results.last().unwrap();
    assert_eq!(
        last.batch.as_ref().unwrap().column(0).get(0),
        Value::Int(3)
    );
    let _ = &mut s;
}

#[test]
fn compiled_cache_invalidates_on_model_redeploy() {
    let db = customer_db();
    let mut s = db.session("admin");
    // one-hot featurization is not affine, so this tree cannot inline
    // into pure SQL: PREDICT survives and scores through the compiled
    // pipeline cache
    s.deploy_model("ct", &city_tree_pipeline(), Lineage::default())
        .unwrap();
    let q = "SELECT id FROM customers WHERE PREDICT(ct, income, city) > 1.5 ORDER BY id";

    db.query(q).unwrap();
    let (h0, m0, i0) = db.registry().compiled_cache_counts();
    assert!(m0 >= 1, "first run must compile: {:?}", (h0, m0, i0));

    db.query(q).unwrap();
    let (h1, m1, i1) = db.registry().compiled_cache_counts();
    assert!(h1 > h0, "second run should hit the cache");
    assert_eq!(m1, m0, "no recompilation on a cache hit");
    assert_eq!(i1, i0);

    // redeploying bumps the version and must evict every compiled entry
    // derived from the old one — scoring v2 through a stale compiled v1
    // would silently return wrong answers
    let v2 = Pipeline::new(
        city_tree_pipeline().columns.clone(),
        Model::Tree(flock_ml::DecisionTree {
            nodes: vec![flock_ml::TreeNode::Leaf { value: 9.0 }],
        }),
        "const9",
    );
    s.update_model("ct", &v2, Lineage::default()).unwrap();
    let (_, _, i2) = db.registry().compiled_cache_counts();
    assert!(i2 > i1, "redeploy must invalidate compiled entries");

    // v2 answers after the redeploy: every row now scores 9.0
    let b = db.query(q).unwrap();
    assert_eq!(b.num_rows(), 5);

    // the counters are visible through SQL alongside the engine counters
    let (hits, misses, invalidations) = db.registry().compiled_cache_counts();
    for (metric, want) in [
        ("predict_compile_hits", hits),
        ("predict_compile_misses", misses),
        ("predict_compile_invalidations", invalidations),
    ] {
        let b = db
            .query(&format!(
                "SELECT value FROM flock_metrics WHERE metric = '{metric}'"
            ))
            .unwrap();
        assert_eq!(b.num_rows(), 1, "{metric}");
        assert_eq!(b.column(0).get(0), Value::Int(want as i64), "{metric}");
    }
}

/// tree over income + one-hot(city): splits to a single leaf once the
/// query pins city = 'nyc'.
fn city_tree_pipeline() -> Pipeline {
    use flock_ml::{DecisionTree, TreeNode};
    // features: 0 = income, 1 = city=nyc, 2 = city=sf, 3 = city=chi
    let tree = DecisionTree {
        nodes: vec![
            TreeNode::Split {
                feature: 1,
                threshold: 0.5,
                left: 1,
                right: 2,
            },
            TreeNode::Split {
                feature: 0,
                threshold: 50.0,
                left: 3,
                right: 4,
            },
            TreeNode::Leaf { value: 5.0 },
            TreeNode::Leaf { value: 1.0 },
            TreeNode::Leaf { value: 2.0 },
        ],
    };
    Pipeline::new(
        vec![
            ColumnPipeline::numeric("income"),
            ColumnPipeline::one_hot(
                "city",
                vec!["nyc".into(), "sf".into(), "chi".into()],
            ),
        ],
        Model::Tree(tree),
        "city_tree",
    )
}

#[test]
fn explain_surfaces_predicate_specialization() {
    let db = customer_db();
    let mut s = db.session("admin");
    s.deploy_model("ct", &city_tree_pipeline(), Lineage::default())
        .unwrap();
    // city = 'nyc' pins the one-hot block; the tree collapses to a leaf
    let q = "SELECT id, PREDICT(ct, income, city) AS v FROM customers WHERE city = 'nyc'";
    let res = s.execute(&format!("EXPLAIN ANALYZE {q}")).unwrap();
    let text: String = {
        let b = res.batch.unwrap();
        (0..b.num_rows())
            .map(|i| b.column(0).get(i).to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert!(
        text.contains("spec("),
        "specialization annotation expected in plan: {text}"
    );

    // and the specialized plan returns the same rows as the raw pipeline
    let b = db.query(q).unwrap();
    assert_eq!(b.num_rows(), 2);
    for r in 0..b.num_rows() {
        assert_eq!(b.column(1).get(r), Value::Float(5.0), "nyc leaf");
    }
    let off = customer_db();
    off.set_xopt_config(XOptConfig::disabled());
    off.session("admin")
        .deploy_model("ct", &city_tree_pipeline(), Lineage::default())
        .unwrap();
    let raw = off.query(q).unwrap();
    assert_eq!(raw.num_rows(), b.num_rows());
    for r in 0..b.num_rows() {
        assert_eq!(b.column(1).get(r), raw.column(1).get(r));
    }
}

#[test]
fn specialized_queries_agree_across_predict_strategies() {
    use flock_sql::ast::PredictStrategy;
    use flock_sql::exec::ExecOptions;
    // Predicate-constrained and literal-argument queries: specialization
    // must never change a score, whichever runtime executes it.
    let queries = [
        "SELECT id, PREDICT(ct, income, city) AS v FROM customers \
         WHERE city = 'nyc' AND income >= 20 ORDER BY id",
        "SELECT id, PREDICT(ct, income, 'sf') AS v FROM customers ORDER BY id",
        "SELECT AVG(PREDICT(ct, income, city)) FROM customers WHERE income < 100",
    ];
    for q in queries {
        let off = customer_db();
        off.set_xopt_config(XOptConfig::disabled());
        off.database().set_exec_options(ExecOptions {
            default_predict: PredictStrategy::Row,
            ..ExecOptions::serial()
        });
        off.session("admin")
            .deploy_model("ct", &city_tree_pipeline(), Lineage::default())
            .unwrap();
        let baseline = off.query(q).unwrap();

        for strategy in [
            PredictStrategy::Row,
            PredictStrategy::Vectorized,
            PredictStrategy::Parallel(3),
        ] {
            let on = customer_db();
            on.database().set_exec_options(ExecOptions {
                default_predict: strategy,
                ..ExecOptions::default()
            });
            on.session("admin")
                .deploy_model("ct", &city_tree_pipeline(), Lineage::default())
                .unwrap();
            let got = on.query(q).unwrap();
            assert_eq!(got.num_rows(), baseline.num_rows(), "{q} {strategy:?}");
            for r in 0..got.num_rows() {
                for c in 0..got.num_columns() {
                    assert_eq!(
                        got.column(c).get(r),
                        baseline.column(c).get(r),
                        "{q} {strategy:?} row {r} col {c}"
                    );
                }
            }
        }
    }
}

#[test]
fn predict_pipeline_deterministic_across_thread_configs() {
    // A PREDICT query over enough rows to trigger morsel fan-out must
    // return the same rows whatever thread count xopt hands the executor.
    let db = FlockDb::new();
    db.execute("CREATE TABLE txns (id INT, income DOUBLE, debt DOUBLE, age DOUBLE)")
        .unwrap();
    for chunk in 0..4 {
        let rows: Vec<String> = (0..500)
            .map(|i| {
                let id = chunk * 500 + i;
                // deterministic pseudo-data; no RNG crate needed
                let income = ((id * 37) % 150) as f64 + 10.0;
                let debt = ((id * 91) % 80) as f64;
                let age = ((id * 13) % 50) as f64 + 18.0;
                format!("({id}, {income}, {debt}, {age})")
            })
            .collect();
        db.execute(&format!("INSERT INTO txns VALUES {}", rows.join(", ")))
            .unwrap();
    }
    let mut s = db.session("admin");
    s.deploy_model("risk", &risk_pipeline(), Lineage::default())
        .unwrap();
    let q = "SELECT id, PREDICT(risk, income, debt, age) AS r FROM txns \
             WHERE PREDICT(risk, income, debt, age) > 1.5 ORDER BY id";

    let serial_cfg = XOptConfig {
        threads: 1,
        ..XOptConfig::default()
    };
    db.set_xopt_config(serial_cfg);
    let serial = db.session("admin").query(q).unwrap();
    assert!(serial.num_rows() > 0, "query should select some rows");

    for threads in [2usize, 8] {
        db.set_xopt_config(XOptConfig {
            threads,
            parallel_row_threshold: 1,
            ..XOptConfig::default()
        });
        let parallel = db.session("admin").query(q).unwrap();
        assert_eq!(serial.num_rows(), parallel.num_rows(), "threads={threads}");
        for r in 0..serial.num_rows() {
            for c in 0..serial.num_columns() {
                let a = serial.column(c).get(r);
                let b = parallel.column(c).get(r);
                // scoring is per-row (no reassociation): exact match expected
                assert!(
                    a.group_eq(&b),
                    "threads={threads} row {r} col {c}: {a:?} vs {b:?}"
                );
            }
        }
    }
}
