//! Durability at the Flock layer: deployed models are catalog objects, so
//! they — and their lineage, grants, and audit trail — must survive a
//! crash and come back scoring bit-identically, with the compiled-pipeline
//! cache correctly keyed by the recovered catalog versions.

use flock_core::{FlockDb, Lineage, XOptConfig};
use flock_ml::{ColumnPipeline, LinearModel, Model, Pipeline};
use flock_sql::{DurabilityOptions, MemFs, SqlError, Value};
use std::sync::Arc;

fn opts() -> DurabilityOptions {
    DurabilityOptions::default()
}

/// risk = 0.05*debt - 0.02*income + 1.0
fn risk_pipeline() -> Pipeline {
    Pipeline::new(
        vec![
            ColumnPipeline::numeric("income"),
            ColumnPipeline::numeric("debt"),
        ],
        Model::Linear(LinearModel::new(vec![-0.02, 0.05], 1.0)),
        "risk",
    )
}

/// steeper variant so redeploys visibly change scores
fn risk_pipeline_v2() -> Pipeline {
    Pipeline::new(
        vec![
            ColumnPipeline::numeric("income"),
            ColumnPipeline::numeric("debt"),
        ],
        Model::Linear(LinearModel::new(vec![-0.04, 0.10], 2.0)),
        "risk",
    )
}

fn seed(db: &FlockDb) {
    db.execute("CREATE TABLE customers (id INT, income DOUBLE, debt DOUBLE)")
        .unwrap();
    db.execute(
        "INSERT INTO customers VALUES (1, 90.0, 10.0), (2, 40.0, 45.0), (3, 25.0, 60.0)",
    )
    .unwrap();
}

const SCORE_Q: &str =
    "SELECT id, PREDICT(risk, income, debt) AS r FROM customers ORDER BY id";

fn scores(db: &FlockDb) -> Vec<f64> {
    let b = db.query(SCORE_Q).unwrap();
    (0..b.num_rows())
        .map(|r| b.column(1).get(r).as_f64().unwrap())
        .collect()
}

#[test]
fn deployed_model_survives_crash_and_scores_identically() {
    let mem = MemFs::new();
    let db = FlockDb::open_with_fs(mem.clone(), opts()).unwrap();
    seed(&db);
    db.session("admin")
        .deploy_model("risk", &risk_pipeline(), Lineage::default())
        .unwrap();
    let before = scores(&db);
    assert_eq!(before.len(), 3);
    drop(db);

    let rec = FlockDb::open_with_fs(mem.crash_image(), opts()).unwrap();
    // the registry is rebuilt from the recovered catalog at open
    let model = rec.registry().get("risk").expect("model recovered");
    assert_eq!(model.version, 1);
    let after = scores(&rec);
    for (a, b) in before.iter().zip(&after) {
        assert!(
            a.to_bits() == b.to_bits(),
            "recovered model scores differently: {a} vs {b}"
        );
    }
}

#[test]
fn redeploy_survives_crash_with_correct_version_and_cache_keys() {
    let mem = MemFs::new();
    let db = FlockDb::open_with_fs(mem.clone(), opts()).unwrap();
    seed(&db);
    let mut s = db.session("admin");
    s.deploy_model("risk", &risk_pipeline(), Lineage::default()).unwrap();
    let v1_scores = scores(&db);
    let v = s.update_model("risk", &risk_pipeline_v2(), Lineage::default()).unwrap();
    assert_eq!(v, 2);
    let v2_scores = scores(&db);
    assert_ne!(v1_scores, v2_scores, "v2 must score differently");
    drop(s);
    drop(db);

    let rec = FlockDb::open_with_fs(mem.crash_image(), opts()).unwrap();
    let model = rec.registry().get("risk").expect("model recovered");
    assert_eq!(model.version, 2, "newest deployed version wins after recovery");
    let after = scores(&rec);
    for (a, b) in v2_scores.iter().zip(&after) {
        assert!(a.to_bits() == b.to_bits(), "{a} vs {b}");
    }
    // the compiled-pipeline cache is keyed by the recovered catalog
    // version: repeated scoring hits the cache instead of recompiling.
    // Inlining is turned off so PREDICT actually reaches the provider.
    rec.set_xopt_config(XOptConfig {
        inline_models: false,
        ..XOptConfig::default()
    });
    let _ = scores(&rec); // compiles once (miss)
    let (_, misses_first, _) = rec.registry().compiled_cache_counts();
    let _ = scores(&rec);
    let (hits, misses, _) = rec.registry().compiled_cache_counts();
    assert_eq!(misses, misses_first, "second query must not recompile");
    assert!(hits > 0, "second query should hit the compiled cache");
}

#[test]
fn dropped_model_stays_dropped_after_crash() {
    let mem = MemFs::new();
    let db = FlockDb::open_with_fs(mem.clone(), opts()).unwrap();
    seed(&db);
    let mut s = db.session("admin");
    s.deploy_model("risk", &risk_pipeline(), Lineage::default()).unwrap();
    s.execute("DROP MODEL risk").unwrap();
    drop(s);
    drop(db);

    let rec = FlockDb::open_with_fs(mem.crash_image(), opts()).unwrap();
    assert!(rec.registry().get("risk").is_none(), "dropped model must stay dropped");
    assert!(rec.query(SCORE_Q).is_err(), "PREDICT on a dropped model fails");
}

#[test]
fn recovered_lineage_still_pins_training_table_versions() {
    let mem = MemFs::new();
    let db = FlockDb::open_with_fs(mem.clone(), opts()).unwrap();
    seed(&db); // customers now at version 2 (create, insert)
    db.session("admin")
        .deploy_model(
            "risk",
            &risk_pipeline(),
            Lineage {
                training_table: Some("customers".into()),
                training_table_version: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
    drop(db);

    // keep the image handle: rec's own writes land on this copy
    let img = mem.crash_image();
    let rec = FlockDb::open_with_fs(img.clone(), opts()).unwrap();
    let mut s = rec.session("admin");
    // keep=1 would drop version 1, which the recovered model's lineage pins
    match s.truncate_table_history("customers", 1) {
        Err(SqlError::Constraint(msg)) => assert!(msg.contains("pinned"), "{msg}"),
        other => panic!("expected pin violation after recovery, got {other:?}"),
    }
    // dropping the model lifts the pin
    s.execute("DROP MODEL risk").unwrap();
    let dropped = s.truncate_table_history("customers", 1).unwrap();
    assert_eq!(dropped, vec![1]);
    // time travel to the surviving version still works after another crash
    drop(s);
    drop(rec);
    let rec2 = FlockDb::open_with_fs(img.crash_image(), opts()).unwrap();
    assert_eq!(
        rec2.query("SELECT COUNT(*) FROM customers").unwrap().column(0).get(0),
        Value::Int(3)
    );
    assert!(rec2.query("SELECT COUNT(*) FROM customers VERSION 1").is_err());
}

#[test]
fn open_on_disk_roundtrip() {
    // FlockDb::open against a real directory: write, reopen, verify.
    let dir = std::env::temp_dir().join(format!("flock-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = FlockDb::open(&dir, opts()).unwrap();
        seed(&db);
        db.session("admin")
            .deploy_model("risk", &risk_pipeline(), Lineage::default())
            .unwrap();
    }
    {
        let db = FlockDb::open(&dir, opts()).unwrap();
        assert_eq!(scores(&db).len(), 3);
        assert!(db.registry().get("risk").is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn train_commit_kill_matrix_recovers_bit_identical_models() {
    use flock_sql::FailpointFs;

    // A workload whose interesting commits are model *training*
    // transactions: CREATE MODEL ... AS SELECT, then more data, then a
    // RETRAIN. Training is seeded, so the committed payload bytes are a
    // pure function of the data + statement — which is what lets a
    // reference run define "bit-identical" across crash recoveries.
    const STEPS: usize = 5;
    fn apply_step(db: &FlockDb, i: usize) -> flock_sql::Result<()> {
        match i {
            0 => db
                .execute("CREATE TABLE obs (x DOUBLE, z DOUBLE, y INT)")
                .map(|_| ()),
            1 => {
                let rows: Vec<String> = (0..20)
                    .map(|j| {
                        format!("({j}.0, {}.0, {})", (j * 3) % 7, i32::from(j > 9))
                    })
                    .collect();
                db.execute(&format!("INSERT INTO obs VALUES {}", rows.join(", ")))
                    .map(|_| ())
            }
            2 => db
                .execute(
                    "CREATE MODEL m KIND gbt WITH (seed = 7, trees = 5) \
                     TARGET y AS SELECT x, z, y FROM obs",
                )
                .map(|_| ()),
            3 => db
                .execute("INSERT INTO obs VALUES (20.0, 1.0, 1), (21.0, 2.0, 1)")
                .map(|_| ()),
            4 => db.execute("RETRAIN MODEL m").map(|_| ()),
            _ => unreachable!("workload has {STEPS} steps"),
        }
    }

    // Reference run: the payload bytes of each committed model version.
    let reference: std::collections::BTreeMap<u64, Vec<u8>> = {
        let db = FlockDb::open_with_fs(MemFs::new(), opts()).unwrap();
        for i in 0..STEPS {
            apply_step(&db, i).unwrap();
        }
        let catalog = db.database().catalog();
        let obj = catalog.extension("model", "m").unwrap();
        obj.versions
            .iter()
            .map(|v| (v.version, v.payload.clone()))
            .collect()
    };
    assert_eq!(reference.len(), 2, "create + retrain leave two versions");
    assert_ne!(
        reference[&1], reference[&2],
        "retraining on changed data must change the artifact"
    );

    // Count durable-fs mutations, then kill at every boundary.
    let total_ops = {
        let fp = FailpointFs::new(MemFs::new(), u64::MAX);
        let db = FlockDb::open_with_fs(fp.clone(), opts()).unwrap();
        for i in 0..STEPS {
            apply_step(&db, i).unwrap();
        }
        fp.ops_attempted()
    };
    assert!(total_ops > 5, "workload too small to exercise kill points");

    for k in 0..=total_ops {
        let mem = MemFs::new();
        let fp = FailpointFs::new(mem.clone(), k);
        let db = FlockDb::open_with_fs(fp.clone(), opts())
            .unwrap_or_else(|e| panic!("open failed at kill point {k}: {e}"));
        for i in 0..STEPS {
            if let Err(e) = apply_step(&db, i) {
                assert!(
                    fp.killed(),
                    "kill point {k} step {i}: failed before the kill: {e}"
                );
            }
        }
        drop(db);

        let rec = FlockDb::open_with_fs(mem.crash_image(), opts())
            .unwrap_or_else(|e| panic!("recovery failed at kill point {k}: {e}"));
        let catalog = rec.database().catalog();
        if let Ok(obj) = catalog.extension("model", "m") {
            for v in &obj.versions {
                assert_eq!(
                    reference.get(&v.version),
                    Some(&v.payload),
                    "kill point {k}: recovered v{} payload is not bit-identical \
                     to the reference training run",
                    v.version
                );
            }
            // every recovered version is scorable through the registry
            assert!(
                rec.registry().get("m").is_some(),
                "kill point {k}: recovered model must rebuild into the registry"
            );
        }
    }
}

#[test]
fn crash_image_loses_nothing_under_fsync_even_mid_workload() {
    // Arc<MemFs> is the "disk"; the live db keeps writing while we take
    // crash images — each image must recover to the digest the engine had
    // at that moment (fsync-on-commit).
    let mem: Arc<MemFs> = MemFs::new();
    let db = FlockDb::open_with_fs(mem.clone(), opts()).unwrap();
    seed(&db);
    let mut s = db.session("admin");
    for i in 0..5 {
        s.execute(&format!("INSERT INTO customers VALUES ({}, 1.0, 2.0)", 10 + i))
            .unwrap();
        let want = db.database().state_digest();
        let rec = FlockDb::open_with_fs(mem.crash_image(), opts()).unwrap();
        assert_eq!(rec.database().state_digest(), want, "iteration {i}");
    }
}
