//! Property-based tests: the cross-optimizer must never change query
//! results, whatever the data, the model, or the query shape.

use flock_core::{FlockDb, Lineage, XOptConfig};
use flock_ml::{ColumnPipeline, LinearModel, Model, NumericStep, Pipeline};
use flock_sql::Value;
use proptest::prelude::*;

fn deploy(db: &FlockDb, pipeline: &Pipeline) {
    db.session("admin")
        .deploy_model("m", pipeline, Lineage::default())
        .unwrap();
}

fn db_with_rows(rows: &[(f64, f64, i64)]) -> FlockDb {
    let db = FlockDb::new();
    db.execute("CREATE TABLE t (a DOUBLE, b DOUBLE, k INT)").unwrap();
    let values: Vec<String> = rows
        .iter()
        .map(|(a, b, k)| format!("({a:?}, {b:?}, {k})"))
        .collect();
    db.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
        .unwrap();
    db
}

fn approx_eq(a: &Value, b: &Value) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => (x - y).abs() < 1e-9 || (x.is_nan() && y.is_nan()),
        _ => a == b || (a.is_null() && b.is_null()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Linear/logistic models with arbitrary weights (including zeros, so
    /// pruning fires) and affine steps (so inlining and push-up fire):
    /// results with the cross-optimizer on and off are identical.
    #[test]
    fn xopt_preserves_semantics(
        rows in proptest::collection::vec(
            (-100.0f64..100.0, -100.0f64..100.0, 0i64..5),
            1..30,
        ),
        w_a in prop_oneof![Just(0.0), -2.0f64..2.0],
        w_b in prop_oneof![Just(0.0), -2.0f64..2.0],
        bias in -1.0f64..1.0,
        logistic in any::<bool>(),
        threshold in -0.5f64..1.5,
        standardize in any::<bool>(),
    ) {
        let mut col_a = ColumnPipeline::numeric("a");
        if standardize {
            col_a = col_a.with_step(NumericStep::Standardize { mean: 10.0, std: 5.0 });
        }
        let lm = LinearModel::new(vec![w_a, w_b], bias);
        let model = if logistic {
            Model::Logistic(lm)
        } else {
            Model::Linear(lm)
        };
        let pipeline = Pipeline::new(
            vec![col_a, ColumnPipeline::numeric("b")],
            model,
            "score",
        );

        let queries = [
            "SELECT a, PREDICT(m, a, b) AS s FROM t ORDER BY a, b".to_string(),
            format!("SELECT COUNT(*) FROM t WHERE PREDICT(m, a, b) >= {threshold}"),
            "SELECT k, AVG(PREDICT(m, a, b)) FROM t GROUP BY k ORDER BY k".to_string(),
            "SELECT SUM(PREDICT(m, a, b) * 2 + 1) FROM t WHERE a < 50".to_string(),
        ];

        let on = db_with_rows(&rows);
        deploy(&on, &pipeline);
        let off = db_with_rows(&rows);
        off.set_xopt_config(XOptConfig::disabled());
        deploy(&off, &pipeline);

        for q in &queries {
            let ra = on.query(q).unwrap();
            let rb = off.query(q).unwrap();
            prop_assert_eq!(ra.num_rows(), rb.num_rows(), "{}", q);
            for r in 0..ra.num_rows() {
                for c in 0..ra.num_columns() {
                    let (x, y) = (ra.column(c).get(r), rb.column(c).get(r));
                    prop_assert!(approx_eq(&x, &y), "{}: row {} col {}: {:?} vs {:?}", q, r, c, x, y);
                }
            }
        }
    }

    /// Tree models exercise the compression rule; results must match the
    /// unoptimized engine exactly.
    #[test]
    fn tree_compression_in_db_is_exact(
        rows in proptest::collection::vec(
            (-50.0f64..50.0, -50.0f64..50.0, 0i64..3),
            1..25,
        ),
        t1 in -60.0f64..60.0,
        t2 in -60.0f64..60.0,
    ) {
        use flock_ml::{DecisionTree, TreeNode};
        let tree = DecisionTree {
            nodes: vec![
                TreeNode::Split { feature: 0, threshold: t1, left: 1, right: 2 },
                TreeNode::Split { feature: 1, threshold: t2, left: 3, right: 4 },
                TreeNode::Leaf { value: 10.0 },
                TreeNode::Leaf { value: 20.0 },
                TreeNode::Leaf { value: 30.0 },
            ],
        };
        let pipeline = Pipeline::new(
            vec![ColumnPipeline::numeric("a"), ColumnPipeline::numeric("b")],
            Model::Tree(tree),
            "leaf",
        );
        let q = "SELECT a, b, PREDICT(m, a, b) FROM t ORDER BY a, b";
        let on = db_with_rows(&rows);
        deploy(&on, &pipeline);
        let off = db_with_rows(&rows);
        off.set_xopt_config(XOptConfig::disabled());
        deploy(&off, &pipeline);
        let ra = on.query(q).unwrap();
        let rb = off.query(q).unwrap();
        for r in 0..ra.num_rows() {
            prop_assert_eq!(ra.row(r), rb.row(r));
        }
    }

    /// Model DDL round-trips through the catalog for arbitrary numeric
    /// training data (training is best-effort; deployment + scoring must
    /// be consistent).
    #[test]
    fn create_model_then_score_is_stable(
        rows in proptest::collection::vec((-10.0f64..10.0, 0i64..2), 4..30),
    ) {
        // ensure both classes exist so logistic training is well-posed
        let mut rows = rows;
        rows[0].1 = 0;
        rows[1].1 = 1;
        let db = FlockDb::new();
        db.execute("CREATE TABLE d (x DOUBLE, y INT)").unwrap();
        let values: Vec<String> = rows.iter().map(|(x, y)| format!("({x:?}, {y})")).collect();
        db.execute(&format!("INSERT INTO d VALUES {}", values.join(", "))).unwrap();
        db.execute("CREATE MODEL clf KIND logistic FROM d TARGET y").unwrap();

        let a = db.query("SELECT PREDICT(clf, x) FROM d ORDER BY x").unwrap();
        // force a registry reload from serialized bytes
        db.registry().remove("clf");
        db.sync_registry();
        let b = db.query("SELECT PREDICT(clf, x) FROM d ORDER BY x").unwrap();
        for r in 0..a.num_rows() {
            prop_assert!(approx_eq(&a.column(0).get(r), &b.column(0).get(r)));
        }
    }
}
