//! Governed in-database training: `CREATE MODEL ... AS SELECT` with
//! multi-table lineage pins, honest holdout metrics, hyperparameters in
//! the statement, and `RETRAIN MODEL` re-running the recorded statement.

use flock_core::{FlockDb, Lineage};
use flock_ml::{ColumnPipeline, LinearModel, Model, Pipeline};

#[test]
fn as_select_join_pins_every_scanned_table_version() {
    let db = FlockDb::new();
    db.execute("CREATE TABLE customers (id INT, age DOUBLE, churned INT)")
        .unwrap();
    db.execute(
        "INSERT INTO customers VALUES (1, 25.0, 1), (2, 52.0, 0), (3, 31.0, 1), \
         (4, 60.0, 0), (5, 45.0, 0), (6, 28.0, 1), (7, 55.0, 0), (8, 33.0, 1), \
         (9, 48.0, 0), (10, 26.0, 1)",
    )
    .unwrap();
    db.execute("CREATE TABLE accounts (cust_id INT, balance DOUBLE)").unwrap();
    db.execute(
        "INSERT INTO accounts VALUES (1, 90.0), (2, 20.0), (3, 85.0), (4, 15.0), \
         (5, 30.0), (6, 88.0), (7, 25.0), (8, 80.0), (9, 22.0), (10, 95.0)",
    )
    .unwrap();

    db.execute(
        "CREATE MODEL churn KIND logistic WITH (seed = 1) TARGET churned OUTPUT churn_p \
         AS SELECT c.age, a.balance, c.churned \
         FROM customers c JOIN accounts a ON c.id = a.cust_id",
    )
    .unwrap();

    let md = db.model_metadata("churn").unwrap();
    // provenance pins the exact committed version of *every* scanned table
    assert_eq!(
        md.lineage.training_tables,
        vec![("accounts".to_string(), 2), ("customers".to_string(), 2)]
    );
    // the first pin doubles as the legacy single-table fields
    assert_eq!(md.lineage.training_table.as_deref(), Some("accounts"));
    assert_eq!(md.lineage.training_table_version, Some(2));
    // the raw statement is recorded for RETRAIN
    let q = md.lineage.training_query.as_deref().unwrap();
    assert!(q.starts_with("CREATE MODEL churn"), "{q}");
    assert!(q.contains("JOIN accounts"), "{q}");
    assert_eq!(md.output, "churn_p");
    // holdout metrics recorded: 10 joined rows, default 20% held out
    assert_eq!(md.lineage.metrics.get("train_rows"), Some(&8.0));
    assert_eq!(md.lineage.metrics.get("eval_rows"), Some(&2.0));
    assert!(md.lineage.metrics.contains_key("auc"));
    assert!(md.lineage.metrics.contains_key("eval_auc"));

    // the model scores through PREDICT like any deployed model
    let b = db
        .query(
            "SELECT PREDICT(churn, c.age, a.balance) FROM customers c \
             JOIN accounts a ON c.id = a.cust_id",
        )
        .unwrap();
    assert_eq!(b.num_rows(), 10);
}

#[test]
fn recorded_metrics_come_from_held_out_rows() {
    let db = FlockDb::new();
    db.execute("CREATE TABLE noisy (x DOUBLE, y INT)").unwrap();
    // pseudo-noisy labels: a 1-nearest-neighbour model memorizes its
    // training rows perfectly, so train accuracy is 1.0 by construction —
    // any recorded accuracy below 1.0 must come from held-out rows.
    let rows: Vec<String> = (0..40)
        .map(|i| {
            let y = if i % 5 == 0 || i % 5 == 3 { 1 } else { 0 };
            format!("({}.0, {y})", i)
        })
        .collect();
    db.execute(&format!("INSERT INTO noisy VALUES {}", rows.join(", ")))
        .unwrap();
    db.execute(
        "CREATE MODEL memo KIND knn WITH (k = 1, seed = 3, test_fraction = 0.25) \
         TARGET y AS SELECT x, y FROM noisy",
    )
    .unwrap();

    let md = db.model_metadata("memo").unwrap();
    let m = &md.lineage.metrics;
    assert_eq!(m.get("train_rows"), Some(&30.0));
    assert_eq!(m.get("eval_rows"), Some(&10.0));
    // the holdout is disjoint from the fit: a memorizing model cannot be
    // perfect on rows it never saw
    let acc = m["accuracy"];
    assert!(acc < 1.0, "accuracy {acc} looks like a training-set metric");
    assert_eq!(m["eval_accuracy"], acc, "plain name aliases the eval metric");
}

#[test]
fn target_listed_as_feature_is_rejected_as_leakage() {
    let db = FlockDb::new();
    db.execute("CREATE TABLE t (x DOUBLE, y INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1.0, 0), (2.0, 1)").unwrap();
    let err = db
        .execute("CREATE MODEL leak KIND gbt FROM t TARGET y FEATURES x, y")
        .unwrap_err();
    assert!(err.to_string().contains("leaks"), "{err}");
    // nothing was deployed
    assert!(db.model_metadata("leak").is_err());
}

#[test]
fn unknown_hyperparameter_is_rejected() {
    let db = FlockDb::new();
    db.execute("CREATE TABLE t (x DOUBLE, y INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1.0, 0), (2.0, 1)").unwrap();
    let err = db
        .execute("CREATE MODEL m KIND gbt WITH (tres = 3) TARGET y AS SELECT x, y FROM t")
        .unwrap_err();
    assert!(
        err.to_string().contains("unknown CREATE MODEL option 'tres'"),
        "{err}"
    );
}

#[test]
fn null_text_is_a_category_distinct_from_empty_string() {
    let db = FlockDb::new();
    db.execute("CREATE TABLE visits (city VARCHAR, readmit INT)").unwrap();
    // NULL city perfectly predicts the label; the empty string is the
    // opposite class. If NULLs collapsed into '', the two classes would be
    // indistinguishable and no model could separate them.
    let mut rows = Vec::new();
    for _ in 0..10 {
        rows.push("(NULL, 1)".to_string());
        rows.push("('', 0)".to_string());
    }
    db.execute(&format!("INSERT INTO visits VALUES {}", rows.join(", ")))
        .unwrap();
    db.execute(
        "CREATE MODEL readmit KIND tree WITH (seed = 4) TARGET readmit \
         AS SELECT city, readmit FROM visits",
    )
    .unwrap();
    let md = db.model_metadata("readmit").unwrap();
    assert_eq!(
        md.lineage.metrics.get("accuracy"),
        Some(&1.0),
        "NULL and '' must be separable categories: {:?}",
        md.lineage.metrics
    );
}

#[test]
fn seeded_training_is_bit_deterministic_across_databases() {
    let payload = |seed: i64| -> Vec<u8> {
        let db = FlockDb::new();
        db.execute("CREATE TABLE pts (x DOUBLE, z DOUBLE, y INT)").unwrap();
        let rows: Vec<String> = (0..30)
            .map(|i| {
                format!("({}.0, {}.0, {})", i, (i * 3) % 7, i64::from(i > 14))
            })
            .collect();
        db.execute(&format!("INSERT INTO pts VALUES {}", rows.join(", ")))
            .unwrap();
        db.execute(&format!(
            "CREATE MODEL m KIND forest WITH (seed = {seed}, trees = 7) \
             TARGET y AS SELECT x, z, y FROM pts"
        ))
        .unwrap();
        db.session("admin").export_model("m").unwrap().payload
    };
    // same declared seed + same data => byte-identical model package
    assert_eq!(payload(5), payload(5));
    // a different seed shuffles the bootstrap: the artifact changes
    assert_ne!(payload(5), payload(6));
}

#[test]
fn retrain_reruns_recorded_statement_with_fresh_pins() {
    let db = FlockDb::new();
    db.execute("CREATE TABLE obs (x DOUBLE, y INT)").unwrap();
    let rows: Vec<String> = (0..12)
        .map(|i| format!("({}.0, {})", i, i64::from(i > 5)))
        .collect();
    db.execute(&format!("INSERT INTO obs VALUES {}", rows.join(", ")))
        .unwrap();
    db.execute(
        "CREATE MODEL m KIND logistic WITH (seed = 2) TARGET y AS SELECT x, y FROM obs",
    )
    .unwrap();
    let md1 = db.model_metadata("m").unwrap();
    assert_eq!(md1.lineage.training_table_version, Some(2));
    assert_eq!(md1.lineage.metrics.get("train_rows"), Some(&10.0));

    // more data lands; RETRAIN re-runs the recorded statement against it
    let rows: Vec<String> = (12..20)
        .map(|i| format!("({}.0, {})", i, 1))
        .collect();
    db.execute(&format!("INSERT INTO obs VALUES {}", rows.join(", ")))
        .unwrap();
    db.execute("RETRAIN MODEL m").unwrap();

    let md2 = db.model_metadata("m").unwrap();
    assert_eq!(db.registry().get("m").unwrap().version, 2);
    assert_eq!(md2.lineage.training_table_version, Some(3), "pin refreshed");
    assert_eq!(md2.lineage.metrics.get("train_rows"), Some(&16.0));
    // the audit trail records the retrain against the model object
    let audit = db.database().audit_log();
    assert!(
        audit.iter().any(|r| r.action == "MODEL RETRAIN" && r.object == "m"),
        "actions: {:?}",
        audit.iter().map(|r| r.action.clone()).collect::<Vec<_>>()
    );
}

#[test]
fn retrain_requires_a_recorded_training_statement() {
    let db = FlockDb::new();
    let pipeline = Pipeline::new(
        vec![ColumnPipeline::numeric("x")],
        Model::Linear(LinearModel::new(vec![1.0], 0.0)),
        "score",
    );
    db.session("admin")
        .deploy_model("handmade", &pipeline, Lineage::default())
        .unwrap();
    let err = db.execute("RETRAIN MODEL handmade").unwrap_err();
    assert!(
        err.to_string().contains("no recorded training statement"),
        "{err}"
    );
}

#[test]
fn training_reads_are_access_checked() {
    let db = FlockDb::new();
    db.execute("CREATE TABLE secrets (x DOUBLE, y INT)").unwrap();
    db.execute("INSERT INTO secrets VALUES (1.0, 0), (2.0, 1)").unwrap();
    db.execute("CREATE USER intern").unwrap();
    let mut s = db.session("intern");
    let err = s
        .execute("CREATE MODEL spy KIND gbt TARGET y AS SELECT x, y FROM secrets")
        .unwrap_err();
    assert!(
        matches!(err, flock_sql::SqlError::AccessDenied(_)),
        "training must not bypass table ACLs: {err}"
    );
}
