//! Concurrency tests for the inference path: PREDICT under statement
//! deadlines, cooperative cancellation through the real
//! `FlockInferenceProvider`, admission control under a concurrent PREDICT
//! workload, and cross-thread determinism of scores.

use flock_core::{FlockDb, Lineage, XOptConfig};
use flock_ml::{ColumnPipeline, LinearModel, Model, Pipeline};
use flock_rng::rngs::StdRng;
use flock_rng::{Rng, SeedableRng};
use flock_sql::ast::PredictStrategy;
use flock_sql::exec::ExecOptions;
use flock_sql::{SqlError, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const ROWS: usize = 20_000;

/// A FlockDb whose cross-optimizer keeps PREDICT as a provider call
/// (no linear inlining, no strategy override), so the tests exercise the
/// inference provider's cancellation points rather than inlined
/// arithmetic.
fn scoring_db() -> FlockDb {
    let db = FlockDb::with_config(XOptConfig {
        inline_models: false,
        predicate_specialization: false,
        operator_selection: false,
        ..XOptConfig::default()
    });
    db.execute("CREATE TABLE loans (id INT, amount DOUBLE, rate DOUBLE)").unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    for chunk in (0..ROWS).collect::<Vec<_>>().chunks(1000) {
        let rows: Vec<String> = chunk
            .iter()
            .map(|&i| {
                format!(
                    "({i}, {:.4}, {:.6})",
                    rng.gen_range(1_000.0f64..50_000.0),
                    rng.gen_range(0.01f64..0.25)
                )
            })
            .collect();
        db.execute(&format!("INSERT INTO loans VALUES {}", rows.join(", ")))
            .unwrap();
    }
    let pipeline = Pipeline::new(
        vec![
            ColumnPipeline::numeric("amount"),
            ColumnPipeline::numeric("rate"),
        ],
        Model::Linear(LinearModel::new(vec![0.00002, 3.0], -0.5)),
        "default_risk",
    );
    let mut s = db.session("admin");
    s.deploy_model("default_risk", &pipeline, Lineage::default())
        .unwrap();
    // Row strategy: one provider call per row, the slowest path — which is
    // exactly what the deadline/cancellation tests need for headroom.
    db.database().set_exec_options(ExecOptions {
        default_predict: PredictStrategy::Row,
        ..ExecOptions::default()
    });
    db
}

const PREDICT_QUERY: &str =
    "SELECT id, PREDICT(default_risk, amount, rate) FROM loans ORDER BY id";

#[test]
fn predict_exceeding_deadline_times_out_and_releases_resources() {
    let db = scoring_db();
    let mut s = db.session("admin");
    s.execute("SET statement_timeout = 1").unwrap();
    let err = s.query(PREDICT_QUERY).unwrap_err();
    assert!(
        matches!(err, SqlError::Timeout(_)),
        "PREDICT past its deadline must be a typed timeout, got {err:?}"
    );

    // The admission slot was released on the unwind...
    assert_eq!(db.database().admission().active(), 0);
    // ...the partial per-operator metrics survived for post-mortem...
    assert!(s.last_query_metrics().is_some());
    // ...and the engine counter is visible through the flock_metrics table.
    s.execute("SET statement_timeout = DEFAULT").unwrap();
    let b = s
        .query("SELECT value FROM flock_metrics WHERE metric = 'queries_timed_out'")
        .unwrap();
    let Value::Int(timed_out) = b.column(0).get(0) else {
        panic!("metrics value must be an integer")
    };
    assert!(timed_out >= 1, "queries_timed_out = {timed_out}");

    // With the timeout lifted the same query completes.
    assert_eq!(s.query(PREDICT_QUERY).unwrap().num_rows(), ROWS);
}

#[test]
fn predict_cancel_unwinds_through_the_real_provider() {
    let db = scoring_db();
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = {
        let db = db.clone();
        std::thread::spawn(move || {
            let mut s = db.session("admin");
            tx.send(s.cancel_handle()).unwrap();
            let err = s.query(PREDICT_QUERY).unwrap_err();
            assert!(matches!(err, SqlError::Cancelled(_)), "got {err:?}");
            assert!(s.last_query_metrics().is_some());
        })
    };
    let handle = rx.recv().unwrap();
    // Cancel repeatedly: the flag resets when the statement starts, so a
    // single early cancel could be consumed before execution begins.
    while !worker.is_finished() {
        handle.cancel();
        std::thread::sleep(Duration::from_micros(200));
    }
    worker.join().unwrap();
    assert_eq!(db.database().admission().active(), 0);
    let m: std::collections::HashMap<_, _> =
        db.database().engine_metrics().rows().into_iter().collect();
    assert!(m["queries_cancelled"] >= 1);
    // Engine still healthy after the unwind.
    assert_eq!(db.query(PREDICT_QUERY).unwrap().num_rows(), ROWS);
}

/// The PREDICT variant of the stress harness: N threads of a seeded mixed
/// scoring workload (full scans, filtered scans, self-imposed timeouts)
/// over one shared FlockDb, under an admission limit smaller than the
/// thread count. Scores must be deterministic across threads, rejections
/// must be typed, and no slot or lock may leak.
#[test]
fn concurrent_predict_workload_is_deterministic_and_typed() {
    const THREADS: usize = 4;
    const STEPS: usize = 8;

    let db = scoring_db();
    // Vectorized strategy keeps the smoke fast; determinism must hold
    // regardless of scheduling.
    db.database().set_exec_options(ExecOptions {
        default_predict: PredictStrategy::Vectorized,
        max_concurrent_queries: 2,
        ..ExecOptions::default()
    });

    // Serial reference, computed before any concurrency.
    let reference = db
        .query("SELECT SUM(PREDICT(default_risk, amount, rate)) FROM loans")
        .unwrap()
        .column(0)
        .get(0);
    let Value::Float(reference) = reference else {
        panic!("expected float sum, got {reference:?}")
    };

    let rejected = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let db = db.clone();
            let rejected = &rejected;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBEEF + t as u64);
                let mut s = db.session("admin");
                for _ in 0..STEPS {
                    let q = if rng.gen_bool(0.5) {
                        "SELECT SUM(PREDICT(default_risk, amount, rate)) FROM loans"
                    } else {
                        "SELECT COUNT(*) FROM loans \
                         WHERE PREDICT(default_risk, amount, rate) > 0.5"
                    };
                    match s.query(q) {
                        Ok(b) => {
                            if let Value::Float(sum) = b.column(0).get(0) {
                                assert!(
                                    (sum - reference).abs() <= 1e-9 * reference.abs(),
                                    "thread {t}: score sum drifted under concurrency"
                                );
                            }
                        }
                        Err(SqlError::Admission(_)) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("thread {t}: unexpected error {e}"),
                    }
                }
            });
        }
    });

    assert_eq!(db.database().admission().active(), 0, "leaked admission slot");
    let m: std::collections::HashMap<_, _> =
        db.database().engine_metrics().rows().into_iter().collect();
    assert!(
        m["admission_rejected"] >= rejected.load(Ordering::Relaxed),
        "every typed rejection must be counted"
    );
}
