//! The high-throughput serving path end-to-end: prepared PREDICT through
//! the plan cache, strategy ablations (row / vectorized / batched) staying
//! bit-exact, model redeploy & revocation invalidating cached plans, and
//! cancellation under the batched kernel releasing admission slots.

use flock_core::{FlockDb, Lineage, XOptConfig};
use flock_ml::{ColumnPipeline, DecisionTree, GbtModel, Model, Pipeline, TreeNode};
use flock_rng::rngs::StdRng;
use flock_rng::{Rng, SeedableRng};
use flock_sql::{SqlError, Value};
use std::sync::atomic::Ordering;

const ROWS: usize = 20_000;

fn stump(feature: usize, threshold: f64, lo: f64, hi: f64) -> DecisionTree {
    DecisionTree {
        nodes: vec![
            TreeNode::Split {
                feature,
                threshold,
                left: 1,
                right: 2,
            },
            TreeNode::Leaf { value: lo },
            TreeNode::Leaf { value: hi },
        ],
    }
}

fn gbt_pipeline(shift: f64) -> Pipeline {
    Pipeline::new(
        vec![
            ColumnPipeline::numeric("amount"),
            ColumnPipeline::numeric("rate"),
        ],
        Model::Gbt(GbtModel {
            trees: vec![
                stump(0, 20_000.0, -0.4, 0.9),
                stump(1, 0.12, 0.2, -0.3),
                stump(0, 35_000.0, -0.1, 0.55),
            ],
            learning_rate: 0.3,
            base_score: 0.5 + shift,
            sigmoid_output: true,
        }),
        "default_risk",
    )
}

/// A FlockDb whose cross-optimizer keeps PREDICT as a provider call, so
/// the strategy chosen by `SET predict_strategy` is what actually scores.
fn serving_db() -> FlockDb {
    let db = FlockDb::with_config(XOptConfig {
        inline_models: false,
        predicate_specialization: false,
        operator_selection: false,
        ..XOptConfig::default()
    });
    db.execute("CREATE TABLE loans (id INT, amount DOUBLE, rate DOUBLE)")
        .unwrap();
    let mut rng = StdRng::seed_from_u64(23);
    for chunk in (0..ROWS).collect::<Vec<_>>().chunks(1000) {
        let rows: Vec<String> = chunk
            .iter()
            .map(|&i| {
                format!(
                    "({i}, {:.4}, {:.6})",
                    rng.gen_range(1_000.0f64..50_000.0),
                    rng.gen_range(0.01f64..0.25)
                )
            })
            .collect();
        db.execute(&format!("INSERT INTO loans VALUES {}", rows.join(", ")))
            .unwrap();
    }
    let mut s = db.session("admin");
    s.deploy_model("default_risk", &gbt_pipeline(0.0), Lineage::default())
        .unwrap();
    db
}

const PREDICT_QUERY: &str =
    "SELECT id, PREDICT(default_risk, amount, rate) FROM loans ORDER BY id";

fn score_bits(db: &FlockDb, session: &mut flock_core::FlockSession) -> Vec<u64> {
    let _ = db;
    let b = session.query(PREDICT_QUERY).unwrap();
    (0..b.num_rows())
        .map(|r| {
            let Value::Float(v) = b.column(1).get(r) else {
                panic!("score must be a float")
            };
            v.to_bits()
        })
        .collect()
}

#[test]
fn strategy_ablation_is_bit_exact() {
    let db = serving_db();
    let mut s = db.session("admin");
    let baseline = score_bits(&db, &mut s);
    assert_eq!(baseline.len(), ROWS);
    for strategy in ["row", "vectorized", "batched", "parallel"] {
        s.execute(&format!("SET predict_strategy = '{strategy}'"))
            .unwrap();
        assert_eq!(
            score_bits(&db, &mut s),
            baseline,
            "strategy '{strategy}' diverged from the default path"
        );
    }
    // The batched kernel really ran (not a silent fallback).
    let stats = &db.provider().stats;
    assert!(stats.batched_calls.load(Ordering::Relaxed) >= 1);
    assert!(stats.row_calls.load(Ordering::Relaxed) >= 1);
}

#[test]
fn prepared_predict_serves_from_plan_cache() {
    let db = serving_db();
    let mut s = db.session("admin");
    let p = s
        .prepare("SELECT PREDICT(default_risk, amount, rate) FROM loans WHERE id < ?")
        .unwrap();
    let run = |s: &mut flock_core::FlockSession, n: i64| {
        s.execute_prepared(&p, &[Value::Int(n)])
            .unwrap()
            .batch
            .unwrap()
            .num_rows()
    };
    assert_eq!(run(&mut s, 10), 10);
    let cache = db.database().plan_cache();
    let hits = cache.hits.clone();
    let h0 = hits.load(Ordering::Relaxed);
    assert_eq!(run(&mut s, 25), 25);
    assert_eq!(run(&mut s, 3), 3);
    assert_eq!(
        hits.load(Ordering::Relaxed),
        h0 + 2,
        "repeat executions skip parse/plan/xopt"
    );
}

#[test]
fn model_redeploy_invalidates_cached_plans() {
    let db = serving_db();
    let mut s = db.session("admin");
    let p = s
        .prepare("SELECT PREDICT(default_risk, amount, rate) FROM loans WHERE id = ?")
        .unwrap();
    let score = |s: &mut flock_core::FlockSession| {
        let b = s
            .execute_prepared(&p, &[Value::Int(1)])
            .unwrap()
            .batch
            .unwrap();
        let Value::Float(v) = b.column(0).get(0) else {
            panic!()
        };
        v
    };
    let before = score(&mut s);
    assert_eq!(score(&mut s), before, "plan is hot");

    // Redeploy with shifted leaves: the registry epoch tick must kill the
    // cached plan so the next execution scores through version 2.
    s.update_model("default_risk", &gbt_pipeline(5.0), Lineage::default())
        .unwrap();
    let after = score(&mut s);
    assert_ne!(
        after.to_bits(),
        before.to_bits(),
        "stale model served through the plan cache after redeploy"
    );
}

#[test]
fn dropped_model_fails_instead_of_serving_stale_plan() {
    let db = serving_db();
    let mut s = db.session("admin");
    let p = s
        .prepare("SELECT PREDICT(default_risk, amount, rate) FROM loans WHERE id = ?")
        .unwrap();
    s.execute_prepared(&p, &[Value::Int(1)]).unwrap();
    s.execute("DROP MODEL default_risk").unwrap();
    let err = s.execute_prepared(&p, &[Value::Int(1)]).unwrap_err();
    assert!(
        !matches!(err, SqlError::Execution(_)),
        "dropping the model must fail at plan/catalog level, got {err:?}"
    );
}

#[test]
fn revoked_execute_blocks_hot_cached_plan() {
    let db = serving_db();
    db.execute("CREATE USER scorer").unwrap();
    db.execute("GRANT SELECT ON TABLE loans TO scorer").unwrap();
    db.execute("GRANT EXECUTE ON MODEL default_risk TO scorer")
        .unwrap();
    let mut scorer = db.session("scorer");
    let p = scorer
        .prepare("SELECT PREDICT(default_risk, amount, rate) FROM loans WHERE id = ?")
        .unwrap();
    scorer.execute_prepared(&p, &[Value::Int(1)]).unwrap();
    scorer.execute_prepared(&p, &[Value::Int(2)]).unwrap(); // hot

    db.execute("REVOKE EXECUTE ON MODEL default_risk FROM scorer")
        .unwrap();
    let err = scorer.execute_prepared(&p, &[Value::Int(3)]).unwrap_err();
    assert!(
        matches!(err, SqlError::AccessDenied(_)),
        "revoked user scored through a cached plan: {err:?}"
    );
}

#[test]
fn batched_cancellation_releases_admission_slot() {
    let db = serving_db();
    let mut s = db.session("admin");
    // A deliberately heavy ensemble — 2000 trees over 20k rows is tens of
    // milliseconds of batched scoring — so the 1 ms deadline reliably
    // trips *inside* the kernel, not between statements.
    let heavy = Pipeline::new(
        vec![
            ColumnPipeline::numeric("amount"),
            ColumnPipeline::numeric("rate"),
        ],
        Model::Gbt(GbtModel {
            trees: (0..2000).map(|i| stump(i % 2, 0.5, -0.4, 0.9)).collect(),
            learning_rate: 0.01,
            base_score: 0.5,
            sigmoid_output: true,
        }),
        "slow_risk",
    );
    s.deploy_model("slow_risk", &heavy, Lineage::default()).unwrap();
    s.execute("SET predict_strategy = 'batched'").unwrap();
    s.execute("SET statement_timeout = 1").unwrap();
    let err = s
        .query("SELECT id, PREDICT(slow_risk, amount, rate) FROM loans ORDER BY id")
        .unwrap_err();
    assert!(
        matches!(err, SqlError::Timeout(_)),
        "batched PREDICT past its deadline must time out, got {err:?}"
    );
    assert_eq!(
        db.database().admission().active(),
        0,
        "admission slot leaked on mid-batch cancellation"
    );
    // Engine stays healthy; the same session completes once the deadline
    // is lifted.
    s.execute("SET statement_timeout = DEFAULT").unwrap();
    assert_eq!(s.query(PREDICT_QUERY).unwrap().num_rows(), ROWS);
}
