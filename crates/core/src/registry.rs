//! The in-memory model registry backing PREDICT evaluation.
//!
//! The *catalog* (in `flock-sql`) is the durable, versioned, access
//! controlled store of models-as-data; the registry is the engine-side
//! cache of deserialized, ready-to-score pipelines. The cross-optimizer
//! also parks *derived variants* here (pruned / compressed / per-query
//! specialized models) under internal names.

use crate::meta::ModelMetadata;
use flock_ml::Pipeline;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A scoring-ready model.
#[derive(Debug, Clone)]
pub struct RegisteredModel {
    pub pipeline: Arc<Pipeline>,
    pub metadata: Arc<ModelMetadata>,
    /// Catalog version this entry was loaded from (0 for derived variants).
    pub version: u64,
}

#[derive(Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, RegisteredModel>>,
}

impl ModelRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn get(&self, name: &str) -> Option<RegisteredModel> {
        self.models.read().get(&name.to_ascii_lowercase()).cloned()
    }

    pub fn insert(&self, name: &str, model: RegisteredModel) {
        self.models
            .write()
            .insert(name.to_ascii_lowercase(), model);
    }

    pub fn remove(&self, name: &str) {
        let key = name.to_ascii_lowercase();
        let mut models = self.models.write();
        models.remove(&key);
        // drop derived variants of this model too
        let derived_prefix = format!("{key}#");
        models.retain(|k, _| !k.starts_with(&derived_prefix));
    }

    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .models
            .read()
            .keys()
            .filter(|k| !k.contains('#'))
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Register (or reuse) a derived variant of `base`. The variant name
    /// encodes the base version and the transformation tag, so a stale
    /// cache entry can never serve a newer base model.
    pub fn register_derived(
        &self,
        base: &str,
        tag: &str,
        build: impl FnOnce(&RegisteredModel) -> Option<Pipeline>,
    ) -> Option<String> {
        let base_key = base.to_ascii_lowercase();
        let base_model = self.get(&base_key)?;
        let derived_name = format!("{base_key}#{}v{}#{tag}", base_model.version, "");
        if self.get(&derived_name).is_some() {
            return Some(derived_name);
        }
        let pipeline = build(&base_model)?;
        let metadata = ModelMetadata {
            name: derived_name.clone(),
            inputs: pipeline
                .columns
                .iter()
                .map(|c| (c.input.clone(), c.encoder.takes_strings()))
                .collect(),
            output: pipeline.output.clone(),
            kind: format!("{}:{tag}", base_model.metadata.kind),
            complexity: pipeline.complexity(),
            lineage: base_model.metadata.lineage.clone(),
        };
        self.insert(
            &derived_name,
            RegisteredModel {
                pipeline: Arc::new(pipeline),
                metadata: Arc::new(metadata),
                version: 0,
            },
        );
        Some(derived_name)
    }

    /// Number of registered entries (including derived variants).
    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.models.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::Lineage;
    use flock_ml::{ColumnPipeline, LinearModel, Model};

    fn entry(version: u64) -> RegisteredModel {
        let pipeline = Pipeline::new(
            vec![ColumnPipeline::numeric("x")],
            Model::Linear(LinearModel::new(vec![1.0], 0.0)),
            "y",
        );
        RegisteredModel {
            metadata: Arc::new(ModelMetadata {
                name: "m".into(),
                inputs: vec![("x".into(), false)],
                output: "y".into(),
                kind: "linear".into(),
                complexity: 1,
                lineage: Lineage::default(),
            }),
            pipeline: Arc::new(pipeline),
            version,
        }
    }

    #[test]
    fn insert_get_case_insensitive() {
        let r = ModelRegistry::new();
        r.insert("Churn", entry(1));
        assert!(r.get("CHURN").is_some());
        assert_eq!(r.names(), vec!["churn".to_string()]);
    }

    #[test]
    fn derived_variants_cache_and_cascade_delete() {
        let r = ModelRegistry::new();
        r.insert("m", entry(3));
        let mut build_calls = 0;
        let name1 = r
            .register_derived("m", "pruned", |base| {
                build_calls += 1;
                Some((*base.pipeline).clone())
            })
            .unwrap();
        let name2 = r
            .register_derived("m", "pruned", |base| {
                build_calls += 1;
                Some((*base.pipeline).clone())
            })
            .unwrap();
        assert_eq!(name1, name2);
        assert_eq!(build_calls, 1, "second call hits cache");
        assert!(name1.contains("3"), "variant name pins base version");
        assert_eq!(r.names(), vec!["m".to_string()], "variants hidden from listing");

        r.remove("m");
        assert!(r.get(&name1).is_none(), "variants removed with base");
        assert!(r.is_empty());
    }

    #[test]
    fn derived_of_missing_base_is_none() {
        let r = ModelRegistry::new();
        assert!(r.register_derived("ghost", "t", |_| None).is_none());
    }
}
