//! The in-memory model registry backing PREDICT evaluation.
//!
//! The *catalog* (in `flock-sql`) is the durable, versioned, access
//! controlled store of models-as-data; the registry is the engine-side
//! cache of deserialized, ready-to-score pipelines. The cross-optimizer
//! also parks *derived variants* here (pruned / compressed / per-query
//! specialized models) under internal names.

use crate::meta::ModelMetadata;
use flock_ml::{CompiledPipeline, Pipeline};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A scoring-ready model.
#[derive(Debug, Clone)]
pub struct RegisteredModel {
    pub pipeline: Arc<Pipeline>,
    pub metadata: Arc<ModelMetadata>,
    /// Catalog version this entry was loaded from (0 for derived variants).
    pub version: u64,
}

/// What a derived-variant builder hands back: the rewritten pipeline plus
/// an optional human-readable annotation (shown by `EXPLAIN ANALYZE` and
/// `DESCRIBE MODEL` via the variant's `kind`).
pub struct DerivedPipeline {
    pub pipeline: Pipeline,
    pub annotation: Option<String>,
}

#[derive(Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, RegisteredModel>>,
    /// Compiled-pipeline cache: name -> (version it was compiled from,
    /// evaluation-ready artifact). Invalidated on redeploy.
    compiled: RwLock<HashMap<String, (u64, Arc<CompiledPipeline>)>>,
    cache_hits: Arc<AtomicU64>,
    cache_misses: Arc<AtomicU64>,
    cache_invalidations: Arc<AtomicU64>,
    /// Bumped whenever a *deployed* model (non-derived name) is registered
    /// or removed. The SQL plan cache samples this through
    /// [`InferenceProvider::plan_epoch`] so cached plans die on model
    /// redeploy / drop. Derived-variant registrations do NOT bump it:
    /// they happen *during* planning (epochs were already sampled), and a
    /// bump would make every fresh cache entry instantly stale.
    epoch: AtomicU64,
}

impl ModelRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn get(&self, name: &str) -> Option<RegisteredModel> {
        self.models.read().get(&name.to_ascii_lowercase()).cloned()
    }

    pub fn insert(&self, name: &str, model: RegisteredModel) {
        let key = name.to_ascii_lowercase();
        // A (re)deploy invalidates the compiled artifacts and derived
        // variants of any previous version under this name.
        self.evict_compiled(&key);
        let derived_prefix = format!("{key}#");
        self.models.write().retain(|k, _| {
            let stale = k.starts_with(&derived_prefix);
            if stale {
                self.evict_compiled(k);
            }
            !stale
        });
        self.models.write().insert(key.clone(), model);
        if !key.contains('#') {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn remove(&self, name: &str) {
        let key = name.to_ascii_lowercase();
        let mut models = self.models.write();
        let removed = models.remove(&key).is_some();
        self.evict_compiled(&key);
        // drop derived variants of this model too
        let derived_prefix = format!("{key}#");
        models.retain(|k, _| {
            let stale = k.starts_with(&derived_prefix);
            if stale {
                self.evict_compiled(k);
            }
            !stale
        });
        if removed && !key.contains('#') {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Monotonic model-deployment epoch (see the field doc). Sampled by
    /// the SQL plan cache to invalidate plans whose `PREDICT` targets
    /// were redeployed or dropped.
    pub fn plan_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The compiled (evaluation-ready) form of a registered pipeline.
    /// Compiles and caches on miss; a cached artifact is served only while
    /// its source version is still registered.
    pub fn compiled(&self, name: &str) -> Option<Arc<CompiledPipeline>> {
        let key = name.to_ascii_lowercase();
        let model = self.get(&key)?;
        if let Some((version, artifact)) = self.compiled.read().get(&key) {
            if *version == model.version {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Some(Arc::clone(artifact));
            }
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let artifact = Arc::new(CompiledPipeline::compile(&model.pipeline));
        self.compiled
            .write()
            .insert(key, (model.version, Arc::clone(&artifact)));
        Some(artifact)
    }

    fn evict_compiled(&self, key: &str) {
        if self.compiled.write().remove(key).is_some() {
            self.cache_invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// (hits, misses, invalidations) of the compiled-pipeline cache.
    pub fn compiled_cache_counts(&self) -> (u64, u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
            self.cache_invalidations.load(Ordering::Relaxed),
        )
    }

    /// Shared counter handles, for registration into engine-wide metrics.
    pub fn cache_counters(&self) -> [(&'static str, Arc<AtomicU64>); 3] {
        [
            ("predict_compile_hits", Arc::clone(&self.cache_hits)),
            ("predict_compile_misses", Arc::clone(&self.cache_misses)),
            (
                "predict_compile_invalidations",
                Arc::clone(&self.cache_invalidations),
            ),
        ]
    }

    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .models
            .read()
            .keys()
            .filter(|k| !k.contains('#'))
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Register (or reuse) a derived variant of `base`. The variant name
    /// encodes the base version and the transformation tag, so a stale
    /// cache entry can never serve a newer base model.
    pub fn register_derived(
        &self,
        base: &str,
        tag: &str,
        build: impl FnOnce(&RegisteredModel) -> Option<DerivedPipeline>,
    ) -> Option<String> {
        let base_key = base.to_ascii_lowercase();
        let base_model = self.get(&base_key)?;
        let derived_name = format!("{base_key}#{}v{}#{tag}", base_model.version, "");
        if self.get(&derived_name).is_some() {
            return Some(derived_name);
        }
        let DerivedPipeline {
            pipeline,
            annotation,
        } = build(&base_model)?;
        let kind_suffix = annotation.unwrap_or_else(|| tag.to_string());
        let metadata = ModelMetadata {
            name: derived_name.clone(),
            inputs: pipeline
                .columns
                .iter()
                .map(|c| (c.input.clone(), c.encoder.takes_strings()))
                .collect(),
            output: pipeline.output.clone(),
            kind: format!("{}:{kind_suffix}", base_model.metadata.kind),
            complexity: pipeline.complexity(),
            lineage: base_model.metadata.lineage.clone(),
        };
        self.insert(
            &derived_name,
            RegisteredModel {
                pipeline: Arc::new(pipeline),
                metadata: Arc::new(metadata),
                version: 0,
            },
        );
        Some(derived_name)
    }

    /// Number of registered entries (including derived variants).
    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.models.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::Lineage;
    use flock_ml::{ColumnPipeline, LinearModel, Model};

    fn entry(version: u64) -> RegisteredModel {
        let pipeline = Pipeline::new(
            vec![ColumnPipeline::numeric("x")],
            Model::Linear(LinearModel::new(vec![1.0], 0.0)),
            "y",
        );
        RegisteredModel {
            metadata: Arc::new(ModelMetadata {
                name: "m".into(),
                inputs: vec![("x".into(), false)],
                output: "y".into(),
                kind: "linear".into(),
                complexity: 1,
                lineage: Lineage::default(),
            }),
            pipeline: Arc::new(pipeline),
            version,
        }
    }

    #[test]
    fn insert_get_case_insensitive() {
        let r = ModelRegistry::new();
        r.insert("Churn", entry(1));
        assert!(r.get("CHURN").is_some());
        assert_eq!(r.names(), vec!["churn".to_string()]);
    }

    #[test]
    fn derived_variants_cache_and_cascade_delete() {
        let r = ModelRegistry::new();
        r.insert("m", entry(3));
        let mut build_calls = 0;
        let name1 = r
            .register_derived("m", "pruned", |base| {
                build_calls += 1;
                Some(DerivedPipeline {
                    pipeline: (*base.pipeline).clone(),
                    annotation: None,
                })
            })
            .unwrap();
        let name2 = r
            .register_derived("m", "pruned", |base| {
                build_calls += 1;
                Some(DerivedPipeline {
                    pipeline: (*base.pipeline).clone(),
                    annotation: None,
                })
            })
            .unwrap();
        assert_eq!(name1, name2);
        assert_eq!(build_calls, 1, "second call hits cache");
        assert!(name1.contains("3"), "variant name pins base version");
        assert_eq!(r.names(), vec!["m".to_string()], "variants hidden from listing");

        r.remove("m");
        assert!(r.get(&name1).is_none(), "variants removed with base");
        assert!(r.is_empty());
    }

    #[test]
    fn derived_of_missing_base_is_none() {
        let r = ModelRegistry::new();
        assert!(r.register_derived("ghost", "t", |_| None).is_none());
    }

    #[test]
    fn derived_annotation_lands_in_kind() {
        let r = ModelRegistry::new();
        r.insert("m", entry(1));
        let name = r
            .register_derived("m", "spec1", |base| {
                Some(DerivedPipeline {
                    pipeline: (*base.pipeline).clone(),
                    annotation: Some("spec(nodes 9->3)".into()),
                })
            })
            .unwrap();
        let kind = r.get(&name).unwrap().metadata.kind.clone();
        assert_eq!(kind, "linear:spec(nodes 9->3)");
    }

    #[test]
    fn compiled_cache_hits_and_invalidates_on_redeploy() {
        let r = ModelRegistry::new();
        r.insert("m", entry(1));
        let c1 = r.compiled("m").unwrap();
        let c2 = r.compiled("M").unwrap();
        assert!(Arc::ptr_eq(&c1, &c2), "second lookup is a cache hit");
        assert_eq!(r.compiled_cache_counts(), (1, 1, 0));

        // redeploy bumps the version -> compiled artifact is evicted
        r.insert("m", entry(2));
        assert_eq!(r.compiled_cache_counts(), (1, 1, 1));
        let c3 = r.compiled("m").unwrap();
        assert!(!Arc::ptr_eq(&c1, &c3), "recompiled after invalidation");
        assert_eq!(r.compiled_cache_counts(), (1, 2, 1));

        r.remove("m");
        assert_eq!(r.compiled_cache_counts(), (1, 2, 2));
        assert!(r.compiled("m").is_none());
    }
}
