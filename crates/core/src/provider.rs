//! The inference provider: scores registered models inside query
//! execution, implementing the engine's PREDICT extension point.

use crate::registry::ModelRegistry;
use flock_ml::{
    interpreted_score_with_metrics, BatchScratch, CompiledPipeline, Frame, FrameCol, Pipeline,
    ScoringMetrics,
};
use flock_sql::ast::PredictStrategy;
use flock_sql::exec::parallel::parallel_map;
use flock_sql::exec::CancelToken;
use flock_sql::udf::InferenceProvider;
use flock_sql::{ColumnVector, DataType, SqlError};
use std::sync::Arc;

/// Scoring statistics (how many rows went through each strategy) — used by
/// tests and ablation reporting.
#[derive(Debug, Default)]
pub struct PredictStats {
    pub row_calls: std::sync::atomic::AtomicU64,
    pub vectorized_calls: std::sync::atomic::AtomicU64,
    pub batched_calls: std::sync::atomic::AtomicU64,
    pub parallel_calls: std::sync::atomic::AtomicU64,
    pub rows_scored: std::sync::atomic::AtomicU64,
}

/// Implements [`InferenceProvider`] over the model registry.
pub struct FlockInferenceProvider {
    registry: Arc<ModelRegistry>,
    pub stats: Arc<PredictStats>,
    /// Per-stage scoring latency/row counters (featurize vs. model eval vs.
    /// interpreted path), cumulative across all PREDICT calls.
    pub scoring: Arc<ScoringMetrics>,
}

impl FlockInferenceProvider {
    pub fn new(registry: Arc<ModelRegistry>) -> Self {
        FlockInferenceProvider {
            registry,
            stats: Arc::new(PredictStats::default()),
            scoring: Arc::new(ScoringMetrics::default()),
        }
    }

    fn pipeline(&self, model: &str) -> Result<Arc<Pipeline>, SqlError> {
        self.registry
            .get(model)
            .map(|m| m.pipeline)
            .ok_or_else(|| SqlError::Catalog(format!("model '{model}' is not deployed")))
    }

    /// The compiled (flattened, cacheable) form of a registered pipeline.
    fn compiled(&self, model: &str) -> Result<Arc<CompiledPipeline>, SqlError> {
        self.registry
            .compiled(model)
            .ok_or_else(|| SqlError::Catalog(format!("model '{model}' is not deployed")))
    }

    /// Shared scoring path; `cancel` is polled before scoring and between
    /// parallel chunks so a `statement_timeout` interrupts large batches
    /// instead of waiting for the whole PREDICT to finish.
    fn predict_inner(
        &self,
        model: &str,
        inputs: &[ColumnVector],
        strategy: PredictStrategy,
        cancel: &CancelToken,
    ) -> Result<ColumnVector, SqlError> {
        use std::sync::atomic::Ordering;
        cancel.check()?;
        let pipeline = self.pipeline(model)?;
        let frame = columns_to_frame(&pipeline, inputs)?;
        let n = frame.num_rows();
        self.stats.rows_scored.fetch_add(n as u64, Ordering::Relaxed);

        let scores: Vec<f64> = match strategy {
            PredictStrategy::Row => {
                self.stats.row_calls.fetch_add(1, Ordering::Relaxed);
                interpreted_score_with_metrics(&pipeline, &frame, &self.scoring)
                    .map_err(|e| SqlError::Execution(e.to_string()))?
            }
            PredictStrategy::Auto | PredictStrategy::Vectorized => {
                self.stats.vectorized_calls.fetch_add(1, Ordering::Relaxed);
                self.compiled(model)?
                    .score_with_metrics(&frame, &self.scoring)
                    .map_err(|e| SqlError::Execution(e.to_string()))?
            }
            PredictStrategy::Batched => {
                self.stats.batched_calls.fetch_add(1, Ordering::Relaxed);
                // Scratch buffers live per worker thread and persist
                // across statements: the serving hot loop never
                // reallocates cursor/sum arrays.
                thread_local! {
                    static SCRATCH: std::cell::RefCell<BatchScratch> =
                        std::cell::RefCell::new(BatchScratch::default());
                }
                let compiled = self.compiled(model)?;
                SCRATCH.with(|s| {
                    compiled
                        .score_batched_with_metrics(&frame, &self.scoring, &mut s.borrow_mut())
                        .map_err(|e| SqlError::Execution(e.to_string()))
                })?
            }
            PredictStrategy::Parallel(threads) => {
                self.stats.parallel_calls.fetch_add(1, Ordering::Relaxed);
                let compiled = self.compiled(model)?;
                let threads = threads.max(1);
                if threads == 1 || n < 2 * 1024 {
                    compiled
                        .score_with_metrics(&frame, &self.scoring)
                        .map_err(|e| SqlError::Execution(e.to_string()))?
                } else {
                    let chunk_rows = n.div_ceil(threads).max(1);
                    let chunks: Vec<Frame> = frame.chunks(chunk_rows).collect();
                    let results = parallel_map(&chunks, threads, |chunk| {
                        cancel.check()?;
                        compiled
                            .score_with_metrics(chunk, &self.scoring)
                            .map_err(|e| SqlError::Execution(e.to_string()))
                    })?;
                    let mut out = Vec::with_capacity(n);
                    for r in results {
                        out.extend(r);
                    }
                    out
                }
            }
        };
        Ok(ColumnVector::from_f64(scores))
    }
}

/// Convert PREDICT argument columns into an ML frame using the pipeline's
/// declared input names (positional binding against the *bound* columns —
/// inputs the cross-optimizer folded into the pipeline take no argument).
/// Borrows the engine's column buffers whenever they are directly usable
/// (all-valid float / text vectors); copies only on nulls or type casts.
pub fn columns_to_frame<'a>(
    pipeline: &Pipeline,
    inputs: &'a [ColumnVector],
) -> Result<Frame<'a>, SqlError> {
    let bound = pipeline.bound_columns();
    if inputs.len() != bound.len() {
        return Err(SqlError::Execution(format!(
            "model '{}' expects {} arguments, got {}",
            pipeline.output,
            bound.len(),
            inputs.len()
        )));
    }
    let mut frame = Frame::new();
    for (&i, col) in bound.iter().zip(inputs) {
        let cp = &pipeline.columns[i];
        let fc = if pipeline.input_is_text(i) {
            match col.as_text_slice() {
                Some(slice) if col.null_count() == 0 => FrameCol::StrBorrowed(slice),
                _ => FrameCol::Str(
                    (0..col.len())
                        .map(|r| {
                            let v = col.get(r);
                            if v.is_null() {
                                String::new()
                            } else {
                                v.to_string()
                            }
                        })
                        .collect(),
                ),
            }
        } else if let Some(slice) = col.as_f64_slice() {
            FrameCol::F64Borrowed(slice)
        } else {
            FrameCol::F64(
                (0..col.len())
                    .map(|r| col.get_f64(r).unwrap_or(f64::NAN))
                    .collect(),
            )
        };
        frame
            .push(cp.input.clone(), fc)
            .map_err(|e| SqlError::Execution(e.to_string()))?;
    }
    Ok(frame)
}

impl InferenceProvider for FlockInferenceProvider {
    fn output_type(&self, model: &str) -> Result<DataType, SqlError> {
        self.pipeline(model)?;
        // all pipelines emit a single float score
        Ok(DataType::Float)
    }

    fn input_arity(&self, model: &str) -> Result<usize, SqlError> {
        Ok(self.pipeline(model)?.bound_columns().len())
    }

    fn describe(&self, model: &str) -> Option<String> {
        self.registry.get(model).map(|m| m.metadata.kind.clone())
    }

    fn predict(
        &self,
        model: &str,
        inputs: &[ColumnVector],
        strategy: PredictStrategy,
        _user: &str,
    ) -> Result<ColumnVector, SqlError> {
        self.predict_inner(model, inputs, strategy, &CancelToken::none())
    }

    fn predict_cancellable(
        &self,
        model: &str,
        inputs: &[ColumnVector],
        strategy: PredictStrategy,
        _user: &str,
        cancel: &CancelToken,
    ) -> Result<ColumnVector, SqlError> {
        self.predict_inner(model, inputs, strategy, cancel)
    }

    /// Model-deployment epoch: redeploying or dropping any model bumps
    /// it, invalidating every cached plan whose `PREDICT` was bound
    /// against the old registry state.
    fn plan_epoch(&self) -> u64 {
        self.registry.plan_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{Lineage, ModelMetadata};
    use crate::registry::RegisteredModel;
    use flock_ml::{ColumnPipeline, LinearModel, Model};
    use flock_sql::Value;

    fn registry_with_model() -> Arc<ModelRegistry> {
        let registry = Arc::new(ModelRegistry::new());
        let pipeline = Pipeline::new(
            vec![
                ColumnPipeline::numeric("a"),
                ColumnPipeline::one_hot("c", vec!["x".into(), "y".into()]),
            ],
            Model::Linear(LinearModel::new(vec![2.0, 10.0, 20.0], 1.0)),
            "score",
        );
        registry.insert(
            "m",
            RegisteredModel {
                metadata: Arc::new(ModelMetadata {
                    name: "m".into(),
                    inputs: vec![("a".into(), false), ("c".into(), true)],
                    output: "score".into(),
                    kind: "linear".into(),
                    complexity: 3,
                    lineage: Lineage::default(),
                }),
                pipeline: Arc::new(pipeline),
                version: 1,
            },
        );
        registry
    }

    #[test]
    fn all_strategies_agree() {
        let provider = FlockInferenceProvider::new(registry_with_model());
        let a = ColumnVector::from_f64([1.0, 2.0, 3.0]);
        let c = ColumnVector::from_values(
            DataType::Text,
            &[
                Value::Text("x".into()),
                Value::Text("y".into()),
                Value::Text("?".into()),
            ],
        )
        .unwrap();
        let inputs = [a, c];
        let expected = [13.0, 25.0, 7.0];
        for strategy in [
            PredictStrategy::Row,
            PredictStrategy::Vectorized,
            PredictStrategy::Parallel(4),
        ] {
            let out = provider.predict("m", &inputs, strategy, "admin").unwrap();
            for (i, e) in expected.iter().enumerate() {
                assert_eq!(out.get(i), Value::Float(*e), "{strategy:?}");
            }
        }
        use std::sync::atomic::Ordering;
        assert_eq!(provider.stats.rows_scored.load(Ordering::Relaxed), 9);
        assert_eq!(provider.stats.row_calls.load(Ordering::Relaxed), 1);
        // stage metrics: Vectorized + small Parallel both take the
        // vectorized path (featurize + score); Row lands in interpret
        assert_eq!(provider.scoring.featurize.rows.load(Ordering::Relaxed), 6);
        assert_eq!(provider.scoring.score.rows.load(Ordering::Relaxed), 6);
        assert_eq!(provider.scoring.interpret.rows.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn unknown_model_and_arity_errors() {
        let provider = FlockInferenceProvider::new(registry_with_model());
        assert!(provider.output_type("ghost").is_err());
        assert_eq!(provider.input_arity("m").unwrap(), 2);
        let one = [ColumnVector::from_f64([1.0])];
        assert!(provider
            .predict("m", &one, PredictStrategy::Vectorized, "admin")
            .is_err());
    }

    #[test]
    fn nulls_become_nan_and_empty_strings() {
        let provider = FlockInferenceProvider::new(registry_with_model());
        let mut a = ColumnVector::from_f64([1.0]);
        a.push_null();
        let c = ColumnVector::from_values(
            DataType::Text,
            &[Value::Text("x".into()), Value::Null],
        )
        .unwrap();
        let out = provider
            .predict("m", &[a, c], PredictStrategy::Vectorized, "admin")
            .unwrap();
        // NaN numeric becomes 0 after featurization; null text matches no category
        assert_eq!(out.get(0), Value::Float(13.0));
        assert_eq!(out.get(1), Value::Float(1.0));
    }

    #[test]
    fn all_valid_engine_columns_are_borrowed_not_copied() {
        let provider = FlockInferenceProvider::new(registry_with_model());
        let pipeline = provider.pipeline("m").unwrap();
        let a = ColumnVector::from_f64([1.0, 2.0]);
        let c = ColumnVector::from_values(
            DataType::Text,
            &[Value::Text("x".into()), Value::Text("y".into())],
        )
        .unwrap();
        let inputs = [a, c];
        let frame = columns_to_frame(&pipeline, &inputs).unwrap();
        let nums = frame.column("a").unwrap().as_f64().unwrap();
        assert_eq!(
            nums.as_ptr(),
            inputs[0].as_f64_slice().unwrap().as_ptr(),
            "float column borrows the engine buffer"
        );
        let texts = frame.column("c").unwrap().as_str().unwrap();
        assert_eq!(
            texts.as_ptr(),
            inputs[1].as_text_slice().unwrap().as_ptr(),
            "text column borrows the engine buffer"
        );
    }
}
