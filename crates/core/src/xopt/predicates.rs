//! Predicate analysis for PREDICT specialization (paper §4.1): turn
//! query predicates into per-column [`InputConstraint`]s the model
//! specializer can fold into the pipeline.
//!
//! Only constraints that hold for *every* row reaching the PREDICT are
//! extracted: top-level AND conjuncts of `Filter` predicates, followed
//! through row-preserving/row-subsetting operators (`Filter`, `Sort`,
//! `Limit`, `Distinct`). The walk stops at `Project`/`Aggregate`/`Join`/
//! `Union`, whose outputs may rename or merge columns.

use flock_ml::InputConstraint;
use flock_sql::ast::{BinOp, Expr};
use flock_sql::plan::LogicalPlan;
use flock_sql::Value;
use std::collections::HashMap;

/// Constraints guaranteed to hold on every row `plan` produces, keyed by
/// lower-cased column name.
pub fn plan_constraints(plan: &LogicalPlan) -> HashMap<String, InputConstraint> {
    let mut out = HashMap::new();
    collect_plan(plan, &mut out);
    out
}

fn collect_plan(plan: &LogicalPlan, out: &mut HashMap<String, InputConstraint>) {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            predicate_constraints(predicate, out);
            collect_plan(input, out);
        }
        LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input } => collect_plan(input, out),
        _ => {}
    }
}

/// Merge the constraints implied by `predicate`'s top-level conjuncts
/// into `out`. Sibling conjuncts of a predicate constrain any PREDICT in
/// that same predicate too (`WHERE c = 'x' AND PREDICT(..) > 0.5` only
/// ever scores rows with `c = 'x'`).
pub fn predicate_constraints(predicate: &Expr, out: &mut HashMap<String, InputConstraint>) {
    for conjunct in predicate.split_conjunction() {
        match conjunct {
            Expr::Binary { left, op, right } => {
                let (name, op, lit) = match (&**left, &**right) {
                    (Expr::Column { name, .. }, Expr::Literal(v)) => (name, *op, v),
                    (Expr::Literal(v), Expr::Column { name, .. }) => (name, op.flip(), v),
                    _ => continue,
                };
                let Some(c) = comparison_constraint(op, lit) else {
                    continue;
                };
                merge(out, name, c);
            }
            Expr::Between {
                expr,
                low,
                high,
                negated: false,
            } => {
                let (Expr::Column { name, .. }, Expr::Literal(lo), Expr::Literal(hi)) =
                    (&**expr, &**low, &**high)
                else {
                    continue;
                };
                let (Some(lo), Some(hi)) = (lo.as_f64(), hi.as_f64()) else {
                    continue;
                };
                merge(out, name, InputConstraint::Range { lo, hi });
            }
            _ => {}
        }
    }
}

/// The constraint a literal PREDICT argument itself implies (`PREDICT(m,
/// age, 'nyc')` fixes the second input).
pub fn literal_constraint(value: &Value) -> Option<InputConstraint> {
    match value {
        Value::Text(s) => Some(InputConstraint::FixedText(s.clone())),
        _ => value.as_f64().map(InputConstraint::FixedNum),
    }
}

fn comparison_constraint(op: BinOp, lit: &Value) -> Option<InputConstraint> {
    if let BinOp::Eq = op {
        return literal_constraint(lit);
    }
    // Strict and non-strict bounds both become closed ranges — a superset
    // of the true range is always safe for pruning.
    let v = lit.as_f64()?;
    match op {
        BinOp::Lt | BinOp::LtEq => Some(InputConstraint::Range {
            lo: f64::NEG_INFINITY,
            hi: v,
        }),
        BinOp::Gt | BinOp::GtEq => Some(InputConstraint::Range {
            lo: v,
            hi: f64::INFINITY,
        }),
        _ => None,
    }
}

fn merge(out: &mut HashMap<String, InputConstraint>, name: &str, c: InputConstraint) {
    let key = name.to_ascii_lowercase();
    match (out.get_mut(&key), c) {
        (None, c) => {
            out.insert(key, c);
        }
        // a fixing constraint subsumes any range
        (Some(InputConstraint::Range { .. }), c @ (InputConstraint::FixedNum(_) | InputConstraint::FixedText(_))) => {
            out.insert(key, c);
        }
        (
            Some(InputConstraint::Range { lo, hi }),
            InputConstraint::Range { lo: l2, hi: h2 },
        ) => {
            *lo = lo.max(l2);
            *hi = hi.min(h2);
        }
        // keep the first fixing constraint; a second one either agrees or
        // makes the predicate unsatisfiable (no rows ever scored)
        (Some(_), _) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_sql::parser::parse_statement;
    use flock_sql::plan::{plan_query, PlanContext};
    use flock_sql::udf::NoInference;
    use flock_sql::Database;

    fn plan_of(db: &Database, sql: &str) -> LogicalPlan {
        let stmt = parse_statement(sql).unwrap();
        let flock_sql::ast::Statement::Query(q) = stmt else {
            panic!()
        };
        let catalog = db.catalog();
        let ctx = PlanContext::new(&catalog, &NoInference);
        plan_query(&q, &ctx).unwrap()
    }

    fn setup() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE t (a DOUBLE, b DOUBLE, s VARCHAR)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1.0, 2.0, 'x')").unwrap();
        db
    }

    #[test]
    fn equality_and_ranges_extracted() {
        let db = setup();
        let plan = plan_of(
            &db,
            "SELECT a FROM t WHERE s = 'nyc' AND a >= 10 AND a < 20 AND b + 1 > 3",
        );
        // the Project sits on top; constraints come from its input
        let LogicalPlan::Project { input, .. } = plan else {
            panic!("expected projection")
        };
        let cs = plan_constraints(&input);
        assert_eq!(cs.get("s"), Some(&InputConstraint::FixedText("nyc".into())));
        assert_eq!(cs.get("a"), Some(&InputConstraint::Range { lo: 10.0, hi: 20.0 }));
        assert!(!cs.contains_key("b"), "compound expressions are ignored");
    }

    #[test]
    fn between_and_flipped_literal() {
        let db = setup();
        let plan = plan_of(&db, "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND 3.5 = b");
        let LogicalPlan::Project { input, .. } = plan else {
            panic!("expected projection")
        };
        // Sort/Limit preserve row membership; the walk passes through them
        let wrapped = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input,
                keys: vec![],
            }),
            limit: Some(2),
            offset: 0,
        };
        let cs = plan_constraints(&wrapped);
        assert_eq!(cs.get("a"), Some(&InputConstraint::Range { lo: 1.0, hi: 5.0 }));
        assert_eq!(cs.get("b"), Some(&InputConstraint::FixedNum(3.5)));
    }

    #[test]
    fn walk_stops_at_projection_boundaries() {
        let db = setup();
        let plan = plan_of(
            &db,
            "SELECT * FROM (SELECT a + 1 AS a FROM t WHERE a = 2) sub",
        );
        // the inner filter constrains the *pre-projection* a, which the
        // subquery rebinds — it must not leak out
        let cs = plan_constraints(&plan);
        assert!(cs.is_empty(), "{cs:?}");
    }

    #[test]
    fn fixed_subsumes_range_and_ranges_intersect() {
        let db = setup();
        let plan = plan_of(&db, "SELECT a FROM t WHERE a > 0 AND a = 7 AND a <= 9");
        let LogicalPlan::Project { input, .. } = plan else {
            panic!()
        };
        let cs = plan_constraints(&input);
        assert_eq!(cs.get("a"), Some(&InputConstraint::FixedNum(7.0)));
    }
}
