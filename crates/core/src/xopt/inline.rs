//! Model → SQL inlining ("UDF inlining" in the paper, after Froid).
//!
//! Linear/logistic models over affine numeric featurization compile to a
//! closed-form SQL expression; small trees compile to nested CASE WHEN.
//! Inlined models run entirely inside the relational expression evaluator
//! — no inference-provider call at all.

use flock_ml::model::Model;
use flock_ml::{Encoder, NumericStep, Pipeline, TreeNode};
use flock_sql::ast::{BinOp, Expr};
use flock_sql::Value;

/// Can this pipeline's featurization be expressed as SQL per input column?
/// (numeric encoders with affine-expressible steps only)
pub fn featurization_is_affine(pipeline: &Pipeline) -> bool {
    pipeline.columns.iter().all(|cp| {
        matches!(cp.encoder, Encoder::Numeric)
            && cp.steps.iter().all(|s| {
                matches!(
                    s,
                    NumericStep::Impute { .. }
                        | NumericStep::Standardize { .. }
                        | NumericStep::MinMax { .. }
                )
            })
    })
}

/// Build the SQL expression computing feature `i` from its argument expr.
fn feature_expr(pipeline: &Pipeline, i: usize, arg: &Expr) -> Expr {
    let cp = &pipeline.columns[i];
    let mut e = arg.clone();
    for step in &cp.steps {
        e = match step {
            NumericStep::Impute { fill } => Expr::Function {
                name: "COALESCE".into(),
                args: vec![e, Expr::Literal(Value::Float(*fill))],
                distinct: false,
            },
            NumericStep::Standardize { mean, std } => {
                let s = if *std == 0.0 { 1.0 } else { *std };
                Expr::binary(
                    Expr::binary(e, BinOp::Minus, Expr::Literal(Value::Float(*mean))),
                    BinOp::Div,
                    Expr::Literal(Value::Float(s)),
                )
            }
            NumericStep::MinMax { min, max } => {
                let w = if max - min == 0.0 { 1.0 } else { max - min };
                Expr::binary(
                    Expr::binary(e, BinOp::Minus, Expr::Literal(Value::Float(*min))),
                    BinOp::Div,
                    Expr::Literal(Value::Float(w)),
                )
            }
            _ => unreachable!("checked by featurization_is_affine"),
        };
    }
    // Bare NaN/NULL inputs featurize to 0 in the pipeline; COALESCE(e, 0)
    // reproduces that for SQL NULLs.
    Expr::Function {
        name: "COALESCE".into(),
        args: vec![e, Expr::Literal(Value::Float(0.0))],
        distinct: false,
    }
}

/// Inline the *raw* (pre-sigmoid) linear score `w·x + b` as a SQL
/// expression over the PREDICT argument expressions. Returns `None` when
/// the pipeline is not affine or the model is not linear/logistic.
pub fn inline_linear_raw(pipeline: &Pipeline, args: &[Expr]) -> Option<Expr> {
    if !featurization_is_affine(pipeline) || args.len() != pipeline.columns.len() {
        return None;
    }
    let lm = match &pipeline.model {
        Model::Linear(m) | Model::Logistic(m) => m,
        _ => return None,
    };
    let mut acc = Expr::Literal(Value::Float(lm.bias));
    for (i, arg) in args.iter().enumerate() {
        let w = lm.weights[i];
        if w == 0.0 {
            continue; // sparsity folds directly into the inlined form
        }
        let term = Expr::binary(
            Expr::Literal(Value::Float(w)),
            BinOp::Mul,
            feature_expr(pipeline, i, arg),
        );
        acc = Expr::binary(acc, BinOp::Plus, term);
    }
    Some(acc)
}

/// Inline the full pipeline as a SQL expression (sigmoid applied for
/// logistic models, CASE WHEN for small trees). `max_tree_nodes` bounds
/// the tree size eligible for inlining.
pub fn inline_pipeline(
    pipeline: &Pipeline,
    args: &[Expr],
    max_tree_nodes: usize,
) -> Option<Expr> {
    match &pipeline.model {
        Model::Linear(_) => inline_linear_raw(pipeline, args),
        Model::Logistic(_) => {
            let raw = inline_linear_raw(pipeline, args)?;
            Some(Expr::Function {
                name: "SIGMOID".into(),
                args: vec![raw],
                distinct: false,
            })
        }
        Model::Tree(tree) => {
            if !featurization_is_affine(pipeline)
                || args.len() != pipeline.columns.len()
                || tree.num_nodes() > max_tree_nodes
            {
                return None;
            }
            let feature_exprs: Vec<Expr> = args
                .iter()
                .enumerate()
                .map(|(i, a)| feature_expr(pipeline, i, a))
                .collect();
            Some(inline_tree_node(&tree.nodes, 0, &feature_exprs))
        }
        _ => None,
    }
}

fn inline_tree_node(nodes: &[TreeNode], i: usize, features: &[Expr]) -> Expr {
    match &nodes[i] {
        TreeNode::Leaf { value } => Expr::Literal(Value::Float(*value)),
        TreeNode::Split {
            feature,
            threshold,
            left,
            right,
        } => Expr::Case {
            operand: None,
            when_then: vec![(
                Expr::binary(
                    features[*feature].clone(),
                    BinOp::LtEq,
                    Expr::Literal(Value::Float(*threshold)),
                ),
                inline_tree_node(nodes, *left, features),
            )],
            else_expr: Some(Box::new(inline_tree_node(nodes, *right, features))),
        },
    }
}

/// For predicate push-up: rewrite `sigmoid(raw) cmp c` into `raw cmp'
/// logit(c)`. Returns the transformed RHS literal, or a constant verdict
/// when `c` is outside (0, 1).
pub enum LogitRewrite {
    Threshold(f64),
    AlwaysTrue,
    AlwaysFalse,
}

/// Given a comparison `sigmoid(raw) op c`, compute the equivalent
/// comparison on `raw`. Only meaningful for ordered comparisons.
pub fn logit_threshold(op: BinOp, c: f64) -> Option<LogitRewrite> {
    if !op.is_comparison() || matches!(op, BinOp::Eq | BinOp::NotEq) {
        return None;
    }
    let gt_like = matches!(op, BinOp::Gt | BinOp::GtEq);
    if c <= 0.0 {
        // sigmoid output is strictly > 0
        return Some(if gt_like {
            LogitRewrite::AlwaysTrue
        } else {
            LogitRewrite::AlwaysFalse
        });
    }
    if c >= 1.0 {
        return Some(if gt_like {
            LogitRewrite::AlwaysFalse
        } else {
            LogitRewrite::AlwaysTrue
        });
    }
    Some(LogitRewrite::Threshold((c / (1.0 - c)).ln()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_ml::{ColumnPipeline, LinearModel};

    fn affine_pipeline() -> Pipeline {
        Pipeline::new(
            vec![
                ColumnPipeline::numeric("a")
                    .with_step(NumericStep::Impute { fill: 1.0 })
                    .with_step(NumericStep::Standardize { mean: 2.0, std: 4.0 }),
                ColumnPipeline::numeric("b"),
            ],
            Model::Linear(LinearModel::new(vec![2.0, 0.0], 10.0)),
            "y",
        )
    }

    #[test]
    fn affine_check() {
        assert!(featurization_is_affine(&affine_pipeline()));
        let text = Pipeline::new(
            vec![ColumnPipeline::one_hot("c", vec!["x".into()])],
            Model::Linear(LinearModel::new(vec![1.0], 0.0)),
            "y",
        );
        assert!(!featurization_is_affine(&text));
    }

    #[test]
    fn inlined_linear_matches_pipeline_scoring() {
        use flock_ml::{Frame, FrameCol};
        let p = affine_pipeline();
        let args = vec![Expr::col("a"), Expr::col("b")];
        let inlined = inline_linear_raw(&p, &args).unwrap();
        // zero weight on b folds away entirely
        let mut cols = vec![];
        inlined.referenced_columns(&mut cols);
        assert!(cols.iter().all(|(_, n)| n == "a"));

        // numeric agreement via direct evaluation of the expression
        let frame = Frame::new()
            .with("a", FrameCol::F64(vec![6.0]))
            .unwrap()
            .with("b", FrameCol::F64(vec![3.0]))
            .unwrap();
        let expected = p.score(&frame).unwrap()[0];
        // (6 - 2)/4 = 1 -> 2*1 + 10 = 12
        assert_eq!(expected, 12.0);
        let rendered = inlined.to_string();
        assert!(rendered.contains("COALESCE"));
    }

    #[test]
    fn tree_inlines_to_case() {
        use flock_ml::DecisionTree;
        let tree = DecisionTree {
            nodes: vec![
                TreeNode::Split {
                    feature: 0,
                    threshold: 5.0,
                    left: 1,
                    right: 2,
                },
                TreeNode::Leaf { value: 1.0 },
                TreeNode::Leaf { value: 2.0 },
            ],
        };
        let p = Pipeline::new(
            vec![ColumnPipeline::numeric("x")],
            Model::Tree(tree),
            "y",
        );
        let e = inline_pipeline(&p, &[Expr::col("x")], 100).unwrap();
        assert!(e.to_string().contains("CASE"));
        // too-large bound rejects
        assert!(inline_pipeline(&p, &[Expr::col("x")], 2).is_none());
    }

    #[test]
    fn logistic_wraps_sigmoid() {
        let mut p = affine_pipeline();
        p.model = match p.model {
            Model::Linear(m) => Model::Logistic(m),
            other => other,
        };
        let e = inline_pipeline(&p, &[Expr::col("a"), Expr::col("b")], 0).unwrap();
        assert!(e.to_string().starts_with("SIGMOID("));
    }

    #[test]
    fn logit_thresholds() {
        let LogitRewrite::Threshold(t) = logit_threshold(BinOp::GtEq, 0.5).unwrap() else {
            panic!()
        };
        assert!(t.abs() < 1e-12);
        assert!(matches!(
            logit_threshold(BinOp::Gt, -0.5),
            Some(LogitRewrite::AlwaysTrue)
        ));
        assert!(matches!(
            logit_threshold(BinOp::Lt, 1.5),
            Some(LogitRewrite::AlwaysTrue)
        ));
        assert!(logit_threshold(BinOp::Eq, 0.5).is_none());
    }
}
