//! The SQL×ML cross-optimizer (paper §4.1).
//!
//! Implements, one rule per paper bullet:
//! * **predicate push-up/down between SQL queries and ML models** —
//!   comparisons against logistic predictions become linear-threshold
//!   comparisons (`sigmoid(raw) >= c` → `raw >= logit(c)`), which the
//!   relational optimizer can then push below joins and into scans;
//! * **automatic pruning of unused input feature-columns exploiting
//!   model sparsity** — PREDICT arguments whose derived features carry no
//!   weight are dropped, letting projection pruning shrink the scan;
//! * **model compression exploiting input data statistics** — decision
//!   trees are pruned of branches unreachable given column min/max;
//! * **physical operator selection based on statistics, available runtime
//!   and hardware** — each PREDICT picks row/vectorized/parallel
//!   execution, or is *inlined* into pure SQL (the Froid-style UDF
//!   inlining the paper cites) when the model is small enough.

pub mod inline;
pub mod predicates;
pub mod stats;

use crate::registry::{DerivedPipeline, ModelRegistry};
use flock_ml::{specialize_mask, InputConstraint};
use flock_sql::ast::{Expr, PredictStrategy};
use flock_sql::plan::{rewrite_expr, LogicalPlan, PlanRewriter};
use flock_sql::{Catalog, Result, Value};
use inline::{inline_linear_raw, inline_pipeline, logit_threshold, LogitRewrite};
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Cross-optimizer configuration. Each rule toggles independently so the
/// ablation benches can attribute speedups.
#[derive(Debug, Clone, Copy)]
pub struct XOptConfig {
    pub feature_pruning: bool,
    pub model_compression: bool,
    pub predicate_pushup: bool,
    pub inline_models: bool,
    pub operator_selection: bool,
    /// Specialize models against query predicates (Raven-style): fold
    /// predicate-fixed inputs into the pipeline and prune the model.
    pub predicate_specialization: bool,
    /// Trees at most this large are eligible for CASE-WHEN inlining.
    pub inline_max_tree_nodes: usize,
    /// Worker threads parallel PREDICT may use.
    pub threads: usize,
    /// Estimated row count above which PREDICT goes parallel.
    pub parallel_row_threshold: usize,
}

impl Default for XOptConfig {
    fn default() -> Self {
        XOptConfig {
            feature_pruning: true,
            model_compression: true,
            predicate_pushup: true,
            inline_models: true,
            operator_selection: true,
            predicate_specialization: true,
            inline_max_tree_nodes: 128,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            parallel_row_threshold: 8192,
        }
    }
}

impl XOptConfig {
    /// Everything off — the plain "SONNX" configuration (in-DB inference
    /// with engine parallelism but no cross-optimization).
    pub fn disabled() -> Self {
        XOptConfig {
            feature_pruning: false,
            model_compression: false,
            predicate_pushup: false,
            inline_models: false,
            operator_selection: false,
            predicate_specialization: false,
            ..Default::default()
        }
    }

    /// Clamp every knob into its valid range (threads and the fan-out
    /// threshold must be >= 1) so a zero-thread config degrades to serial
    /// execution instead of panicking the worker scope.
    pub fn clamped(mut self) -> Self {
        self.threads = self.threads.max(1);
        self.parallel_row_threshold = self.parallel_row_threshold.max(1);
        self
    }

    /// The engine-level execution options this configuration implies: the
    /// same thread pool and fan-out threshold govern relational operators
    /// (morsel-parallel filter/project/aggregate/join/sort) and PREDICT.
    pub fn exec_options(&self) -> flock_sql::exec::ExecOptions {
        let cfg = self.clamped();
        flock_sql::exec::ExecOptions {
            threads: cfg.threads,
            parallel_row_threshold: cfg.parallel_row_threshold,
            default_predict: if cfg.threads > 1 {
                PredictStrategy::Parallel(cfg.threads)
            } else {
                PredictStrategy::Vectorized
            },
            ..flock_sql::exec::ExecOptions::default()
        }
        .validated()
    }
}

/// The rewriter registered with the SQL engine.
pub struct CrossOptimizer {
    registry: Arc<ModelRegistry>,
    config: RwLock<XOptConfig>,
}

impl CrossOptimizer {
    pub fn new(registry: Arc<ModelRegistry>, config: XOptConfig) -> Self {
        CrossOptimizer {
            registry,
            config: RwLock::new(config.clamped()),
        }
    }

    pub fn config(&self) -> XOptConfig {
        *self.config.read()
    }

    pub fn set_config(&self, config: XOptConfig) {
        *self.config.write() = config.clamped();
    }

    fn rewrite_node(&self, plan: LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan> {
        let cfg = self.config();
        Ok(match plan {
            LogicalPlan::Filter { input, predicate } => {
                let input = Box::new(self.rewrite_node(*input, catalog)?);
                let predicate = if cfg.predicate_pushup {
                    self.push_up_predicate(predicate)?
                } else {
                    predicate
                };
                // Sibling conjuncts constrain PREDICTs inside the
                // predicate itself, on top of anything below the filter.
                let constraints = self.constraints_for(&cfg, &input, Some(&predicate));
                let predicate = self.rewrite_exprs(predicate, &input, catalog, &cfg, &constraints)?;
                LogicalPlan::Filter { input, predicate }
            }
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => {
                let input = Box::new(self.rewrite_node(*input, catalog)?);
                let constraints = self.constraints_for(&cfg, &input, None);
                let exprs = exprs
                    .into_iter()
                    .map(|e| self.rewrite_exprs(e, &input, catalog, &cfg, &constraints))
                    .collect::<Result<_>>()?;
                LogicalPlan::Project {
                    input,
                    exprs,
                    schema,
                }
            }
            LogicalPlan::Aggregate {
                input,
                group,
                aggs,
                schema,
            } => {
                let input = Box::new(self.rewrite_node(*input, catalog)?);
                let constraints = self.constraints_for(&cfg, &input, None);
                let group = group
                    .into_iter()
                    .map(|e| self.rewrite_exprs(e, &input, catalog, &cfg, &constraints))
                    .collect::<Result<_>>()?;
                let aggs = aggs
                    .into_iter()
                    .map(|mut a| {
                        a.arg = a
                            .arg
                            .map(|e| self.rewrite_exprs(e, &input, catalog, &cfg, &constraints))
                            .transpose()?;
                        Ok(a)
                    })
                    .collect::<Result<_>>()?;
                LogicalPlan::Aggregate {
                    input,
                    group,
                    aggs,
                    schema,
                }
            }
            LogicalPlan::Join {
                left,
                right,
                join_type,
                on,
                filter,
                schema,
            } => LogicalPlan::Join {
                left: Box::new(self.rewrite_node(*left, catalog)?),
                right: Box::new(self.rewrite_node(*right, catalog)?),
                join_type,
                on,
                filter,
                schema,
            },
            LogicalPlan::Sort { input, keys } => {
                let input = Box::new(self.rewrite_node(*input, catalog)?);
                let constraints = self.constraints_for(&cfg, &input, None);
                let keys = keys
                    .into_iter()
                    .map(|(e, asc)| {
                        Ok((self.rewrite_exprs(e, &input, catalog, &cfg, &constraints)?, asc))
                    })
                    .collect::<Result<_>>()?;
                LogicalPlan::Sort { input, keys }
            }
            LogicalPlan::Limit {
                input,
                limit,
                offset,
            } => LogicalPlan::Limit {
                input: Box::new(self.rewrite_node(*input, catalog)?),
                limit,
                offset,
            },
            LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
                input: Box::new(self.rewrite_node(*input, catalog)?),
            },
            LogicalPlan::Union { inputs, schema } => LogicalPlan::Union {
                inputs: inputs
                    .into_iter()
                    .map(|i| self.rewrite_node(i, catalog))
                    .collect::<Result<_>>()?,
                schema,
            },
            leaf => leaf,
        })
    }

    /// Predicate constraints in scope for expressions evaluated on
    /// `input`'s rows, optionally extended with a predicate's own
    /// conjuncts (for PREDICTs inside that same predicate).
    fn constraints_for(
        &self,
        cfg: &XOptConfig,
        input: &LogicalPlan,
        predicate: Option<&Expr>,
    ) -> HashMap<String, InputConstraint> {
        if !cfg.predicate_specialization {
            return HashMap::new();
        }
        let mut constraints = predicates::plan_constraints(input);
        if let Some(p) = predicate {
            predicates::predicate_constraints(p, &mut constraints);
        }
        constraints
    }

    /// Apply the per-PREDICT rules to every PREDICT inside `expr`.
    fn rewrite_exprs(
        &self,
        expr: Expr,
        input: &LogicalPlan,
        catalog: &Catalog,
        cfg: &XOptConfig,
        constraints: &HashMap<String, InputConstraint>,
    ) -> Result<Expr> {
        // Lazily computed context shared across PREDICTs in this expr.
        let ranges = if cfg.model_compression {
            Some(stats::column_ranges(input, catalog))
        } else {
            None
        };
        let est_rows = if cfg.operator_selection {
            stats::estimate_rows(input, catalog)
        } else {
            0
        };
        rewrite_expr(expr, &mut |e| {
            let Expr::Predict {
                model,
                mut args,
                strategy,
            } = e
            else {
                return Ok(e);
            };
            let mut model = model.to_ascii_lowercase();
            // Derived names never appear in user queries; if one shows up
            // (idempotent re-run), leave it alone.
            if model.contains('#') {
                return Ok(Expr::Predict {
                    model,
                    args,
                    strategy,
                });
            }
            let Some(entry) = self.registry.get(&model) else {
                return Ok(Expr::Predict {
                    model,
                    args,
                    strategy,
                });
            };
            if args.len() != entry.pipeline.columns.len() {
                // arity error surfaces at execution; don't transform
                return Ok(Expr::Predict {
                    model,
                    args,
                    strategy,
                });
            }

            // 1. feature pruning via model sparsity
            if cfg.feature_pruning {
                let usage = entry.pipeline.input_usage();
                if usage.iter().any(|u| !u) {
                    if let Some(derived) =
                        self.registry.register_derived(&model, "pruned", |base| {
                            Some(DerivedPipeline {
                                pipeline: base.pipeline.prune_unused_inputs().0,
                                annotation: None,
                            })
                        })
                    {
                        args = args
                            .into_iter()
                            .zip(&usage)
                            .filter_map(|(a, keep)| keep.then_some(a))
                            .collect();
                        model = derived;
                    }
                }
            }

            // 2. model compression via column statistics
            if let Some(ranges) = &ranges {
                let current = self.registry.get(&model).expect("model present");
                let input_ranges: Vec<Option<(f64, f64)>> = args
                    .iter()
                    .map(|a| match a {
                        Expr::Column { name, .. } => {
                            ranges.get(&name.to_ascii_lowercase()).copied()
                        }
                        _ => None,
                    })
                    .collect();
                if input_ranges.iter().any(Option::is_some) {
                    let tag = format!("cmp{:x}", hash_ranges(&input_ranges));
                    let base_for_build = current.clone();
                    if let Some(derived) =
                        self.registry.register_derived(&model, &tag, move |_| {
                            Some(DerivedPipeline {
                                pipeline: base_for_build
                                    .pipeline
                                    .compress_with_ranges(&input_ranges),
                                annotation: None,
                            })
                        })
                    {
                        model = derived;
                    }
                }
            }

            // 3. inline small models into pure SQL
            if cfg.inline_models {
                let current = self.registry.get(&model).expect("model present");
                if let Some(inlined) =
                    inline_pipeline(&current.pipeline, &args, cfg.inline_max_tree_nodes)
                {
                    return Ok(inlined);
                }
            }

            // 4. predicate specialization (Raven-style): inputs fixed or
            // bounded by the query's predicates are folded into the
            // pipeline and the model is pruned against them. Runs after
            // inlining so tiny models still become pure SQL. The bound
            // mask is a pure function of (pipeline, constraints), so a
            // cache hit re-derives which arguments to drop without
            // consulting the specialized artifact.
            if cfg.predicate_specialization {
                let current = self.registry.get(&model).expect("model present");
                let cs: Vec<Option<InputConstraint>> = args
                    .iter()
                    .map(|a| match a {
                        Expr::Column { name, .. } => {
                            constraints.get(&name.to_ascii_lowercase()).cloned()
                        }
                        Expr::Literal(v) => predicates::literal_constraint(v),
                        _ => None,
                    })
                    .collect();
                if let Some(mask) = specialize_mask(&current.pipeline, &cs) {
                    let tag = format!("spec{:x}", hash_constraints(&cs));
                    let cs_for_build = cs.clone();
                    if let Some(derived) =
                        self.registry.register_derived(&model, &tag, move |base| {
                            let (pipeline, report) = base.pipeline.specialize(&cs_for_build)?;
                            Some(DerivedPipeline {
                                pipeline,
                                annotation: Some(report.annotation()),
                            })
                        })
                    {
                        args = args
                            .into_iter()
                            .zip(&mask)
                            .filter_map(|(a, keep)| keep.then_some(a))
                            .collect();
                        model = derived;
                    }
                }
            }

            // 5. physical operator selection from statistics
            let strategy = if cfg.operator_selection && strategy == PredictStrategy::Auto {
                match stats::choose_degree(est_rows, cfg.threads, cfg.parallel_row_threshold) {
                    1 => PredictStrategy::Vectorized,
                    degree => PredictStrategy::Parallel(degree),
                }
            } else {
                strategy
            };
            Ok(Expr::Predict {
                model,
                args,
                strategy,
            })
        })
    }

    /// Predicate push-up: turn `PREDICT(logistic) cmp c` into a comparison
    /// on the raw linear score.
    fn push_up_predicate(&self, predicate: Expr) -> Result<Expr> {
        rewrite_expr(predicate, &mut |e| {
            let Expr::Binary { left, op, right } = &e else {
                return Ok(e);
            };
            // normalize to (Predict op literal)
            let (predict, op, lit) = match (&**left, &**right) {
                (Expr::Predict { .. }, Expr::Literal(v)) => (&**left, *op, v),
                (Expr::Literal(v), Expr::Predict { .. }) => (&**right, op.flip(), v),
                _ => return Ok(e),
            };
            let Some(c) = lit.as_f64() else {
                return Ok(e);
            };
            let Expr::Predict { model, args, .. } = predict else {
                unreachable!()
            };
            let Some(entry) = self.registry.get(model) else {
                return Ok(e);
            };
            // only logistic models benefit from the logit transform
            if !matches!(entry.pipeline.model, flock_ml::Model::Logistic(_)) {
                return Ok(e);
            }
            let Some(raw) = inline_linear_raw(&entry.pipeline, args) else {
                return Ok(e);
            };
            Ok(match logit_threshold(op, c) {
                Some(LogitRewrite::Threshold(t)) => {
                    Expr::binary(raw, op, Expr::Literal(Value::Float(t)))
                }
                Some(LogitRewrite::AlwaysTrue) => Expr::Literal(Value::Bool(true)),
                Some(LogitRewrite::AlwaysFalse) => Expr::Literal(Value::Bool(false)),
                None => e,
            })
        })
    }
}

fn hash_constraints(cs: &[Option<InputConstraint>]) -> u64 {
    let mut h = DefaultHasher::new();
    for c in cs {
        match c {
            None => 0u8.hash(&mut h),
            Some(InputConstraint::FixedNum(v)) => {
                1u8.hash(&mut h);
                v.to_bits().hash(&mut h);
            }
            Some(InputConstraint::FixedText(s)) => {
                2u8.hash(&mut h);
                s.hash(&mut h);
            }
            Some(InputConstraint::Range { lo, hi }) => {
                3u8.hash(&mut h);
                lo.to_bits().hash(&mut h);
                hi.to_bits().hash(&mut h);
            }
        }
    }
    h.finish()
}

fn hash_ranges(ranges: &[Option<(f64, f64)>]) -> u64 {
    let mut h = DefaultHasher::new();
    for r in ranges {
        match r {
            None => 0u8.hash(&mut h),
            Some((lo, hi)) => {
                1u8.hash(&mut h);
                lo.to_bits().hash(&mut h);
                hi.to_bits().hash(&mut h);
            }
        }
    }
    h.finish()
}

impl PlanRewriter for CrossOptimizer {
    fn rewrite(&self, plan: LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan> {
        self.rewrite_node(plan, catalog)
    }
}
