//! Statistics harvesting for the cross-optimizer: per-column value ranges
//! (for model compression) and cardinality estimates (for physical
//! operator selection).

use flock_sql::plan::LogicalPlan;
use flock_sql::Catalog;
use std::collections::HashMap;

/// Collect `column name -> (min, max)` for every column visible under
/// `plan`, from table statistics of the scans. Ambiguous names (present in
/// more than one scan) are dropped — a wider-than-actual range is safe,
/// a wrong one is not.
pub fn column_ranges(plan: &LogicalPlan, catalog: &Catalog) -> HashMap<String, (f64, f64)> {
    let mut ranges: HashMap<String, (f64, f64)> = HashMap::new();
    let mut ambiguous: Vec<String> = Vec::new();
    plan.visit(&mut |node| {
        if let LogicalPlan::Scan {
            table,
            version,
            projection,
            schema,
        } = node
        {
            let Ok(t) = catalog.table(table) else {
                return;
            };
            let tv = match version {
                Some(v) => match t.at_version(*v) {
                    Ok(tv) => tv,
                    Err(_) => return,
                },
                None => t.current(),
            };
            for (k, col) in schema.columns().iter().enumerate() {
                let stats_idx = projection.as_ref().map_or(k, |p| p[k]);
                let Some(cs) = tv.stats.columns.get(stats_idx) else {
                    continue;
                };
                if let (Some(min), Some(max)) = (cs.min, cs.max) {
                    let key = col.name.to_ascii_lowercase();
                    if ranges.insert(key.clone(), (min, max)).is_some() {
                        ambiguous.push(key);
                    }
                }
            }
        }
    });
    for key in ambiguous {
        ranges.remove(&key);
    }
    ranges
}

/// Rough output-cardinality estimate for operator selection. Exact for
/// bare scans (the common PREDICT-over-table case); heuristic elsewhere.
pub fn estimate_rows(plan: &LogicalPlan, catalog: &Catalog) -> usize {
    match plan {
        LogicalPlan::Scan { table, version, .. } => catalog
            .table(table)
            .ok()
            .map(|t| {
                match version {
                    Some(v) => t.at_version(*v).map(|tv| tv.data.num_rows()).unwrap_or(0),
                    None => t.row_count(),
                }
            })
            .unwrap_or(0),
        LogicalPlan::Values { rows, .. } => rows.len(),
        // filters keep an estimated third of their input
        LogicalPlan::Filter { input, .. } => estimate_rows(input, catalog) / 3 + 1,
        LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Distinct { input } => estimate_rows(input, catalog),
        LogicalPlan::Aggregate { input, group, .. } => {
            if group.is_empty() {
                1
            } else {
                (estimate_rows(input, catalog) / 10).max(1)
            }
        }
        LogicalPlan::Join { left, right, .. } => {
            estimate_rows(left, catalog).max(estimate_rows(right, catalog))
        }
        LogicalPlan::Limit { input, limit, .. } => {
            let n = estimate_rows(input, catalog);
            limit.map_or(n, |l| n.min(l as usize))
        }
        LogicalPlan::Union { inputs, .. } => {
            inputs.iter().map(|i| estimate_rows(i, catalog)).sum()
        }
    }
}

/// Degree of parallelism for an operator whose input is estimated at
/// `est_rows` rows: the full worker pool once the estimate clears the
/// fan-out threshold, serial otherwise. Shared by the PREDICT
/// operator-selection rule and the relational executor knobs so both
/// make the same call from the same statistics.
pub fn choose_degree(est_rows: usize, threads: usize, parallel_row_threshold: usize) -> usize {
    if threads > 1 && est_rows >= parallel_row_threshold.max(1) {
        threads
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_sql::Database;

    fn setup() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE t (a INT, b DOUBLE, s VARCHAR)").unwrap();
        db.execute(
            "INSERT INTO t VALUES (1, 0.5, 'x'), (10, 2.5, 'y'), (5, -1.0, 'z')",
        )
        .unwrap();
        db
    }

    fn plan_of(db: &Database, sql: &str) -> LogicalPlan {
        use flock_sql::plan::{plan_query, PlanContext};
        use flock_sql::udf::NoInference;
        let stmt = flock_sql::parser::parse_statement(sql).unwrap();
        let flock_sql::ast::Statement::Query(q) = stmt else {
            panic!()
        };
        let catalog = db.catalog();
        let ctx = PlanContext::new(&catalog, &NoInference);
        plan_query(&q, &ctx).unwrap()
    }

    #[test]
    fn ranges_come_from_table_stats() {
        let db = setup();
        let plan = plan_of(&db, "SELECT a, b FROM t WHERE a > 0");
        let ranges = column_ranges(&plan, &db.catalog());
        assert_eq!(ranges.get("a"), Some(&(1.0, 10.0)));
        assert_eq!(ranges.get("b"), Some(&(-1.0, 2.5)));
        assert!(!ranges.contains_key("s"), "text column has no numeric range");
    }

    #[test]
    fn ambiguous_columns_dropped() {
        let db = setup();
        db.execute("CREATE TABLE u (a INT)").unwrap();
        db.execute("INSERT INTO u VALUES (100)").unwrap();
        let plan = plan_of(&db, "SELECT * FROM t, u WHERE t.a = u.a");
        let ranges = column_ranges(&plan, &db.catalog());
        // both scans expose a column named "a" (one renamed) — the renamed
        // labels differ so at most one bare "a" survives; check correctness
        for (name, (lo, hi)) in &ranges {
            assert!(lo <= hi, "{name}");
        }
    }

    #[test]
    fn row_estimates() {
        let db = setup();
        let catalog = db.catalog();
        let scan = plan_of(&db, "SELECT a FROM t");
        assert_eq!(estimate_rows(&scan, &catalog), 3);
        let filtered = plan_of(&db, "SELECT a FROM t WHERE a > 3");
        assert!(estimate_rows(&filtered, &catalog) <= 3);
        let limited = plan_of(&db, "SELECT a FROM t LIMIT 1");
        assert_eq!(estimate_rows(&limited, &catalog), 1);
        let agg = plan_of(&db, "SELECT COUNT(*) FROM t");
        assert_eq!(estimate_rows(&agg, &catalog), 1);
    }
}
