//! `FlockDb`: the paper's architecture assembled — a DBMS whose catalog
//! stores models as versioned, securable derived data, whose queries can
//! score them with `PREDICT`, and whose planner runs the cross-optimizer.

use crate::meta::{Lineage, ModelMetadata};
use crate::provider::FlockInferenceProvider;
use crate::registry::{ModelRegistry, RegisteredModel};
use crate::xopt::{CrossOptimizer, XOptConfig};
use flock_ml::{
    fonnx, train, ColumnPipeline, Frame, FrameCol, Matrix, NumericStep, Pipeline,
};
use flock_sql::engine::QueryResult;
use flock_sql::lexer::{tokenize, Token};
use flock_sql::{Database, DataType, RecordBatch, Result, Schema, Session, SqlError, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The extension-object kind under which models are stored.
pub const MODEL_KIND: &str = "model";

/// A portable, self-contained model artifact: FONNX payload plus the
/// catalog metadata (inputs, output, kind, lineage). Serializable, so it
/// can cross process/machine boundaries — the train-in-cloud /
/// score-at-the-edge hand-off.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ModelPackage {
    pub name: String,
    pub version: u64,
    pub payload: Vec<u8>,
    pub metadata: serde_json::Value,
}

impl ModelPackage {
    /// Serialize the package (for files / network transfer). Hand-written
    /// over the JSON document model (same shape a serde derive would
    /// emit), so packaging works against any JSON backend.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut doc = serde_json::Map::new();
        doc.insert("name".to_string(), serde_json::Value::from(self.name.as_str()));
        doc.insert("version".to_string(), serde_json::Value::from(self.version));
        doc.insert(
            "payload".to_string(),
            serde_json::Value::Array(
                self.payload.iter().map(|&b| serde_json::Value::from(b)).collect(),
            ),
        );
        doc.insert("metadata".to_string(), self.metadata.clone());
        serde_json::to_string(&serde_json::Value::Object(doc))
            .expect("package serializes")
            .into_bytes()
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<ModelPackage> {
        let bad = |what: &str| SqlError::Execution(format!("invalid model package: {what}"));
        let doc: serde_json::Value = serde_json::from_slice(bytes)
            .map_err(|e| SqlError::Execution(format!("invalid model package: {e}")))?;
        let name = doc
            .get("name")
            .and_then(serde_json::Value::as_str)
            .ok_or_else(|| bad("missing name"))?
            .to_string();
        let version = doc
            .get("version")
            .and_then(serde_json::Value::as_u64)
            .ok_or_else(|| bad("missing version"))?;
        let payload = doc
            .get("payload")
            .and_then(serde_json::Value::as_array)
            .ok_or_else(|| bad("missing payload"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .filter(|&b| b <= u8::MAX as u64)
                    .map(|b| b as u8)
                    .ok_or_else(|| bad("payload byte out of range"))
            })
            .collect::<Result<Vec<u8>>>()?;
        let metadata = doc
            .get("metadata")
            .cloned()
            .ok_or_else(|| bad("missing metadata"))?;
        Ok(ModelPackage {
            name,
            version,
            payload,
            metadata,
        })
    }
}

/// A Flock database: SQL engine + model registry + cross-optimizer.
#[derive(Clone)]
pub struct FlockDb {
    db: Database,
    registry: Arc<ModelRegistry>,
    xopt: Arc<CrossOptimizer>,
    provider: Arc<FlockInferenceProvider>,
}

impl Default for FlockDb {
    fn default() -> Self {
        Self::new()
    }
}

impl FlockDb {
    pub fn new() -> Self {
        Self::with_config(XOptConfig::default())
    }

    pub fn with_config(config: XOptConfig) -> Self {
        Self::with_database(Database::new(), config)
    }

    /// Open (or create) a durable Flock database in a directory: the SQL
    /// engine recovers its catalog from the write-ahead log, and the model
    /// registry is rebuilt from the recovered extension objects — deployed
    /// models come back scorable, with compiled-pipeline caches correctly
    /// invalidated (cache keys include the recovered model versions).
    pub fn open(
        path: impl AsRef<std::path::Path>,
        opts: flock_sql::DurabilityOptions,
    ) -> Result<FlockDb> {
        let db = Database::open(path, opts)?;
        let flock = Self::with_database(db, XOptConfig::default());
        flock.sync_registry();
        Ok(flock)
    }

    /// Open a durable Flock database on any [`flock_sql::DurableFs`] (the
    /// crash-recovery tests run against in-memory filesystems).
    pub fn open_with_fs(
        fs: Arc<dyn flock_sql::DurableFs>,
        opts: flock_sql::DurabilityOptions,
    ) -> Result<FlockDb> {
        let db = Database::open_with_fs(fs, opts)?;
        let flock = Self::with_database(db, XOptConfig::default());
        flock.sync_registry();
        Ok(flock)
    }

    /// Assemble the Flock layers around an existing engine (fresh or
    /// recovered).
    pub fn with_database(db: Database, config: XOptConfig) -> Self {
        let registry = Arc::new(ModelRegistry::new());
        let provider = Arc::new(FlockInferenceProvider::new(registry.clone()));
        db.set_inference_provider(provider.clone());
        let xopt = Arc::new(CrossOptimizer::new(registry.clone(), config));
        db.add_plan_rewriter(xopt.clone());
        // The config's thread pool and fan-out threshold also govern the
        // relational operators, not just PREDICT.
        db.set_exec_options(config.exec_options());
        // Surface the compiled-pipeline cache counters as flock_metrics
        // rows alongside the engine's execution counters.
        let metrics = db.engine_metrics();
        for (name, counter) in registry.cache_counters() {
            metrics.register(name, counter);
        }
        FlockDb {
            db,
            registry,
            xopt,
            provider,
        }
    }

    /// The underlying SQL engine.
    pub fn database(&self) -> &Database {
        &self.db
    }

    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    pub fn provider(&self) -> &Arc<FlockInferenceProvider> {
        &self.provider
    }

    pub fn xopt_config(&self) -> XOptConfig {
        self.xopt.config()
    }

    pub fn set_xopt_config(&self, config: XOptConfig) {
        self.xopt.set_config(config);
        self.db.set_exec_options(config.exec_options());
    }

    /// Open a session as `user`.
    pub fn session(&self, user: &str) -> FlockSession {
        FlockSession {
            inner: self.db.session(user),
            flock: self.clone(),
        }
    }

    /// Whether `user` exists in the committed catalog ("admin" is the
    /// bootstrap superuser). The network server authenticates `Hello`
    /// against this before opening a session; sessions themselves accept
    /// any name, with per-statement access control doing the real work.
    pub fn user_exists(&self, user: &str) -> bool {
        self.db.catalog().access.user_exists(user)
    }

    /// Convenience: execute as admin.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.session("admin").execute(sql)
    }

    /// Convenience: query as admin.
    pub fn query(&self, sql: &str) -> Result<RecordBatch> {
        self.session("admin").query(sql)
    }

    /// Reconcile the scoring registry with the committed catalog. Called
    /// after every statement; cheap when nothing changed.
    pub fn sync_registry(&self) {
        let catalog = self.db.catalog();
        let mut live: Vec<String> = Vec::new();
        for obj in catalog.extensions_of_kind(MODEL_KIND) {
            live.push(obj.name.clone());
            let current = obj.current();
            let stale = self
                .registry
                .get(&obj.name)
                .is_none_or(|m| m.version != current.version);
            if !stale {
                continue;
            }
            let Ok(pipeline) = fonnx::from_bytes(&current.payload) else {
                continue; // undecodable payloads stay unscorable
            };
            let metadata = ModelMetadata::from_json(&current.metadata).unwrap_or_else(|| {
                ModelMetadata {
                    name: obj.name.clone(),
                    inputs: pipeline
                        .columns
                        .iter()
                        .map(|c| (c.input.clone(), c.encoder.takes_strings()))
                        .collect(),
                    output: pipeline.output.clone(),
                    kind: pipeline.model.kind_name().to_string(),
                    complexity: pipeline.complexity(),
                    lineage: Lineage::default(),
                }
            });
            self.registry.insert(
                &obj.name,
                RegisteredModel {
                    pipeline: Arc::new(pipeline),
                    metadata: Arc::new(metadata),
                    version: current.version,
                },
            );
        }
        for name in self.registry.names() {
            if !live.contains(&name) {
                self.registry.remove(&name);
            }
        }
    }

    /// Fetch the metadata of a deployed model.
    pub fn model_metadata(&self, name: &str) -> Result<Arc<ModelMetadata>> {
        self.registry
            .get(name)
            .map(|m| m.metadata)
            .ok_or_else(|| SqlError::Catalog(format!("model '{name}' is not deployed")))
    }
}

/// A session against a Flock database: plain SQL plus the model DDL
/// (`CREATE MODEL`, `DROP MODEL`, `SHOW MODELS`) and Rust-level
/// deployment APIs.
pub struct FlockSession {
    inner: Session,
    flock: FlockDb,
}

impl FlockSession {
    pub fn user(&self) -> &str {
        self.inner.user()
    }

    pub fn in_transaction(&self) -> bool {
        self.inner.in_transaction()
    }

    /// Handle other threads use to cancel this session's running statement
    /// (cooperative; the executor aborts with `SqlError::Cancelled`).
    pub fn cancel_handle(&self) -> flock_sql::exec::CancelHandle {
        self.inner.cancel_handle()
    }

    /// Session-local statement timeout in milliseconds (`None` = engine
    /// default); same effect as `SET statement_timeout = <ms>`.
    pub fn set_statement_timeout(&mut self, ms: Option<u64>) {
        self.inner.set_statement_timeout(ms);
    }

    /// Per-operator metrics of this session's most recent query (partial
    /// metrics of a cancelled/timed-out query included).
    pub fn last_query_metrics(&self) -> Option<flock_sql::exec::OpSnapshot> {
        self.inner.last_query_metrics()
    }

    /// Execute one statement (SQL or Flock model DDL).
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let trimmed = sql.trim().trim_end_matches(';');
        let upper = trimmed.to_ascii_uppercase();
        let result = if upper.starts_with("CREATE MODEL") {
            self.create_model(trimmed)
        } else if upper.starts_with("DROP MODEL") {
            self.drop_model(trimmed)
        } else if upper.starts_with("SHOW MODELS") {
            self.show_models()
        } else if upper.starts_with("DESCRIBE MODEL") || upper.starts_with("DESC MODEL") {
            self.describe_model(trimmed)
        } else {
            self.inner.execute(sql)
        };
        self.flock.sync_registry();
        result
    }

    pub fn query(&mut self, sql: &str) -> Result<RecordBatch> {
        self.execute(sql)?
            .batch
            .ok_or_else(|| SqlError::Execution("statement returned no rows".into()))
    }

    pub fn execute_with_params(&mut self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        let r = self.inner.execute_with_params(sql, params);
        self.flock.sync_registry();
        r
    }

    /// Prepare a SQL statement with `?` placeholders for repeated
    /// execution. Flock model DDL (`CREATE MODEL` etc.) is not
    /// preparable — serve it through [`execute`](Self::execute).
    pub fn prepare(&mut self, sql: &str) -> Result<flock_sql::PreparedStatement> {
        self.inner.prepare(sql)
    }

    /// Execute a prepared statement with `params` bound to its `?`
    /// placeholders, hitting the shared plan cache on the hot path.
    pub fn execute_prepared(
        &mut self,
        prepared: &flock_sql::PreparedStatement,
        params: &[Value],
    ) -> Result<QueryResult> {
        let r = self.inner.execute_prepared(prepared, params);
        self.flock.sync_registry();
        r
    }

    /// Deploy a pipeline as a new model (version 1).
    pub fn deploy_model(
        &mut self,
        name: &str,
        pipeline: &Pipeline,
        lineage: Lineage,
    ) -> Result<()> {
        let payload =
            fonnx::to_bytes(pipeline).map_err(|e| SqlError::Execution(e.to_string()))?;
        let metadata = metadata_for(name, pipeline, lineage);
        self.inner.create_extension_object(
            MODEL_KIND,
            name,
            payload,
            metadata.to_json(),
        )?;
        self.flock.sync_registry();
        Ok(())
    }

    /// Deploy a new version of an existing model. Multiple updates inside
    /// one BEGIN/COMMIT apply atomically — the paper's "multiple models
    /// might have to be updated transactionally".
    pub fn update_model(
        &mut self,
        name: &str,
        pipeline: &Pipeline,
        lineage: Lineage,
    ) -> Result<u64> {
        let payload =
            fonnx::to_bytes(pipeline).map_err(|e| SqlError::Execution(e.to_string()))?;
        let metadata = metadata_for(name, pipeline, lineage);
        let v = self.inner.update_extension_object(
            MODEL_KIND,
            name,
            payload,
            metadata.to_json(),
        )?;
        self.flock.sync_registry();
        Ok(v)
    }

    /// Bulk-append a prepared batch (fast load path).
    pub fn append_batch(&mut self, table: &str, batch: RecordBatch) -> Result<u64> {
        self.inner.append_batch(table, batch)
    }

    /// Truncate a table's version history, refusing to drop any version a
    /// deployed model's lineage pins as its training snapshot.
    pub fn truncate_table_history(&mut self, table: &str, keep: usize) -> Result<Vec<u64>> {
        self.inner.truncate_table_history(table, keep)
    }

    /// Low-latency single-decision scoring: one prediction, in-process,
    /// no SQL round-trip. This is the serving path for the paper's
    /// "latency-sensitive decisions \[that\] are poorly served" by
    /// containerized HTTP scoring — the model lives where the application
    /// logic runs, governed by the same catalog ACLs.
    pub fn predict_one(&mut self, model: &str, inputs: &[Value]) -> Result<f64> {
        use flock_sql::udf::InferenceProvider;
        let catalog = self.flock.db.catalog();
        catalog.access.check(
            self.user(),
            &flock_sql::ObjectRef::extension(model),
            flock_sql::Privilege::Execute,
        )?;
        let entry = self
            .flock
            .registry
            .get(model)
            .ok_or_else(|| SqlError::Catalog(format!("model '{model}' is not deployed")))?;
        if inputs.len() != entry.pipeline.columns.len() {
            return Err(SqlError::Execution(format!(
                "model '{model}' expects {} inputs, got {}",
                entry.pipeline.columns.len(),
                inputs.len()
            )));
        }
        let mut columns = Vec::with_capacity(inputs.len());
        for (i, v) in inputs.iter().enumerate() {
            let ty = if entry.pipeline.input_is_text(i) {
                DataType::Text
            } else {
                DataType::Float
            };
            columns.push(flock_sql::ColumnVector::from_values(
                ty,
                std::slice::from_ref(v),
            )?);
        }
        let out = self.flock.provider.predict(
            model,
            &columns,
            flock_sql::ast::PredictStrategy::Vectorized,
            self.user(),
        )?;
        out.get(0)
            .as_f64()
            .ok_or_else(|| SqlError::Execution("model produced no score".into()))
    }

    /// Export a deployed model as a self-contained FONNX package (payload
    /// plus metadata) — the portable artifact of the paper's "train in
    /// the cloud, score everywhere: in the cloud, on-prem, and on edge
    /// devices". Requires SELECT on the model object.
    pub fn export_model(&mut self, name: &str) -> Result<ModelPackage> {
        let catalog = self.flock.db.catalog();
        catalog.access.check(
            self.user(),
            &flock_sql::ObjectRef::extension(name),
            flock_sql::Privilege::Select,
        )?;
        let obj = catalog.extension(MODEL_KIND, name)?;
        let current = obj.current();
        Ok(ModelPackage {
            name: obj.name.clone(),
            version: current.version,
            payload: current.payload.clone(),
            metadata: current.metadata.clone(),
        })
    }

    /// Import a model package (e.g. trained in a cloud instance) into this
    /// database, preserving its lineage. The inference pipeline behaves
    /// bit-identically — "packaging the entire inference pipeline in a way
    /// that preserves the exact behavior crafted in the training
    /// environment".
    pub fn import_model(&mut self, package: &ModelPackage) -> Result<()> {
        // validate the payload decodes before it enters the catalog
        fonnx::from_bytes(&package.payload)
            .map_err(|e| SqlError::Execution(format!("invalid FONNX payload: {e}")))?;
        self.inner.create_extension_object(
            MODEL_KIND,
            &package.name,
            package.payload.clone(),
            package.metadata.clone(),
        )?;
        self.flock.sync_registry();
        Ok(())
    }

    /// Validate a candidate pipeline against labelled data *before*
    /// deployment (the Figure-3 "Model Validation" capability; the paper:
    /// "'average model accuracy' is not a sufficient validation metric" —
    /// so the full metric set is returned for the caller's gate).
    /// Reads go through the session, so ACLs and the query log apply.
    pub fn validate_pipeline(
        &mut self,
        pipeline: &Pipeline,
        table: &str,
        label_column: &str,
    ) -> Result<BTreeMap<String, f64>> {
        let mut cols: Vec<String> =
            pipeline.columns.iter().map(|c| c.input.clone()).collect();
        cols.push(label_column.to_string());
        let batch = self
            .inner
            .query(&format!("SELECT {} FROM {table}", cols.join(", ")))?;

        let mut frame = Frame::new();
        for (i, cp) in pipeline.columns.iter().enumerate() {
            let col = batch.column(i);
            let fc = if pipeline.input_is_text(i) {
                FrameCol::Str(
                    (0..col.len())
                        .map(|r| {
                            let v = col.get(r);
                            if v.is_null() { String::new() } else { v.to_string() }
                        })
                        .collect(),
                )
            } else {
                FrameCol::F64(
                    (0..col.len())
                        .map(|r| col.get_f64(r).unwrap_or(f64::NAN))
                        .collect(),
                )
            };
            frame
                .push(cp.input.clone(), fc)
                .map_err(|e| SqlError::Execution(e.to_string()))?;
        }
        let label_col = batch.column(batch.num_columns() - 1);
        let labels: Vec<f64> = (0..label_col.len())
            .map(|r| label_col.get_f64(r).unwrap_or(f64::NAN))
            .collect();
        let scores = flock_ml::StandaloneRuntime::new()
            .score(pipeline, &frame)
            .map_err(|e| SqlError::Execution(e.to_string()))?;

        let keep: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i].is_nan()).collect();
        if keep.is_empty() {
            return Err(SqlError::Execution(
                "validation set has no labelled rows".into(),
            ));
        }
        let y: Vec<f64> = keep.iter().map(|&i| labels[i]).collect();
        let p: Vec<f64> = keep.iter().map(|&i| scores[i]).collect();
        let mut metrics = BTreeMap::new();
        if y.iter().all(|v| *v == 0.0 || *v == 1.0) {
            metrics.insert("accuracy".into(), flock_ml::metrics::accuracy(&p, &y, 0.5));
            metrics.insert("auc".into(), flock_ml::metrics::auc(&p, &y));
        } else {
            metrics.insert("rmse".into(), flock_ml::metrics::rmse(&p, &y));
            metrics.insert("r2".into(), flock_ml::metrics::r2(&p, &y));
        }
        metrics.insert("validation_rows".into(), y.len() as f64);
        Ok(metrics)
    }

    /// Deploy a new model version only if it clears a validation gate:
    /// `metric >= threshold` on the given labelled table. On failure the
    /// current version stays live and an error is returned.
    #[allow(clippy::too_many_arguments)]
    pub fn update_model_gated(
        &mut self,
        name: &str,
        pipeline: &Pipeline,
        mut lineage: Lineage,
        validation_table: &str,
        label_column: &str,
        metric: &str,
        threshold: f64,
    ) -> Result<u64> {
        let metrics = self.validate_pipeline(pipeline, validation_table, label_column)?;
        let value = *metrics.get(metric).ok_or_else(|| {
            SqlError::Execution(format!(
                "validation did not produce metric '{metric}' (have: {:?})",
                metrics.keys().collect::<Vec<_>>()
            ))
        })?;
        if value < threshold {
            return Err(SqlError::Execution(format!(
                "validation gate failed: {metric} = {value:.4} < {threshold:.4}; \
                 current version stays live"
            )));
        }
        lineage.metrics.extend(metrics);
        self.update_model(name, pipeline, lineage)
    }

    pub fn begin(&mut self) -> Result<QueryResult> {
        self.inner.begin()
    }

    pub fn commit(&mut self) -> Result<QueryResult> {
        let r = self.inner.commit();
        self.flock.sync_registry();
        r
    }

    pub fn rollback(&mut self) -> Result<QueryResult> {
        let r = self.inner.rollback();
        self.flock.sync_registry();
        r
    }

    // ------------------------------------------------------ model DDL

    /// `CREATE MODEL name KIND kind FROM table TARGET col
    ///  [FEATURES c1, c2, ...] [OUTPUT out_name]`
    ///
    /// Trains in-engine on the *current committed version* of the table
    /// and records full lineage (table, version, statement, user,
    /// metrics) — the "model is software derived from data" record.
    fn create_model(&mut self, sql: &str) -> Result<QueryResult> {
        let spec = parse_create_model(sql)?;
        // Read training data through the engine: privilege-checked and
        // query-logged like any other read.
        let feature_list = if spec.features.is_empty() {
            "*".to_string()
        } else {
            let mut cols = spec.features.clone();
            cols.push(spec.target.clone());
            cols.join(", ")
        };
        let data = self
            .inner
            .query(&format!("SELECT {feature_list} FROM {}", spec.table))?;
        let table_version = self
            .flock
            .db
            .catalog()
            .table(&spec.table)?
            .current_version();

        let (pipeline, metrics) = train_pipeline(&data, &spec)?;
        let lineage = Lineage {
            training_table: Some(spec.table.to_ascii_lowercase()),
            training_table_version: Some(table_version),
            training_query: Some(sql.to_string()),
            trained_by: self.user().to_string(),
            created_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            metrics,
        };
        self.deploy_model(&spec.name, &pipeline, lineage)?;
        Ok(QueryResult {
            batch: None,
            rows_affected: 0,
            message: format!(
                "model '{}' trained on {} row(s) of '{}' v{} and deployed",
                spec.name,
                data.num_rows(),
                spec.table,
                table_version
            ),
        })
    }

    fn drop_model(&mut self, sql: &str) -> Result<QueryResult> {
        let tokens = tokenize(sql)?;
        // DROP MODEL <name>
        let name = match tokens.get(2) {
            Some(Token::Ident(s)) | Some(Token::QuotedIdent(s)) => s.clone(),
            _ => return Err(SqlError::Parse("expected DROP MODEL <name>".into())),
        };
        self.inner.drop_extension_object(MODEL_KIND, &name)?;
        self.flock.sync_registry();
        Ok(QueryResult {
            batch: None,
            rows_affected: 0,
            message: format!("model '{name}' dropped"),
        })
    }

    /// `DESCRIBE MODEL <name>` — the governance card for one model: every
    /// version with its kind, complexity, trainer, training snapshot and
    /// recorded quality metrics.
    fn describe_model(&mut self, sql: &str) -> Result<QueryResult> {
        let tokens = tokenize(sql)?;
        let name = match tokens.get(2) {
            Some(Token::Ident(s)) | Some(Token::QuotedIdent(s)) => s.clone(),
            _ => return Err(SqlError::Parse("expected DESCRIBE MODEL <name>".into())),
        };
        let catalog = self.flock.db.catalog();
        let obj = catalog.extension(MODEL_KIND, &name)?;
        let schema = Arc::new(Schema::from_pairs(&[
            ("version", DataType::Int),
            ("kind", DataType::Text),
            ("inputs", DataType::Text),
            ("output", DataType::Text),
            ("complexity", DataType::Int),
            ("trained_by", DataType::Text),
            ("training_table", DataType::Text),
            ("table_version", DataType::Int),
            ("metrics", DataType::Text),
        ]));
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for version in &obj.versions {
            let md = ModelMetadata::from_json(&version.metadata);
            let row = match md {
                Some(m) => vec![
                    Value::Int(version.version as i64),
                    Value::Text(m.kind),
                    Value::Text(
                        m.inputs
                            .iter()
                            .map(|(n, _)| n.as_str())
                            .collect::<Vec<_>>()
                            .join(","),
                    ),
                    Value::Text(m.output),
                    Value::Int(m.complexity as i64),
                    Value::Text(m.lineage.trained_by),
                    Value::Text(m.lineage.training_table.unwrap_or_default()),
                    m.lineage
                        .training_table_version
                        .map(|v| Value::Int(v as i64))
                        .unwrap_or(Value::Null),
                    Value::Text(
                        m.lineage
                            .metrics
                            .iter()
                            .map(|(k, v)| format!("{k}={v:.4}"))
                            .collect::<Vec<_>>()
                            .join(" "),
                    ),
                ],
                None => vec![
                    Value::Int(version.version as i64),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ],
            };
            rows.push(row);
        }
        let batch = RecordBatch::from_rows(schema, &rows)?;
        Ok(QueryResult {
            rows_affected: batch.num_rows(),
            batch: Some(batch),
            message: format!("DESCRIBE MODEL {name}"),
        })
    }

    fn show_models(&mut self) -> Result<QueryResult> {
        let catalog = self.flock.db.catalog();
        let schema = Arc::new(Schema::from_pairs(&[
            ("name", DataType::Text),
            ("kind", DataType::Text),
            ("version", DataType::Int),
            ("owner", DataType::Text),
            ("inputs", DataType::Text),
            ("output", DataType::Text),
            ("complexity", DataType::Int),
            ("training_table", DataType::Text),
            ("training_table_version", DataType::Int),
        ]));
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for obj in catalog.extensions_of_kind(MODEL_KIND) {
            let md = ModelMetadata::from_json(&obj.current().metadata);
            let (kind, inputs, output, complexity, ttable, tver) = match &md {
                Some(m) => (
                    m.kind.clone(),
                    m.inputs
                        .iter()
                        .map(|(n, _)| n.as_str())
                        .collect::<Vec<_>>()
                        .join(","),
                    m.output.clone(),
                    m.complexity as i64,
                    m.lineage.training_table.clone().unwrap_or_default(),
                    m.lineage
                        .training_table_version
                        .map(|v| Value::Int(v as i64))
                        .unwrap_or(Value::Null),
                ),
                None => (String::new(), String::new(), String::new(), 0, String::new(), Value::Null),
            };
            rows.push(vec![
                Value::Text(obj.name.clone()),
                Value::Text(kind),
                Value::Int(obj.current().version as i64),
                Value::Text(obj.owner.clone()),
                Value::Text(inputs),
                Value::Text(output),
                Value::Int(complexity),
                Value::Text(ttable),
                tver,
            ]);
        }
        let batch = RecordBatch::from_rows(schema, &rows)?;
        Ok(QueryResult {
            rows_affected: batch.num_rows(),
            batch: Some(batch),
            message: "SHOW MODELS".into(),
        })
    }
}

fn metadata_for(name: &str, pipeline: &Pipeline, lineage: Lineage) -> ModelMetadata {
    ModelMetadata {
        name: name.to_ascii_lowercase(),
        inputs: pipeline
            .columns
            .iter()
            .map(|c| (c.input.clone(), c.encoder.takes_strings()))
            .collect(),
        output: pipeline.output.clone(),
        kind: pipeline.model.kind_name().to_string(),
        complexity: pipeline.complexity(),
        lineage,
    }
}

struct CreateModelSpec {
    name: String,
    kind: String,
    table: String,
    target: String,
    features: Vec<String>,
    output: String,
}

fn parse_create_model(sql: &str) -> Result<CreateModelSpec> {
    let tokens = tokenize(sql)?;
    let mut pos = 0usize;
    let expect_kw = |kw: &str, pos: &mut usize| -> Result<()> {
        match tokens.get(*pos) {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => {
                *pos += 1;
                Ok(())
            }
            other => Err(SqlError::Parse(format!(
                "expected {kw} in CREATE MODEL, found {other:?}"
            ))),
        }
    };
    let ident = |pos: &mut usize| -> Result<String> {
        match tokens.get(*pos) {
            Some(Token::Ident(s)) | Some(Token::QuotedIdent(s)) => {
                *pos += 1;
                Ok(s.clone())
            }
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    };
    expect_kw("CREATE", &mut pos)?;
    expect_kw("MODEL", &mut pos)?;
    let name = ident(&mut pos)?;
    expect_kw("KIND", &mut pos)?;
    let kind = ident(&mut pos)?.to_ascii_lowercase();
    expect_kw("FROM", &mut pos)?;
    let table = ident(&mut pos)?;
    expect_kw("TARGET", &mut pos)?;
    let target = ident(&mut pos)?;
    let mut features = Vec::new();
    let mut output = format!("{}_score", name.to_ascii_lowercase());
    while let Some(Token::Ident(kw)) = tokens.get(pos) {
        if kw.eq_ignore_ascii_case("FEATURES") {
            pos += 1;
            features.push(ident(&mut pos)?);
            while tokens.get(pos) == Some(&Token::Comma) {
                pos += 1;
                features.push(ident(&mut pos)?);
            }
        } else if kw.eq_ignore_ascii_case("OUTPUT") {
            pos += 1;
            output = ident(&mut pos)?;
        } else {
            return Err(SqlError::Parse(format!(
                "unexpected '{kw}' in CREATE MODEL"
            )));
        }
    }
    match tokens.get(pos) {
        Some(Token::Eof) | Some(Token::Semicolon) | None => {}
        other => {
            return Err(SqlError::Parse(format!(
                "trailing input in CREATE MODEL: {other:?}"
            )))
        }
    }
    Ok(CreateModelSpec {
        name,
        kind,
        table,
        target,
        features,
        output,
    })
}

/// Auto-featurize a training batch and fit the requested model kind.
fn train_pipeline(
    data: &RecordBatch,
    spec: &CreateModelSpec,
) -> Result<(Pipeline, BTreeMap<String, f64>)> {
    let schema = data.schema();
    let target_idx = schema
        .index_of(&spec.target)
        .ok_or_else(|| SqlError::Plan(format!("unknown target column '{}'", spec.target)))?;

    // Feature columns: declared list, or everything except the target.
    let feature_indices: Vec<usize> = if spec.features.is_empty() {
        (0..schema.len()).filter(|&i| i != target_idx).collect()
    } else {
        spec.features
            .iter()
            .map(|f| {
                schema
                    .index_of(f)
                    .ok_or_else(|| SqlError::Plan(format!("unknown feature column '{f}'")))
            })
            .collect::<Result<_>>()?
    };
    if feature_indices.is_empty() {
        return Err(SqlError::Plan("model needs at least one feature".into()));
    }

    // Build frame + column pipelines.
    let mut frame = Frame::new();
    let mut columns: Vec<ColumnPipeline> = Vec::new();
    for &i in &feature_indices {
        let col = data.column(i);
        let name = schema.column(i).name.clone();
        match col.data_type() {
            DataType::Text => {
                let vals: Vec<String> = (0..col.len())
                    .map(|r| {
                        let v = col.get(r);
                        if v.is_null() {
                            String::new()
                        } else {
                            v.to_string()
                        }
                    })
                    .collect();
                let mut cats: Vec<String> = vals.clone();
                cats.sort();
                cats.dedup();
                cats.truncate(64);
                frame
                    .push(name.clone(), FrameCol::Str(vals))
                    .map_err(|e| SqlError::Execution(e.to_string()))?;
                columns.push(ColumnPipeline::one_hot(name, cats));
            }
            _ => {
                let vals: Vec<f64> = (0..col.len())
                    .map(|r| col.get_f64(r).unwrap_or(f64::NAN))
                    .collect();
                let clean: Vec<f64> = vals.iter().copied().filter(|v| !v.is_nan()).collect();
                let mean = if clean.is_empty() {
                    0.0
                } else {
                    clean.iter().sum::<f64>() / clean.len() as f64
                };
                let std = if clean.is_empty() {
                    1.0
                } else {
                    (clean.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                        / clean.len() as f64)
                        .sqrt()
                };
                frame
                    .push(name.clone(), FrameCol::F64(vals))
                    .map_err(|e| SqlError::Execution(e.to_string()))?;
                columns.push(
                    ColumnPipeline::numeric(name)
                        .with_step(NumericStep::Impute { fill: mean })
                        .with_step(NumericStep::Standardize {
                            mean,
                            std: if std == 0.0 { 1.0 } else { std },
                        }),
                );
            }
        }
    }

    let target_col = data.column(target_idx);
    let y: Vec<f64> = (0..target_col.len())
        .map(|r| target_col.get_f64(r).unwrap_or(f64::NAN))
        .collect();
    // drop rows with missing target
    let keep: Vec<usize> = (0..y.len()).filter(|&i| !y[i].is_nan()).collect();
    if keep.is_empty() {
        return Err(SqlError::Execution("no training rows with a target".into()));
    }

    let draft = Pipeline::new(columns.clone(), flock_ml::Model::Linear(
        flock_ml::LinearModel::new(vec![], 0.0),
    ), spec.output.clone());
    let full_x = draft
        .featurize(&frame)
        .map_err(|e| SqlError::Execution(e.to_string()))?;
    let x_rows: Vec<Vec<f64>> = keep.iter().map(|&i| full_x.row(i).to_vec()).collect();
    let x = Matrix::from_rows(&x_rows);
    let y_kept: Vec<f64> = keep.iter().map(|&i| y[i]).collect();

    let model = train::fit_model(&spec.kind, &x, &y_kept)
        .map_err(|e| SqlError::Execution(e.to_string()))?;
    let pipeline = Pipeline::new(columns, model, spec.output.clone());

    // quality metrics on the training data
    let pred = pipeline.model.score_batch(&x);
    let mut metrics = BTreeMap::new();
    let is_binary = y_kept.iter().all(|v| *v == 0.0 || *v == 1.0);
    if is_binary {
        metrics.insert(
            "accuracy".to_string(),
            flock_ml::metrics::accuracy(&pred, &y_kept, 0.5),
        );
        metrics.insert("auc".to_string(), flock_ml::metrics::auc(&pred, &y_kept));
    } else {
        metrics.insert("rmse".to_string(), flock_ml::metrics::rmse(&pred, &y_kept));
        metrics.insert("r2".to_string(), flock_ml::metrics::r2(&pred, &y_kept));
    }
    metrics.insert("training_rows".to_string(), y_kept.len() as f64);
    Ok((pipeline, metrics))
}
