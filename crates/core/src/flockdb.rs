//! `FlockDb`: the paper's architecture assembled — a DBMS whose catalog
//! stores models as versioned, securable derived data, whose queries can
//! score them with `PREDICT`, and whose planner runs the cross-optimizer.

use crate::meta::{Lineage, ModelMetadata};
use crate::provider::FlockInferenceProvider;
use crate::registry::{ModelRegistry, RegisteredModel};
use crate::xopt::{CrossOptimizer, XOptConfig};
use flock_ml::{
    fonnx, train, ColumnPipeline, Frame, FrameCol, Matrix, NumericStep, Pipeline,
};
use flock_sql::engine::QueryResult;
use flock_sql::lexer::{tokenize, Token};
use flock_sql::trainer::{ModelTrainer, TrainSpec, TrainedArtifact};
use flock_sql::{Database, DataType, RecordBatch, Result, Schema, Session, SqlError, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The extension-object kind under which models are stored.
pub const MODEL_KIND: &str = "model";

/// A portable, self-contained model artifact: FONNX payload plus the
/// catalog metadata (inputs, output, kind, lineage). Serializable, so it
/// can cross process/machine boundaries — the train-in-cloud /
/// score-at-the-edge hand-off.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ModelPackage {
    pub name: String,
    pub version: u64,
    pub payload: Vec<u8>,
    pub metadata: serde_json::Value,
}

impl ModelPackage {
    /// Serialize the package (for files / network transfer). Hand-written
    /// over the JSON document model (same shape a serde derive would
    /// emit), so packaging works against any JSON backend.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut doc = serde_json::Map::new();
        doc.insert("name".to_string(), serde_json::Value::from(self.name.as_str()));
        doc.insert("version".to_string(), serde_json::Value::from(self.version));
        doc.insert(
            "payload".to_string(),
            serde_json::Value::Array(
                self.payload.iter().map(|&b| serde_json::Value::from(b)).collect(),
            ),
        );
        doc.insert("metadata".to_string(), self.metadata.clone());
        serde_json::to_string(&serde_json::Value::Object(doc))
            .expect("package serializes")
            .into_bytes()
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<ModelPackage> {
        let bad = |what: &str| SqlError::Execution(format!("invalid model package: {what}"));
        let doc: serde_json::Value = serde_json::from_slice(bytes)
            .map_err(|e| SqlError::Execution(format!("invalid model package: {e}")))?;
        let name = doc
            .get("name")
            .and_then(serde_json::Value::as_str)
            .ok_or_else(|| bad("missing name"))?
            .to_string();
        let version = doc
            .get("version")
            .and_then(serde_json::Value::as_u64)
            .ok_or_else(|| bad("missing version"))?;
        let payload = doc
            .get("payload")
            .and_then(serde_json::Value::as_array)
            .ok_or_else(|| bad("missing payload"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .filter(|&b| b <= u8::MAX as u64)
                    .map(|b| b as u8)
                    .ok_or_else(|| bad("payload byte out of range"))
            })
            .collect::<Result<Vec<u8>>>()?;
        let metadata = doc
            .get("metadata")
            .cloned()
            .ok_or_else(|| bad("missing metadata"))?;
        Ok(ModelPackage {
            name,
            version,
            payload,
            metadata,
        })
    }
}

/// A Flock database: SQL engine + model registry + cross-optimizer.
#[derive(Clone)]
pub struct FlockDb {
    db: Database,
    registry: Arc<ModelRegistry>,
    xopt: Arc<CrossOptimizer>,
    provider: Arc<FlockInferenceProvider>,
}

impl Default for FlockDb {
    fn default() -> Self {
        Self::new()
    }
}

impl FlockDb {
    pub fn new() -> Self {
        Self::with_config(XOptConfig::default())
    }

    pub fn with_config(config: XOptConfig) -> Self {
        Self::with_database(Database::new(), config)
    }

    /// Open (or create) a durable Flock database in a directory: the SQL
    /// engine recovers its catalog from the write-ahead log, and the model
    /// registry is rebuilt from the recovered extension objects — deployed
    /// models come back scorable, with compiled-pipeline caches correctly
    /// invalidated (cache keys include the recovered model versions).
    pub fn open(
        path: impl AsRef<std::path::Path>,
        opts: flock_sql::DurabilityOptions,
    ) -> Result<FlockDb> {
        let db = Database::open(path, opts)?;
        let flock = Self::with_database(db, XOptConfig::default());
        flock.sync_registry();
        Ok(flock)
    }

    /// Open a durable Flock database on any [`flock_sql::DurableFs`] (the
    /// crash-recovery tests run against in-memory filesystems).
    pub fn open_with_fs(
        fs: Arc<dyn flock_sql::DurableFs>,
        opts: flock_sql::DurabilityOptions,
    ) -> Result<FlockDb> {
        let db = Database::open_with_fs(fs, opts)?;
        let flock = Self::with_database(db, XOptConfig::default());
        flock.sync_registry();
        Ok(flock)
    }

    /// Assemble the Flock layers around an existing engine (fresh or
    /// recovered).
    pub fn with_database(db: Database, config: XOptConfig) -> Self {
        let registry = Arc::new(ModelRegistry::new());
        let provider = Arc::new(FlockInferenceProvider::new(registry.clone()));
        db.set_inference_provider(provider.clone());
        // `CREATE MODEL ... AS SELECT` / `RETRAIN MODEL` fit through here.
        db.set_model_trainer(Arc::new(FlockTrainer));
        // Keep the scoring registry in step with every committed model
        // write, including commits made off-session (policy-triggered
        // RETRAIN runs on the engine's scheduler thread). Weak: the hook
        // must not keep a dropped FlockDb's registry alive.
        let weak_registry = Arc::downgrade(&registry);
        db.add_commit_hook(Arc::new(move |catalog, keys| {
            if keys.iter().any(|k| k.starts_with("ext:model:")) {
                if let Some(registry) = weak_registry.upgrade() {
                    sync_registry_from(catalog, &registry);
                }
            }
        }));
        let xopt = Arc::new(CrossOptimizer::new(registry.clone(), config));
        db.add_plan_rewriter(xopt.clone());
        // The config's thread pool and fan-out threshold also govern the
        // relational operators, not just PREDICT.
        db.set_exec_options(config.exec_options());
        // Surface the compiled-pipeline cache counters as flock_metrics
        // rows alongside the engine's execution counters.
        let metrics = db.engine_metrics();
        for (name, counter) in registry.cache_counters() {
            metrics.register(name, counter);
        }
        FlockDb {
            db,
            registry,
            xopt,
            provider,
        }
    }

    /// The underlying SQL engine.
    pub fn database(&self) -> &Database {
        &self.db
    }

    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    pub fn provider(&self) -> &Arc<FlockInferenceProvider> {
        &self.provider
    }

    pub fn xopt_config(&self) -> XOptConfig {
        self.xopt.config()
    }

    pub fn set_xopt_config(&self, config: XOptConfig) {
        self.xopt.set_config(config);
        self.db.set_exec_options(config.exec_options());
    }

    /// Open a session as `user`.
    pub fn session(&self, user: &str) -> FlockSession {
        FlockSession {
            inner: self.db.session(user),
            flock: self.clone(),
        }
    }

    /// Whether `user` exists in the committed catalog ("admin" is the
    /// bootstrap superuser). The network server authenticates `Hello`
    /// against this before opening a session; sessions themselves accept
    /// any name, with per-statement access control doing the real work.
    pub fn user_exists(&self, user: &str) -> bool {
        self.db.catalog().access.user_exists(user)
    }

    /// Convenience: execute as admin.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.session("admin").execute(sql)
    }

    /// Convenience: query as admin.
    pub fn query(&self, sql: &str) -> Result<RecordBatch> {
        self.session("admin").query(sql)
    }

    /// Reconcile the scoring registry with the committed catalog. Called
    /// after every statement; cheap when nothing changed.
    pub fn sync_registry(&self) {
        sync_registry_from(&self.db.catalog(), &self.registry);
    }

    /// Fetch the metadata of a deployed model.
    pub fn model_metadata(&self, name: &str) -> Result<Arc<ModelMetadata>> {
        self.registry
            .get(name)
            .map(|m| m.metadata)
            .ok_or_else(|| SqlError::Catalog(format!("model '{name}' is not deployed")))
    }
}

/// A session against a Flock database: plain SQL — which includes the
/// engine-level model DDL (`CREATE MODEL ... AS SELECT`, `RETRAIN
/// MODEL`, `DROP MODEL`) — plus the catalog reports (`SHOW MODELS`,
/// `DESCRIBE MODEL`) and Rust-level deployment APIs.
pub struct FlockSession {
    inner: Session,
    flock: FlockDb,
}

impl FlockSession {
    pub fn user(&self) -> &str {
        self.inner.user()
    }

    pub fn in_transaction(&self) -> bool {
        self.inner.in_transaction()
    }

    /// Handle other threads use to cancel this session's running statement
    /// (cooperative; the executor aborts with `SqlError::Cancelled`).
    pub fn cancel_handle(&self) -> flock_sql::exec::CancelHandle {
        self.inner.cancel_handle()
    }

    /// Session-local statement timeout in milliseconds (`None` = engine
    /// default); same effect as `SET statement_timeout = <ms>`.
    pub fn set_statement_timeout(&mut self, ms: Option<u64>) {
        self.inner.set_statement_timeout(ms);
    }

    /// Per-operator metrics of this session's most recent query (partial
    /// metrics of a cancelled/timed-out query included).
    pub fn last_query_metrics(&self) -> Option<flock_sql::exec::OpSnapshot> {
        self.inner.last_query_metrics()
    }

    /// Execute one statement (SQL — model DDL included — or a Flock
    /// catalog report).
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let trimmed = sql.trim().trim_end_matches(';');
        let upper = trimmed.to_ascii_uppercase();
        let result = if upper.starts_with("SHOW MODELS") {
            self.show_models()
        } else if upper.starts_with("DESCRIBE MODEL") || upper.starts_with("DESC MODEL") {
            self.describe_model(trimmed)
        } else {
            self.inner.execute(sql)
        };
        self.flock.sync_registry();
        result
    }

    pub fn query(&mut self, sql: &str) -> Result<RecordBatch> {
        self.execute(sql)?
            .batch
            .ok_or_else(|| SqlError::Execution("statement returned no rows".into()))
    }

    pub fn execute_with_params(&mut self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        let r = self.inner.execute_with_params(sql, params);
        self.flock.sync_registry();
        r
    }

    /// Prepare a SQL statement with `?` placeholders for repeated
    /// execution. Flock model DDL (`CREATE MODEL` etc.) is not
    /// preparable — serve it through [`execute`](Self::execute).
    pub fn prepare(&mut self, sql: &str) -> Result<flock_sql::PreparedStatement> {
        self.inner.prepare(sql)
    }

    /// Execute a prepared statement with `params` bound to its `?`
    /// placeholders, hitting the shared plan cache on the hot path.
    pub fn execute_prepared(
        &mut self,
        prepared: &flock_sql::PreparedStatement,
        params: &[Value],
    ) -> Result<QueryResult> {
        let r = self.inner.execute_prepared(prepared, params);
        self.flock.sync_registry();
        r
    }

    /// Deploy a pipeline as a new model (version 1).
    pub fn deploy_model(
        &mut self,
        name: &str,
        pipeline: &Pipeline,
        lineage: Lineage,
    ) -> Result<()> {
        let payload =
            fonnx::to_bytes(pipeline).map_err(|e| SqlError::Execution(e.to_string()))?;
        let metadata = metadata_for(name, pipeline, lineage);
        self.inner.create_extension_object(
            MODEL_KIND,
            name,
            payload,
            metadata.to_json(),
        )?;
        self.flock.sync_registry();
        Ok(())
    }

    /// Deploy a new version of an existing model. Multiple updates inside
    /// one BEGIN/COMMIT apply atomically — the paper's "multiple models
    /// might have to be updated transactionally".
    pub fn update_model(
        &mut self,
        name: &str,
        pipeline: &Pipeline,
        lineage: Lineage,
    ) -> Result<u64> {
        let payload =
            fonnx::to_bytes(pipeline).map_err(|e| SqlError::Execution(e.to_string()))?;
        let metadata = metadata_for(name, pipeline, lineage);
        let v = self.inner.update_extension_object(
            MODEL_KIND,
            name,
            payload,
            metadata.to_json(),
        )?;
        self.flock.sync_registry();
        Ok(v)
    }

    /// Bulk-append a prepared batch (fast load path).
    pub fn append_batch(&mut self, table: &str, batch: RecordBatch) -> Result<u64> {
        self.inner.append_batch(table, batch)
    }

    /// Truncate a table's version history, refusing to drop any version a
    /// deployed model's lineage pins as its training snapshot.
    pub fn truncate_table_history(&mut self, table: &str, keep: usize) -> Result<Vec<u64>> {
        self.inner.truncate_table_history(table, keep)
    }

    /// Low-latency single-decision scoring: one prediction, in-process,
    /// no SQL round-trip. This is the serving path for the paper's
    /// "latency-sensitive decisions \[that\] are poorly served" by
    /// containerized HTTP scoring — the model lives where the application
    /// logic runs, governed by the same catalog ACLs.
    pub fn predict_one(&mut self, model: &str, inputs: &[Value]) -> Result<f64> {
        use flock_sql::udf::InferenceProvider;
        let catalog = self.flock.db.catalog();
        catalog.access.check(
            self.user(),
            &flock_sql::ObjectRef::extension(model),
            flock_sql::Privilege::Execute,
        )?;
        let entry = self
            .flock
            .registry
            .get(model)
            .ok_or_else(|| SqlError::Catalog(format!("model '{model}' is not deployed")))?;
        if inputs.len() != entry.pipeline.columns.len() {
            return Err(SqlError::Execution(format!(
                "model '{model}' expects {} inputs, got {}",
                entry.pipeline.columns.len(),
                inputs.len()
            )));
        }
        let mut columns = Vec::with_capacity(inputs.len());
        for (i, v) in inputs.iter().enumerate() {
            let ty = if entry.pipeline.input_is_text(i) {
                DataType::Text
            } else {
                DataType::Float
            };
            columns.push(flock_sql::ColumnVector::from_values(
                ty,
                std::slice::from_ref(v),
            )?);
        }
        let out = self.flock.provider.predict(
            model,
            &columns,
            flock_sql::ast::PredictStrategy::Vectorized,
            self.user(),
        )?;
        out.get(0)
            .as_f64()
            .ok_or_else(|| SqlError::Execution("model produced no score".into()))
    }

    /// Export a deployed model as a self-contained FONNX package (payload
    /// plus metadata) — the portable artifact of the paper's "train in
    /// the cloud, score everywhere: in the cloud, on-prem, and on edge
    /// devices". Requires SELECT on the model object.
    pub fn export_model(&mut self, name: &str) -> Result<ModelPackage> {
        let catalog = self.flock.db.catalog();
        catalog.access.check(
            self.user(),
            &flock_sql::ObjectRef::extension(name),
            flock_sql::Privilege::Select,
        )?;
        let obj = catalog.extension(MODEL_KIND, name)?;
        let current = obj.current();
        Ok(ModelPackage {
            name: obj.name.clone(),
            version: current.version,
            payload: current.payload.clone(),
            metadata: current.metadata.clone(),
        })
    }

    /// Import a model package (e.g. trained in a cloud instance) into this
    /// database, preserving its lineage. The inference pipeline behaves
    /// bit-identically — "packaging the entire inference pipeline in a way
    /// that preserves the exact behavior crafted in the training
    /// environment".
    pub fn import_model(&mut self, package: &ModelPackage) -> Result<()> {
        // validate the payload decodes before it enters the catalog
        fonnx::from_bytes(&package.payload)
            .map_err(|e| SqlError::Execution(format!("invalid FONNX payload: {e}")))?;
        self.inner.create_extension_object(
            MODEL_KIND,
            &package.name,
            package.payload.clone(),
            package.metadata.clone(),
        )?;
        self.flock.sync_registry();
        Ok(())
    }

    /// Validate a candidate pipeline against labelled data *before*
    /// deployment (the Figure-3 "Model Validation" capability; the paper:
    /// "'average model accuracy' is not a sufficient validation metric" —
    /// so the full metric set is returned for the caller's gate).
    /// Reads go through the session, so ACLs and the query log apply.
    pub fn validate_pipeline(
        &mut self,
        pipeline: &Pipeline,
        table: &str,
        label_column: &str,
    ) -> Result<BTreeMap<String, f64>> {
        let mut cols: Vec<String> =
            pipeline.columns.iter().map(|c| c.input.clone()).collect();
        cols.push(label_column.to_string());
        let batch = self
            .inner
            .query(&format!("SELECT {} FROM {table}", cols.join(", ")))?;

        let mut frame = Frame::new();
        for (i, cp) in pipeline.columns.iter().enumerate() {
            let col = batch.column(i);
            let fc = if pipeline.input_is_text(i) {
                FrameCol::Str(
                    (0..col.len())
                        .map(|r| {
                            let v = col.get(r);
                            if v.is_null() { String::new() } else { v.to_string() }
                        })
                        .collect(),
                )
            } else {
                FrameCol::F64(
                    (0..col.len())
                        .map(|r| col.get_f64(r).unwrap_or(f64::NAN))
                        .collect(),
                )
            };
            frame
                .push(cp.input.clone(), fc)
                .map_err(|e| SqlError::Execution(e.to_string()))?;
        }
        let label_col = batch.column(batch.num_columns() - 1);
        let labels: Vec<f64> = (0..label_col.len())
            .map(|r| label_col.get_f64(r).unwrap_or(f64::NAN))
            .collect();
        let scores = flock_ml::StandaloneRuntime::new()
            .score(pipeline, &frame)
            .map_err(|e| SqlError::Execution(e.to_string()))?;

        let keep: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i].is_nan()).collect();
        if keep.is_empty() {
            return Err(SqlError::Execution(
                "validation set has no labelled rows".into(),
            ));
        }
        let y: Vec<f64> = keep.iter().map(|&i| labels[i]).collect();
        let p: Vec<f64> = keep.iter().map(|&i| scores[i]).collect();
        let mut metrics = BTreeMap::new();
        if y.iter().all(|v| *v == 0.0 || *v == 1.0) {
            metrics.insert("accuracy".into(), flock_ml::metrics::accuracy(&p, &y, 0.5));
            metrics.insert("auc".into(), flock_ml::metrics::auc(&p, &y));
        } else {
            metrics.insert("rmse".into(), flock_ml::metrics::rmse(&p, &y));
            metrics.insert("r2".into(), flock_ml::metrics::r2(&p, &y));
        }
        metrics.insert("validation_rows".into(), y.len() as f64);
        Ok(metrics)
    }

    /// Deploy a new model version only if it clears a validation gate:
    /// `metric >= threshold` on the given labelled table. On failure the
    /// current version stays live and an error is returned.
    #[allow(clippy::too_many_arguments)]
    pub fn update_model_gated(
        &mut self,
        name: &str,
        pipeline: &Pipeline,
        mut lineage: Lineage,
        validation_table: &str,
        label_column: &str,
        metric: &str,
        threshold: f64,
    ) -> Result<u64> {
        let metrics = self.validate_pipeline(pipeline, validation_table, label_column)?;
        let value = *metrics.get(metric).ok_or_else(|| {
            SqlError::Execution(format!(
                "validation did not produce metric '{metric}' (have: {:?})",
                metrics.keys().collect::<Vec<_>>()
            ))
        })?;
        if value < threshold {
            return Err(SqlError::Execution(format!(
                "validation gate failed: {metric} = {value:.4} < {threshold:.4}; \
                 current version stays live"
            )));
        }
        lineage.metrics.extend(metrics);
        self.update_model(name, pipeline, lineage)
    }

    pub fn begin(&mut self) -> Result<QueryResult> {
        self.inner.begin()
    }

    pub fn commit(&mut self) -> Result<QueryResult> {
        let r = self.inner.commit();
        self.flock.sync_registry();
        r
    }

    pub fn rollback(&mut self) -> Result<QueryResult> {
        let r = self.inner.rollback();
        self.flock.sync_registry();
        r
    }

    // ------------------------------------------------ catalog reports

    /// `DESCRIBE MODEL <name>` — the governance card for one model: every
    /// version with its kind, complexity, trainer, training snapshot and
    /// recorded quality metrics.
    fn describe_model(&mut self, sql: &str) -> Result<QueryResult> {
        let tokens = tokenize(sql)?;
        let name = match tokens.get(2) {
            Some(Token::Ident(s)) | Some(Token::QuotedIdent(s)) => s.clone(),
            _ => return Err(SqlError::Parse("expected DESCRIBE MODEL <name>".into())),
        };
        let catalog = self.flock.db.catalog();
        let obj = catalog.extension(MODEL_KIND, &name)?;
        let schema = Arc::new(Schema::from_pairs(&[
            ("version", DataType::Int),
            ("kind", DataType::Text),
            ("inputs", DataType::Text),
            ("output", DataType::Text),
            ("complexity", DataType::Int),
            ("trained_by", DataType::Text),
            ("training_table", DataType::Text),
            ("table_version", DataType::Int),
            ("metrics", DataType::Text),
        ]));
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for version in &obj.versions {
            let md = ModelMetadata::from_json(&version.metadata);
            let row = match md {
                Some(m) => vec![
                    Value::Int(version.version as i64),
                    Value::Text(m.kind),
                    Value::Text(
                        m.inputs
                            .iter()
                            .map(|(n, _)| n.as_str())
                            .collect::<Vec<_>>()
                            .join(","),
                    ),
                    Value::Text(m.output),
                    Value::Int(m.complexity as i64),
                    Value::Text(m.lineage.trained_by),
                    Value::Text(m.lineage.training_table.unwrap_or_default()),
                    m.lineage
                        .training_table_version
                        .map(|v| Value::Int(v as i64))
                        .unwrap_or(Value::Null),
                    Value::Text(
                        m.lineage
                            .metrics
                            .iter()
                            .map(|(k, v)| format!("{k}={v:.4}"))
                            .collect::<Vec<_>>()
                            .join(" "),
                    ),
                ],
                None => vec![
                    Value::Int(version.version as i64),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ],
            };
            rows.push(row);
        }
        let batch = RecordBatch::from_rows(schema, &rows)?;
        Ok(QueryResult {
            rows_affected: batch.num_rows(),
            batch: Some(batch),
            message: format!("DESCRIBE MODEL {name}"),
        })
    }

    fn show_models(&mut self) -> Result<QueryResult> {
        let catalog = self.flock.db.catalog();
        let schema = Arc::new(Schema::from_pairs(&[
            ("name", DataType::Text),
            ("kind", DataType::Text),
            ("version", DataType::Int),
            ("owner", DataType::Text),
            ("inputs", DataType::Text),
            ("output", DataType::Text),
            ("complexity", DataType::Int),
            ("training_table", DataType::Text),
            ("training_table_version", DataType::Int),
        ]));
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for obj in catalog.extensions_of_kind(MODEL_KIND) {
            let md = ModelMetadata::from_json(&obj.current().metadata);
            let (kind, inputs, output, complexity, ttable, tver) = match &md {
                Some(m) => (
                    m.kind.clone(),
                    m.inputs
                        .iter()
                        .map(|(n, _)| n.as_str())
                        .collect::<Vec<_>>()
                        .join(","),
                    m.output.clone(),
                    m.complexity as i64,
                    m.lineage.training_table.clone().unwrap_or_default(),
                    m.lineage
                        .training_table_version
                        .map(|v| Value::Int(v as i64))
                        .unwrap_or(Value::Null),
                ),
                None => (String::new(), String::new(), String::new(), 0, String::new(), Value::Null),
            };
            rows.push(vec![
                Value::Text(obj.name.clone()),
                Value::Text(kind),
                Value::Int(obj.current().version as i64),
                Value::Text(obj.owner.clone()),
                Value::Text(inputs),
                Value::Text(output),
                Value::Int(complexity),
                Value::Text(ttable),
                tver,
            ]);
        }
        let batch = RecordBatch::from_rows(schema, &rows)?;
        Ok(QueryResult {
            rows_affected: batch.num_rows(),
            batch: Some(batch),
            message: "SHOW MODELS".into(),
        })
    }
}

/// Reconcile a scoring registry with a committed catalog snapshot: load
/// new/updated model versions, drop models that no longer exist. Shared
/// by the per-statement [`FlockDb::sync_registry`] path and the engine
/// commit hook (which fires for commits made off-session, e.g.
/// policy-triggered retrains on the scheduler thread).
pub(crate) fn sync_registry_from(catalog: &flock_sql::Catalog, registry: &ModelRegistry) {
    let mut live: Vec<String> = Vec::new();
    for obj in catalog.extensions_of_kind(MODEL_KIND) {
        live.push(obj.name.clone());
        let current = obj.current();
        let stale = registry
            .get(&obj.name)
            .is_none_or(|m| m.version != current.version);
        if !stale {
            continue;
        }
        let Ok(pipeline) = fonnx::from_bytes(&current.payload) else {
            continue; // undecodable payloads stay unscorable
        };
        let metadata = ModelMetadata::from_json(&current.metadata).unwrap_or_else(|| {
            ModelMetadata {
                name: obj.name.clone(),
                inputs: pipeline
                    .columns
                    .iter()
                    .map(|c| (c.input.clone(), c.encoder.takes_strings()))
                    .collect(),
                output: pipeline.output.clone(),
                kind: pipeline.model.kind_name().to_string(),
                complexity: pipeline.complexity(),
                lineage: Lineage::default(),
            }
        });
        registry.insert(
            &obj.name,
            RegisteredModel {
                pipeline: Arc::new(pipeline),
                metadata: Arc::new(metadata),
                version: current.version,
            },
        );
    }
    for name in registry.names() {
        if !live.contains(&name) {
            registry.remove(&name);
        }
    }
}

fn metadata_for(name: &str, pipeline: &Pipeline, lineage: Lineage) -> ModelMetadata {
    ModelMetadata {
        name: name.to_ascii_lowercase(),
        inputs: pipeline
            .columns
            .iter()
            .map(|c| (c.input.clone(), c.encoder.takes_strings()))
            .collect(),
        output: pipeline.output.clone(),
        kind: pipeline.model.kind_name().to_string(),
        complexity: pipeline.complexity(),
        lineage,
    }
}

// --------------------------------------------------- in-engine training

/// Categorical NULLs get their own one-hot bucket. The sentinel starts
/// with NUL so no real string value can collide with it (SQL text can
/// never contain a NUL byte by the time it reaches a column).
const NULL_CATEGORY: &str = "\u{0}<NULL>";

/// Pick at most `cap` categories for a one-hot column: the most frequent
/// values win, ties break by name, and the final list is re-sorted by
/// name so encoders are deterministic regardless of row order.
fn select_categories(values: &[String], cap: usize) -> Vec<String> {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for v in values {
        *counts.entry(v.as_str()).or_insert(0) += 1;
    }
    let mut by_freq: Vec<(&str, usize)> = counts.into_iter().collect();
    by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    by_freq.truncate(cap);
    let mut cats: Vec<String> = by_freq.into_iter().map(|(v, _)| v.to_string()).collect();
    cats.sort();
    cats
}

fn opt_usize(key: &str, value: &Value) -> Result<usize> {
    match value {
        Value::Int(i) if *i > 0 => Ok(*i as usize),
        other => Err(SqlError::Plan(format!(
            "CREATE MODEL option '{key}' expects a positive integer, got {other}"
        ))),
    }
}

fn opt_u64(key: &str, value: &Value) -> Result<u64> {
    match value {
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        other => Err(SqlError::Plan(format!(
            "CREATE MODEL option '{key}' expects a non-negative integer, got {other}"
        ))),
    }
}

fn opt_f64(key: &str, value: &Value) -> Result<f64> {
    value.as_f64().ok_or_else(|| {
        SqlError::Plan(format!(
            "CREATE MODEL option '{key}' expects a number, got {value}"
        ))
    })
}

/// Map `CREATE MODEL ... WITH (...)` options onto fit hyperparameters
/// plus the holdout fraction. Unknown keys are hard errors — a typoed
/// hyperparameter must not silently train with defaults.
fn fit_options(spec: &TrainSpec) -> Result<(train::FitParams, f64)> {
    let mut p = train::FitParams::default();
    let mut test_fraction = 0.2_f64;
    for (key, value) in &spec.options {
        match key.as_str() {
            "trees" => p.trees = Some(opt_usize(key, value)?),
            "max_depth" => p.max_depth = opt_usize(key, value)?,
            "min_samples_split" => p.min_samples_split = opt_usize(key, value)?,
            "seed" => p.seed = opt_u64(key, value)?,
            "learning_rate" => p.learning_rate = opt_f64(key, value)?,
            "ridge" => p.ridge = opt_f64(key, value)?,
            "epochs" => p.epochs = opt_usize(key, value)?,
            "lr" => p.lr = opt_f64(key, value)?,
            "k" => p.k = opt_usize(key, value)?,
            "test_fraction" => test_fraction = opt_f64(key, value)?,
            other => {
                return Err(SqlError::Plan(format!(
                    "unknown CREATE MODEL option '{other}' (expected trees, max_depth, \
                     min_samples_split, seed, test_fraction, learning_rate, ridge, \
                     epochs, lr, or k)"
                )))
            }
        }
    }
    Ok((p, test_fraction))
}

/// The Flock training backend for `CREATE MODEL ... AS SELECT`:
/// auto-featurizes the materialized training batch (standardized
/// numerics, one-hot text), carves out a seeded holdout, fits the
/// requested kind with `flock_ml`, and records metrics measured on rows
/// the fit never saw. Deterministic for a given spec + batch — crash
/// recovery and `RETRAIN` rely on byte-identical refits.
pub struct FlockTrainer;

impl ModelTrainer for FlockTrainer {
    fn train(&self, spec: &TrainSpec, data: &RecordBatch) -> Result<TrainedArtifact> {
        let (params, test_fraction) = fit_options(spec)?;
        let schema = data.schema();
        for i in 0..schema.len() {
            for j in (i + 1)..schema.len() {
                if schema.column(i).name.eq_ignore_ascii_case(&schema.column(j).name) {
                    return Err(SqlError::Plan(format!(
                        "training query produced duplicate column '{}'; \
                         alias the columns to unique names",
                        schema.column(j).name
                    )));
                }
            }
        }
        let target_idx = (0..schema.len())
            .find(|&i| schema.column(i).name.eq_ignore_ascii_case(&spec.target))
            .ok_or_else(|| {
                SqlError::Plan(format!(
                    "unknown target column '{}' in training query result",
                    spec.target
                ))
            })?;
        let feature_indices: Vec<usize> =
            (0..schema.len()).filter(|&i| i != target_idx).collect();
        if feature_indices.is_empty() {
            return Err(SqlError::Plan("model needs at least one feature".into()));
        }

        // Rows with a usable label; the rest are ignored.
        let target_col = data.column(target_idx);
        let y: Vec<f64> = (0..target_col.len())
            .map(|r| target_col.get_f64(r).unwrap_or(f64::NAN))
            .collect();
        let keep: Vec<usize> = (0..y.len()).filter(|&i| !y[i].is_nan()).collect();
        if keep.is_empty() {
            return Err(SqlError::Execution("no training rows with a target".into()));
        }
        let y_kept: Vec<f64> = keep.iter().map(|&i| y[i]).collect();

        // Seeded holdout: recorded metrics come from rows the fit never
        // saw. A split that would leave nothing to fit on falls back to
        // fitting (and measuring) on everything.
        let (mut train_pos, mut eval_pos) =
            train::train_test_split(keep.len(), test_fraction, params.seed)
                .map_err(|e| SqlError::Plan(e.to_string()))?;
        if train_pos.is_empty() {
            train_pos = (0..keep.len()).collect();
            eval_pos = Vec::new();
        }

        // Featurizer statistics (means, stds, category sets) come from
        // the training split only — the holdout must not leak into the
        // encoders either.
        let mut frame = Frame::new();
        let mut columns: Vec<ColumnPipeline> = Vec::new();
        for &i in &feature_indices {
            let col = data.column(i);
            let name = schema.column(i).name.clone();
            match col.data_type() {
                DataType::Text => {
                    let vals: Vec<String> = keep
                        .iter()
                        .map(|&r| {
                            let v = col.get(r);
                            if v.is_null() {
                                NULL_CATEGORY.to_string()
                            } else {
                                v.to_string()
                            }
                        })
                        .collect();
                    let train_vals: Vec<String> =
                        train_pos.iter().map(|&p| vals[p].clone()).collect();
                    let cats = select_categories(&train_vals, 64);
                    frame
                        .push(name.clone(), FrameCol::Str(vals))
                        .map_err(|e| SqlError::Execution(e.to_string()))?;
                    columns.push(ColumnPipeline::one_hot(name, cats));
                }
                _ => {
                    let vals: Vec<f64> = keep
                        .iter()
                        .map(|&r| col.get_f64(r).unwrap_or(f64::NAN))
                        .collect();
                    let clean: Vec<f64> = train_pos
                        .iter()
                        .map(|&p| vals[p])
                        .filter(|v| !v.is_nan())
                        .collect();
                    let mean = if clean.is_empty() {
                        0.0
                    } else {
                        clean.iter().sum::<f64>() / clean.len() as f64
                    };
                    let std = if clean.is_empty() {
                        1.0
                    } else {
                        (clean.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                            / clean.len() as f64)
                            .sqrt()
                    };
                    frame
                        .push(name.clone(), FrameCol::F64(vals))
                        .map_err(|e| SqlError::Execution(e.to_string()))?;
                    columns.push(
                        ColumnPipeline::numeric(name)
                            .with_step(NumericStep::Impute { fill: mean })
                            .with_step(NumericStep::Standardize {
                                mean,
                                std: if std == 0.0 { 1.0 } else { std },
                            }),
                    );
                }
            }
        }

        let draft = Pipeline::new(
            columns.clone(),
            flock_ml::Model::Linear(flock_ml::LinearModel::new(vec![], 0.0)),
            spec.output.clone(),
        );
        let full_x = draft
            .featurize(&frame)
            .map_err(|e| SqlError::Execution(e.to_string()))?;
        let slice = |pos: &[usize]| -> Matrix {
            let rows: Vec<Vec<f64>> = pos.iter().map(|&p| full_x.row(p).to_vec()).collect();
            Matrix::from_rows(&rows)
        };
        let x_train = slice(&train_pos);
        let y_train: Vec<f64> = train_pos.iter().map(|&p| y_kept[p]).collect();
        let model = train::fit_model_with(&spec.kind, &x_train, &y_train, &params)
            .map_err(|e| SqlError::Execution(e.to_string()))?;
        let pipeline = Pipeline::new(columns, model, spec.output.clone());

        // Honest metrics: measured on the holdout when there is one.
        let (m_pos, held_out) = if eval_pos.is_empty() {
            (&train_pos, false)
        } else {
            (&eval_pos, true)
        };
        let pred = pipeline.model.score_batch(&slice(m_pos));
        let y_m: Vec<f64> = m_pos.iter().map(|&p| y_kept[p]).collect();
        let is_binary = y_kept.iter().all(|v| *v == 0.0 || *v == 1.0);
        let mut metrics = BTreeMap::new();
        let scored: [(&str, f64); 2] = if is_binary {
            [
                ("accuracy", flock_ml::metrics::accuracy(&pred, &y_m, 0.5)),
                ("auc", flock_ml::metrics::auc(&pred, &y_m)),
            ]
        } else {
            [
                ("rmse", flock_ml::metrics::rmse(&pred, &y_m)),
                ("r2", flock_ml::metrics::r2(&pred, &y_m)),
            ]
        };
        for (k, v) in scored {
            metrics.insert(k.to_string(), v);
            if held_out {
                metrics.insert(format!("eval_{k}"), v);
            }
        }
        metrics.insert("train_rows".into(), train_pos.len() as f64);
        metrics.insert("eval_rows".into(), eval_pos.len() as f64);

        // Placeholder lineage: the engine stamps the training query,
        // pinned table versions, user and timestamp over it.
        let lineage = Lineage {
            metrics,
            ..Lineage::default()
        };
        let metadata = metadata_for(&spec.name, &pipeline, lineage).to_json();
        let payload =
            fonnx::to_bytes(&pipeline).map_err(|e| SqlError::Execution(e.to_string()))?;
        Ok(TrainedArtifact {
            payload,
            metadata,
            train_rows: train_pos.len(),
            eval_rows: eval_pos.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_keep_most_frequent_deterministically() {
        let mut vals: Vec<String> = Vec::new();
        for i in 0..100 {
            vals.push(format!("rare{i:03}"));
        }
        for _ in 0..50 {
            vals.push("common_a".to_string());
            vals.push("common_b".to_string());
        }
        let cats = select_categories(&vals, 64);
        assert_eq!(cats.len(), 64);
        assert!(cats.contains(&"common_a".to_string()));
        assert!(cats.contains(&"common_b".to_string()));
        // ties (every rare value appears once) break by name: the
        // lexicographically smallest rare values fill the remaining slots
        assert!(cats.contains(&"rare000".to_string()));
        assert!(cats.contains(&"rare061".to_string()));
        assert!(!cats.contains(&"rare062".to_string()));
        let mut sorted = cats.clone();
        sorted.sort();
        assert_eq!(cats, sorted, "category list must be name-sorted");
    }

    #[test]
    fn null_sentinel_cannot_collide_with_real_strings() {
        assert!(NULL_CATEGORY.starts_with('\u{0}'));
        assert_ne!(NULL_CATEGORY, "");
        let cats = select_categories(
            &[String::new(), NULL_CATEGORY.to_string()],
            64,
        );
        assert_eq!(cats.len(), 2, "empty string and NULL are distinct categories");
    }

    #[test]
    fn unknown_with_option_is_rejected() {
        let spec = TrainSpec {
            name: "m".into(),
            kind: "gbt".into(),
            options: vec![("tres".into(), Value::Int(10))],
            target: "y".into(),
            output: "o".into(),
        };
        let err = fit_options(&spec).unwrap_err();
        assert!(
            err.to_string().contains("unknown CREATE MODEL option 'tres'"),
            "{err}"
        );
    }

    #[test]
    fn with_options_map_onto_fit_params() {
        let spec = TrainSpec {
            name: "m".into(),
            kind: "gbt".into(),
            options: vec![
                ("trees".into(), Value::Int(7)),
                ("seed".into(), Value::Int(9)),
                ("test_fraction".into(), Value::Float(0.5)),
                ("learning_rate".into(), Value::Float(0.1)),
            ],
            target: "y".into(),
            output: "o".into(),
        };
        let (p, frac) = fit_options(&spec).unwrap();
        assert_eq!(p.trees, Some(7));
        assert_eq!(p.seed, 9);
        assert_eq!(p.learning_rate, 0.1);
        assert_eq!(frac, 0.5);
        // unset options keep their defaults
        assert_eq!(p.max_depth, train::FitParams::default().max_depth);
    }
}
