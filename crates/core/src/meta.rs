//! Model metadata: the "models are derived data" record.
//!
//! Every deployed model carries its full lineage — which table (and which
//! *version* of it) it was trained on, by whom, with what statement, and
//! with what quality metrics. This is the paper's §4.2 requirement that
//! "the full provenance of a model must be known for debugging/auditing".

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where a model came from.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Lineage {
    /// Table the training data was read from, if trained in-engine.
    pub training_table: Option<String>,
    /// Exact version of that table at training time.
    pub training_table_version: Option<u64>,
    /// Every table the training query scanned, with the exact committed
    /// version pinned at training time. The first entry mirrors
    /// `training_table`/`training_table_version`; joins add more.
    pub training_tables: Vec<(String, u64)>,
    /// The statement or description that produced the model.
    pub training_query: Option<String>,
    /// User who trained/deployed the model.
    pub trained_by: String,
    /// Wall-clock creation time (ms since epoch).
    pub created_ms: u64,
    /// Quality metrics recorded at training time.
    pub metrics: BTreeMap<String, f64>,
}

/// Catalog-visible description of a deployed model version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelMetadata {
    pub name: String,
    /// Input column names, in PREDICT argument order, with a text flag.
    pub inputs: Vec<(String, bool)>,
    /// Output column name.
    pub output: String,
    /// Model family, e.g. "gbt".
    pub kind: String,
    /// Model complexity (weights / tree nodes) for optimizer costing.
    pub complexity: usize,
    pub lineage: Lineage,
}

impl ModelMetadata {
    /// Serialize for storage in the catalog extension object. Hand-written
    /// over the JSON document model (same shape a serde derive would
    /// emit), so the catalog works against any JSON backend.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::{Map, Value};
        let mut lineage = Map::new();
        lineage.insert(
            "training_table".to_string(),
            match &self.lineage.training_table {
                Some(t) => Value::from(t.as_str()),
                None => Value::Null,
            },
        );
        lineage.insert(
            "training_table_version".to_string(),
            match self.lineage.training_table_version {
                Some(v) => Value::from(v),
                None => Value::Null,
            },
        );
        lineage.insert(
            "training_tables".to_string(),
            Value::Array(
                self.lineage
                    .training_tables
                    .iter()
                    .map(|(t, v)| Value::Array(vec![Value::from(t.as_str()), Value::from(*v)]))
                    .collect(),
            ),
        );
        lineage.insert(
            "training_query".to_string(),
            match &self.lineage.training_query {
                Some(q) => Value::from(q.as_str()),
                None => Value::Null,
            },
        );
        lineage.insert(
            "trained_by".to_string(),
            Value::from(self.lineage.trained_by.as_str()),
        );
        lineage.insert("created_ms".to_string(), Value::from(self.lineage.created_ms));
        let mut metrics = Map::new();
        for (k, v) in &self.lineage.metrics {
            metrics.insert(k.clone(), Value::from(*v));
        }
        lineage.insert("metrics".to_string(), Value::Object(metrics));

        let mut doc = Map::new();
        doc.insert("name".to_string(), Value::from(self.name.as_str()));
        doc.insert(
            "inputs".to_string(),
            Value::Array(
                self.inputs
                    .iter()
                    .map(|(n, text)| {
                        Value::Array(vec![Value::from(n.as_str()), Value::from(*text)])
                    })
                    .collect(),
            ),
        );
        doc.insert("output".to_string(), Value::from(self.output.as_str()));
        doc.insert("kind".to_string(), Value::from(self.kind.as_str()));
        doc.insert("complexity".to_string(), Value::from(self.complexity));
        doc.insert("lineage".to_string(), Value::Object(lineage));
        Value::Object(doc)
    }

    pub fn from_json(v: &serde_json::Value) -> Option<ModelMetadata> {
        use serde_json::Value;
        let name = v.get("name")?.as_str()?.to_string();
        let inputs = v
            .get("inputs")?
            .as_array()?
            .iter()
            .map(|pair| {
                let a = pair.as_array()?;
                match a.as_slice() {
                    [n, t] => Some((n.as_str()?.to_string(), t.as_bool()?)),
                    _ => None,
                }
            })
            .collect::<Option<Vec<_>>>()?;
        let output = v.get("output")?.as_str()?.to_string();
        let kind = v.get("kind")?.as_str()?.to_string();
        let complexity = v.get("complexity")?.as_u64()? as usize;
        let l = v.get("lineage")?;
        let opt_str = |v: Option<&Value>| -> Option<Option<String>> {
            match v {
                None => None,
                Some(Value::Null) => Some(None),
                Some(s) => Some(Some(s.as_str()?.to_string())),
            }
        };
        let lineage = Lineage {
            training_table: opt_str(l.get("training_table"))?,
            training_table_version: match l.get("training_table_version") {
                None => return None,
                Some(Value::Null) => None,
                Some(n) => Some(n.as_u64()?),
            },
            // Optional for back-compat: models deployed before multi-table
            // lineage only carry the single training_table pin.
            training_tables: match l.get("training_tables") {
                None | Some(Value::Null) => Vec::new(),
                Some(arr) => arr
                    .as_array()?
                    .iter()
                    .map(|pair| {
                        let a = pair.as_array()?;
                        match a.as_slice() {
                            [t, v] => Some((t.as_str()?.to_string(), v.as_u64()?)),
                            _ => None,
                        }
                    })
                    .collect::<Option<Vec<_>>>()?,
            },
            training_query: opt_str(l.get("training_query"))?,
            trained_by: l.get("trained_by")?.as_str()?.to_string(),
            created_ms: l.get("created_ms")?.as_u64()?,
            metrics: l
                .get("metrics")?
                .as_object()?
                .iter()
                .map(|(k, v)| Some((k.clone(), v.as_f64()?)))
                .collect::<Option<std::collections::BTreeMap<_, _>>>()?,
        };
        Some(ModelMetadata {
            name,
            inputs,
            output,
            kind,
            complexity,
            lineage,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let m = ModelMetadata {
            name: "churn".into(),
            inputs: vec![("age".into(), false), ("city".into(), true)],
            output: "p_churn".into(),
            kind: "logistic".into(),
            complexity: 12,
            lineage: Lineage {
                training_table: Some("customers".into()),
                training_table_version: Some(7),
                training_tables: vec![("customers".into(), 7), ("regions".into(), 3)],
                training_query: Some("CREATE MODEL churn ...".into()),
                trained_by: "alice".into(),
                created_ms: 123,
                metrics: BTreeMap::from([("auc".to_string(), 0.91)]),
            },
        };
        let back = ModelMetadata::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn malformed_json_is_none() {
        assert!(ModelMetadata::from_json(&serde_json::json!({"nope": 1})).is_none());
    }
}
