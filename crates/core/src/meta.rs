//! Model metadata: the "models are derived data" record.
//!
//! Every deployed model carries its full lineage — which table (and which
//! *version* of it) it was trained on, by whom, with what statement, and
//! with what quality metrics. This is the paper's §4.2 requirement that
//! "the full provenance of a model must be known for debugging/auditing".

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where a model came from.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Lineage {
    /// Table the training data was read from, if trained in-engine.
    pub training_table: Option<String>,
    /// Exact version of that table at training time.
    pub training_table_version: Option<u64>,
    /// The statement or description that produced the model.
    pub training_query: Option<String>,
    /// User who trained/deployed the model.
    pub trained_by: String,
    /// Wall-clock creation time (ms since epoch).
    pub created_ms: u64,
    /// Quality metrics recorded at training time.
    pub metrics: BTreeMap<String, f64>,
}

/// Catalog-visible description of a deployed model version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelMetadata {
    pub name: String,
    /// Input column names, in PREDICT argument order, with a text flag.
    pub inputs: Vec<(String, bool)>,
    /// Output column name.
    pub output: String,
    /// Model family, e.g. "gbt".
    pub kind: String,
    /// Model complexity (weights / tree nodes) for optimizer costing.
    pub complexity: usize,
    pub lineage: Lineage,
}

impl ModelMetadata {
    /// Serialize for storage in the catalog extension object.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("metadata serializes")
    }

    pub fn from_json(v: &serde_json::Value) -> Option<ModelMetadata> {
        serde_json::from_value(v.clone()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let m = ModelMetadata {
            name: "churn".into(),
            inputs: vec![("age".into(), false), ("city".into(), true)],
            output: "p_churn".into(),
            kind: "logistic".into(),
            complexity: 12,
            lineage: Lineage {
                training_table: Some("customers".into()),
                training_table_version: Some(7),
                training_query: Some("CREATE MODEL churn ...".into()),
                trained_by: "alice".into(),
                created_ms: 123,
                metrics: BTreeMap::from([("auc".to_string(), 0.91)]),
            },
        };
        let back = ModelMetadata::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn malformed_json_is_none() {
        assert!(ModelMetadata::from_json(&serde_json::json!({"nope": 1})).is_none());
    }
}
