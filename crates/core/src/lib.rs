//! # flock-core
//!
//! The primary contribution of the reproduced paper (*"Cloudy with high
//! chance of DBMS"*, CIDR 2020): **Enterprise-Grade ML inside the DBMS**.
//!
//! * Models are **first-class catalog objects** — versioned, access
//!   controlled, audited, and updatable transactionally (several models
//!   can switch atomically in one COMMIT).
//! * `PREDICT(model, args...)` is a **relational expression**: inference
//!   runs inside query execution, next to the data, with no exfiltration.
//! * A **cross-optimizer** rewrites hybrid SQL×ML plans: predicate
//!   push-up across logistic models, input-column pruning from model
//!   sparsity, statistics-driven model compression, Froid-style model
//!   inlining, and statistics-driven physical operator selection
//!   (row / vectorized / parallel).
//!
//! The entry point is [`FlockDb`]; open sessions with
//! [`FlockDb::session`], deploy models with
//! [`FlockSession::deploy_model`] or the `CREATE MODEL` DDL, and score
//! with ordinary SQL:
//!
//! ```
//! use flock_core::FlockDb;
//!
//! let db = FlockDb::new();
//! db.execute("CREATE TABLE loans (income DOUBLE, debt DOUBLE, approved INT)").unwrap();
//! db.execute("INSERT INTO loans VALUES (95.0, 10.0, 1), (20.0, 50.0, 0), \
//!             (80.0, 20.0, 1), (15.0, 60.0, 0)").unwrap();
//! db.execute("CREATE MODEL approval KIND logistic FROM loans TARGET approved").unwrap();
//! let batch = db
//!     .query("SELECT income, PREDICT(approval, income, debt) AS p FROM loans")
//!     .unwrap();
//! assert_eq!(batch.num_rows(), 4);
//! ```

pub mod flockdb;
pub mod meta;
pub mod provider;
pub mod registry;
pub mod xopt;

pub use flockdb::{FlockDb, FlockSession, ModelPackage, MODEL_KIND};
pub use meta::{Lineage, ModelMetadata};
pub use provider::FlockInferenceProvider;
pub use registry::{DerivedPipeline, ModelRegistry, RegisteredModel};
pub use xopt::{CrossOptimizer, XOptConfig};
