//! Criterion microbenches for the SQL substrate: parse, plan+optimize,
//! and execute on a realistic analytical query.

use criterion::{criterion_group, criterion_main, Criterion};
use flock_corpus::tabular::TabularDataset;
use flock_sql::Database;

fn sql_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_engine");
    group.sample_size(20);

    const Q: &str = "SELECT city, COUNT(*) AS n, AVG(income) AS avg_inc \
                     FROM customers WHERE debt > 20.0 GROUP BY city \
                     HAVING COUNT(*) > 10 ORDER BY avg_inc DESC";

    group.bench_function("parse_analytic_query", |b| {
        b.iter(|| flock_sql::parser::parse_statement(Q).unwrap())
    });

    let db = Database::new();
    TabularDataset::generate(50_000, 9).load_into(&db).unwrap();

    group.bench_function("aggregate_query_50k_rows", |b| {
        b.iter(|| db.query(Q).unwrap())
    });

    group.bench_function("filter_scan_50k_rows", |b| {
        b.iter(|| {
            db.query("SELECT age, income FROM customers WHERE income > 100.0 AND debt < 50.0")
                .unwrap()
        })
    });

    // join benchmark on a second table
    db.execute("CREATE TABLE cities (city VARCHAR, region VARCHAR)").unwrap();
    db.execute(
        "INSERT INTO cities VALUES ('nyc','east'),('sf','west'),('chi','mid'),\
         ('aus','south'),('sea','west'),('mia','south')",
    )
    .unwrap();
    group.bench_function("hash_join_50k_x_6", |b| {
        b.iter(|| {
            db.query(
                "SELECT ct.region, COUNT(*) FROM customers c JOIN cities ct \
                 ON c.city = ct.city GROUP BY ct.region",
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, sql_engine);

fn relational_ablation(c: &mut Criterion) {
    use flock_sql::optimizer::OptimizerConfig;
    let mut group = c.benchmark_group("relational_ablation");
    group.sample_size(10);

    let db = Database::new();
    flock_corpus::tpch::populate(&db, 300, 21).unwrap();
    const Q: &str = "SELECT c.c_mktsegment, COUNT(*) AS n, SUM(o.o_totalprice) \
                     FROM customer c, orders o \
                     WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000.0 \
                     AND c.c_acctbal > 0.0 \
                     GROUP BY c.c_mktsegment ORDER BY n DESC";

    let configs: [(&str, OptimizerConfig); 4] = [
        ("all_rules", OptimizerConfig::default()),
        ("no_pushdown", OptimizerConfig {
            predicate_pushdown: false,
            ..OptimizerConfig::default()
        }),
        ("no_join_extraction", OptimizerConfig {
            join_extraction: false,
            predicate_pushdown: false, // pushdown would re-enable hash keys
            ..OptimizerConfig::default()
        }),
        ("no_rules", OptimizerConfig::disabled()),
    ];
    for (name, cfg) in configs {
        db.set_optimizer_config(cfg);
        group.bench_function(name, |b| b.iter(|| db.query(Q).unwrap()));
    }
    db.set_optimizer_config(OptimizerConfig::default());
    group.finish();
}

criterion_group!(ablation, relational_ablation);

fn thread_scaling(c: &mut Criterion) {
    use flock_sql::exec::ExecOptions;
    let mut group = c.benchmark_group("thread_scaling");
    group.sample_size(10);

    let db = Database::new();
    TabularDataset::generate(1_000_000, 42).load_into(&db).unwrap();
    db.execute("CREATE TABLE cities (city VARCHAR, region VARCHAR)").unwrap();
    db.execute(
        "INSERT INTO cities VALUES ('nyc','east'),('sf','west'),('chi','mid'),\
         ('aus','south'),('sea','west'),('mia','south')",
    )
    .unwrap();

    const AGG: &str = "SELECT city, COUNT(*) AS n, AVG(income), SUM(debt) \
                       FROM customers WHERE debt > 20.0 GROUP BY city ORDER BY city";
    const JOIN: &str = "SELECT ct.region, COUNT(*), AVG(c.income) FROM customers c \
                        JOIN cities ct ON c.city = ct.city \
                        GROUP BY ct.region ORDER BY ct.region";

    for threads in [1usize, 2, 4, 8] {
        db.set_exec_options(ExecOptions {
            threads,
            parallel_row_threshold: 1,
            ..ExecOptions::default()
        });
        group.bench_function(format!("aggregate_1m_t{threads}"), |b| {
            b.iter(|| db.query(AGG).unwrap())
        });
        group.bench_function(format!("join_1m_t{threads}"), |b| {
            b.iter(|| db.query(JOIN).unwrap())
        });
    }
    db.set_exec_options(ExecOptions::serial());
    group.finish();
}

criterion_group!(scaling, thread_scaling);

criterion_main!(benches, ablation, scaling);
