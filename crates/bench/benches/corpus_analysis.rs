//! Criterion benches for the analysis workloads behind Figure 2 and the
//! Python-provenance table.

use criterion::{criterion_group, criterion_main, Criterion};
use flock_corpus::notebooks::{NotebookCorpus, SnapshotParams, FIGURE2_KS};
use flock_pyprov::{analyze, KnowledgeBase};

fn corpus_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_analysis");
    group.sample_size(10);

    group.bench_function("notebook_corpus_generate_10k", |b| {
        b.iter(|| NotebookCorpus::generate(SnapshotParams::year_2019(10_000)))
    });

    let corpus = NotebookCorpus::generate(SnapshotParams::year_2019(50_000));
    group.bench_function("coverage_curve_50k", |b| {
        b.iter(|| corpus.coverage_curve(&FIGURE2_KS))
    });

    let kb = KnowledgeBase::standard();
    let scripts = flock_corpus::kaggle_corpus(7);
    group.bench_function("pyprov_analyze_49_scripts", |b| {
        b.iter(|| {
            scripts
                .iter()
                .map(|s| analyze(&s.source, &kb).models.len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, corpus_analysis);
criterion_main!(benches);
