//! Criterion benches for SQL provenance capture (the paper's latency
//! column): per-query eager capture cost on TPC-H and TPC-C shapes, plus
//! graph compression.

use criterion::{criterion_group, criterion_main, Criterion};
use flock_provenance::{capture_sql, compress, ProvCatalog};
use flock_rng::rngs::StdRng;
use flock_rng::SeedableRng;

fn capture(c: &mut Criterion) {
    let mut group = c.benchmark_group("provenance_capture");
    group.sample_size(20);

    let mut rng = StdRng::seed_from_u64(1);
    let tpch: Vec<String> = (1..=22)
        .map(|t| flock_corpus::tpch::query(t, &mut rng))
        .collect();
    group.bench_function("tpch_22_templates_eager", |b| {
        b.iter(|| {
            let mut cat = ProvCatalog::new();
            for q in &tpch {
                capture_sql(&mut cat, q, "bench").unwrap();
            }
            cat.graph().size()
        })
    });

    let tpcc = flock_corpus::tpcc::statement_stream(100, 2);
    group.bench_function("tpcc_100_statements_eager", |b| {
        b.iter(|| {
            let mut cat = ProvCatalog::new();
            for q in &tpcc {
                capture_sql(&mut cat, q, "bench").unwrap();
            }
            cat.graph().size()
        })
    });

    // compression over an accumulated graph
    let mut cat = ProvCatalog::new();
    for q in flock_corpus::tpch::query_stream(20, 3) {
        capture_sql(&mut cat, &q, "bench").unwrap();
    }
    let graph = cat.graph().clone();
    group.bench_function("compress_440_query_graph", |b| {
        b.iter(|| compress(&graph).1.ratio())
    });
    group.finish();
}

criterion_group!(benches, capture);
criterion_main!(benches);
