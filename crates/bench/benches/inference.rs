//! Criterion benches for the Figure-4 code paths: standalone vs in-DB
//! scoring at two dataset sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flock_bench::fig4::{build_db, SCORING_QUERY};
use flock_core::XOptConfig;
use flock_corpus::tabular::TabularDataset;
use flock_ml::{interpreted_score, StandaloneRuntime};

fn inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference");
    group.sample_size(10);
    for &size in &[10_000usize, 50_000] {
        let data = TabularDataset::generate(size, 42);
        let frame = data.frame();
        let pipeline = data.train_pipeline(20, 4);

        group.bench_with_input(BenchmarkId::new("ort_standalone", size), &size, |b, _| {
            b.iter(|| StandaloneRuntime::new().score(&pipeline, &frame).unwrap())
        });
        if size <= 10_000 {
            group.bench_with_input(
                BenchmarkId::new("interpreted_rows", size),
                &size,
                |b, _| b.iter(|| interpreted_score(&pipeline, &frame).unwrap()),
            );
        }

        let db = build_db(&data, 20, 4);
        db.set_xopt_config(XOptConfig::disabled());
        group.bench_with_input(BenchmarkId::new("sonnx_in_db", size), &size, |b, _| {
            b.iter(|| db.query(SCORING_QUERY).unwrap())
        });
        db.set_xopt_config(XOptConfig::default());
        let _ = db.query(SCORING_QUERY).unwrap(); // warm derived-model cache
        group.bench_with_input(BenchmarkId::new("sonnx_ext_in_db", size), &size, |b, _| {
            b.iter(|| db.query(SCORING_QUERY).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, inference);
criterion_main!(benches);
