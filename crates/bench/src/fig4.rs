//! Figure 4: in-database inference vs standalone runtimes.
//!
//! Left panel: total inference time across dataset sizes for
//! * `sklearn`  — row-at-a-time interpreted scoring (standalone);
//! * `ORT` — the standalone vectorized runtime (single thread);
//! * `SONNX` — in-DBMS PREDICT with engine parallelism, cross-optimizer
//!   off;
//! * `SONNX-ext` — in-DBMS PREDICT with the full cross-optimizer.
//!
//! Right panel: speedups at a fixed size relative to the Inline-SQL
//! anchor (in-DB scoring through the row-UDF path), matching the paper's
//! "Inline SQL 1× / ORT 17× / Optimized 24×" bar.

use flock_core::{FlockDb, Lineage, XOptConfig};
use flock_corpus::tabular::TabularDataset;
use flock_ml::{interpreted_score, StandaloneRuntime};
use flock_sql::ast::PredictStrategy;
use flock_sql::exec::ExecOptions;
use std::time::Instant;

/// Milliseconds of the fastest of `repeats` runs.
pub fn time_best_ms(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// One row of the left panel.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    pub size: usize,
    pub sklearn_ms: f64,
    pub ort_ms: f64,
    pub sonnx_ms: f64,
    pub sonnx_ext_ms: f64,
    /// On single-core hosts the engine's automatic parallelization cannot
    /// show up in wall-clock time; this models the N-way parallel SONNX
    /// time as (measured in-DB overhead) + (critical-path chunk time),
    /// with every chunk actually executed. `None` on multi-core hosts,
    /// where `sonnx_ms` already includes real parallelism.
    pub sonnx_parallel_modeled_ms: Option<f64>,
}

/// Threads the host actually offers.
pub fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Simulated parallel degree used for the modeled column.
pub const MODELED_THREADS: usize = 8;

/// One operator of the executed in-DB plan with its *measured* self time,
/// read from the engine's plan metrics (the same numbers `EXPLAIN
/// ANALYZE` prints) instead of being re-derived from outer wall clocks.
#[derive(Debug, Clone)]
pub struct OperatorTime {
    pub depth: usize,
    pub name: String,
    pub detail: String,
    pub rows_out: u64,
    pub self_ms: f64,
    /// Effective parallel degree (1 = ran serially).
    pub degree: u64,
}

/// Per-operator breakdown of the most recent query `db` executed.
pub fn last_query_operator_times(db: &FlockDb) -> Vec<OperatorTime> {
    db.database()
        .last_query_metrics()
        .map(|snap| {
            snap.walk()
                .into_iter()
                .map(|(depth, n)| OperatorTime {
                    depth,
                    name: n.name.clone(),
                    detail: n.detail.clone(),
                    rows_out: n.rows_out,
                    self_ms: n.self_ns as f64 / 1e6,
                    degree: n.degree,
                })
                .collect()
        })
        .unwrap_or_default()
}

/// The right panel: speedups vs the Inline-SQL anchor.
#[derive(Debug, Clone)]
pub struct SpeedupAnchor {
    pub size: usize,
    pub inline_sql_ms: f64,
    pub ort_ms: f64,
    pub optimized_ms: f64,
    /// Modeled fully-optimized time with 8-way parallelism on single-core
    /// hosts (see [`Fig4Row::sonnx_parallel_modeled_ms`]).
    pub optimized_parallel_modeled_ms: Option<f64>,
    /// Measured per-operator times of the final optimized run.
    pub optimized_breakdown: Vec<OperatorTime>,
}

impl SpeedupAnchor {
    pub fn ort_speedup(&self) -> f64 {
        self.inline_sql_ms / self.ort_ms
    }

    pub fn optimized_speedup(&self) -> f64 {
        self.inline_sql_ms / self.optimized_ms
    }

    pub fn optimized_modeled_speedup(&self) -> Option<f64> {
        self.optimized_parallel_modeled_ms
            .map(|v| self.inline_sql_ms / v)
    }
}

/// The PREDICT query scored in every in-DB configuration.
pub const SCORING_QUERY: &str = "SELECT AVG(PREDICT(good_model, age, income, debt, \
     tenure, noise1, noise2, city)) FROM customers";

/// Build a Flock database with the dataset loaded and the model deployed.
pub fn build_db(data: &TabularDataset, trees: usize, depth: usize) -> FlockDb {
    let db = FlockDb::new();
    data.load_into(db.database()).expect("load");
    let pipeline = data.train_pipeline(trees, depth);
    db.session("admin")
        .deploy_model("good_model", &pipeline, Lineage::default())
        .expect("deploy");
    db
}

/// Run the left panel at the given sizes.
pub fn run_sizes(sizes: &[usize], trees: usize, depth: usize, repeats: usize) -> Vec<Fig4Row> {
    sizes
        .iter()
        .map(|&size| {
            let data = TabularDataset::generate(size, 42);
            let frame = data.frame();
            let pipeline = data.train_pipeline(trees, depth);

            // standalone runtimes
            let sklearn_ms = time_best_ms(repeats, || {
                let _ = interpreted_score(&pipeline, &frame).expect("interpreted");
            });
            let ort_ms = time_best_ms(repeats, || {
                let _ = StandaloneRuntime::new().score(&pipeline, &frame).expect("ort");
            });

            // in-DB: plain SONNX (no cross-optimizer)
            let db = build_db(&data, trees, depth);
            db.set_xopt_config(XOptConfig::disabled());
            let sonnx_ms = time_best_ms(repeats, || {
                let _ = db.query(SCORING_QUERY).expect("sonnx");
            });

            // in-DB: SONNX-ext (full cross-optimizer)
            db.set_xopt_config(XOptConfig::default());
            let sonnx_ext_ms = time_best_ms(repeats, || {
                let _ = db.query(SCORING_QUERY).expect("sonnx-ext");
            });

            // modeled parallel SONNX on single-core hosts: run all chunks
            // and take the slowest as the parallel critical path
            let sonnx_parallel_modeled_ms = if host_threads() > 1 {
                None
            } else {
                let chunk_rows = size.div_ceil(MODELED_THREADS).max(1);
                let critical = frame
                    .chunks(chunk_rows)
                    .map(|c| {
                        time_best_ms(repeats, || {
                            let _ = StandaloneRuntime::new().score(&pipeline, &c).expect("chunk");
                        })
                    })
                    .fold(0.0f64, f64::max);
                let overhead = (sonnx_ms - ort_ms).max(0.0);
                Some(overhead + critical)
            };

            Fig4Row {
                size,
                sklearn_ms,
                ort_ms,
                sonnx_ms,
                sonnx_ext_ms,
                sonnx_parallel_modeled_ms,
            }
        })
        .collect()
}

/// Run the right panel at a fixed size.
pub fn run_anchor(size: usize, trees: usize, depth: usize, repeats: usize) -> SpeedupAnchor {
    let data = TabularDataset::generate(size, 42);
    let frame = data.frame();
    let pipeline = data.train_pipeline(trees, depth);

    // Inline SQL: in-DB scoring through the row-at-a-time UDF path
    let db = build_db(&data, trees, depth);
    db.set_xopt_config(XOptConfig::disabled());
    let mut row_options = ExecOptions::serial();
    row_options.default_predict = PredictStrategy::Row;
    db.database().set_exec_options(row_options);
    let inline_sql_ms = time_best_ms(repeats, || {
        let _ = db.query(SCORING_QUERY).expect("inline sql");
    });

    // ORT: standalone vectorized
    let ort_ms = time_best_ms(repeats, || {
        let _ = StandaloneRuntime::new().score(&pipeline, &frame).expect("ort");
    });

    // Optimized: in-DB with the full cross-optimizer and parallelism
    db.database().set_exec_options(ExecOptions::default());
    db.set_xopt_config(XOptConfig::default());
    let optimized_ms = time_best_ms(repeats, || {
        let _ = db.query(SCORING_QUERY).expect("optimized");
    });
    // measured per-operator times of the run that just finished
    let optimized_breakdown = last_query_operator_times(&db);

    // modeled 8-way parallel optimized time on single-core hosts: the
    // pruned pipeline's critical-path chunk plus the measured in-DB
    // overhead of the optimized configuration
    let optimized_parallel_modeled_ms = if host_threads() > 1 {
        None
    } else {
        let (pruned, _) = pipeline.prune_unused_inputs();
        let pruned_serial_ms = time_best_ms(repeats, || {
            let _ = StandaloneRuntime::new().score(&pruned, &frame).expect("pruned");
        });
        let overhead = (optimized_ms - pruned_serial_ms).max(0.0);
        let chunk_rows = size.div_ceil(MODELED_THREADS).max(1);
        let critical = frame
            .chunks(chunk_rows)
            .map(|c| {
                time_best_ms(repeats, || {
                    let _ = StandaloneRuntime::new().score(&pruned, &c).expect("chunk");
                })
            })
            .fold(0.0f64, f64::max);
        Some(overhead + critical)
    };

    SpeedupAnchor {
        size,
        inline_sql_ms,
        ort_ms,
        optimized_ms,
        optimized_parallel_modeled_ms,
        optimized_breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-size smoke test of the full harness (shape assertions only;
    /// the real run uses the binary).
    #[test]
    fn harness_produces_consistent_scores() {
        let rows = run_sizes(&[2_000], 8, 3, 1);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.sklearn_ms > 0.0 && r.ort_ms > 0.0);
        assert!(r.sonnx_ms > 0.0 && r.sonnx_ext_ms > 0.0);
        // interpreted scoring must be the slowest path by far
        assert!(
            r.sklearn_ms > r.ort_ms,
            "interpreted {} vs vectorized {}",
            r.sklearn_ms,
            r.ort_ms
        );
    }

    #[test]
    fn in_db_results_numerically_match_standalone() {
        let size = 3_000;
        let data = TabularDataset::generate(size, 42);
        let pipeline = data.train_pipeline(8, 3);
        let standalone = StandaloneRuntime::new()
            .score(&pipeline, &data.frame())
            .unwrap();
        let avg: f64 = standalone.iter().sum::<f64>() / size as f64;

        let db = build_db(&data, 8, 3);
        for cfg in [XOptConfig::disabled(), XOptConfig::default()] {
            db.set_xopt_config(cfg);
            let b = db.query(SCORING_QUERY).unwrap();
            let got = b.column(0).get(0).as_f64().unwrap();
            assert!(
                (got - avg).abs() < 1e-9,
                "in-DB average {got} != standalone {avg}"
            );
        }
    }

    #[test]
    fn anchor_speedups_are_sensible() {
        let a = run_anchor(5_000, 8, 3, 1);
        assert!(a.ort_speedup() > 1.0, "ORT should beat inline SQL");
        assert!(a.optimized_speedup() > 1.0);
        // the breakdown comes from real measured plan metrics: the scan
        // materialized the whole table, and self times are non-negative
        let scan = a
            .optimized_breakdown
            .iter()
            .find(|o| o.name == "Scan")
            .expect("scan in breakdown");
        assert_eq!(scan.rows_out, 5_000);
        assert!(a.optimized_breakdown.iter().all(|o| o.self_ms >= 0.0));
    }
}
