//! The SQL-provenance capture table (paper §4.2):
//!
//! | Dataset | #Queries | Latency | Size (nodes+edges) |
//! |---------|----------|---------|--------------------|
//! | TPC-H   | 2,208    | 110 s   | 22,330             |
//! | TPC-C   | 2,200    | 124 s   | 34,785             |
//!
//! TPC-H runs in *eager* mode (parse each statement, extract tables and
//! columns). TPC-C — being write-heavy — runs in *lazy* mode over a
//! synthesized query log, so every write also mints a table-version node
//! ("an INSERT to a table results in a new version of the table").

use flock_provenance::{capture_log_entry, capture_sql, compress, ProvCatalog};
use flock_sql::engine::{QueryLogEntry, StatementKind};
use std::collections::HashMap;
use std::time::Instant;

/// One row of the table.
#[derive(Debug, Clone)]
pub struct ProvRow {
    pub dataset: &'static str,
    pub queries: usize,
    pub latency_ms: f64,
    pub nodes: usize,
    pub edges: usize,
    /// Size after compression/summarization (the paper's optimization).
    pub compressed_size: usize,
}

impl ProvRow {
    pub fn size(&self) -> usize {
        self.nodes + self.edges
    }
}

/// Eager capture over the full TPC-H stream (DDL + `per_template`
/// instances of all 22 templates; 100 → the paper's 2,208 statements).
pub fn run_tpch(per_template: usize, seed: u64) -> ProvRow {
    let mut statements: Vec<String> = flock_corpus::tpch::schema_ddl()
        .into_iter()
        .map(str::to_string)
        .collect();
    statements.extend(flock_corpus::tpch::query_stream(per_template, seed));

    let mut catalog = ProvCatalog::new();
    let start = Instant::now();
    for sql in &statements {
        capture_sql(&mut catalog, sql, "analyst").expect("tpch capture");
    }
    let latency_ms = start.elapsed().as_secs_f64() * 1e3;
    let graph = catalog.graph();
    let (_, stats) = compress(graph);
    ProvRow {
        dataset: "TPC-H",
        queries: statements.len(),
        latency_ms,
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        compressed_size: stats.nodes_after + stats.edges_after,
    }
}

/// Lazy capture over a synthesized TPC-C query log with exact versions.
pub fn run_tpcc(n_statements: usize, seed: u64) -> ProvRow {
    let mut statements: Vec<String> = flock_corpus::tpcc::schema_ddl()
        .into_iter()
        .map(str::to_string)
        .collect();
    statements.extend(flock_corpus::tpcc::statement_stream(
        n_statements.saturating_sub(statements.len()),
        seed,
    ));

    // synthesize the query log the engine would have produced
    let mut versions: HashMap<String, u64> = HashMap::new();
    let log: Vec<QueryLogEntry> = statements
        .iter()
        .enumerate()
        .map(|(i, sql)| {
            let upper = sql.trim().to_ascii_uppercase();
            let (kind, written) = if upper.starts_with("INSERT") {
                (StatementKind::Insert, first_table_after(sql, "INTO"))
            } else if upper.starts_with("UPDATE") {
                (StatementKind::Update, first_table_after(sql, "UPDATE"))
            } else if upper.starts_with("DELETE") {
                (StatementKind::Delete, first_table_after(sql, "FROM"))
            } else if upper.starts_with("CREATE") {
                (StatementKind::Ddl, None)
            } else {
                (StatementKind::Query, None)
            };
            let versions_written = written
                .map(|t| {
                    let v = versions.entry(t.clone()).or_insert(1);
                    *v += 1;
                    vec![(t, *v)]
                })
                .unwrap_or_default();
            QueryLogEntry {
                id: i as u64 + 1,
                txn_id: i as u64 + 1,
                user: "app".into(),
                sql: sql.clone(),
                kind,
                tables_read: vec![],
                tables_written: versions_written.iter().map(|(t, _)| t.clone()).collect(),
                versions_written,
                timestamp_ms: 0,
                rows_scanned: 0,
                rows_returned: 0,
                elapsed_us: 0,
                parallel_ops: 0,
            }
        })
        .collect();

    let mut catalog = ProvCatalog::new();
    let start = Instant::now();
    for entry in &log {
        capture_log_entry(&mut catalog, entry);
    }
    let latency_ms = start.elapsed().as_secs_f64() * 1e3;
    let graph = catalog.graph();
    let (_, stats) = compress(graph);
    ProvRow {
        dataset: "TPC-C",
        queries: statements.len(),
        latency_ms,
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        compressed_size: stats.nodes_after + stats.edges_after,
    }
}

fn first_table_after(sql: &str, keyword: &str) -> Option<String> {
    let upper = sql.to_ascii_uppercase();
    let pos = upper.find(&format!("{keyword} "))? + keyword.len() + 1;
    let rest = &sql[pos..];
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name.to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpch_capture_produces_paper_scale_graph() {
        let row = run_tpch(10, 1); // 228 statements (scaled-down smoke)
        assert_eq!(row.queries, 228);
        assert!(row.size() > 1_000, "graph size {}", row.size());
        assert!(row.compressed_size < row.size());
    }

    #[test]
    fn tpcc_capture_tracks_versions() {
        let row = run_tpcc(300, 2);
        assert_eq!(row.queries, 300);
        assert!(row.size() > 500);
        // write-heavy: versions inflate the graph beyond bare queries
        assert!(row.nodes > 300 / 2, "nodes {}", row.nodes);
    }

    #[test]
    fn table_extraction_helper() {
        assert_eq!(
            first_table_after("INSERT INTO history VALUES (1)", "INTO"),
            Some("history".into())
        );
        assert_eq!(
            first_table_after("UPDATE stock SET x = 1", "UPDATE"),
            Some("stock".into())
        );
        assert_eq!(first_table_after("SELECT 1", "INTO"), None);
    }
}
