//! The Python-provenance coverage table (paper §4.2):
//!
//! | Dataset   | #Scripts | %Models | %Training Datasets |
//! |-----------|----------|---------|--------------------|
//! | Kaggle    | 49       | 95%     | 61%                |
//! | Microsoft | 37       | 100%    | 100%               |

use flock_corpus::scripts::GeneratedScript;
use flock_pyprov::{analyze, evaluate, KnowledgeBase, ScriptGroundTruth};

/// One row of the table.
#[derive(Debug, Clone)]
pub struct PyProvRow {
    pub dataset: &'static str,
    pub scripts: usize,
    pub pct_models: f64,
    pub pct_datasets: f64,
}

fn run_corpus(name: &'static str, corpus: &[GeneratedScript]) -> PyProvRow {
    let kb = KnowledgeBase::standard();
    let results: Vec<_> = corpus
        .iter()
        .map(|s| {
            let analysis = analyze(&s.source, &kb);
            let truth = ScriptGroundTruth {
                models: s.truth.models,
                training_datasets: s.truth.training_datasets.clone(),
            };
            (analysis, truth)
        })
        .collect();
    let report = evaluate(&results);
    PyProvRow {
        dataset: name,
        scripts: report.scripts,
        pct_models: report.pct_models(),
        pct_datasets: report.pct_datasets(),
    }
}

/// The "Kaggle" row.
pub fn run_kaggle(seed: u64) -> PyProvRow {
    run_corpus("Kaggle", &flock_corpus::kaggle_corpus(seed))
}

/// The "Microsoft" (enterprise) row.
pub fn run_enterprise(seed: u64) -> PyProvRow {
    run_corpus("Microsoft", &flock_corpus::enterprise_corpus(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaggle_coverage_matches_paper_band() {
        let r = run_kaggle(7);
        assert_eq!(r.scripts, 49);
        // paper: 95% models, 61% datasets
        assert!(
            r.pct_models > 90.0 && r.pct_models < 100.0,
            "models {}",
            r.pct_models
        );
        assert!(
            r.pct_datasets > 50.0 && r.pct_datasets < 75.0,
            "datasets {}",
            r.pct_datasets
        );
    }

    #[test]
    fn enterprise_coverage_is_total() {
        let r = run_enterprise(7);
        assert_eq!(r.scripts, 37);
        assert_eq!(r.pct_models, 100.0);
        assert_eq!(r.pct_datasets, 100.0);
    }
}
