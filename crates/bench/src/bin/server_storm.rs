//! Connection storm against a live `flock-server`: hundreds of concurrent
//! TCP clients, each authenticating, running a mixed workload of ad-hoc
//! queries and prepared executes, and disconnecting cleanly.
//!
//! The claim under test is the service boundary itself: the
//! thread-per-connection server with per-session admission control must
//! sustain `N_CLIENTS` concurrent connections with **zero dropped or hung
//! connections** — every request gets exactly one reply, retryable
//! `admission` rejects are the only tolerated failures, and the process
//! self-gates non-zero otherwise. Reports qps and p50/p99 per-request
//! latency to `results/BENCH_server.json`.
//!
//! `FLOCK_SERVER_SHORT=1` shrinks the storm for CI smoke (the full run is
//! the 128+-client acceptance configuration).

use flock_core::FlockDb;
use flock_server::client::{Client, ClientError};
use flock_server::{Server, ServerConfig};
use flock_sql::Value;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct ClientReport {
    latencies_us: Vec<u64>,
    admission_retries: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let short = std::env::var("FLOCK_SERVER_SHORT").is_ok();
    let n_clients: usize = if short { 32 } else { 160 };
    let requests_per_client: usize = if short { 20 } else { 40 };
    // Bound concurrent query execution well below the connection count so
    // the storm actually exercises admission rejects + client retry.
    let max_concurrent = 8;

    let db = Arc::new(FlockDb::new());
    db.database().execute("CREATE TABLE kv (k INT, v TEXT)").unwrap();
    for chunk in 0..4 {
        let values: Vec<String> = (0..64)
            .map(|i| {
                let k = chunk * 64 + i;
                format!("({k}, 'value-{k}')")
            })
            .collect();
        db.database()
            .execute(&format!("INSERT INTO kv VALUES {}", values.join(", ")))
            .unwrap();
    }
    let mut opts = db.database().exec_options();
    opts.max_concurrent_queries = max_concurrent;
    db.database().set_exec_options(opts);

    let handle = Server::start(db.clone(), ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    println!(
        "storm: {n_clients} clients x {requests_per_client} requests, \
         admission limit {max_concurrent}, server {addr}"
    );

    let failures = Arc::new(AtomicU64::new(0));
    let wall = Instant::now();
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..n_clients)
            .map(|id| {
                let failures = failures.clone();
                scope.spawn(move || {
                    let mut report =
                        ClientReport { latencies_us: Vec::new(), admission_retries: 0 };
                    let mut client = match Client::connect(addr, "admin") {
                        Ok(c) => c,
                        Err(e) => {
                            eprintln!("client {id}: connect failed: {e}");
                            failures.fetch_add(1, Ordering::Relaxed);
                            return report;
                        }
                    };
                    let stmt = match client.prepare("SELECT v FROM kv WHERE k = ?") {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("client {id}: prepare failed: {e}");
                            failures.fetch_add(1, Ordering::Relaxed);
                            return report;
                        }
                    };
                    for req in 0..requests_per_client {
                        let key = ((id * 31 + req * 7) % 256) as i64;
                        // Alternate prepared executes (plan-cache hot
                        // path) with ad-hoc text queries.
                        let started = Instant::now();
                        let mut attempts = 0u64;
                        loop {
                            let result = if req % 2 == 0 {
                                client.execute(stmt, &[Value::Int(key)])
                            } else {
                                client.query(&format!("SELECT v FROM kv WHERE k = {key}"))
                            };
                            match result {
                                Ok(rows) => {
                                    if rows.rows.len() != 1 {
                                        eprintln!(
                                            "client {id}: wrong row count {}",
                                            rows.rows.len()
                                        );
                                        failures.fetch_add(1, Ordering::Relaxed);
                                    }
                                    break;
                                }
                                Err(ClientError::Sql(e)) if e.retryable => {
                                    // Admission reject: the server is full,
                                    // not broken. Back off and retry.
                                    report.admission_retries += 1;
                                    attempts += 1;
                                    if attempts > 10_000 {
                                        eprintln!("client {id}: starved by admission");
                                        failures.fetch_add(1, Ordering::Relaxed);
                                        break;
                                    }
                                    std::thread::sleep(Duration::from_micros(500));
                                }
                                Err(e) => {
                                    eprintln!("client {id}: request failed: {e}");
                                    failures.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        report.latencies_us.push(started.elapsed().as_micros() as u64);
                    }
                    if let Err(e) = client.goodbye() {
                        eprintln!("client {id}: goodbye failed: {e}");
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                    report
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client thread panicked")).collect()
    });
    let wall_s = wall.elapsed().as_secs_f64();

    // Shutdown joins every worker thread, so the gauge read below is the
    // settled post-storm value, not a teardown race.
    handle.shutdown();
    let open_after = db
        .database()
        .engine_metrics()
        .rows()
        .into_iter()
        .find(|(n, _)| *n == "server_connections_open")
        .map(|(_, v)| v)
        .unwrap_or(u64::MAX);

    let mut latencies: Vec<u64> =
        reports.iter().flat_map(|r| r.latencies_us.iter().copied()).collect();
    latencies.sort_unstable();
    let total_requests = latencies.len();
    let expected_requests = n_clients * requests_per_client;
    let retries: u64 = reports.iter().map(|r| r.admission_retries).sum();
    let failed = failures.load(Ordering::Relaxed);
    let qps = total_requests as f64 / wall_s;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    println!("completed {total_requests}/{expected_requests} requests in {wall_s:.2}s");
    println!("qps {qps:.0}, p50 {p50} us, p99 {p99} us");
    println!("admission retries {retries}, failures {failed}, connections open after storm {open_after}");

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"server_storm\",");
    let _ = writeln!(out, "  \"short_mode\": {short},");
    let _ = writeln!(out, "  \"clients\": {n_clients},");
    let _ = writeln!(out, "  \"requests_per_client\": {requests_per_client},");
    let _ = writeln!(out, "  \"admission_limit\": {max_concurrent},");
    let _ = writeln!(out, "  \"total_requests\": {total_requests},");
    let _ = writeln!(out, "  \"wall_seconds\": {wall_s:.3},");
    let _ = writeln!(out, "  \"qps\": {qps:.1},");
    let _ = writeln!(out, "  \"p50_us\": {p50},");
    let _ = writeln!(out, "  \"p99_us\": {p99},");
    let _ = writeln!(out, "  \"admission_retries\": {retries},");
    let _ = writeln!(out, "  \"dropped_or_hung\": {failed}");
    out.push_str("}\n");
    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/BENCH_server.json", &out).unwrap();
    eprintln!("wrote results/BENCH_server.json");

    // Self-gate: every client completed every request over a live
    // connection, nothing dropped, nothing hung, nothing left open.
    if failed > 0 || total_requests != expected_requests || open_after != 0 {
        eprintln!(
            "GATE FAILED: failures={failed}, requests={total_requests}/{expected_requests}, \
             open_after={open_after}"
        );
        std::process::exit(1);
    }
}
