//! Regenerates the SQL-provenance capture table (paper §4.2).

use flock_bench::{provtab, render_table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (per_template, tpcc_statements) = if quick { (10, 250) } else { (100, 2200) };

    println!("SQL provenance capture (paper: TPC-H 2,208 q / 110 s / 22,330; TPC-C 2,200 q / 124 s / 34,785)\n");
    let tpch = provtab::run_tpch(per_template, 42);
    let tpcc = provtab::run_tpcc(tpcc_statements, 42);

    let rows: Vec<Vec<String>> = [&tpch, &tpcc]
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                r.queries.to_string(),
                format!("{:.0} ms", r.latency_ms),
                format!("{} (= {}n + {}e)", r.size(), r.nodes, r.edges),
                format!("{} ({:.1}x smaller)", r.compressed_size,
                    r.size() as f64 / r.compressed_size.max(1) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Dataset", "#Queries", "Latency", "Size (nodes+edges)", "Compressed"],
            &rows
        )
    );
    println!(
        "\nper-query capture: TPC-H {:.2} ms, TPC-C {:.2} ms",
        tpch.latency_ms / tpch.queries as f64,
        tpcc.latency_ms / tpcc.queries as f64
    );
    println!("(absolute latency is not comparable to the paper's Atlas-backed pipeline; \
              graph growth per query is the reproducible signal)");
}
