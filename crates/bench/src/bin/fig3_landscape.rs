//! Regenerates Figure 3: ML systems in the public cloud and major
//! companies — the feature-support matrix and its two trends.

use flock_bench::{fig3, render_table};

fn main() {
    println!("Figure 3 — ML systems feature-support matrix");
    println!("(encoded landscape data; ● good / ◐ ok / ○ no / ? unknown)\n");
    let r = fig3::run();
    println!("{}", r.matrix);

    let rows: Vec<Vec<String>> = r
        .system_scores
        .iter()
        .map(|(name, t, s, d)| {
            vec![
                name.clone(),
                format!("{t:.2}"),
                format!("{s:.2}"),
                format!("{d:.2}"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["system", "training", "serving", "data mgmt"], &rows)
    );
    println!("\nTrend 1: proprietary data-management score {:.2} vs cloud {:.2}", r.proprietary_data_mgmt, r.cloud_data_mgmt);
    println!("         (\"mature proprietary solutions have stronger support for data management\")");
    println!(
        "Trend 2: share of systems with any in-DB ML support: {:.0}%",
        100.0 * r.in_db_ml_share
    );
    println!("         (\"providing complete and usable third-party solutions in this space is non-trivial\")");
}
