//! The high-throughput PREDICT serving path, quantified:
//!
//! 1. **Prepared vs. unprepared** — scores/second of a windowed PREDICT
//!    statement executed through a prepared handle + shared plan cache
//!    (lex/parse/plan/xopt skipped on the hot path) versus re-submitting
//!    the SQL text with inline literals every time, at 1/2/4/8 concurrent
//!    sessions under admission control. Every statement gets a
//!    globally-unique window so the unprepared baseline really re-plans
//!    each time (identical texts would hit the raw-token cache and
//!    measure nothing).
//! 2. **Batched vs. scalar kernel** — full-table scoring throughput of
//!    the level-synchronous struct-of-arrays FlatTree kernel
//!    (`SET predict_strategy = 'batched'`) against the per-row walker
//!    (`'vectorized'`), plus a bit-exactness sweep across row /
//!    vectorized / batched / parallel strategies.
//!
//! Gate: prepared+batched must clear `GATE_SPEEDUP`x the unprepared
//! baseline at 4 sessions and every strategy must agree bit-for-bit, or
//! the process exits non-zero. Set `FLOCK_SERVING_SHORT=1` for the CI
//! smoke configuration (fewer statements, 1.5x gate).
//!
//! Writes `results/BENCH_serving.json`.

use flock_core::{FlockDb, Lineage, XOptConfig};
use flock_ml::{ColumnPipeline, DecisionTree, GbtModel, Model, Pipeline, TreeNode};
use flock_rng::rngs::StdRng;
use flock_rng::{Rng, SeedableRng};
use flock_sql::exec::ExecOptions;
use flock_sql::Value;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

const ROWS: usize = 4_096;
const WINDOW: i64 = 64;
const TREES: usize = 64;
const TREE_DEPTH: usize = 6;
const SESSION_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn short_mode() -> bool {
    std::env::var("FLOCK_SERVING_SHORT").is_ok_and(|v| v == "1")
}

/// A seeded ensemble of full binary trees over (amount, rate).
fn gbt(rng: &mut StdRng) -> Model {
    fn grow(rng: &mut StdRng, depth: usize, nodes: &mut Vec<TreeNode>) -> usize {
        let at = nodes.len();
        if depth == 0 {
            nodes.push(TreeNode::Leaf {
                value: rng.gen_range(-1.0..1.0),
            });
            return at;
        }
        nodes.push(TreeNode::Leaf { value: 0.0 }); // placeholder
        let feature = rng.gen_range(0usize..2);
        let threshold = if feature == 0 {
            rng.gen_range(1_000.0f64..50_000.0)
        } else {
            rng.gen_range(0.01f64..0.25)
        };
        let left = grow(rng, depth - 1, nodes);
        let right = grow(rng, depth - 1, nodes);
        nodes[at] = TreeNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        at
    }
    let trees = (0..TREES)
        .map(|_| {
            let mut nodes = Vec::new();
            grow(rng, TREE_DEPTH, &mut nodes);
            DecisionTree { nodes }
        })
        .collect();
    Model::Gbt(GbtModel {
        trees,
        learning_rate: 0.1,
        base_score: 0.2,
        sigmoid_output: true,
    })
}

/// PREDICT survives as a provider call (no inlining / auto strategy
/// selection), so `SET predict_strategy` picks the kernel under test.
fn serving_db() -> FlockDb {
    let db = FlockDb::with_config(XOptConfig {
        inline_models: false,
        predicate_specialization: false,
        operator_selection: false,
        ..XOptConfig::default()
    });
    db.database().set_exec_options(ExecOptions {
        // Admission control smaller than the widest session count, so the
        // 8-session run measures queueing, not just scheduling.
        max_concurrent_queries: 4,
        ..ExecOptions::serial()
    });
    db.execute("CREATE TABLE loans (id INT, amount DOUBLE, rate DOUBLE)")
        .unwrap();
    let mut rng = StdRng::seed_from_u64(97);
    for chunk in (0..ROWS).collect::<Vec<_>>().chunks(1000) {
        let rows: Vec<String> = chunk
            .iter()
            .map(|&i| {
                format!(
                    "({i}, {:.4}, {:.6})",
                    rng.gen_range(1_000.0f64..50_000.0),
                    rng.gen_range(0.01f64..0.25)
                )
            })
            .collect();
        db.execute(&format!("INSERT INTO loans VALUES {}", rows.join(", ")))
            .unwrap();
    }
    let mut s = db.session("admin");
    let pipeline = Pipeline::new(
        vec![
            ColumnPipeline::numeric("amount"),
            ColumnPipeline::numeric("rate"),
        ],
        gbt(&mut rng),
        "risk",
    );
    s.deploy_model("risk", &pipeline, Lineage::default()).unwrap();
    db
}

const PREPARED_SQL: &str =
    "SELECT SUM(PREDICT(risk, amount, rate)) FROM loans WHERE id >= ? AND id < ?";

/// Process-global statement counter: each serving statement, across every
/// session, mode, and run, draws a fresh index so its window (and hence
/// its SQL text in unprepared mode) differs from any recent statement's.
/// 997 is coprime with the window space, so starts cycle through all of
/// it before repeating — long after the 128-entry plan cache evicted
/// the earlier raw-token entry.
static STMT_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn next_window_start() -> i64 {
    let i = STMT_COUNTER.fetch_add(1, Ordering::Relaxed);
    ((i * 997) % (ROWS - WINDOW as usize)) as i64
}

#[derive(Clone, Copy)]
enum Mode {
    Unprepared,
    Prepared,
    PreparedBatched,
}

/// Run `stmts` windowed PREDICT statements on each of `sessions`
/// concurrent sessions; returns (scores/sec, p50 us, p99 us).
/// One measured point: (sessions, scores/sec, p50 µs, p99 µs).
type SessionPoint = (usize, f64, f64, f64);

fn serve(db: &FlockDb, mode: Mode, sessions: usize, stmts: usize) -> (f64, f64, f64) {
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(sessions * stmts));
    let t = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..sessions {
            let db = db.clone();
            let latencies = &latencies;
            scope.spawn(move || {
                let mut s = db.session("admin");
                if matches!(mode, Mode::PreparedBatched) {
                    s.execute("SET predict_strategy = 'batched'").unwrap();
                }
                let prepared = match mode {
                    Mode::Unprepared => None,
                    _ => Some(s.prepare(PREPARED_SQL).unwrap()),
                };
                let mut local = Vec::with_capacity(stmts);
                for _ in 0..stmts {
                    let a = next_window_start();
                    let b = a + WINDOW;
                    // Admission control is fail-fast; a serving client
                    // retries on rejection, and the latency it observes
                    // (recorded here) includes that queueing delay.
                    let t = Instant::now();
                    loop {
                        let r = match &prepared {
                            Some(p) => {
                                s.execute_prepared(p, &[Value::Int(a), Value::Int(b)])
                            }
                            None => s.execute(&format!(
                                "SELECT SUM(PREDICT(risk, amount, rate)) FROM loans \
                                 WHERE id >= {a} AND id < {b}"
                            )),
                        };
                        match r {
                            Ok(_) => break,
                            Err(flock_sql::SqlError::Admission(_)) => {
                                std::thread::sleep(std::time::Duration::from_micros(100));
                            }
                            Err(e) => panic!("serving statement failed: {e}"),
                        }
                    }
                    local.push(t.elapsed().as_micros() as u64);
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let elapsed = t.elapsed().as_secs_f64();
    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize] as f64;
    let scores_per_sec = (sessions * stmts) as f64 * WINDOW as f64 / elapsed;
    (scores_per_sec, pct(0.50), pct(0.99))
}

/// Full-table scoring throughput (rows/sec) under one strategy.
fn kernel_rows_per_sec(db: &FlockDb, strategy: &str, repeats: usize) -> f64 {
    let mut s = db.session("admin");
    s.execute(&format!("SET predict_strategy = '{strategy}'"))
        .unwrap();
    let sql = "SELECT SUM(PREDICT(risk, amount, rate)) FROM loans";
    s.query(sql).unwrap(); // warm compile + cache
    let t = Instant::now();
    for _ in 0..repeats {
        s.query(sql).unwrap();
    }
    (repeats * ROWS) as f64 / t.elapsed().as_secs_f64()
}

/// Every strategy must produce bit-identical scores on the full table.
fn bit_exact(db: &FlockDb) -> bool {
    let scores = |strategy: &str| -> Vec<u64> {
        let mut s = db.session("admin");
        s.execute(&format!("SET predict_strategy = '{strategy}'"))
            .unwrap();
        let b = s
            .query("SELECT id, PREDICT(risk, amount, rate) FROM loans ORDER BY id")
            .unwrap();
        (0..b.num_rows())
            .map(|r| {
                let Value::Float(v) = b.column(1).get(r) else {
                    panic!("score must be a float")
                };
                v.to_bits()
            })
            .collect()
    };
    let baseline = scores("vectorized");
    ["row", "batched", "parallel"]
        .iter()
        .all(|s| scores(s) == baseline)
}

fn main() {
    let short = short_mode();
    let stmts = if short { 60 } else { 300 };
    let kernel_repeats = if short { 3 } else { 10 };
    let gate_speedup = if short { 1.5 } else { 2.0 };

    eprintln!("loading {ROWS} rows + {TREES}-tree GBT...");
    let db = serving_db();

    eprintln!("checking strategy bit-exactness...");
    let exact = bit_exact(&db);

    eprintln!("kernel ablation (full-table scoring)...");
    let scalar_rps = kernel_rows_per_sec(&db, "vectorized", kernel_repeats);
    let batched_rps = kernel_rows_per_sec(&db, "batched", kernel_repeats);

    let modes: [(&str, Mode); 3] = [
        ("unprepared", Mode::Unprepared),
        ("prepared", Mode::Prepared),
        ("prepared_batched", Mode::PreparedBatched),
    ];
    let mut results: Vec<(&str, Vec<SessionPoint>)> = Vec::new();
    for (name, mode) in modes {
        eprintln!("serving mode: {name}...");
        let per_count = SESSION_COUNTS
            .iter()
            .map(|&n| {
                let (sps, p50, p99) = serve(&db, mode, n, stmts);
                (n, sps, p50, p99)
            })
            .collect();
        results.push((name, per_count));
    }

    let at4 = |name: &str| -> f64 {
        results
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, rows)| rows.iter().find(|(n, ..)| *n == 4))
            .map(|(_, sps, ..)| *sps)
            .unwrap()
    };
    let speedup = at4("prepared_batched") / at4("unprepared");

    println!("serving path ({ROWS} rows, {WINDOW}-row windows, {stmts} stmts/session):");
    for (name, rows) in &results {
        println!("  {name}:");
        for (n, sps, p50, p99) in rows {
            println!(
                "    {n} session(s): {sps:>12.0} scores/s  p50 {p50:>7.0} us  p99 {p99:>7.0} us"
            );
        }
    }
    println!("kernel ablation (full table): scalar {scalar_rps:.0} rows/s, batched {batched_rps:.0} rows/s");
    println!("bit-exact across row/vectorized/batched/parallel: {exact}");
    println!("prepared+batched vs unprepared at 4 sessions: {speedup:.2}x (gate {gate_speedup}x)");

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"serving\",");
    let _ = writeln!(out, "  \"rows\": {ROWS},");
    let _ = writeln!(out, "  \"window\": {WINDOW},");
    let _ = writeln!(out, "  \"trees\": {TREES},");
    let _ = writeln!(out, "  \"stmts_per_session\": {stmts},");
    let _ = writeln!(out, "  \"short_mode\": {short},");
    let _ = writeln!(out, "  \"bit_exact\": {exact},");
    let _ = writeln!(out, "  \"kernel_scalar_rows_per_sec\": {scalar_rps:.1},");
    let _ = writeln!(out, "  \"kernel_batched_rows_per_sec\": {batched_rps:.1},");
    let _ = writeln!(out, "  \"speedup_at_4_sessions\": {speedup:.3},");
    let _ = writeln!(out, "  \"gate_speedup\": {gate_speedup},");
    let _ = writeln!(out, "  \"modes\": {{");
    for (mi, (name, rows)) in results.iter().enumerate() {
        let _ = writeln!(out, "    \"{name}\": {{");
        for (ri, (n, sps, p50, p99)) in rows.iter().enumerate() {
            let comma = if ri + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "      \"{n}\": {{\"scores_per_sec\": {sps:.1}, \"p50_us\": {p50:.0}, \"p99_us\": {p99:.0}}}{comma}"
            );
        }
        let comma = if mi + 1 < results.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  }\n}\n");
    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/BENCH_serving.json", &out).unwrap();
    eprintln!("wrote results/BENCH_serving.json");

    if !exact {
        eprintln!("FAIL: strategy ablation is not bit-exact");
        std::process::exit(1);
    }
    if speedup < gate_speedup {
        eprintln!("FAIL: prepared+batched speedup {speedup:.2}x < {gate_speedup}x gate");
        std::process::exit(1);
    }
    println!("serving gates passed");
}
