//! Regenerates Figure 2: notebook coverage (%) for top-K packages.

use flock_bench::{fig2, render_table};

fn main() {
    let notebooks = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    println!("Figure 2 — notebook coverage for top-K packages");
    println!("(synthetic corpora of {notebooks} notebooks each; paper used >4M crawled)\n");

    let r = fig2::run(notebooks);
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.k.to_string(),
                format!("{:.1}%", p.pct_2017),
                format!("{:.1}%", p.pct_2019),
            ]
        })
        .collect();
    println!("{}", render_table(&["top-K", "2017", "2019"], &rows));
    println!(
        "\nTotal: {} -> {} packages (3x more packages)",
        r.packages_2017, r.packages_2019
    );
    println!(
        "Top-10: {:+.1} points coverage (paper: ~5% more coverage)",
        r.top10_shift()
    );
}
