//! Quantifies the cost of the always-on operator metrics layer:
//! every physical operator pays two `Instant::now()` calls plus a handful
//! of relaxed atomic adds per query. This bin measures those primitives
//! directly, scales them by the plan's node count, and compares against
//! the wall-clock time of a representative aggregate query over 1M rows.
//! Writes `results/BENCH_metrics_overhead.json`.

use flock_bench::fig4::time_best_ms;
use flock_corpus::tabular::TabularDataset;
use flock_sql::exec::ExecOptions;
use flock_sql::Database;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const ROWS: usize = 1_000_000;
const REPEATS: usize = 5;
const QUERY: &str = "SELECT city, COUNT(*), AVG(income), SUM(debt) FROM customers \
                     WHERE debt > 20.0 GROUP BY city ORDER BY city";

/// Mean cost in nanoseconds of one operator's per-query bookkeeping:
/// start/stop timestamps plus the counter updates taken on the hot path.
fn per_operator_overhead_ns() -> f64 {
    const ITERS: u64 = 1_000_000;
    let counter = AtomicU64::new(0);
    let t = Instant::now();
    for _ in 0..ITERS {
        let started = Instant::now();
        // rows_in, rows_out, batches, wall_ns — the adds execute_metered makes
        counter.fetch_add(1, Ordering::Relaxed);
        counter.fetch_add(1, Ordering::Relaxed);
        counter.fetch_add(1, Ordering::Relaxed);
        counter.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
    std::hint::black_box(counter.load(Ordering::Relaxed));
    t.elapsed().as_nanos() as f64 / ITERS as f64
}

fn main() {
    eprintln!("generating {ROWS} rows...");
    let data = TabularDataset::generate(ROWS, 42);
    let db = Database::new();
    data.load_into(&db).unwrap();
    db.set_exec_options(ExecOptions::serial());

    let query_ms = time_best_ms(REPEATS, || {
        db.query(QUERY).unwrap();
    });
    let plan_nodes = db
        .last_query_metrics()
        .map(|snap| snap.walk().len())
        .unwrap_or(0);

    let per_op_ns = per_operator_overhead_ns();
    let per_query_ns = per_op_ns * plan_nodes as f64;
    let overhead_pct = per_query_ns / (query_ms * 1e6) * 100.0;

    println!("metrics-layer overhead for: {QUERY}");
    println!("  rows:                  {ROWS}");
    println!("  query best-of-{REPEATS}:       {query_ms:.3} ms");
    println!("  plan operators:        {plan_nodes}");
    println!("  per-operator cost:     {per_op_ns:.1} ns (2x Instant + 4x relaxed fetch_add)");
    println!("  per-query cost:        {per_query_ns:.1} ns");
    println!("  overhead:              {overhead_pct:.5} % of query time");
    if overhead_pct < 5.0 {
        println!("  within the 5% instrumentation budget");
    } else {
        println!("  EXCEEDS the 5% instrumentation budget");
    }

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"metrics_overhead\",");
    let _ = writeln!(out, "  \"rows\": {ROWS},");
    let _ = writeln!(out, "  \"query_ms\": {query_ms:.4},");
    let _ = writeln!(out, "  \"plan_nodes\": {plan_nodes},");
    let _ = writeln!(out, "  \"per_operator_ns\": {per_op_ns:.2},");
    let _ = writeln!(out, "  \"per_query_ns\": {per_query_ns:.2},");
    let _ = writeln!(out, "  \"overhead_pct\": {overhead_pct:.6}");
    out.push_str("}\n");
    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/BENCH_metrics_overhead.json", &out).unwrap();
    eprintln!("wrote results/BENCH_metrics_overhead.json");
}
