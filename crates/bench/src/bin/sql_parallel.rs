//! Thread-scaling baseline for the morsel-driven relational executor:
//! a 1M-row grouped aggregate and a 1M-row hash join at 1/2/4/8 threads,
//! written to `results/BENCH_sql_parallel.json`.
//!
//! On multi-core hosts each configuration is measured wall-clock with
//! `ExecOptions { threads, .. }`. On single-core hosts real fan-out cannot
//! show up in wall-clock time, so — following the fig4 convention — the
//! parallel times are *modeled* as the critical path: the table is split
//! into `t` contiguous chunks, each chunk's query is actually executed and
//! timed, and the modeled time is the slowest chunk plus the measured
//! non-parallelizable overhead (plan + merge, i.e. serial minus the sum of
//! chunk times, clamped at zero). The JSON records which mode produced the
//! numbers.

use flock_bench::fig4::host_threads;
use flock_corpus::tabular::TabularDataset;
use flock_sql::exec::ExecOptions;
use flock_sql::Database;
use std::fmt::Write as _;
use std::time::Instant;

const ROWS: usize = 1_000_000;
const THREADS: [usize; 4] = [1, 2, 4, 8];
const REPEATS: usize = 3;

const AGG_QUERY: &str = "SELECT city, COUNT(*) AS n, AVG(income) AS avg_inc, SUM(debt) \
                         FROM customers WHERE debt > 20.0 GROUP BY city ORDER BY city";
const JOIN_QUERY: &str = "SELECT ct.region, COUNT(*), AVG(c.income) FROM customers c \
                          JOIN cities ct ON c.city = ct.city \
                          GROUP BY ct.region ORDER BY ct.region";

fn load_cities(db: &Database) {
    db.execute("CREATE TABLE cities (city VARCHAR, region VARCHAR)")
        .unwrap();
    db.execute(
        "INSERT INTO cities VALUES ('nyc','east'),('sf','west'),('chi','mid'),\
         ('aus','south'),('sea','west'),('mia','south')",
    )
    .unwrap();
}

fn time_best_ms(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Contiguous row range `[lo, hi)` of the dataset as its own dataset.
fn slice(d: &TabularDataset, lo: usize, hi: usize) -> TabularDataset {
    TabularDataset {
        age: d.age[lo..hi].to_vec(),
        income: d.income[lo..hi].to_vec(),
        debt: d.debt[lo..hi].to_vec(),
        tenure: d.tenure[lo..hi].to_vec(),
        noise1: d.noise1[lo..hi].to_vec(),
        noise2: d.noise2[lo..hi].to_vec(),
        city: d.city[lo..hi].to_vec(),
        comment: d.comment[lo..hi].to_vec(),
        label: d.label[lo..hi].to_vec(),
    }
}

/// Modeled t-way time on a single-core host: slowest chunk (critical path)
/// plus the non-parallelizable remainder of the serial run.
fn modeled_ms(data: &TabularDataset, query: &str, threads: usize, serial_ms: f64) -> f64 {
    let chunk_rows = data.len().div_ceil(threads).max(1);
    let mut chunk_times = Vec::new();
    let mut lo = 0;
    while lo < data.len() {
        let hi = (lo + chunk_rows).min(data.len());
        let db = Database::new();
        slice(data, lo, hi).load_into(&db).unwrap();
        load_cities(&db);
        db.set_exec_options(ExecOptions::serial());
        chunk_times.push(time_best_ms(REPEATS, || {
            db.query(query).unwrap();
        }));
        lo = hi;
    }
    let critical = chunk_times.iter().copied().fold(0.0f64, f64::max);
    let overhead = (serial_ms - chunk_times.iter().sum::<f64>()).max(0.0);
    critical + overhead
}

fn main() {
    let host = host_threads();
    let mode = if host > 1 { "measured" } else { "modeled-critical-path" };
    eprintln!("host threads: {host} -> {mode}; generating {ROWS} rows...");
    let data = TabularDataset::generate(ROWS, 42);
    let db = Database::new();
    data.load_into(&db).unwrap();
    load_cities(&db);

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"sql_parallel\",");
    let _ = writeln!(out, "  \"rows\": {ROWS},");
    let _ = writeln!(out, "  \"host_threads\": {host},");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"queries\": {{");

    for (qi, (name, query)) in [("aggregate", AGG_QUERY), ("join", JOIN_QUERY)]
        .iter()
        .enumerate()
    {
        db.set_exec_options(ExecOptions::serial());
        let serial_ms = time_best_ms(REPEATS, || {
            db.query(query).unwrap();
        });
        let _ = writeln!(out, "    \"{name}\": {{");
        let _ = writeln!(out, "      \"sql\": \"{}\",", query.replace('"', "\\\""));
        let _ = writeln!(out, "      \"threads\": {{");
        for (ti, &t) in THREADS.iter().enumerate() {
            let ms = if t == 1 {
                serial_ms
            } else if host > 1 {
                db.set_exec_options(ExecOptions {
                    threads: t,
                    parallel_row_threshold: 1,
                    ..ExecOptions::default()
                });
                time_best_ms(REPEATS, || {
                    db.query(query).unwrap();
                })
            } else {
                modeled_ms(&data, query, t, serial_ms)
            };
            let speedup = serial_ms / ms;
            eprintln!("{name} t={t}: {ms:.1} ms ({speedup:.2}x)");
            let comma = if ti + 1 < THREADS.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        \"{t}\": {{ \"ms\": {ms:.3}, \"speedup\": {speedup:.3} }}{comma}"
            );
        }
        let _ = writeln!(out, "      }}");
        let _ = writeln!(out, "    }}{}", if qi == 0 { "," } else { "" });
    }
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");

    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/BENCH_sql_parallel.json", &out).unwrap();
    eprintln!("wrote results/BENCH_sql_parallel.json");
    print!("{out}");
}
