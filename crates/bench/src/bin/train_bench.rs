//! In-database training bench: run governed `CREATE MODEL ... AS SELECT`
//! statements over a generated customer table, measure training
//! throughput per model kind, and verify the governance properties the
//! statement promises. Writes `results/BENCH_training.json`.
//!
//! Gates (process exits non-zero on violation):
//!
//! * **holdout quality** — the recorded `eval_auc` of the gbt and
//!   logistic models must clear 0.80 on this separable dataset, and the
//!   metrics must really come from a held-out split (`train_rows` +
//!   `eval_rows` == kept rows, `eval_rows` > 0);
//! * **seeded determinism** — training the same statement twice in two
//!   fresh databases yields byte-identical model payloads, and a
//!   different seed yields a different payload;
//! * **lineage pins** — every trained model pins the committed version
//!   of the scanned table and records the raw training statement;
//! * **RETRAIN** — after more data lands, `RETRAIN MODEL` produces
//!   version 2 with a refreshed pin and an audit row.
//!
//! `FLOCK_TRAIN_SHORT=1` shrinks the row count for CI smoke.

use flock_core::FlockDb;
use flock_corpus::tabular::TabularDataset;
use std::fmt::Write as _;
use std::time::Instant;

const TRAIN_SQL: &str = "CREATE MODEL churn_{kind} KIND {kind} WITH (seed = 7{extra}) \
     TARGET label OUTPUT p_churn \
     AS SELECT age, income, debt, tenure, city, label FROM customers";

fn train_sql(kind: &str, extra: &str) -> String {
    TRAIN_SQL.replace("{kind}", kind).replace("{extra}", extra)
}

fn fresh_db(rows: usize) -> FlockDb {
    let db = FlockDb::new();
    TabularDataset::generate(rows, 11)
        .load_into(db.database())
        .expect("load corpus");
    db
}

fn main() {
    let short = std::env::var("FLOCK_TRAIN_SHORT").is_ok_and(|v| v == "1");
    let rows: usize = if short { 2_000 } else { 10_000 };

    let db = fresh_db(rows);

    // ------------------------------------------------ per-kind training
    let kinds: [(&str, &str); 3] = [
        ("logistic", ""),
        ("tree", ""),
        ("gbt", ", trees = 10, max_depth = 4"),
    ];
    let mut timings = Vec::new();
    for (kind, extra) in kinds {
        let sql = train_sql(kind, extra);
        let start = Instant::now();
        db.execute(&sql).expect("CREATE MODEL");
        let elapsed = start.elapsed().as_secs_f64();
        let md = db
            .model_metadata(&format!("churn_{kind}"))
            .expect("metadata");
        let m = &md.lineage.metrics;
        let train_rows = m["train_rows"];
        let eval_rows = m["eval_rows"];
        let auc = m.get("eval_auc").copied();
        let acc = m.get("eval_accuracy").copied();
        assert!(eval_rows > 0.0, "{kind}: no held-out rows");
        assert_eq!(
            (train_rows + eval_rows) as usize,
            rows,
            "{kind}: split does not cover the table"
        );
        assert_eq!(
            md.lineage.training_tables,
            vec![("customers".to_string(), 2)],
            "{kind}: lineage must pin the scanned table version"
        );
        assert!(
            md.lineage.training_query.as_deref().unwrap_or("").starts_with("CREATE MODEL"),
            "{kind}: raw statement must be recorded for RETRAIN"
        );
        eprintln!(
            "{kind:>8}: {rows} rows in {elapsed:.2} s ({:.0} rows/s), \
             eval_auc {:?}, eval_accuracy {:?}",
            rows as f64 / elapsed,
            auc,
            acc
        );
        timings.push((kind, elapsed, auc, acc, train_rows, eval_rows));
    }

    // ------------------------------------------------ holdout-quality gate
    for (kind, _, auc, _, _, _) in &timings {
        if matches!(*kind, "logistic" | "gbt") {
            let auc = auc.expect("classification records auc");
            assert!(auc >= 0.80, "{kind}: eval_auc {auc} below the 0.80 floor");
        }
    }

    // ------------------------------------------------ determinism gate
    let payload = |seed: u64| {
        let db = fresh_db(if short { 500 } else { 2_000 });
        db.execute(&format!(
            "CREATE MODEL det KIND forest WITH (seed = {seed}, trees = 5) \
             TARGET label AS SELECT age, income, debt, city, label FROM customers"
        ))
        .expect("CREATE MODEL det");
        db.session("admin").export_model("det").expect("export").payload
    };
    let deterministic = payload(3) == payload(3) && payload(3) != payload(4);
    assert!(deterministic, "seeded training must be bit-deterministic");
    eprintln!("determinism: same seed byte-identical, different seed diverges");

    // ------------------------------------------------ retrain gate
    db.execute(
        "INSERT INTO customers VALUES \
         (30.0, 200.0, 5.0, 10.0, 0.0, 0.0, 'nyc', 'renewal resolved', 1), \
         (55.0, 15.0, 110.0, 1.0, 0.0, 0.0, 'mia', 'billing issue', 0)",
    )
    .expect("more data");
    let start = Instant::now();
    db.execute("RETRAIN MODEL churn_gbt").expect("RETRAIN");
    let retrain_s = start.elapsed().as_secs_f64();
    let md = db.model_metadata("churn_gbt").expect("metadata");
    assert_eq!(
        db.registry().get("churn_gbt").map(|m| m.version),
        Some(2),
        "retrain must deploy version 2"
    );
    assert_eq!(
        md.lineage.training_tables,
        vec![("customers".to_string(), 3)],
        "retrain must refresh the lineage pin"
    );
    let audit = db.database().audit_log();
    assert!(
        audit
            .iter()
            .any(|r| r.action == "MODEL RETRAIN" && r.object == "churn_gbt"),
        "retrain must leave an audit row"
    );
    eprintln!("retrain: v2 in {retrain_s:.2} s with refreshed pin + audit row");

    // ------------------------------------------------ results JSON
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"train_bench\",");
    let _ = writeln!(out, "  \"short\": {short},");
    let _ = writeln!(out, "  \"rows\": {rows},");
    for (kind, elapsed, auc, acc, train_rows, eval_rows) in &timings {
        let _ = writeln!(out, "  \"{kind}_train_s\": {elapsed:.3},");
        let _ = writeln!(
            out,
            "  \"{kind}_rows_per_sec\": {:.0},",
            rows as f64 / elapsed
        );
        if let Some(auc) = auc {
            let _ = writeln!(out, "  \"{kind}_eval_auc\": {auc:.4},");
        }
        if let Some(acc) = acc {
            let _ = writeln!(out, "  \"{kind}_eval_accuracy\": {acc:.4},");
        }
        let _ = writeln!(out, "  \"{kind}_train_rows\": {train_rows},");
        let _ = writeln!(out, "  \"{kind}_eval_rows\": {eval_rows},");
    }
    let _ = writeln!(out, "  \"seeded_determinism\": {deterministic},");
    let _ = writeln!(out, "  \"retrain_s\": {retrain_s:.3},");
    let _ = writeln!(out, "  \"retrain_version\": 2");
    out.push_str("}\n");

    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/BENCH_training.json", &out).unwrap();
    eprintln!("wrote results/BENCH_training.json");
    print!("{out}");
}
