//! Bigger-than-memory scan bench: load a table whose working set is
//! several times the configured `table_memory_budget`, let commit-time
//! offload spill it into compressed columnar parts, and compare a cold
//! full-table aggregate against a zone-map-pruned selective scan.
//! Writes `results/BENCH_parts.json`.
//!
//! Gates (process exits non-zero on violation):
//!
//! * the selective scan must beat the full scan by >= 2x — zone maps must
//!   actually skip parts, not just decorate EXPLAIN;
//! * the streaming scan's peak decoded footprint
//!   (`part_scan_peak_bytes`) must stay within the budget — the whole
//!   point of spilling is that scans never need the table resident;
//! * the resident tail itself must stay within the budget after load.
//!
//! After the timed runs the budget is raised 8x and the size-tiered
//! merger compacts level-0 parts (runs now fit the raised budget/2 merge
//! cap); the selective scan is re-timed to show pruning survives
//! compaction, with the peak gated against the raised budget.
//!
//! `FLOCK_PARTS_SHORT=1` shrinks the working set for CI smoke.

use flock_sql::{Database, DurabilityOptions, Value};
use std::fmt::Write as _;
use std::time::Instant;

const REPEATS: usize = 3;

/// Deterministic LCG so the workload needs no RNG crate.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

fn metric(db: &Database, name: &str) -> i64 {
    let b = db
        .query(&format!("SELECT value FROM flock_metrics WHERE metric = '{name}'"))
        .expect("flock_metrics");
    match b.column(0).get(0) {
        Value::Int(v) => v,
        other => panic!("metric {name}: {other:?}"),
    }
}

/// Best-of-N wall time for one query, checking the result is stable.
fn time_query(db: &Database, sql: &str) -> (f64, Vec<Value>) {
    let mut best = f64::INFINITY;
    let mut result = Vec::new();
    for _ in 0..REPEATS {
        let start = Instant::now();
        let b = db.query(sql).expect("query");
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        let row: Vec<Value> = (0..b.num_columns()).map(|c| b.column(c).get(0)).collect();
        if result.is_empty() {
            result = row;
        } else {
            assert_eq!(result, row, "unstable result for {sql}");
        }
    }
    (best, result)
}

fn main() {
    let short = std::env::var("FLOCK_PARTS_SHORT").is_ok_and(|v| v == "1");
    // 3 columns x 8 bytes/cell: the working set is ~3x the budget, so the
    // table cannot stay resident.
    let budget: u64 = if short { 2 << 20 } else { 16 << 20 };
    // Row counts sit just past a flush point, so nearly the whole table
    // lives in parts and the resident tail stays a sliver — the selective
    // scan's cost is then dominated by the parts it cannot prune.
    let total_rows: i64 = if short { 368_640 } else { 2_120_000 };
    let step: i64 = 8192;

    let scratch = std::env::temp_dir().join(format!("flock-parts-bench-{}", std::process::id()));
    let db = Database::open(&scratch, DurabilityOptions::buffered()).expect("open");
    db.stop_background_merge(); // timed sections stay deterministic
    db.set_table_memory_budget(budget);
    db.execute("CREATE TABLE t (k INT, v DOUBLE, cat VARCHAR)").expect("create");

    eprintln!(
        "loading {total_rows} rows (~{} MB resident model) under a {} MB budget",
        total_rows * 24 / (1 << 20),
        budget >> 20
    );
    let mut rng = Lcg(42);
    let load_start = Instant::now();
    let mut k = 0i64;
    while k < total_rows {
        let n = step.min(total_rows - k);
        let rows: Vec<String> = (k..k + n)
            .map(|k| {
                let v = (rng.next() % 1_000_000) as f64 / 977.0;
                format!("({k}, {v:.4}, 'c{}')", rng.next() % 8)
            })
            .collect();
        db.execute(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
            .expect("insert");
        k += n;
    }
    let load_ms = load_start.elapsed().as_secs_f64() * 1e3;
    db.checkpoint_now().expect("checkpoint");

    let parts_total = metric(&db, "parts_total");
    let on_disk = metric(&db, "part_bytes_on_disk");
    let uncompressed = metric(&db, "part_bytes_uncompressed");
    let compression = uncompressed as f64 / on_disk.max(1) as f64;
    assert!(parts_total > 4, "load must have spilled into parts, got {parts_total}");
    eprintln!(
        "loaded in {load_ms:.0} ms: {parts_total} parts, {:.1} MB on disk \
         ({compression:.2}x compression)",
        on_disk as f64 / (1 << 20) as f64
    );

    // Cold-ish full scan (every part decoded, streamed chunk by chunk)
    // vs a selective range: k is monotone, so a 1/16th key range lives in
    // a couple of parts and zone maps prune the rest at plan time.
    let full_sql = "SELECT COUNT(*), SUM(v) FROM t";
    let lo = total_rows / 2;
    let hi = lo + total_rows / 16;
    let sel_sql = format!("SELECT COUNT(*), SUM(v) FROM t WHERE k BETWEEN {lo} AND {hi}");

    let (full_ms, full_row) = time_query(&db, full_sql);
    let pruned_before = metric(&db, "zonemap_parts_pruned");
    let scanned_before = metric(&db, "zonemap_parts_scanned");
    let (sel_ms, _) = time_query(&db, &sel_sql);
    // Pruning happens when the scan is (re)planned — the plan cache may
    // serve the repeats from one planning — so these are raw deltas over
    // all REPEATS runs, however many plannings that took.
    let pruned = metric(&db, "zonemap_parts_pruned") - pruned_before;
    let scanned = metric(&db, "zonemap_parts_scanned") - scanned_before;
    let speedup = full_ms / sel_ms;
    let peak = metric(&db, "part_scan_peak_bytes");
    let tail_resident = db
        .catalog()
        .table("t")
        .map(|t| (t.current().data.num_rows() * 3 * 8) as u64)
        .expect("table t");
    assert_eq!(full_row[0], Value::Int(total_rows), "full scan lost rows");
    eprintln!("full scan      {full_ms:9.2} ms");
    eprintln!(
        "selective scan {sel_ms:9.2} ms ({speedup:.1}x, pruned {pruned}/{} parts)",
        pruned + scanned
    );

    // Raise the budget 8x: runs of level-0 parts now fit the merge cap,
    // so compaction fires; pruning must keep working on the merged
    // layout and the scan peak must respect the raised envelope.
    db.set_table_memory_budget(budget * 8);
    let merges = db.merge_now();
    // checkpoint re-syncs the part inventory counters to the live catalog
    // (merged-away parts drop out) and lets pruning reclaim their files
    db.checkpoint_now().expect("checkpoint");
    let parts_after_merge = metric(&db, "parts_total");
    let (sel_merged_ms, _) = time_query(&db, &sel_sql);
    let peak_after_merge = metric(&db, "part_scan_peak_bytes");
    eprintln!(
        "after {merges} merges ({parts_total} -> {parts_after_merge} parts): \
         selective scan {sel_merged_ms:9.2} ms"
    );

    let _ = std::fs::remove_dir_all(&scratch);

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"parts_scan\",");
    let _ = writeln!(out, "  \"short\": {short},");
    let _ = writeln!(out, "  \"rows\": {total_rows},");
    let _ = writeln!(out, "  \"budget_bytes\": {budget},");
    let _ = writeln!(out, "  \"load_ms\": {load_ms:.3},");
    let _ = writeln!(out, "  \"parts_total\": {parts_total},");
    let _ = writeln!(out, "  \"part_bytes_on_disk\": {on_disk},");
    let _ = writeln!(out, "  \"part_bytes_uncompressed\": {uncompressed},");
    let _ = writeln!(out, "  \"compression_ratio\": {compression:.3},");
    let _ = writeln!(out, "  \"full_scan_ms\": {full_ms:.3},");
    let _ = writeln!(out, "  \"selective_scan_ms\": {sel_ms:.3},");
    let _ = writeln!(out, "  \"pruned_speedup\": {speedup:.2},");
    let _ = writeln!(out, "  \"zonemap_parts_pruned\": {pruned},");
    let _ = writeln!(out, "  \"zonemap_parts_scanned\": {scanned},");
    let _ = writeln!(out, "  \"part_scan_peak_bytes\": {peak},");
    let _ = writeln!(out, "  \"tail_resident_bytes\": {tail_resident},");
    let _ = writeln!(out, "  \"merges\": {merges},");
    let _ = writeln!(out, "  \"parts_after_merge\": {parts_after_merge},");
    let _ = writeln!(out, "  \"selective_scan_after_merge_ms\": {sel_merged_ms:.3},");
    let _ = writeln!(out, "  \"part_scan_peak_after_merge_bytes\": {peak_after_merge}");
    out.push_str("}\n");

    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/BENCH_parts.json", &out).unwrap();
    eprintln!("wrote results/BENCH_parts.json");
    print!("{out}");

    assert!(pruned > 0, "the selective scan pruned nothing");
    assert!(
        speedup >= 2.0,
        "zone-map pruning gained only {speedup:.2}x on a selective scan (gate: >= 2x)"
    );
    assert!(
        peak as u64 <= budget,
        "streaming scan peaked at {peak} decoded bytes, over the {budget}-byte budget"
    );
    assert!(
        tail_resident <= budget,
        "resident tail is {tail_resident} bytes, over the {budget}-byte budget"
    );
    assert!(merges > 0, "raising the budget 8x must enable compaction");
    assert!(
        peak_after_merge as u64 <= budget * 8,
        "post-merge scan peaked at {peak_after_merge} bytes, over the raised budget"
    );
}
