//! Quantifies the cost of session-safe concurrency:
//!
//! 1. **Cancellation-check overhead** — the same 1M-row aggregate timed
//!    with the cancellation machinery idle (no flag, no deadline: every
//!    check is a branch on `None`) versus armed (`statement_timeout` set,
//!    so every operator entry / morsel / row-stride check also reads the
//!    clock). The budget is <1%; the process exits non-zero above it.
//! 2. **Multi-session throughput** — queries/second with 1, 2, 4, and 8
//!    sessions hammering one `Database` concurrently, showing the
//!    admission/metrics/log plumbing doesn't serialize readers.
//!
//! Writes `results/BENCH_concurrency.json`.

use flock_corpus::tabular::TabularDataset;
use flock_sql::exec::ExecOptions;
use flock_sql::Database;
use std::fmt::Write as _;
use std::time::Instant;

const ROWS: usize = 1_000_000;
const REPEATS: usize = 61;
const QUERY: &str = "SELECT city, COUNT(*), SUM(income), AVG(debt) FROM customers \
                     WHERE income > 30.0 GROUP BY city ORDER BY city";
const BUDGET_PCT: f64 = 1.0;

/// Queries/second with `sessions` threads running `per_session` queries
/// each against one shared database.
fn throughput(db: &Database, sessions: usize, per_session: usize) -> f64 {
    let t = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..sessions {
            let db = db.clone();
            scope.spawn(move || {
                let mut s = db.session("admin");
                for _ in 0..per_session {
                    s.query(QUERY).unwrap();
                }
            });
        }
    });
    (sessions * per_session) as f64 / t.elapsed().as_secs_f64()
}

fn main() {
    eprintln!("generating {ROWS} rows...");
    let data = TabularDataset::generate(ROWS, 42);
    let db = Database::new();
    data.load_into(&db).unwrap();

    // -- cancellation-check overhead (serial, so nothing else varies) ----
    // Idle and armed runs are interleaved within each round rather than
    // measured in two back-to-back blocks: on a shared/single-core host,
    // frequency and cache drift between blocks would otherwise dwarf the
    // few hundred clock reads the armed path actually adds.
    let idle_opts = ExecOptions::serial();
    let armed_opts = ExecOptions {
        // A deadline far in the future: armed (every check reads the
        // clock) but it never fires.
        statement_timeout_ms: 3_600_000,
        ..ExecOptions::serial()
    };
    let time_once = |opts: &ExecOptions| {
        db.set_exec_options(opts.clone());
        let t = Instant::now();
        db.query(QUERY).unwrap();
        t.elapsed().as_secs_f64() * 1e3
    };
    // Warm both paths before keeping any numbers.
    time_once(&idle_opts);
    time_once(&armed_opts);
    // The armed path adds on the order of a thousand clock reads to a
    // ~quarter-second query (stride-4096 checks plus operator entries):
    // ~2,000 checks x ~35ns = well under 0.1%, far below scheduler and
    // frequency noise on a shared host. The estimator is built for that
    // regime: adjacent idle/armed pairs (alternating within-round order
    // so neither systematically runs on a warmer cache), the MEDIAN of
    // the per-round differences as the point estimate, and the median
    // absolute deviation of those differences as the measured noise
    // floor. Pairing cancels slow frequency drift; the median discards
    // rounds the scheduler ruined; and the gate below accepts a point
    // estimate that is over budget but within the noise floor —
    // i.e. statistically indistinguishable from zero — while a real
    // regression (a per-row check, say) clears both and still fails.
    let (mut idle_ms, mut armed_ms) = (f64::MAX, f64::MAX);
    let mut diffs = Vec::with_capacity(REPEATS);
    for round in 0..REPEATS {
        let (i, a) = if round.is_multiple_of(2) {
            let i = time_once(&idle_opts);
            (i, time_once(&armed_opts))
        } else {
            let a = time_once(&armed_opts);
            (time_once(&idle_opts), a)
        };
        idle_ms = idle_ms.min(i);
        armed_ms = armed_ms.min(a);
        diffs.push(a - i);
    }
    diffs.sort_by(|x, y| x.total_cmp(y));
    let median_diff = diffs[diffs.len() / 2];
    let mut devs: Vec<f64> = diffs.iter().map(|d| (d - median_diff).abs()).collect();
    devs.sort_by(|x, y| x.total_cmp(y));
    let noise_floor = devs[devs.len() / 2];
    let overhead_pct = (median_diff / idle_ms * 100.0).max(0.0);
    let within_noise = median_diff <= noise_floor;

    // -- multi-session throughput ---------------------------------------
    db.set_exec_options(ExecOptions::serial());
    let session_counts = [1usize, 2, 4, 8];
    let qps: Vec<(usize, f64)> = session_counts
        .iter()
        .map(|&n| (n, throughput(&db, n, 4)))
        .collect();

    println!("cancellation-check overhead for: {QUERY}");
    println!("  rows:               {ROWS}");
    println!("  idle best-of-{REPEATS}:     {idle_ms:.3} ms");
    println!("  armed best-of-{REPEATS}:    {armed_ms:.3} ms");
    println!("  median paired diff: {median_diff:.3} ms (noise floor {noise_floor:.3} ms)");
    println!("  overhead:           {overhead_pct:.4} % (budget {BUDGET_PCT}%)");
    println!("throughput (queries/s):");
    for (n, q) in &qps {
        println!("  {n} session(s):       {q:.1}");
    }

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"concurrency_overhead\",");
    let _ = writeln!(out, "  \"rows\": {ROWS},");
    let _ = writeln!(out, "  \"idle_ms\": {idle_ms:.4},");
    let _ = writeln!(out, "  \"armed_ms\": {armed_ms:.4},");
    let _ = writeln!(out, "  \"median_paired_diff_ms\": {median_diff:.4},");
    let _ = writeln!(out, "  \"noise_floor_ms\": {noise_floor:.4},");
    let _ = writeln!(out, "  \"cancellation_overhead_pct\": {overhead_pct:.4},");
    let _ = writeln!(out, "  \"budget_pct\": {BUDGET_PCT},");
    let _ = writeln!(out, "  \"throughput_qps\": {{");
    for (i, (n, q)) in qps.iter().enumerate() {
        let comma = if i + 1 < qps.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{n}\": {q:.2}{comma}");
    }
    out.push_str("  }\n}\n");
    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/BENCH_concurrency.json", &out).unwrap();
    eprintln!("wrote results/BENCH_concurrency.json");

    if overhead_pct >= BUDGET_PCT && !within_noise {
        eprintln!("FAIL: cancellation checks cost {overhead_pct:.4}% >= {BUDGET_PCT}% budget");
        std::process::exit(1);
    }
    if overhead_pct >= BUDGET_PCT {
        println!(
            "measured diff {median_diff:.3} ms is within the {noise_floor:.3} ms \
             host noise floor — indistinguishable from zero"
        );
    }
    println!("within the {BUDGET_PCT}% cancellation-check budget");
}
