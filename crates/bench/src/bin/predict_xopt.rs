//! Raven-style cross-optimization microbench: what does each layer of
//! the PREDICT stack buy on a predicate-constrained tree-ensemble
//! workload? Writes `results/BENCH_predict_xopt.json`.
//!
//! The query shape is `... WHERE city = 'nyc' AND age >= 30`: the
//! predicate fixes the one-hot city block and bounds `age`, so the
//! specializer can fold the city features away and prune every branch
//! unreachable under the constraints. Four scoring paths are timed on
//! the rows that actually satisfy the predicate:
//!
//! * `interpreted` — row-at-a-time interpreted scoring (the sklearn
//!   anchor);
//! * `vectorized` — the standalone vectorized runtime on the raw
//!   pipeline (the ORT anchor);
//! * `compiled` — the flattened struct-of-arrays tree kernel, still
//!   unspecialized;
//! * `specialized_compiled` — the predicate-specialized pipeline through
//!   the same compiled kernel (what the in-DB cross-optimizer executes).
//!
//! An end-to-end section runs the same predicate-constrained SQL query
//! in-DB with the cross-optimizer off and on. The binary exits non-zero
//! if the specialized+compiled path fails to beat the vectorized
//! baseline or if any path disagrees on a single score, so CI can use it
//! as a smoke test.

use flock_bench::fig4::time_best_ms;
use flock_core::{FlockDb, Lineage, XOptConfig};
use flock_corpus::tabular::TabularDataset;
use flock_ml::{interpreted_score, CompiledPipeline, Frame, FrameCol, InputConstraint, StandaloneRuntime};
use std::fmt::Write as _;

const ROWS: usize = 120_000;
const TREES: usize = 40;
const DEPTH: usize = 6;
const REPEATS: usize = 3;

const QUERY: &str = "SELECT AVG(PREDICT(good_model, age, income, debt, tenure, \
     noise1, noise2, city)) FROM customers WHERE city = 'nyc' AND age >= 30.0";

/// The rows of `data` satisfying `city = 'nyc' AND age >= 30` as a frame
/// carrying every pipeline input.
fn constrained_frame(data: &TabularDataset) -> Frame<'static> {
    let keep: Vec<usize> = (0..data.len())
        .filter(|&i| data.city[i] == "nyc" && data.age[i] >= 30.0)
        .collect();
    let take = |v: &[f64]| FrameCol::F64(keep.iter().map(|&i| v[i]).collect());
    Frame::new()
        .with("age", take(&data.age))
        .unwrap()
        .with("income", take(&data.income))
        .unwrap()
        .with("debt", take(&data.debt))
        .unwrap()
        .with("tenure", take(&data.tenure))
        .unwrap()
        .with("noise1", take(&data.noise1))
        .unwrap()
        .with("noise2", take(&data.noise2))
        .unwrap()
        .with(
            "city",
            FrameCol::Str(keep.iter().map(|&i| data.city[i].clone()).collect()),
        )
        .unwrap()
}

fn main() {
    eprintln!("generating {ROWS} rows, training {TREES}x{DEPTH} gbt...");
    let data = TabularDataset::generate(ROWS, 42);
    let pipeline = data.train_pipeline(TREES, DEPTH);
    let frame = constrained_frame(&data);
    let n = frame.num_rows();
    eprintln!("{n} rows satisfy the predicate");

    // constraints in pipeline-input order:
    // age, income, debt, tenure, noise1, noise2, city
    let constraints: Vec<Option<InputConstraint>> = vec![
        Some(InputConstraint::Range {
            lo: 30.0,
            hi: f64::INFINITY,
        }),
        None,
        None,
        None,
        None,
        None,
        Some(InputConstraint::FixedText("nyc".into())),
    ];
    let (specialized, report) = pipeline
        .specialize(&constraints)
        .expect("constraints must specialize the gbt");
    eprintln!("{}", report.annotation());

    let compiled = CompiledPipeline::compile(&pipeline);
    let spec_compiled = CompiledPipeline::compile(&specialized);

    // all four paths must agree bit-for-bit before anything is timed
    let reference = interpreted_score(&pipeline, &frame).expect("interpreted");
    for (name, scores) in [
        ("vectorized", StandaloneRuntime::new().score(&pipeline, &frame).unwrap()),
        ("compiled", compiled.score(&frame).unwrap()),
        ("specialized_compiled", spec_compiled.score(&frame).unwrap()),
    ] {
        assert_eq!(reference.len(), scores.len(), "{name}");
        for (i, (a, b)) in reference.iter().zip(&scores).enumerate() {
            assert!(a == b, "{name} diverges at row {i}: {a} vs {b}");
        }
    }

    let interpreted_ms = time_best_ms(REPEATS, || {
        let _ = interpreted_score(&pipeline, &frame).unwrap();
    });
    let vectorized_ms = time_best_ms(REPEATS, || {
        let _ = StandaloneRuntime::new().score(&pipeline, &frame).unwrap();
    });
    let compiled_ms = time_best_ms(REPEATS, || {
        let _ = compiled.score(&frame).unwrap();
    });
    let spec_compiled_ms = time_best_ms(REPEATS, || {
        let _ = spec_compiled.score(&frame).unwrap();
    });

    // end to end: the same predicate-constrained query in-DB
    let db = FlockDb::new();
    data.load_into(db.database()).expect("load");
    db.session("admin")
        .deploy_model("good_model", &pipeline, Lineage::default())
        .expect("deploy");
    db.set_xopt_config(XOptConfig::disabled());
    let indb_off_ms = time_best_ms(REPEATS, || {
        let _ = db.query(QUERY).expect("xopt off");
    });
    let off_avg = db.query(QUERY).unwrap().column(0).get(0).as_f64().unwrap();
    db.set_xopt_config(XOptConfig::default());
    let indb_on_ms = time_best_ms(REPEATS, || {
        let _ = db.query(QUERY).expect("xopt on");
    });
    let on_avg = db.query(QUERY).unwrap().column(0).get(0).as_f64().unwrap();
    assert!(
        (off_avg - on_avg).abs() < 1e-12,
        "cross-optimizer changed the answer: {off_avg} vs {on_avg}"
    );
    let (cache_hits, cache_misses, _) = db.registry().compiled_cache_counts();

    let spec_speedup = vectorized_ms / spec_compiled_ms;
    let compiled_speedup = vectorized_ms / compiled_ms;
    let indb_speedup = indb_off_ms / indb_on_ms;
    eprintln!("interpreted          {interpreted_ms:9.2} ms");
    eprintln!("vectorized           {vectorized_ms:9.2} ms (1.00x baseline)");
    eprintln!("compiled             {compiled_ms:9.2} ms ({compiled_speedup:.2}x)");
    eprintln!("specialized+compiled {spec_compiled_ms:9.2} ms ({spec_speedup:.2}x)");
    eprintln!("in-DB xopt off/on    {indb_off_ms:9.2} / {indb_on_ms:.2} ms ({indb_speedup:.2}x)");

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"predict_xopt\",");
    let _ = writeln!(out, "  \"rows\": {ROWS},");
    let _ = writeln!(out, "  \"constrained_rows\": {n},");
    let _ = writeln!(out, "  \"trees\": {TREES},");
    let _ = writeln!(out, "  \"depth\": {DEPTH},");
    let _ = writeln!(out, "  \"specialization\": \"{}\",", report.annotation());
    let _ = writeln!(out, "  \"interpreted_ms\": {interpreted_ms:.3},");
    let _ = writeln!(out, "  \"vectorized_ms\": {vectorized_ms:.3},");
    let _ = writeln!(out, "  \"compiled_ms\": {compiled_ms:.3},");
    let _ = writeln!(out, "  \"specialized_compiled_ms\": {spec_compiled_ms:.3},");
    let _ = writeln!(out, "  \"compiled_speedup_vs_vectorized\": {compiled_speedup:.3},");
    let _ = writeln!(out, "  \"specialized_speedup_vs_vectorized\": {spec_speedup:.3},");
    let _ = writeln!(out, "  \"indb_xopt_off_ms\": {indb_off_ms:.3},");
    let _ = writeln!(out, "  \"indb_xopt_on_ms\": {indb_on_ms:.3},");
    let _ = writeln!(out, "  \"indb_speedup\": {indb_speedup:.3},");
    let _ = writeln!(out, "  \"compile_cache_hits\": {cache_hits},");
    let _ = writeln!(out, "  \"compile_cache_misses\": {cache_misses}");
    out.push_str("}\n");

    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/BENCH_predict_xopt.json", &out).unwrap();
    eprintln!("wrote results/BENCH_predict_xopt.json");
    print!("{out}");

    // smoke-test contract for CI: specialization must never lose to the
    // unspecialized vectorized baseline on its home-turf workload
    assert!(
        spec_speedup >= 1.0,
        "specialized+compiled ({spec_compiled_ms:.2} ms) lost to vectorized \
         ({vectorized_ms:.2} ms)"
    );
}
