//! Regenerates Figure 4: in-database inference time across dataset sizes
//! (left) and speedups vs the Inline-SQL anchor (right).

use flock_bench::{fig4, render_table};
use flock_corpus::FIGURE4_SIZES;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sizes, trees, depth, repeats, anchor_size): (Vec<usize>, usize, usize, usize, usize) =
        if quick {
            (vec![1_000, 10_000, 100_000], 20, 4, 2, 10_000)
        } else {
            (FIGURE4_SIZES.to_vec(), 30, 4, 3, 100_000)
        };

    println!("Figure 4 (left) — total inference time (ms) vs dataset size");
    println!(
        "pipeline: 7 featurized inputs -> GBT({trees} trees, depth {depth}); host threads: {}",
        fig4::host_threads()
    );
    println!();
    let rows = fig4::run_sizes(&sizes, trees, depth, repeats);
    let modeled = rows.iter().any(|r| r.sonnx_parallel_modeled_ms.is_some());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![
                r.size.to_string(),
                format!("{:.1}", r.sklearn_ms),
                format!("{:.1}", r.ort_ms),
                format!("{:.1}", r.sonnx_ms),
                format!("{:.1}", r.sonnx_ext_ms),
            ];
            if modeled {
                row.push(
                    r.sonnx_parallel_modeled_ms
                        .map(|v| format!("{v:.1}"))
                        .unwrap_or_default(),
                );
            }
            row
        })
        .collect();
    let mut headers = vec!["rows", "sklearn (ms)", "ORT (ms)", "SONNX (ms)", "SONNX-ext (ms)"];
    if modeled {
        headers.push("SONNX-8p* (ms)");
    }
    println!("{}", render_table(&headers, &table));
    if modeled {
        println!(
            "* single-core host: parallel SONNX modeled as in-DB overhead + slowest of {} \
             chunks (all chunks executed); on multi-core hardware SONNX runs chunks concurrently",
            fig4::MODELED_THREADS
        );
    }
    if let Some(last) = rows.last() {
        println!(
            "\nat {} rows: SONNX is {:.1}x over ORT; SONNX-ext is {:.1}x over ORT{} \
             (paper: up to 5.5x from parallelization alone)",
            last.size,
            last.ort_ms / last.sonnx_ms,
            last.ort_ms / last.sonnx_ext_ms,
            last.sonnx_parallel_modeled_ms
                .map(|v| format!("; modeled 8-way SONNX {:.1}x over ORT", last.ort_ms / v))
                .unwrap_or_default()
        );
    }

    println!("\nFigure 4 (right) — speedup over the Inline-SQL anchor at {anchor_size} rows");
    let a = fig4::run_anchor(anchor_size, trees, depth, repeats);
    let mut table = vec![
        vec!["Inline SQL".into(), format!("{:.1}", a.inline_sql_ms), "1.0x".into()],
        vec![
            "ORT".into(),
            format!("{:.1}", a.ort_ms),
            format!("{:.1}x", a.ort_speedup()),
        ],
        vec![
            "Optimized".into(),
            format!("{:.1}", a.optimized_ms),
            format!("{:.1}x", a.optimized_speedup()),
        ],
    ];
    if let (Some(ms), Some(speedup)) = (
        a.optimized_parallel_modeled_ms,
        a.optimized_modeled_speedup(),
    ) {
        table.push(vec![
            "Optimized-8p*".into(),
            format!("{ms:.1}"),
            format!("{speedup:.1}x"),
        ]);
    }
    println!(
        "{}",
        render_table(&["configuration", "time (ms)", "speedup"], &table)
    );
    println!("(paper: Inline SQL 1x, ORT 17x, Optimized 24x)");

    if !a.optimized_breakdown.is_empty() {
        println!("\nmeasured per-operator breakdown of the optimized run (from plan metrics):");
        let table: Vec<Vec<String>> = a
            .optimized_breakdown
            .iter()
            .map(|o| {
                let mut name = "  ".repeat(o.depth);
                name.push_str(&o.name);
                if !o.detail.is_empty() {
                    name.push_str(&format!(" [{}]", o.detail));
                }
                vec![
                    name,
                    o.rows_out.to_string(),
                    format!("{:.3}", o.self_ms),
                    o.degree.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["operator", "rows", "self (ms)", "degree"], &table)
        );
    }
}
