//! Regenerates the Python-provenance coverage table (paper §4.2).

use flock_bench::{pytab, render_table};

fn main() {
    println!("Python provenance coverage (paper: Kaggle 49 scripts 95%/61%; Microsoft 37 scripts 100%/100%)\n");
    let kaggle = pytab::run_kaggle(7);
    let enterprise = pytab::run_enterprise(7);
    let rows: Vec<Vec<String>> = [&kaggle, &enterprise]
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                r.scripts.to_string(),
                format!("{:.0}%", r.pct_models),
                format!("{:.0}%", r.pct_datasets),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Dataset", "#Scripts", "%Models Covered", "%Training Datasets Covered"],
            &rows
        )
    );
}
