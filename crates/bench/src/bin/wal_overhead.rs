//! Durability-cost microbench: what does the write-ahead log add to an
//! insert-heavy workload? Writes `results/BENCH_wal.json`.
//!
//! Four engine configurations run the same deterministic workload of
//! `COMMITS` autocommitted multi-row INSERTs:
//!
//! * `none` — the in-memory engine with no durability (the baseline);
//! * `buffered` — WAL appends to a real directory without fsync
//!   (`DurabilityOptions::buffered()`), checkpoints disabled: a crash may
//!   lose a suffix of acknowledged commits, recovery still lands on a
//!   committed prefix;
//! * `fsync` — fsync-on-commit, checkpoints disabled: every acknowledged
//!   commit survives any crash;
//! * `buffered+ckpt` — buffered logging plus a checkpoint every 64
//!   commits. Because every committed write is a full table version, a
//!   checkpoint snapshots the whole version history, so its cost grows
//!   with table history — it is reported for visibility, not gated.
//!
//! The binary exits non-zero if buffered logging costs more than 15% over
//! the no-durability baseline, so CI can use it as a perf smoke test.
//! (The fsync column is reported but not gated — it is dominated by
//! device sync latency, which varies wildly across CI hosts.)

use flock_sql::{Database, DurabilityOptions};
use std::fmt::Write as _;
use std::time::Instant;

const COMMITS: usize = 300;
const ROWS_PER_COMMIT: usize = 50;
const REPEATS: usize = 3;

/// Deterministic LCG so the workload needs no RNG crate.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

fn insert_statements() -> Vec<String> {
    let mut rng = Lcg(7);
    (0..COMMITS)
        .map(|c| {
            let rows: Vec<String> = (0..ROWS_PER_COMMIT)
                .map(|r| {
                    let id = (c * ROWS_PER_COMMIT + r) as i64;
                    let amount = (rng.next() % 100_000) as f64 / 97.0;
                    format!("({id}, {amount:.6}, 'cust_{}')", rng.next() % 500)
                })
                .collect();
            format!("INSERT INTO payments VALUES {}", rows.join(", "))
        })
        .collect()
}

/// Run the workload once against a fresh database; returns elapsed ms for
/// the insert loop only (table creation and engine setup excluded).
fn run_once(db: &Database, statements: &[String]) -> f64 {
    db.execute("CREATE TABLE payments (id INT, amount DOUBLE, cust VARCHAR)")
        .expect("create");
    let start = Instant::now();
    for s in statements {
        db.execute(s).expect("insert");
    }
    start.elapsed().as_secs_f64() * 1e3
}

fn bench(
    opts: Option<DurabilityOptions>,
    label: &str,
    statements: &[String],
    scratch: &std::path::Path,
) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..REPEATS {
        let db = match opts {
            None => Database::new(),
            Some(o) => {
                let dir = scratch.join(format!("{label}-{rep}"));
                Database::open(dir, o).expect("open")
            }
        };
        best = best.min(run_once(&db, statements));
    }
    best
}

fn main() {
    let statements = insert_statements();
    let scratch = std::env::temp_dir().join(format!("flock-wal-bench-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    let no_ckpt = |fsync: bool| DurabilityOptions {
        fsync_on_commit: fsync,
        checkpoint_every_commits: 0,
        keep_checkpoints: 2,
    };

    let total_rows = COMMITS * ROWS_PER_COMMIT;
    eprintln!("{COMMITS} commits x {ROWS_PER_COMMIT} rows = {total_rows} rows, best of {REPEATS}");
    let none_ms = bench(None, "none", &statements, &scratch);
    eprintln!("no durability   {none_ms:9.2} ms");
    let buffered_ms = bench(Some(no_ckpt(false)), "buffered", &statements, &scratch);
    let buffered_overhead = (buffered_ms / none_ms - 1.0) * 100.0;
    eprintln!("buffered wal    {buffered_ms:9.2} ms ({buffered_overhead:+.1}%)");
    let fsync_ms = bench(Some(no_ckpt(true)), "fsync", &statements, &scratch);
    let fsync_overhead = (fsync_ms / none_ms - 1.0) * 100.0;
    eprintln!("fsync-on-commit {fsync_ms:9.2} ms ({fsync_overhead:+.1}%)");
    let ckpt_ms = bench(
        Some(DurabilityOptions::buffered()),
        "buffered-ckpt",
        &statements,
        &scratch,
    );
    let ckpt_overhead = (ckpt_ms / none_ms - 1.0) * 100.0;
    eprintln!("buffered+ckpt   {ckpt_ms:9.2} ms ({ckpt_overhead:+.1}%)");

    let _ = std::fs::remove_dir_all(&scratch);

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"wal_overhead\",");
    let _ = writeln!(out, "  \"commits\": {COMMITS},");
    let _ = writeln!(out, "  \"rows_per_commit\": {ROWS_PER_COMMIT},");
    let _ = writeln!(out, "  \"repeats\": {REPEATS},");
    let _ = writeln!(out, "  \"no_durability_ms\": {none_ms:.3},");
    let _ = writeln!(out, "  \"buffered_wal_ms\": {buffered_ms:.3},");
    let _ = writeln!(out, "  \"fsync_wal_ms\": {fsync_ms:.3},");
    let _ = writeln!(out, "  \"buffered_ckpt_ms\": {ckpt_ms:.3},");
    let _ = writeln!(out, "  \"buffered_overhead_pct\": {buffered_overhead:.2},");
    let _ = writeln!(out, "  \"fsync_overhead_pct\": {fsync_overhead:.2},");
    let _ = writeln!(out, "  \"buffered_ckpt_overhead_pct\": {ckpt_overhead:.2}");
    out.push_str("}\n");

    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/BENCH_wal.json", &out).unwrap();
    eprintln!("wrote results/BENCH_wal.json");
    print!("{out}");

    assert!(
        buffered_overhead < 15.0,
        "buffered WAL costs {buffered_overhead:.1}% over the no-durability \
         baseline (gate: < 15%)"
    );
}
