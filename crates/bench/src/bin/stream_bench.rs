//! Streaming-ingestion bench: drive the NEXMark-style three-stream
//! auction workload (persons/auctions/bids, 1:3:46) through stream
//! tables with q3/q6/q13-shaped continuous queries attached, and
//! measure sustained ingest throughput while the scheduler closes
//! windows. Writes `results/BENCH_streaming.json`.
//!
//! Gates (process exits non-zero on violation):
//!
//! * **window-vs-batch equality** — every emitted q3 (tumbling) and q6
//!   (sliding) window must be bit-equal to the equivalent batch
//!   `GROUP BY` over the same captured events, including group order;
//! * windows must actually close (q3/q6/q13 sinks all non-empty) and
//!   continuous `PREDICT` must score q13 windows;
//! * no continuous query may error during the run.
//!
//! `FLOCK_STREAM_SHORT=1` shrinks the event count for CI smoke.

use flock_corpus::nexmark::{self, NexmarkGen, Q3_STATES};
use flock_sql::ast::PredictStrategy;
use flock_sql::udf::InferenceProvider;
use flock_sql::{ColumnVector, DataType, Database, Result, Value};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Scores a bidder window from (avg price, bid count); bounded well
/// under the policy threshold so the bench never holds its own model.
struct BidderScorer;

impl InferenceProvider for BidderScorer {
    fn output_type(&self, _model: &str) -> Result<DataType> {
        Ok(DataType::Float)
    }
    fn input_arity(&self, _model: &str) -> Result<usize> {
        Ok(2)
    }
    fn predict(
        &self,
        _model: &str,
        inputs: &[ColumnVector],
        _strategy: PredictStrategy,
        _user: &str,
    ) -> Result<ColumnVector> {
        let n = inputs[0].len();
        let vals: Vec<Value> = (0..n)
            .map(|i| match (inputs[0].get(i).as_f64(), inputs[1].get(i).as_f64()) {
                (Some(avg), Some(cnt)) => Value::Float((avg / 10_000.0 + cnt / 1000.0).min(1.0)),
                _ => Value::Float(0.0),
            })
            .collect();
        ColumnVector::from_values(DataType::Float, &vals)
    }
}

fn metric(db: &Database, name: &str) -> i64 {
    let b = db
        .query(&format!("SELECT value FROM flock_metrics WHERE metric = '{name}'"))
        .expect("flock_metrics");
    match b.column(0).get(0) {
        Value::Int(v) => v,
        other => panic!("metric {name}: {other:?}"),
    }
}

fn rows_of(b: &flock_sql::RecordBatch) -> Vec<Vec<Value>> {
    (0..b.num_rows()).map(|i| b.row(i)).collect()
}

/// Check every window in `sink` against the equivalent batch GROUP BY
/// over the captured events; returns the number of windows verified.
fn check_windows(db: &Database, sink: &str, batch_sql: impl Fn(i64) -> String) -> usize {
    let emitted = rows_of(&db.query(&format!("SELECT * FROM {sink}")).expect("sink"));
    let mut starts: Vec<i64> = emitted
        .iter()
        .map(|r| match r[0] {
            Value::Int(s) => s,
            ref other => panic!("window_start: {other:?}"),
        })
        .collect();
    starts.sort_unstable();
    starts.dedup();
    let mut checked = 0;
    for s in starts {
        let want = rows_of(&db.query(&batch_sql(s)).expect("batch query"));
        let got: Vec<Vec<Value>> = emitted
            .iter()
            .filter(|r| matches!(r[0], Value::Int(v) if v == s))
            .map(|r| r[1..].to_vec())
            .collect();
        assert_eq!(
            want, got,
            "{sink}: window {s} diverges from the batch GROUP BY"
        );
        checked += 1;
    }
    checked
}

fn main() {
    let short = std::env::var("FLOCK_STREAM_SHORT").is_ok_and(|v| v == "1");
    let total_events: usize = if short { 25_000 } else { 250_000 };
    let rate: u32 = 1000; // 1 ms event-time spacing
    let chunk = 2500;

    let db = Database::new();
    db.set_inference_provider(Arc::new(BidderScorer));
    db.session("admin")
        .create_extension_object(
            "model",
            "bidder_risk",
            vec![],
            serde_json::from_str("{}").unwrap(),
        )
        .expect("register model");
    for ddl in nexmark::schema_ddl(100) {
        db.execute(&ddl).expect("create stream");
    }
    db.execute(&nexmark::q3_ddl(1000)).expect("q3");
    db.execute(&nexmark::q6_ddl(2000, 1000)).expect("q6");
    db.execute(&nexmark::q13_ddl(1000, "bidder_risk", 2.0)).expect("q13");

    // Timed loop: rate-controlled generator, multi-row INSERTs, a
    // scheduler tick per chunk so windows close while ingest continues.
    let mut gen = NexmarkGen::new(42, rate);
    let start = Instant::now();
    let mut ingested = 0usize;
    while ingested < total_events {
        let n = chunk.min(total_events - ingested);
        let events = gen.batch(n);
        for stmt in nexmark::insert_statements(&events) {
            db.execute(&stmt).expect("insert");
        }
        db.stream_tick_now();
        ingested += n;
    }
    db.stream_tick_now();
    let elapsed = start.elapsed().as_secs_f64();
    let events_per_sec = total_events as f64 / elapsed;

    let windows_closed = metric(&db, "stream_windows_closed");
    let rows_emitted = metric(&db, "stream_rows_emitted");
    let predict_windows = metric(&db, "stream_predict_windows");
    let late_events = metric(&db, "stream_late_events");
    let cq_errors = metric(&db, "stream_cq_errors");
    let breaches = metric(&db, "stream_policy_breaches");

    eprintln!(
        "{total_events} events in {elapsed:.2} s -> {events_per_sec:.0} events/s, \
         {windows_closed} windows closed, {rows_emitted} rows emitted"
    );

    // ------------------------------------------- window-vs-batch gate
    let q3_checked = check_windows(&db, "q3_out", |s| {
        format!(
            "SELECT state, COUNT(*) AS arrivals FROM person \
             WHERE (state = '{}' OR state = '{}' OR state = '{}') \
             AND et >= {s} AND et < {} GROUP BY state",
            Q3_STATES[0],
            Q3_STATES[1],
            Q3_STATES[2],
            s + 1000
        )
    });
    let q6_checked = check_windows(&db, "q6_out", |s| {
        format!(
            "SELECT auction, COUNT(*) AS bids, AVG(price) AS avg_price, \
             MAX(price) AS best FROM bid \
             WHERE et >= {s} AND et < {} GROUP BY auction",
            s + 2000
        )
    });
    let q13_rows = db.query("SELECT COUNT(*) FROM q13_out").expect("q13_out");
    let q13_emitted = match q13_rows.column(0).get(0) {
        Value::Int(v) => v,
        other => panic!("q13 count: {other:?}"),
    };
    eprintln!(
        "equality gate: {q3_checked} q3 tumbling + {q6_checked} q6 sliding \
         windows bit-equal to batch; q13 scored {q13_emitted} rows"
    );

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"stream_bench\",");
    let _ = writeln!(out, "  \"short\": {short},");
    let _ = writeln!(out, "  \"events\": {total_events},");
    let _ = writeln!(out, "  \"modeled_rate_events_per_sec\": {rate},");
    let _ = writeln!(out, "  \"elapsed_s\": {elapsed:.3},");
    let _ = writeln!(out, "  \"sustained_events_per_sec\": {events_per_sec:.0},");
    let _ = writeln!(out, "  \"windows_closed\": {windows_closed},");
    let _ = writeln!(out, "  \"rows_emitted\": {rows_emitted},");
    let _ = writeln!(out, "  \"predict_windows\": {predict_windows},");
    let _ = writeln!(out, "  \"late_events\": {late_events},");
    let _ = writeln!(out, "  \"policy_breaches\": {breaches},");
    let _ = writeln!(out, "  \"cq_errors\": {cq_errors},");
    let _ = writeln!(out, "  \"q3_windows_verified\": {q3_checked},");
    let _ = writeln!(out, "  \"q6_windows_verified\": {q6_checked},");
    let _ = writeln!(out, "  \"q13_rows\": {q13_emitted}");
    out.push_str("}\n");

    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/BENCH_streaming.json", &out).unwrap();
    eprintln!("wrote results/BENCH_streaming.json");
    print!("{out}");

    assert!(cq_errors == 0, "continuous queries errored {cq_errors} times");
    assert!(q3_checked > 0, "no q3 windows closed");
    assert!(q6_checked > 0, "no q6 windows closed");
    assert!(q13_emitted > 0, "q13 emitted nothing");
    assert!(predict_windows > 0, "continuous PREDICT never ran");
    assert!(breaches == 0, "bench scorer unexpectedly breached the policy");
}
