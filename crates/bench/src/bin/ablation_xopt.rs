//! Ablation: per-rule contribution of the cross-optimizer.

use flock_bench::{ablation, render_table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (size, trees, depth, repeats) = if quick {
        (20_000, 20, 4, 2)
    } else {
        (100_000, 30, 4, 3)
    };
    println!("Cross-optimizer ablation at {size} rows (GBT {trees} trees, depth {depth})\n");
    let rows = ablation::run(size, trees, depth, repeats);
    let baseline = rows.first().map(|r| r.ms).unwrap_or(1.0);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.to_string(),
                format!("{:.1}", r.ms),
                format!("{:.2}x", baseline / r.ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["configuration", "time (ms)", "vs SONNX"], &table)
    );

    println!(
        "\nText-pipeline scenario at {size} rows: hashed-text input with zero weight \
         after feature selection\nquery: {}\n",
        ablation::TEXT_QUERY
    );
    let rows = ablation::run_text(size, 512, repeats);
    let baseline = rows.first().map(|r| r.ms).unwrap_or(1.0);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.to_string(),
                format!("{:.1}", r.ms),
                format!("{:.2}x", baseline / r.ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["configuration", "time (ms)", "vs SONNX"], &table)
    );
    println!(
        "(feature pruning removes the text column: no tokenization, no hashing, \
         and the scan never reads it; push-up turns the sigmoid comparison into a \
         linear threshold)"
    );
}
