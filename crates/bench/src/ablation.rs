//! Ablation of the cross-optimizer: contribution of each rule to the
//! in-DB inference time (DESIGN.md §3: "every optimization can be toggled
//! independently, so the bench harness reports per-optimization
//! contributions").

use crate::fig4::{build_db, time_best_ms, SCORING_QUERY};
use flock_core::XOptConfig;
use flock_corpus::tabular::TabularDataset;

/// One ablation configuration and its measured time.
#[derive(Debug, Clone)]
pub struct AblationRow {
    pub config: &'static str,
    pub ms: f64,
}

/// The configurations swept, from nothing to everything.
pub fn configurations() -> Vec<(&'static str, XOptConfig)> {
    let base = XOptConfig::disabled();
    vec![
        ("none (SONNX)", base),
        (
            "+feature pruning",
            XOptConfig {
                feature_pruning: true,
                ..base
            },
        ),
        (
            "+model compression",
            XOptConfig {
                model_compression: true,
                ..base
            },
        ),
        (
            "+operator selection",
            XOptConfig {
                operator_selection: true,
                ..base
            },
        ),
        (
            "+pruning +compression",
            XOptConfig {
                feature_pruning: true,
                model_compression: true,
                ..base
            },
        ),
        ("all (SONNX-ext)", XOptConfig::default()),
    ]
}

/// Run the ablation at the given dataset size.
pub fn run(size: usize, trees: usize, depth: usize, repeats: usize) -> Vec<AblationRow> {
    let data = TabularDataset::generate(size, 42);
    let db = build_db(&data, trees, depth);
    configurations()
        .into_iter()
        .map(|(name, cfg)| {
            db.set_xopt_config(cfg);
            // warm the derived-model cache so measurement excludes the
            // one-time rewrite cost
            let _ = db.query(SCORING_QUERY).expect("warmup");
            let ms = time_best_ms(repeats, || {
                let _ = db.query(SCORING_QUERY).expect("ablation query");
            });
            AblationRow { config: name, ms }
        })
        .collect()
}

/// The text-heavy scenario: a logistic churn model whose hashed-text
/// input carries zero weight after feature selection. Naive in-DB scoring
/// still tokenizes and hashes every comment; feature pruning removes the
/// column (and projection pruning removes it from the scan).
pub const TEXT_QUERY: &str = "SELECT COUNT(*) FROM customers \
     WHERE PREDICT(churn_text, income, debt, comment) >= 0.8";

/// Run the text-pipeline ablation: cross-optimizer off vs on.
pub fn run_text(size: usize, buckets: usize, repeats: usize) -> Vec<AblationRow> {
    use flock_core::{FlockDb, Lineage};
    let data = TabularDataset::generate(size, 42);
    let db = FlockDb::new();
    data.load_into(db.database()).expect("load");
    let pipeline = data.train_text_pipeline(buckets);
    db.session("admin")
        .deploy_model("churn_text", &pipeline, Lineage::default())
        .expect("deploy");

    [("none (SONNX)", XOptConfig::disabled()), ("all (SONNX-ext)", XOptConfig::default())]
        .into_iter()
        .map(|(name, cfg)| {
            db.set_xopt_config(cfg);
            let _ = db.query(TEXT_QUERY).expect("warmup");
            let ms = time_best_ms(repeats, || {
                let _ = db.query(TEXT_QUERY).expect("text ablation");
            });
            AblationRow { config: name, ms }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_rows_cover_all_configs() {
        let rows = run(2_000, 6, 3, 1);
        assert_eq!(rows.len(), configurations().len());
        for r in &rows {
            assert!(r.ms > 0.0, "{}", r.config);
        }
    }

    #[test]
    fn text_pipeline_pruning_pays_off_and_preserves_results() {
        use flock_core::{FlockDb, Lineage};
        let data = TabularDataset::generate(3_000, 5);
        let pipeline = data.train_text_pipeline(256);
        // the comment column really is unused
        let usage = pipeline.input_usage();
        assert_eq!(usage, vec![true, true, false]);

        let count_for = |cfg: XOptConfig| {
            let db = FlockDb::with_config(cfg);
            data.load_into(db.database()).unwrap();
            db.session("admin")
                .deploy_model("churn_text", &pipeline, Lineage::default())
                .unwrap();
            db.query(TEXT_QUERY).unwrap().column(0).get(0)
        };
        assert_eq!(count_for(XOptConfig::disabled()), count_for(XOptConfig::default()));
    }
}
