//! Figure 3: the ML-systems feature matrix and its two headline trends.

use flock_corpus::landscape::{self, Area, SYSTEMS};

/// The rendered matrix plus the computed trends.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    pub matrix: String,
    pub proprietary_data_mgmt: f64,
    pub cloud_data_mgmt: f64,
    pub in_db_ml_share: f64,
    /// Per-system (name, training, serving, data-management) scores.
    pub system_scores: Vec<(String, f64, f64, f64)>,
}

pub fn run() -> Fig3Result {
    let trends = landscape::trends();
    let system_scores = SYSTEMS
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                s.name.to_string(),
                landscape::area_score(i, Area::Training),
                landscape::area_score(i, Area::Serving),
                landscape::area_score(i, Area::DataManagement),
            )
        })
        .collect();
    Fig3Result {
        matrix: landscape::render_matrix(),
        proprietary_data_mgmt: trends.proprietary_data_mgmt,
        cloud_data_mgmt: trends.cloud_data_mgmt,
        in_db_ml_share: trends.in_db_ml_share,
        system_scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trends_match_paper_observations() {
        let r = run();
        assert!(r.proprietary_data_mgmt > r.cloud_data_mgmt);
        assert!(r.in_db_ml_share < 0.5);
        assert_eq!(r.system_scores.len(), 6);
        assert!(r.matrix.contains("In-DB ML"));
    }
}
