//! # flock-bench
//!
//! Harnesses that regenerate every figure and table of the paper. Each
//! module computes one artifact and returns structured rows; the binaries
//! under `src/bin/` print them in the paper's layout, and the Criterion
//! benches under `benches/` measure the same code paths.

pub mod ablation;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod provtab;
pub mod pytab;

/// Render a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| format!("+{}", "-".repeat(w + 2)))
        .collect::<String>()
        + "+";
    out.push_str(&sep);
    out.push('\n');
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    out.push_str(&sep);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_renders() {
        let t = super::render_table(
            &["a", "long_header"],
            &[vec!["1".into(), "2".into()]],
        );
        assert!(t.contains("| a | long_header |"));
    }
}
