//! Figure 2: notebook coverage (%) for top-K packages, 2017 vs 2019.

use flock_corpus::notebooks::{NotebookCorpus, SnapshotParams, FIGURE2_KS};

/// One point of the figure.
#[derive(Debug, Clone)]
pub struct CoveragePoint {
    pub k: usize,
    pub pct_2017: f64,
    pub pct_2019: f64,
}

/// Summary of the two corpora plus the curve.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    pub notebooks_per_corpus: usize,
    pub packages_2017: usize,
    pub packages_2019: usize,
    pub points: Vec<CoveragePoint>,
}

impl Fig2Result {
    pub fn top10_shift(&self) -> f64 {
        self.points
            .iter()
            .find(|p| p.k == 10)
            .map(|p| p.pct_2019 - p.pct_2017)
            .unwrap_or(0.0)
    }
}

/// Run the Figure-2 analysis at the given corpus size.
pub fn run(notebooks: usize) -> Fig2Result {
    let c2017 = NotebookCorpus::generate(SnapshotParams::year_2017(notebooks));
    let c2019 = NotebookCorpus::generate(SnapshotParams::year_2019(notebooks));
    let points = FIGURE2_KS
        .iter()
        .map(|&k| CoveragePoint {
            k,
            pct_2017: c2017.coverage(k),
            pct_2019: c2019.coverage(k),
        })
        .collect();
    Fig2Result {
        notebooks_per_corpus: notebooks,
        packages_2017: c2017.params.packages,
        packages_2019: c2019.params.packages,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_two_shape_holds() {
        let r = run(10_000);
        // Total: 3x more packages
        assert_eq!(r.packages_2019, 3 * r.packages_2017);
        // Top-10: ~5% more coverage
        let shift = r.top10_shift();
        assert!(shift > 2.0 && shift < 12.0, "shift {shift}");
        // curves monotone
        for w in r.points.windows(2) {
            assert!(w[1].pct_2017 >= w[0].pct_2017);
            assert!(w[1].pct_2019 >= w[0].pct_2019);
        }
    }
}
