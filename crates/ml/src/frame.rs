//! Feature frames: the typed column container pipelines consume.
//!
//! A [`Frame`] is the ML-side analogue of a relational record batch:
//! named columns of either numeric (`f64`, with NaN as missing) or string
//! data. The in-DB integration converts `flock-sql` column vectors into
//! frames at the PREDICT boundary.

use crate::error::{MlError, Result};
use serde::{Deserialize, Serialize};

/// One column of a frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FrameCol {
    /// Numeric data; missing values are NaN.
    F64(Vec<f64>),
    /// String data; missing values are empty strings.
    Str(Vec<String>),
}

impl FrameCol {
    pub fn len(&self) -> usize {
        match self {
            FrameCol::F64(v) => v.len(),
            FrameCol::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            FrameCol::F64(v) => Some(v),
            FrameCol::Str(_) => None,
        }
    }

    pub fn as_str(&self) -> Option<&[String]> {
        match self {
            FrameCol::Str(v) => Some(v),
            FrameCol::F64(_) => None,
        }
    }
}

/// A named collection of equal-length columns.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    columns: Vec<(String, FrameCol)>,
}

impl Frame {
    pub fn new() -> Self {
        Frame::default()
    }

    /// Add a column; all columns must share a length.
    pub fn push(&mut self, name: impl Into<String>, col: FrameCol) -> Result<()> {
        if let Some((_, first)) = self.columns.first() {
            if first.len() != col.len() {
                return Err(MlError::Shape(format!(
                    "column length {} != frame length {}",
                    col.len(),
                    first.len()
                )));
            }
        }
        self.columns.push((name.into(), col));
        Ok(())
    }

    pub fn with(mut self, name: impl Into<String>, col: FrameCol) -> Result<Self> {
        self.push(name, col)?;
        Ok(self)
    }

    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |(_, c)| c.len())
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    pub fn column(&self, name: &str) -> Result<&FrameCol> {
        self.columns
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, c)| c)
            .ok_or_else(|| MlError::UnknownColumn(name.to_string()))
    }

    pub fn column_at(&self, idx: usize) -> &FrameCol {
        &self.columns[idx].1
    }

    /// A one-row view of this frame (allocates; used by the row-at-a-time
    /// interpreted scorer).
    pub fn slice_row(&self, row: usize) -> Frame {
        let columns = self
            .columns
            .iter()
            .map(|(n, c)| {
                let col = match c {
                    FrameCol::F64(v) => FrameCol::F64(vec![v[row]]),
                    FrameCol::Str(v) => FrameCol::Str(vec![v[row].clone()]),
                };
                (n.clone(), col)
            })
            .collect();
        Frame { columns }
    }

    /// Split into chunks of at most `chunk_rows` (used by parallel scoring).
    pub fn chunks(&self, chunk_rows: usize) -> Vec<Frame> {
        let n = self.num_rows();
        if n == 0 {
            return vec![self.clone()];
        }
        let chunk_rows = chunk_rows.max(1);
        (0..n)
            .step_by(chunk_rows)
            .map(|start| {
                let end = (start + chunk_rows).min(n);
                let columns = self
                    .columns
                    .iter()
                    .map(|(name, c)| {
                        let col = match c {
                            FrameCol::F64(v) => FrameCol::F64(v[start..end].to_vec()),
                            FrameCol::Str(v) => FrameCol::Str(v[start..end].to_vec()),
                        };
                        (name.clone(), col)
                    })
                    .collect();
                Frame { columns }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame::new()
            .with("age", FrameCol::F64(vec![34.0, 28.0, f64::NAN]))
            .unwrap()
            .with(
                "city",
                FrameCol::Str(vec!["nyc".into(), "sf".into(), "nyc".into()]),
            )
            .unwrap()
    }

    #[test]
    fn push_validates_length() {
        let mut f = frame();
        let err = f.push("bad", FrameCol::F64(vec![1.0]));
        assert!(err.is_err());
    }

    #[test]
    fn lookup_case_insensitive() {
        let f = frame();
        assert!(f.column("AGE").is_ok());
        assert!(f.column("missing").is_err());
    }

    #[test]
    fn row_slicing() {
        let f = frame();
        let r = f.slice_row(1);
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.column("city").unwrap().as_str().unwrap()[0], "sf");
    }

    #[test]
    fn chunking_covers_rows() {
        let f = frame();
        let chunks = f.chunks(2);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].num_rows(), 2);
        assert_eq!(chunks[1].num_rows(), 1);
    }
}
