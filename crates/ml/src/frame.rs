//! Feature frames: the typed column container pipelines consume.
//!
//! A [`Frame`] is the ML-side analogue of a relational record batch:
//! named columns of either numeric (`f64`, with NaN as missing) or string
//! data. The in-DB integration converts `flock-sql` column vectors into
//! frames at the PREDICT boundary. Columns can either own their data or
//! borrow it from the caller (`F64Borrowed` / `StrBorrowed`), so the
//! PREDICT binding path and chunked scoring never copy dense columns.

use crate::error::{MlError, Result};

/// One column of a frame.
#[derive(Debug, Clone)]
pub enum FrameCol<'a> {
    /// Numeric data; missing values are NaN.
    F64(Vec<f64>),
    /// String data; missing values are empty strings.
    Str(Vec<String>),
    /// Numeric data borrowed from the caller (zero-copy binding).
    F64Borrowed(&'a [f64]),
    /// String data borrowed from the caller (zero-copy binding).
    StrBorrowed(&'a [String]),
}

impl<'a> FrameCol<'a> {
    pub fn len(&self) -> usize {
        match self {
            FrameCol::F64(v) => v.len(),
            FrameCol::Str(v) => v.len(),
            FrameCol::F64Borrowed(v) => v.len(),
            FrameCol::StrBorrowed(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            FrameCol::F64(v) => Some(v),
            FrameCol::F64Borrowed(v) => Some(v),
            FrameCol::Str(_) | FrameCol::StrBorrowed(_) => None,
        }
    }

    pub fn as_str(&self) -> Option<&[String]> {
        match self {
            FrameCol::Str(v) => Some(v),
            FrameCol::StrBorrowed(v) => Some(v),
            FrameCol::F64(_) | FrameCol::F64Borrowed(_) => None,
        }
    }

    /// A borrowed view of rows `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> FrameCol<'_> {
        match self {
            FrameCol::F64(v) => FrameCol::F64Borrowed(&v[start..end]),
            FrameCol::Str(v) => FrameCol::StrBorrowed(&v[start..end]),
            FrameCol::F64Borrowed(v) => FrameCol::F64Borrowed(&v[start..end]),
            FrameCol::StrBorrowed(v) => FrameCol::StrBorrowed(&v[start..end]),
        }
    }
}

/// Equality is by content, not by ownership: an owned column equals a
/// borrowed view of the same data.
impl PartialEq for FrameCol<'_> {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a == b,
            (None, None) => self.as_str() == other.as_str(),
            _ => false,
        }
    }
}

/// A named collection of equal-length columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Frame<'a> {
    columns: Vec<(String, FrameCol<'a>)>,
}

impl<'a> Frame<'a> {
    pub fn new() -> Self {
        Frame::default()
    }

    /// Add a column; all columns must share a length.
    pub fn push(&mut self, name: impl Into<String>, col: FrameCol<'a>) -> Result<()> {
        if let Some((_, first)) = self.columns.first() {
            if first.len() != col.len() {
                return Err(MlError::Shape(format!(
                    "column length {} != frame length {}",
                    col.len(),
                    first.len()
                )));
            }
        }
        self.columns.push((name.into(), col));
        Ok(())
    }

    pub fn with(mut self, name: impl Into<String>, col: FrameCol<'a>) -> Result<Self> {
        self.push(name, col)?;
        Ok(self)
    }

    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |(_, c)| c.len())
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    pub fn column(&self, name: &str) -> Result<&FrameCol<'a>> {
        self.columns
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, c)| c)
            .ok_or_else(|| MlError::UnknownColumn(name.to_string()))
    }

    pub fn column_at(&self, idx: usize) -> &FrameCol<'a> {
        &self.columns[idx].1
    }

    /// A one-row copy of this frame (allocates; used by the row-at-a-time
    /// interpreted scorer).
    pub fn slice_row(&self, row: usize) -> Frame<'static> {
        let columns = self
            .columns
            .iter()
            .map(|(n, c)| {
                let col = match c.as_f64() {
                    Some(v) => FrameCol::F64(vec![v[row]]),
                    None => FrameCol::Str(vec![c.as_str().unwrap()[row].clone()]),
                };
                (n.clone(), col)
            })
            .collect();
        Frame { columns }
    }

    /// Lazily split into borrowed chunks of at most `chunk_rows` (used by
    /// chunked and parallel scoring). Chunks borrow from `self`, so a large
    /// frame is never materialized twice. An empty frame yields one empty
    /// chunk so callers still see the column layout.
    pub fn chunks(&self, chunk_rows: usize) -> impl Iterator<Item = Frame<'_>> + '_ {
        let n = self.num_rows();
        let chunk_rows = chunk_rows.max(1);
        let count = if n == 0 { 1 } else { n.div_ceil(chunk_rows) };
        (0..count).map(move |i| {
            let start = i * chunk_rows;
            let end = (start + chunk_rows).min(n);
            Frame {
                columns: self
                    .columns
                    .iter()
                    .map(|(name, c)| (name.clone(), c.slice(start, end)))
                    .collect(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame<'static> {
        Frame::new()
            .with("age", FrameCol::F64(vec![34.0, 28.0, f64::NAN]))
            .unwrap()
            .with(
                "city",
                FrameCol::Str(vec!["nyc".into(), "sf".into(), "nyc".into()]),
            )
            .unwrap()
    }

    #[test]
    fn push_validates_length() {
        let mut f = frame();
        let err = f.push("bad", FrameCol::F64(vec![1.0]));
        assert!(err.is_err());
    }

    #[test]
    fn lookup_case_insensitive() {
        let f = frame();
        assert!(f.column("AGE").is_ok());
        assert!(f.column("missing").is_err());
    }

    #[test]
    fn row_slicing() {
        let f = frame();
        let r = f.slice_row(1);
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.column("city").unwrap().as_str().unwrap()[0], "sf");
    }

    #[test]
    fn chunking_covers_rows_lazily() {
        let f = frame();
        let chunks: Vec<Frame<'_>> = f.chunks(2).collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].num_rows(), 2);
        assert_eq!(chunks[1].num_rows(), 1);
        // chunks borrow: numeric data points into the parent allocation
        let parent = f.column("age").unwrap().as_f64().unwrap();
        let child = chunks[0].column("age").unwrap().as_f64().unwrap();
        assert_eq!(parent.as_ptr(), child.as_ptr());
    }

    #[test]
    fn empty_frame_yields_one_chunk() {
        let f = Frame::new()
            .with("x", FrameCol::F64(vec![]))
            .unwrap();
        let chunks: Vec<Frame<'_>> = f.chunks(4).collect();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].num_rows(), 0);
        assert_eq!(chunks[0].num_columns(), 1);
    }

    #[test]
    fn borrowed_equals_owned() {
        let data = vec![1.0, 2.0];
        assert_eq!(FrameCol::F64(data.clone()), FrameCol::F64Borrowed(&data));
    }
}
