//! Predicate specialization (the paper's §4.1 cross-optimization): fold
//! query-fixed inputs into the pipeline and prune the model against them.
//!
//! The SQL optimizer extracts per-input [`InputConstraint`]s from query
//! predicates (`WHERE city = 'nyc'` fixes a one-hot input; `WHERE age
//! BETWEEN 30 AND 40` bounds a numeric one) and calls
//! [`Pipeline::specialize`]. Specialization is *score-preserving by
//! construction* for every row that satisfies the constraints:
//!
//! * **Tree-family models** (`Tree`/`Forest`/`Gbt`): each fixed input is
//!   encoded once, giving its feature slots degenerate `[v, v]` ranges;
//!   range constraints bound numeric slots. `compress` then removes every
//!   branch unreachable under those ranges — an exact transformation, the
//!   same arithmetic on the surviving paths. Fixed inputs become provably
//!   unused and their columns are dropped from the pipeline.
//! * **Linear/logistic models**: fixed inputs swap their encoder for
//!   [`Encoder::Fixed`], freezing the *encoded* feature values computed at
//!   plan time. Weights and feature width are untouched, so the dot
//!   product — and therefore the score — is bit-identical; what is saved
//!   is the per-row encode work and the column binding.
//!
//! The split between bound and unbound inputs is a pure function of
//! (pipeline, constraints) — [`specialize_mask`] — so the optimizer can
//! re-derive which PREDICT arguments to drop on a cache hit without
//! consulting the specialized artifact.

use crate::featurize::{ColumnPipeline, Encoder, RawValue};
use crate::model::Model;
use crate::pipeline::Pipeline;

/// A per-input constraint extracted from query predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum InputConstraint {
    /// The input equals a numeric literal (`WHERE x = 3.5`).
    FixedNum(f64),
    /// The input equals a string literal (`WHERE c = 'x'`).
    FixedText(String),
    /// The input lies in `[lo, hi]`; open sides are infinite. Closed
    /// bounds are used even for strict predicates — a superset of the
    /// true range is always safe.
    Range { lo: f64, hi: f64 },
}

/// Is this constraint a *fixing* constraint the column's encoder can
/// evaluate at plan time?
fn fixes(cp: &ColumnPipeline, c: &InputConstraint) -> bool {
    match c {
        InputConstraint::FixedText(_) => cp.encoder.takes_strings(),
        InputConstraint::FixedNum(_) => {
            matches!(cp.encoder, Encoder::Numeric | Encoder::Binned { .. })
        }
        InputConstraint::Range { .. } => false,
    }
}

/// Does this constraint bound the column's (numeric) feature range?
fn bounds(cp: &ColumnPipeline, c: &InputConstraint) -> bool {
    matches!(c, InputConstraint::Range { .. }) && matches!(cp.encoder, Encoder::Numeric)
}

/// Encode a fixing constraint into the column's feature slots.
fn encode_fixed(cp: &ColumnPipeline, c: &InputConstraint) -> Vec<f64> {
    let raw = match c {
        InputConstraint::FixedNum(v) => RawValue::Num(*v),
        InputConstraint::FixedText(s) => RawValue::Text(s.clone()),
        InputConstraint::Range { .. } => unreachable!("ranges never fix"),
    };
    let mut out = vec![0.0; cp.width()];
    cp.encode_value_into(&raw, &mut out);
    out
}

/// Which PREDICT arguments stay bound after specializing `pipeline` under
/// `constraints` (one entry per input column)? Returns `None` when
/// specialization does not apply. Deterministic: both the optimizer and
/// [`Pipeline::specialize`] derive the same mask from the same inputs, so
/// a compiled-cache hit needs no stored metadata.
pub fn specialize_mask(
    pipeline: &Pipeline,
    constraints: &[Option<InputConstraint>],
) -> Option<Vec<bool>> {
    if constraints.len() != pipeline.columns.len() {
        return None;
    }
    let fixed: Vec<bool> = pipeline
        .columns
        .iter()
        .zip(constraints)
        .map(|(cp, c)| c.as_ref().is_some_and(|c| fixes(cp, c)))
        .collect();
    let any_fixed = fixed.iter().any(|b| *b);
    let any_range = pipeline
        .columns
        .iter()
        .zip(constraints)
        .any(|(cp, c)| c.as_ref().is_some_and(|c| bounds(cp, c)));
    let applies = match &pipeline.model {
        Model::Tree(_) | Model::Forest(_) | Model::Gbt(_) => any_fixed || any_range,
        Model::Linear(_) | Model::Logistic(_) => any_fixed,
        _ => false,
    };
    if !applies {
        return None;
    }
    let mut bound: Vec<bool> = fixed.iter().map(|f| !f).collect();
    // PREDICT needs at least one bound argument to carry the row count.
    if bound.iter().all(|b| !*b) {
        bound[0] = true;
    }
    Some(bound)
}

/// What specialization changed — surfaced by `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecializationReport {
    pub nodes_before: usize,
    pub nodes_after: usize,
    pub features_before: usize,
    pub features_after: usize,
    pub inputs_before: usize,
    pub inputs_after: usize,
}

impl SpecializationReport {
    /// Compact plan annotation, e.g. `spec(nodes 85->21, feats 7->3,
    /// inputs 5->3)`.
    pub fn annotation(&self) -> String {
        format!(
            "spec(nodes {}->{}, feats {}->{}, inputs {}->{})",
            self.nodes_before,
            self.nodes_after,
            self.features_before,
            self.features_after,
            self.inputs_before,
            self.inputs_after,
        )
    }
}

impl Pipeline {
    /// Specialize this pipeline under per-input predicate constraints.
    /// Returns `None` when specialization does not apply; otherwise the
    /// specialized pipeline (whose bound inputs are exactly
    /// [`specialize_mask`]'s `true` entries, in order) and a report.
    ///
    /// Scores are bit-identical to the original on every row satisfying
    /// the constraints.
    pub fn specialize(
        &self,
        constraints: &[Option<InputConstraint>],
    ) -> Option<(Pipeline, SpecializationReport)> {
        let mask = specialize_mask(self, constraints)?;
        let inputs_before = self.bound_columns().len();
        let nodes_before = self.complexity();
        let features_before = self.feature_width();

        let specialized = match &self.model {
            Model::Tree(_) | Model::Forest(_) | Model::Gbt(_) => {
                self.specialize_trees(constraints, &mask)
            }
            Model::Linear(_) | Model::Logistic(_) => self.specialize_linear(constraints, &mask),
            _ => unreachable!("specialize_mask rejected this model"),
        };

        let report = SpecializationReport {
            nodes_before,
            nodes_after: specialized.complexity(),
            features_before,
            features_after: specialized.feature_width(),
            inputs_before,
            inputs_after: specialized.bound_columns().len(),
        };
        Some((specialized, report))
    }

    /// Tree-family specialization: compress against per-feature ranges
    /// (degenerate for fixed inputs), then drop the now-unused fixed
    /// columns.
    fn specialize_trees(
        &self,
        constraints: &[Option<InputConstraint>],
        mask: &[bool],
    ) -> Pipeline {
        let dim = self.feature_width();
        let mut ranges: Vec<(f64, f64)> = vec![(f64::NEG_INFINITY, f64::INFINITY); dim];
        for (i, cp) in self.columns.iter().enumerate() {
            let Some(c) = &constraints[i] else { continue };
            let (a, b) = self.feature_range(i);
            if fixes(cp, c) {
                // Encoded fixed values are never NaN (the encoders
                // normalize NaN away), so every split on these slots
                // collapses under a [v, v] range.
                for (slot, v) in ranges[a..b].iter_mut().zip(encode_fixed(cp, c)) {
                    *slot = (v, v);
                }
            } else if bounds(cp, c) {
                let InputConstraint::Range { lo, hi } = c else {
                    unreachable!()
                };
                // push the raw range through the (monotone) numeric steps
                let (mut lo, mut hi) = (*lo, *hi);
                for s in &cp.steps {
                    lo = s.apply(lo);
                    hi = s.apply(hi);
                }
                ranges[a] = (lo.min(hi), lo.max(hi));
            }
        }
        let compressed = self.model.compress(&ranges);

        // Drop unbound columns: their features are provably unused after
        // compression (their range is a single non-NaN point).
        let mut keep_features: Vec<usize> = Vec::new();
        let mut keep_columns: Vec<ColumnPipeline> = Vec::new();
        for (i, cp) in self.columns.iter().enumerate() {
            if mask[i] {
                let (a, b) = self.feature_range(i);
                keep_features.extend(a..b);
                keep_columns.push(cp.clone());
            }
        }
        debug_assert!({
            let used = compressed.used_features(dim);
            self.columns.iter().enumerate().all(|(i, _)| {
                let (a, b) = self.feature_range(i);
                mask[i] || used[a..b].iter().all(|u| !u)
            })
        });
        let model = compressed.select_features(&keep_features, dim);
        Pipeline {
            columns: keep_columns,
            model,
            output: self.output.clone(),
        }
    }

    /// Linear/logistic specialization: swap fixed inputs' encoders for
    /// [`Encoder::Fixed`]. Feature width and weights are untouched.
    fn specialize_linear(
        &self,
        constraints: &[Option<InputConstraint>],
        mask: &[bool],
    ) -> Pipeline {
        let columns = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, cp)| {
                if mask[i] {
                    return cp.clone();
                }
                let c = constraints[i].as_ref().expect("unbound implies fixed");
                ColumnPipeline {
                    input: cp.input.clone(),
                    steps: vec![],
                    encoder: Encoder::Fixed {
                        values: encode_fixed(cp, c),
                    },
                }
            })
            .collect();
        Pipeline {
            columns,
            model: self.model.clone(),
            output: self.output.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FrameCol};
    use crate::model::{DecisionTree, LinearModel, TreeNode};

    fn tree_pipeline() -> Pipeline {
        // feature 0: age (numeric), features 1-2: city one-hot
        let tree = DecisionTree {
            nodes: vec![
                TreeNode::Split {
                    feature: 1, // city == nyc
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                TreeNode::Split {
                    feature: 0,
                    threshold: 40.0,
                    left: 3,
                    right: 4,
                },
                TreeNode::Leaf { value: 100.0 },
                TreeNode::Leaf { value: 1.0 },
                TreeNode::Leaf { value: 2.0 },
            ],
        };
        Pipeline::new(
            vec![
                ColumnPipeline::numeric("age"),
                ColumnPipeline::one_hot("city", vec!["nyc".into(), "sf".into()]),
            ],
            Model::Tree(tree),
            "score",
        )
    }

    #[test]
    fn fixed_text_prunes_tree_and_drops_column() {
        let p = tree_pipeline();
        let cs = vec![None, Some(InputConstraint::FixedText("nyc".into()))];
        let mask = specialize_mask(&p, &cs).unwrap();
        assert_eq!(mask, vec![true, false]);
        let (s, report) = p.specialize(&cs).unwrap();
        // city = 'nyc' -> one-hot (1, 0) -> nyc-slot split collapses to
        // its right leaf
        assert_eq!(report.nodes_after, 1);
        assert_eq!(s.columns.len(), 1);
        assert_eq!(s.input_names(), vec!["age"]);
        let f = Frame::new()
            .with("age", FrameCol::F64(vec![30.0, 50.0]))
            .unwrap();
        let full = Frame::new()
            .with("age", FrameCol::F64(vec![30.0, 50.0]))
            .unwrap()
            .with("city", FrameCol::Str(vec!["nyc".into(), "nyc".into()]))
            .unwrap();
        assert_eq!(s.score(&f).unwrap(), p.score(&full).unwrap());
        assert_eq!(s.score(&f).unwrap(), vec![100.0, 100.0]);
    }

    #[test]
    fn range_constraint_prunes_without_unbinding() {
        let p = tree_pipeline();
        let cs = vec![
            Some(InputConstraint::Range {
                lo: f64::NEG_INFINITY,
                hi: 35.0,
            }),
            None,
        ];
        let mask = specialize_mask(&p, &cs).unwrap();
        assert_eq!(mask, vec![true, true]);
        let (s, report) = p.specialize(&cs).unwrap();
        assert!(report.nodes_after < report.nodes_before);
        let f = Frame::new()
            .with("age", FrameCol::F64(vec![20.0, 35.0]))
            .unwrap()
            .with("city", FrameCol::Str(vec!["nyc".into(), "sf".into()]))
            .unwrap();
        assert_eq!(s.score(&f).unwrap(), p.score(&f).unwrap());
    }

    #[test]
    fn all_inputs_fixed_keeps_first_bound() {
        let p = tree_pipeline();
        let cs = vec![
            Some(InputConstraint::FixedNum(30.0)),
            Some(InputConstraint::FixedText("nyc".into())),
        ];
        let mask = specialize_mask(&p, &cs).unwrap();
        assert_eq!(mask, vec![true, false]);
        let (s, report) = p.specialize(&cs).unwrap();
        assert_eq!(report.nodes_after, 1);
        assert_eq!(s.bound_columns().len(), 1);
        let f = Frame::new()
            .with("age", FrameCol::F64(vec![30.0]))
            .unwrap();
        // city = 'nyc' -> nyc slot is 1 -> root split goes right
        assert_eq!(s.score(&f).unwrap(), vec![100.0]);
    }

    #[test]
    fn linear_folding_is_bit_exact_and_unbinds() {
        let p = Pipeline::new(
            vec![
                ColumnPipeline::numeric("a"),
                ColumnPipeline::one_hot("c", vec!["x".into(), "y".into()]),
            ],
            Model::Linear(LinearModel::new(vec![2.0, 10.0, 20.0], 1.0)),
            "score",
        );
        let cs = vec![None, Some(InputConstraint::FixedText("y".into()))];
        let (s, report) = p.specialize(&cs).unwrap();
        assert_eq!(report.features_after, report.features_before);
        assert_eq!(s.bound_columns(), vec![0]);
        assert!(matches!(s.columns[1].encoder, Encoder::Fixed { .. }));
        let f = Frame::new()
            .with("a", FrameCol::F64(vec![1.5, -2.0]))
            .unwrap();
        let full = Frame::new()
            .with("a", FrameCol::F64(vec![1.5, -2.0]))
            .unwrap()
            .with("c", FrameCol::Str(vec!["y".into(), "y".into()]))
            .unwrap();
        assert_eq!(s.score(&f).unwrap(), p.score(&full).unwrap());
    }

    #[test]
    fn inapplicable_constraints_return_none() {
        let p = tree_pipeline();
        // no constraints at all
        assert!(specialize_mask(&p, &[None, None]).is_none());
        // text constraint on a numeric column is not evaluable
        assert!(
            specialize_mask(&p, &[Some(InputConstraint::FixedText("x".into())), None]).is_none()
        );
        // arity mismatch
        assert!(specialize_mask(&p, &[None]).is_none());
        // unsupported model kind
        let knn = Pipeline::new(
            vec![ColumnPipeline::numeric("a")],
            Model::Knn(crate::model::KnnModel {
                k: 1,
                points: crate::Matrix::from_rows(&[vec![0.0]]),
                targets: vec![1.0],
            }),
            "score",
        );
        assert!(specialize_mask(&knn, &[Some(InputConstraint::FixedNum(1.0))]).is_none());
    }
}
