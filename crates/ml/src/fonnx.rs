//! FONNX — the *Flock Open Neural Network eXchange* format.
//!
//! The paper argues "the most widely studied or promising families of
//! models can be uniformly represented" (citing ONNX); FONNX is our
//! closed-world equivalent: a versioned, self-describing serialization of
//! a [`Pipeline`] that the DBMS stores as the payload of a model catalog
//! object.

use crate::error::{MlError, Result};
use crate::pipeline::Pipeline;
use serde::{Deserialize, Serialize};

/// Current format version. Readers reject newer majors.
pub const FONNX_VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
struct FonnxDocument {
    format: String,
    version: u32,
    pipeline: Pipeline,
}

/// Serialize a pipeline to FONNX bytes.
pub fn to_bytes(pipeline: &Pipeline) -> Result<Vec<u8>> {
    let doc = FonnxDocument {
        format: "fonnx".to_string(),
        version: FONNX_VERSION,
        pipeline: pipeline.clone(),
    };
    serde_json::to_vec(&doc).map_err(|e| MlError::Format(e.to_string()))
}

/// Deserialize FONNX bytes back into a pipeline.
pub fn from_bytes(bytes: &[u8]) -> Result<Pipeline> {
    let doc: FonnxDocument =
        serde_json::from_slice(bytes).map_err(|e| MlError::Format(e.to_string()))?;
    if doc.format != "fonnx" {
        return Err(MlError::Format(format!(
            "not a FONNX document (format = '{}')",
            doc.format
        )));
    }
    if doc.version > FONNX_VERSION {
        return Err(MlError::Format(format!(
            "unsupported FONNX version {} (max {FONNX_VERSION})",
            doc.version
        )));
    }
    Ok(doc.pipeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::ColumnPipeline;
    use crate::model::{LinearModel, Model};

    fn sample() -> Pipeline {
        Pipeline::new(
            vec![
                ColumnPipeline::numeric("a"),
                ColumnPipeline::one_hot("b", vec!["x".into(), "y".into()]),
            ],
            Model::Logistic(LinearModel::new(vec![1.0, 2.0, 3.0], -0.5)),
            "p",
        )
    }

    #[test]
    fn roundtrip_is_identity() {
        let p = sample();
        let bytes = to_bytes(&p).unwrap();
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn rejects_garbage_and_wrong_format() {
        assert!(from_bytes(b"not json").is_err());
        let wrong = serde_json::json!({
            "format": "onnx", "version": 1,
            "pipeline": {"columns": [], "model": {"Linear": {"weights": [], "bias": 0.0}}, "output": "y"}
        });
        assert!(from_bytes(wrong.to_string().as_bytes()).is_err());
    }

    #[test]
    fn rejects_future_version() {
        let mut doc = serde_json::from_slice::<serde_json::Value>(
            &to_bytes(&sample()).unwrap(),
        )
        .unwrap();
        doc["version"] = serde_json::json!(999);
        assert!(from_bytes(doc.to_string().as_bytes()).is_err());
    }
}
