//! FONNX — the *Flock Open Neural Network eXchange* format.
//!
//! The paper argues "the most widely studied or promising families of
//! models can be uniformly represented" (citing ONNX); FONNX is our
//! closed-world equivalent: a versioned, self-describing serialization of
//! a [`Pipeline`] that the DBMS stores as the payload of a model catalog
//! object.
//!
//! The codec is hand-written over [`serde_json::Value`] rather than
//! derived: the wire shape stays identical to what `#[derive(Serialize)]`
//! would emit (externally-tagged enums, field-name objects), but the
//! document model is the only serde entry point we use, so the format is
//! fully specified here and the crate works against any JSON backend that
//! provides a `Value` tree.

use crate::error::{MlError, Result};
use crate::featurize::{ColumnPipeline, Encoder, NumericStep};
use crate::matrix::Matrix;
use crate::model::{
    DecisionTree, GaussianNb, GbtModel, KnnModel, LinearModel, Model, RandomForest, TreeNode,
};
use crate::pipeline::Pipeline;
use serde_json::{Map, Value};

/// Current format version. Readers reject newer majors.
pub const FONNX_VERSION: u32 = 1;

/// Serialize a pipeline to FONNX bytes.
pub fn to_bytes(pipeline: &Pipeline) -> Result<Vec<u8>> {
    let mut doc = Map::new();
    doc.insert("format".to_string(), Value::from("fonnx"));
    doc.insert("version".to_string(), Value::from(FONNX_VERSION));
    doc.insert("pipeline".to_string(), pipeline_to_value(pipeline));
    let text = serde_json::to_string(&Value::Object(doc))
        .map_err(|e| MlError::Format(e.to_string()))?;
    Ok(text.into_bytes())
}

/// Deserialize FONNX bytes back into a pipeline.
pub fn from_bytes(bytes: &[u8]) -> Result<Pipeline> {
    let doc: Value =
        serde_json::from_slice(bytes).map_err(|e| MlError::Format(e.to_string()))?;
    let format = doc
        .get("format")
        .and_then(Value::as_str)
        .ok_or_else(|| MlError::Format("missing 'format' field".into()))?;
    if format != "fonnx" {
        return Err(MlError::Format(format!(
            "not a FONNX document (format = '{format}')"
        )));
    }
    let version = doc
        .get("version")
        .and_then(Value::as_u64)
        .ok_or_else(|| MlError::Format("missing 'version' field".into()))?;
    if version > FONNX_VERSION as u64 {
        return Err(MlError::Format(format!(
            "unsupported FONNX version {version} (max {FONNX_VERSION})"
        )));
    }
    let pipeline = doc
        .get("pipeline")
        .ok_or_else(|| MlError::Format("missing 'pipeline' field".into()))?;
    pipeline_from_value(pipeline)
}

// ------------------------------------------------------------- encoding

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

/// Externally-tagged enum variant: `{"Tag": payload}`.
fn variant(tag: &str, payload: Value) -> Value {
    obj(vec![(tag, payload)])
}

fn f64s(xs: &[f64]) -> Value {
    Value::Array(xs.iter().map(|&x| Value::from(x)).collect())
}

fn strings(xs: &[String]) -> Value {
    Value::Array(xs.iter().map(|s| Value::from(s.as_str())).collect())
}

fn pipeline_to_value(p: &Pipeline) -> Value {
    obj(vec![
        (
            "columns",
            Value::Array(p.columns.iter().map(column_to_value).collect()),
        ),
        ("model", model_to_value(&p.model)),
        ("output", Value::from(p.output.as_str())),
    ])
}

fn column_to_value(c: &ColumnPipeline) -> Value {
    obj(vec![
        ("input", Value::from(c.input.as_str())),
        (
            "steps",
            Value::Array(c.steps.iter().map(step_to_value).collect()),
        ),
        ("encoder", encoder_to_value(&c.encoder)),
    ])
}

fn step_to_value(s: &NumericStep) -> Value {
    match s {
        NumericStep::Impute { fill } => {
            variant("Impute", obj(vec![("fill", Value::from(*fill))]))
        }
        NumericStep::Standardize { mean, std } => variant(
            "Standardize",
            obj(vec![("mean", Value::from(*mean)), ("std", Value::from(*std))]),
        ),
        NumericStep::MinMax { min, max } => variant(
            "MinMax",
            obj(vec![("min", Value::from(*min)), ("max", Value::from(*max))]),
        ),
        NumericStep::Log1p => Value::from("Log1p"),
        NumericStep::Clip { lo, hi } => variant(
            "Clip",
            obj(vec![("lo", Value::from(*lo)), ("hi", Value::from(*hi))]),
        ),
    }
}

fn encoder_to_value(e: &Encoder) -> Value {
    match e {
        Encoder::Numeric => Value::from("Numeric"),
        Encoder::OneHot { categories } => variant(
            "OneHot",
            obj(vec![("categories", strings(categories))]),
        ),
        Encoder::Hashing { buckets } => {
            variant("Hashing", obj(vec![("buckets", Value::from(*buckets))]))
        }
        Encoder::Binned { edges } => variant("Binned", obj(vec![("edges", f64s(edges))])),
        Encoder::Fixed { values } => variant("Fixed", obj(vec![("values", f64s(values))])),
    }
}

fn model_to_value(m: &Model) -> Value {
    match m {
        Model::Linear(lm) => variant("Linear", linear_to_value(lm)),
        Model::Logistic(lm) => variant("Logistic", linear_to_value(lm)),
        Model::Tree(t) => variant("Tree", tree_to_value(t)),
        Model::Forest(f) => variant(
            "Forest",
            obj(vec![(
                "trees",
                Value::Array(f.trees.iter().map(tree_to_value).collect()),
            )]),
        ),
        Model::Gbt(g) => variant(
            "Gbt",
            obj(vec![
                (
                    "trees",
                    Value::Array(g.trees.iter().map(tree_to_value).collect()),
                ),
                ("learning_rate", Value::from(g.learning_rate)),
                ("base_score", Value::from(g.base_score)),
                ("sigmoid_output", Value::from(g.sigmoid_output)),
            ]),
        ),
        Model::NaiveBayes(nb) => variant(
            "NaiveBayes",
            obj(vec![
                ("log_prior_ratio", Value::from(nb.log_prior_ratio)),
                ("class0", pairs_to_value(&nb.class0)),
                ("class1", pairs_to_value(&nb.class1)),
            ]),
        ),
        Model::Knn(k) => variant(
            "Knn",
            obj(vec![
                ("k", Value::from(k.k)),
                ("points", matrix_to_value(&k.points)),
                ("targets", f64s(&k.targets)),
            ]),
        ),
    }
}

fn linear_to_value(lm: &LinearModel) -> Value {
    obj(vec![
        ("weights", f64s(&lm.weights)),
        ("bias", Value::from(lm.bias)),
    ])
}

fn tree_to_value(t: &DecisionTree) -> Value {
    obj(vec![(
        "nodes",
        Value::Array(t.nodes.iter().map(node_to_value).collect()),
    )])
}

fn node_to_value(n: &TreeNode) -> Value {
    match n {
        TreeNode::Split {
            feature,
            threshold,
            left,
            right,
        } => variant(
            "Split",
            obj(vec![
                ("feature", Value::from(*feature)),
                ("threshold", Value::from(*threshold)),
                ("left", Value::from(*left)),
                ("right", Value::from(*right)),
            ]),
        ),
        TreeNode::Leaf { value } => {
            variant("Leaf", obj(vec![("value", Value::from(*value))]))
        }
    }
}

fn pairs_to_value(ps: &[(f64, f64)]) -> Value {
    Value::Array(
        ps.iter()
            .map(|&(a, b)| Value::Array(vec![Value::from(a), Value::from(b)]))
            .collect(),
    )
}

fn matrix_to_value(m: &Matrix) -> Value {
    obj(vec![
        ("rows", Value::from(m.rows())),
        ("cols", Value::from(m.cols())),
        ("data", f64s(m.data())),
    ])
}

// ------------------------------------------------------------- decoding

fn bad(what: &str) -> MlError {
    MlError::Format(format!("malformed FONNX: {what}"))
}

fn get<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a Value> {
    v.get(key).ok_or_else(|| bad(&format!("{what}.{key} missing")))
}

fn as_f64(v: &Value, what: &str) -> Result<f64> {
    v.as_f64().ok_or_else(|| bad(&format!("{what} not a number")))
}

fn as_usize(v: &Value, what: &str) -> Result<usize> {
    v.as_u64()
        .map(|u| u as usize)
        .ok_or_else(|| bad(&format!("{what} not an integer")))
}

fn as_bool(v: &Value, what: &str) -> Result<bool> {
    v.as_bool().ok_or_else(|| bad(&format!("{what} not a bool")))
}

fn as_str<'a>(v: &'a Value, what: &str) -> Result<&'a str> {
    v.as_str().ok_or_else(|| bad(&format!("{what} not a string")))
}

fn as_array<'a>(v: &'a Value, what: &str) -> Result<&'a Vec<Value>> {
    v.as_array().ok_or_else(|| bad(&format!("{what} not an array")))
}

fn f64s_from(v: &Value, what: &str) -> Result<Vec<f64>> {
    as_array(v, what)?.iter().map(|x| as_f64(x, what)).collect()
}

fn strings_from(v: &Value, what: &str) -> Result<Vec<String>> {
    as_array(v, what)?
        .iter()
        .map(|x| as_str(x, what).map(str::to_string))
        .collect()
}

/// Split an externally-tagged enum value into `(tag, payload)`. Unit
/// variants arrive as plain strings with a null payload.
fn untag<'a>(v: &'a Value, what: &str) -> Result<(&'a str, &'a Value)> {
    static NULL: Value = Value::Null;
    if let Some(tag) = v.as_str() {
        return Ok((tag, &NULL));
    }
    let m = v
        .as_object()
        .ok_or_else(|| bad(&format!("{what} not a variant")))?;
    let mut it = m.iter();
    match (it.next(), it.next()) {
        (Some((tag, payload)), None) => Ok((tag.as_str(), payload)),
        _ => Err(bad(&format!("{what} not a single-key variant"))),
    }
}

fn pipeline_from_value(v: &Value) -> Result<Pipeline> {
    let columns = as_array(get(v, "columns", "pipeline")?, "pipeline.columns")?
        .iter()
        .map(column_from_value)
        .collect::<Result<Vec<_>>>()?;
    let model = model_from_value(get(v, "model", "pipeline")?)?;
    let output = as_str(get(v, "output", "pipeline")?, "pipeline.output")?.to_string();
    Ok(Pipeline {
        columns,
        model,
        output,
    })
}

fn column_from_value(v: &Value) -> Result<ColumnPipeline> {
    let input = as_str(get(v, "input", "column")?, "column.input")?.to_string();
    let steps = as_array(get(v, "steps", "column")?, "column.steps")?
        .iter()
        .map(step_from_value)
        .collect::<Result<Vec<_>>>()?;
    let encoder = encoder_from_value(get(v, "encoder", "column")?)?;
    Ok(ColumnPipeline {
        input,
        steps,
        encoder,
    })
}

fn step_from_value(v: &Value) -> Result<NumericStep> {
    let (tag, p) = untag(v, "step")?;
    match tag {
        "Impute" => Ok(NumericStep::Impute {
            fill: as_f64(get(p, "fill", "Impute")?, "Impute.fill")?,
        }),
        "Standardize" => Ok(NumericStep::Standardize {
            mean: as_f64(get(p, "mean", "Standardize")?, "Standardize.mean")?,
            std: as_f64(get(p, "std", "Standardize")?, "Standardize.std")?,
        }),
        "MinMax" => Ok(NumericStep::MinMax {
            min: as_f64(get(p, "min", "MinMax")?, "MinMax.min")?,
            max: as_f64(get(p, "max", "MinMax")?, "MinMax.max")?,
        }),
        "Log1p" => Ok(NumericStep::Log1p),
        "Clip" => Ok(NumericStep::Clip {
            lo: as_f64(get(p, "lo", "Clip")?, "Clip.lo")?,
            hi: as_f64(get(p, "hi", "Clip")?, "Clip.hi")?,
        }),
        other => Err(bad(&format!("unknown numeric step '{other}'"))),
    }
}

fn encoder_from_value(v: &Value) -> Result<Encoder> {
    let (tag, p) = untag(v, "encoder")?;
    match tag {
        "Numeric" => Ok(Encoder::Numeric),
        "OneHot" => Ok(Encoder::OneHot {
            categories: strings_from(
                get(p, "categories", "OneHot")?,
                "OneHot.categories",
            )?,
        }),
        "Hashing" => Ok(Encoder::Hashing {
            buckets: as_usize(get(p, "buckets", "Hashing")?, "Hashing.buckets")?,
        }),
        "Binned" => Ok(Encoder::Binned {
            edges: f64s_from(get(p, "edges", "Binned")?, "Binned.edges")?,
        }),
        "Fixed" => Ok(Encoder::Fixed {
            values: f64s_from(get(p, "values", "Fixed")?, "Fixed.values")?,
        }),
        other => Err(bad(&format!("unknown encoder '{other}'"))),
    }
}

fn model_from_value(v: &Value) -> Result<Model> {
    let (tag, p) = untag(v, "model")?;
    match tag {
        "Linear" => Ok(Model::Linear(linear_from_value(p)?)),
        "Logistic" => Ok(Model::Logistic(linear_from_value(p)?)),
        "Tree" => Ok(Model::Tree(tree_from_value(p)?)),
        "Forest" => Ok(Model::Forest(RandomForest {
            trees: trees_from_value(get(p, "trees", "Forest")?)?,
        })),
        "Gbt" => Ok(Model::Gbt(GbtModel {
            trees: trees_from_value(get(p, "trees", "Gbt")?)?,
            learning_rate: as_f64(get(p, "learning_rate", "Gbt")?, "Gbt.learning_rate")?,
            base_score: as_f64(get(p, "base_score", "Gbt")?, "Gbt.base_score")?,
            sigmoid_output: as_bool(
                get(p, "sigmoid_output", "Gbt")?,
                "Gbt.sigmoid_output",
            )?,
        })),
        "NaiveBayes" => Ok(Model::NaiveBayes(GaussianNb {
            log_prior_ratio: as_f64(
                get(p, "log_prior_ratio", "NaiveBayes")?,
                "NaiveBayes.log_prior_ratio",
            )?,
            class0: pairs_from_value(get(p, "class0", "NaiveBayes")?)?,
            class1: pairs_from_value(get(p, "class1", "NaiveBayes")?)?,
        })),
        "Knn" => Ok(Model::Knn(KnnModel {
            k: as_usize(get(p, "k", "Knn")?, "Knn.k")?,
            points: matrix_from_value(get(p, "points", "Knn")?)?,
            targets: f64s_from(get(p, "targets", "Knn")?, "Knn.targets")?,
        })),
        other => Err(bad(&format!("unknown model kind '{other}'"))),
    }
}

fn linear_from_value(v: &Value) -> Result<LinearModel> {
    Ok(LinearModel {
        weights: f64s_from(get(v, "weights", "linear")?, "linear.weights")?,
        bias: as_f64(get(v, "bias", "linear")?, "linear.bias")?,
    })
}

fn tree_from_value(v: &Value) -> Result<DecisionTree> {
    let nodes = as_array(get(v, "nodes", "tree")?, "tree.nodes")?
        .iter()
        .map(node_from_value)
        .collect::<Result<Vec<_>>>()?;
    Ok(DecisionTree { nodes })
}

fn trees_from_value(v: &Value) -> Result<Vec<DecisionTree>> {
    as_array(v, "trees")?.iter().map(tree_from_value).collect()
}

fn node_from_value(v: &Value) -> Result<TreeNode> {
    let (tag, p) = untag(v, "node")?;
    match tag {
        "Split" => Ok(TreeNode::Split {
            feature: as_usize(get(p, "feature", "Split")?, "Split.feature")?,
            threshold: as_f64(get(p, "threshold", "Split")?, "Split.threshold")?,
            left: as_usize(get(p, "left", "Split")?, "Split.left")?,
            right: as_usize(get(p, "right", "Split")?, "Split.right")?,
        }),
        "Leaf" => Ok(TreeNode::Leaf {
            value: as_f64(get(p, "value", "Leaf")?, "Leaf.value")?,
        }),
        other => Err(bad(&format!("unknown tree node '{other}'"))),
    }
}

fn pairs_from_value(v: &Value) -> Result<Vec<(f64, f64)>> {
    as_array(v, "pairs")?
        .iter()
        .map(|pair| {
            let a = as_array(pair, "pair")?;
            if a.len() != 2 {
                return Err(bad("pair arity"));
            }
            Ok((as_f64(&a[0], "pair.0")?, as_f64(&a[1], "pair.1")?))
        })
        .collect()
}

fn matrix_from_value(v: &Value) -> Result<Matrix> {
    let rows = as_usize(get(v, "rows", "matrix")?, "matrix.rows")?;
    let cols = as_usize(get(v, "cols", "matrix")?, "matrix.cols")?;
    let data = f64s_from(get(v, "data", "matrix")?, "matrix.data")?;
    if data.len() != rows * cols {
        return Err(bad("matrix shape/data mismatch"));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::ColumnPipeline;
    use crate::model::{LinearModel, Model};

    fn sample() -> Pipeline {
        Pipeline::new(
            vec![
                ColumnPipeline::numeric("a"),
                ColumnPipeline::one_hot("b", vec!["x".into(), "y".into()]),
            ],
            Model::Logistic(LinearModel::new(vec![1.0, 2.0, 3.0], -0.5)),
            "p",
        )
    }

    #[test]
    fn roundtrip_is_identity() {
        let p = sample();
        let bytes = to_bytes(&p).unwrap();
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn roundtrips_every_model_family() {
        use crate::model::{
            DecisionTree, GaussianNb, GbtModel, KnnModel, RandomForest, TreeNode,
        };
        let tree = DecisionTree {
            nodes: vec![
                TreeNode::Split {
                    feature: 0,
                    threshold: 1.5,
                    left: 1,
                    right: 2,
                },
                TreeNode::Leaf { value: -1.0 },
                TreeNode::Leaf { value: 2.5 },
            ],
        };
        let models = vec![
            Model::Linear(LinearModel::new(vec![0.25, -4.0], 1.0)),
            Model::Tree(tree.clone()),
            Model::Forest(RandomForest {
                trees: vec![tree.clone(), tree.clone()],
            }),
            Model::Gbt(GbtModel {
                trees: vec![tree],
                learning_rate: 0.1,
                base_score: 0.5,
                sigmoid_output: true,
            }),
            Model::NaiveBayes(GaussianNb {
                log_prior_ratio: 0.2,
                class0: vec![(0.0, 1.0), (2.0, 0.5)],
                class1: vec![(1.0, 1.0), (3.0, 0.25)],
            }),
            Model::Knn(KnnModel {
                k: 3,
                points: Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]),
                targets: vec![0.0, 1.0],
            }),
        ];
        for model in models {
            let p = Pipeline::new(
                vec![ColumnPipeline::numeric("a"), ColumnPipeline::numeric("b")],
                model,
                "out",
            );
            let back = from_bytes(&to_bytes(&p).unwrap()).unwrap();
            assert_eq!(p, back);
        }
    }

    #[test]
    fn rejects_garbage_and_wrong_format() {
        assert!(from_bytes(b"not json").is_err());
        let wrong = serde_json::json!({
            "format": "onnx", "version": 1,
            "pipeline": {"columns": [], "model": {"Linear": {"weights": [], "bias": 0.0}}, "output": "y"}
        });
        assert!(from_bytes(wrong.to_string().as_bytes()).is_err());
    }

    #[test]
    fn rejects_future_version() {
        let mut doc = serde_json::from_slice::<serde_json::Value>(
            &to_bytes(&sample()).unwrap(),
        )
        .unwrap();
        doc["version"] = serde_json::json!(999);
        assert!(from_bytes(doc.to_string().as_bytes()).is_err());
    }
}
