//! Gaussian naive Bayes (binary).

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Per-class Gaussian parameters over each feature, binary classes {0, 1}.
/// Scores return P(class = 1 | x).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNb {
    /// log prior of class 1 minus class 0.
    pub log_prior_ratio: f64,
    /// (mean, variance) per feature for class 0.
    pub class0: Vec<(f64, f64)>,
    /// (mean, variance) per feature for class 1.
    pub class1: Vec<(f64, f64)>,
}

const VAR_FLOOR: f64 = 1e-9;

impl GaussianNb {
    pub fn dim(&self) -> usize {
        self.class0.len()
    }

    fn log_likelihood(params: &[(f64, f64)], x: &[f64]) -> f64 {
        let mut ll = 0.0;
        for (v, (mean, var)) in x.iter().zip(params) {
            if v.is_nan() {
                continue; // missing features contribute nothing
            }
            let var = var.max(VAR_FLOOR);
            ll += -0.5 * ((v - mean) * (v - mean) / var + var.ln());
        }
        ll
    }

    pub fn score_row(&self, x: &[f64]) -> f64 {
        let l1 = Self::log_likelihood(&self.class1, x) + self.log_prior_ratio;
        let l0 = Self::log_likelihood(&self.class0, x);
        super::linear::sigmoid(l1 - l0)
    }

    pub fn score_batch(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.score_row(x.row(r))).collect()
    }

    /// Features whose class-conditional distributions differ — others
    /// cannot affect the posterior and count as unused.
    pub fn used_features(&self) -> Vec<bool> {
        self.class0
            .iter()
            .zip(&self.class1)
            .map(|(a, b)| a != b)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GaussianNb {
        GaussianNb {
            log_prior_ratio: 0.0,
            class0: vec![(0.0, 1.0), (5.0, 1.0)],
            class1: vec![(4.0, 1.0), (5.0, 1.0)],
        }
    }

    #[test]
    fn separates_classes() {
        let m = model();
        assert!(m.score_row(&[4.0, 5.0]) > 0.9);
        assert!(m.score_row(&[0.0, 5.0]) < 0.1);
        let boundary = m.score_row(&[2.0, 5.0]);
        assert!((boundary - 0.5).abs() < 1e-9);
    }

    #[test]
    fn missing_features_are_neutral() {
        let m = model();
        let with = m.score_row(&[4.0, f64::NAN]);
        let without = m.score_row(&[4.0, 5.0]);
        assert!((with - without).abs() < 1e-9, "x1 is identical per class");
    }

    #[test]
    fn unused_feature_detection() {
        let m = model();
        assert_eq!(m.used_features(), vec![true, false]);
    }

    #[test]
    fn prior_shifts_scores() {
        let mut m = model();
        m.log_prior_ratio = 3.0;
        assert!(m.score_row(&[2.0, 5.0]) > 0.9);
    }
}
