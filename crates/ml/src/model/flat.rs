//! Flattened tree ensembles: a packed-node layout plus a batch walk
//! kernel.
//!
//! The arena-of-enums representation in [`tree`](super::tree) is the
//! training/serialization format; scoring it walks tagged-enum nodes per
//! row per tree. The compiled-pipeline cache instead stores ensembles in
//! this flattened layout — one contiguous array of 24-byte packed nodes
//! shared by every tree, so a node visit is a single indexed load of one
//! cache line (the earlier four parallel arrays cost four bounds checks
//! and up to four cache lines per visit) — and evaluates them
//! batch-at-a-time: the row loop streams the feature matrix while the
//! compact node array stays cache-resident.
//!
//! Scores are bit-identical to the arena walker: the same NaN-goes-left
//! split rule, and per-row tree contributions accumulated in tree order
//! (matching the `iter().map(score_row).sum()` left fold).

use super::tree::{DecisionTree, TreeNode};
use crate::matrix::Matrix;

/// Sentinel feature index marking a leaf node.
pub const LEAF: u32 = u32::MAX;

/// One flattened tree node: 24 bytes, a single cache-line-friendly load
/// per visit. For leaves, `threshold` holds the leaf *value* and
/// `feature` is [`LEAF`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct FlatNode {
    /// Split threshold for internal nodes; the leaf value for leaves.
    threshold: f64,
    /// Split feature; [`LEAF`] marks leaves.
    feature: u32,
    /// Child links. Leaves self-loop (`left == right == self`), so the
    /// level-synchronous batch kernel can keep stepping every cursor for
    /// a fixed number of rounds without a per-row "done" branch.
    left: u32,
    right: u32,
}

/// One or more trees flattened into shared packed-node storage.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatTrees {
    nodes: Vec<FlatNode>,
    /// Node index of each tree's root.
    roots: Vec<u32>,
    /// Max root-to-leaf edge count per tree: how many synchronous steps
    /// the batch kernel needs before every cursor is parked on a leaf.
    depths: Vec<u32>,
}

/// Reusable per-session buffers for [`FlatTrees::accumulate_batched`].
/// Holding one of these across calls keeps the hot serving path free of
/// per-statement allocation.
#[derive(Debug, Default, Clone)]
pub struct BatchScratch {
    /// Current node index of each row's walk.
    cursors: Vec<u32>,
    /// Per-row running ensemble sum (tree-order left fold).
    sums: Vec<f64>,
}

fn tree_depth(nodes: &[TreeNode], i: usize) -> u32 {
    match &nodes[i] {
        TreeNode::Leaf { .. } => 0,
        TreeNode::Split { left, right, .. } => {
            1 + tree_depth(nodes, *left).max(tree_depth(nodes, *right))
        }
    }
}

impl FlatTrees {
    pub fn from_trees(trees: &[DecisionTree]) -> FlatTrees {
        let total: usize = trees.iter().map(DecisionTree::num_nodes).sum();
        let mut flat = FlatTrees {
            nodes: Vec::with_capacity(total),
            roots: Vec::with_capacity(trees.len()),
            depths: Vec::with_capacity(trees.len()),
        };
        for t in trees {
            let base = flat.nodes.len() as u32;
            flat.roots.push(base);
            flat.depths.push(tree_depth(&t.nodes, 0));
            for (n, node) in t.nodes.iter().enumerate() {
                flat.nodes.push(match node {
                    TreeNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => FlatNode {
                        threshold: *threshold,
                        feature: *feature as u32,
                        left: base + *left as u32,
                        right: base + *right as u32,
                    },
                    TreeNode::Leaf { value } => FlatNode {
                        threshold: *value,
                        feature: LEAF,
                        left: base + n as u32,
                        right: base + n as u32,
                    },
                });
            }
        }
        flat
    }

    pub fn num_trees(&self) -> usize {
        self.roots.len()
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Add every tree's prediction for every row into `acc` (length =
    /// `x.rows()`), tree by tree in order per row — the same left-fold
    /// summation order as the arena walker.
    pub fn accumulate(&self, x: &Matrix, acc: &mut [f64]) {
        debug_assert_eq!(acc.len(), x.rows());
        for (r, out) in acc.iter_mut().enumerate() {
            let row = x.row(r);
            let mut sum = 0.0;
            for &root in &self.roots {
                let mut node = &self.nodes[root as usize];
                while node.feature != LEAF {
                    let v = row[node.feature as usize];
                    let next = if v.is_nan() || v <= node.threshold {
                        node.left
                    } else {
                        node.right
                    };
                    node = &self.nodes[next as usize];
                }
                sum += node.threshold;
            }
            *out += sum;
        }
    }

    /// Batched variant of [`accumulate`](Self::accumulate): level-
    /// synchronous traversal over row blocks. Within a block, one tree
    /// at a time, every row's cursor takes the tree's full depth in
    /// lock-step rounds; the inner loop is branch-predictable (a
    /// data-dependent select, no walk-termination branch) because leaves
    /// self-loop, and the rows are independent so the node loads
    /// pipeline across iterations instead of serializing on one row's
    /// parent-to-child chain. Blocking keeps the feature rows
    /// L1-resident across all `trees × depth` rounds that revisit them,
    /// and the final round folds the landed leaf's value straight into
    /// the row sum. Bit-exact with the scalar walker: the split rule
    /// compares `v > threshold` (NaN compares false → goes left, same
    /// as `v.is_nan() || v <= threshold`), and per-row sums fold tree
    /// contributions in tree order before a single add into `acc`.
    ///
    /// `scratch` buffers are grown on demand and reused across calls.
    pub fn accumulate_batched(&self, x: &Matrix, acc: &mut [f64], scratch: &mut BatchScratch) {
        debug_assert_eq!(acc.len(), x.rows());
        let rows = x.rows();
        let cols = x.cols();
        if rows == 0 {
            return;
        }
        if cols == 0 {
            // No features to clamp leaf sentinels onto; the scalar walker
            // handles degenerate single-leaf trees without touching rows.
            return self.accumulate(x, acc);
        }
        // Rows per block: 256 rows of a dozen f64 features ≈ 24 KiB,
        // comfortably inside L1d alongside one tree's packed nodes.
        const BLOCK: usize = 256;
        let block = BLOCK.min(rows);
        scratch.cursors.resize(block, 0);
        scratch.sums.resize(block, 0.0);
        let nodes = self.nodes.as_slice();
        for (out_block, x_block) in acc.chunks_mut(BLOCK).zip(x.data().chunks(BLOCK * cols)) {
            let n = out_block.len();
            let cursors = &mut scratch.cursors[..n];
            let sums = &mut scratch.sums[..n];
            sums.fill(0.0);
            for (t, &root) in self.roots.iter().enumerate() {
                let depth = self.depths[t];
                if depth == 0 {
                    // Single-leaf tree: no walk, just the leaf value.
                    let v = nodes[root as usize].threshold;
                    for sum in sums.iter_mut() {
                        *sum += v;
                    }
                    continue;
                }
                cursors.fill(root);
                for _ in 0..depth - 1 {
                    for (cursor, row) in cursors.iter_mut().zip(x_block.chunks_exact(cols)) {
                        let node = &nodes[*cursor as usize];
                        // Leaves carry the LEAF sentinel: clamp the
                        // feature index into range (the loaded value is
                        // discarded — the self-loop keeps the cursor
                        // parked either way).
                        let fi = (node.feature as usize).min(cols - 1);
                        *cursor = if row[fi] > node.threshold {
                            node.right
                        } else {
                            node.left
                        };
                    }
                }
                // Final round: every cursor lands on (or already sits
                // self-looped at) a leaf; fold its value into the row
                // sum in the same pass.
                for (sum, (cursor, row)) in sums
                    .iter_mut()
                    .zip(cursors.iter().zip(x_block.chunks_exact(cols)))
                {
                    let node = &nodes[*cursor as usize];
                    let fi = (node.feature as usize).min(cols - 1);
                    let leaf = if row[fi] > node.threshold {
                        node.right
                    } else {
                        node.left
                    };
                    *sum += nodes[leaf as usize].threshold;
                }
            }
            for (out, &sum) in out_block.iter_mut().zip(sums.iter()) {
                *out += sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tree::TreeNode;

    fn sample() -> DecisionTree {
        // x0 <= 5 ? (x1 <= 2 ? 10 : 20) : 30
        DecisionTree {
            nodes: vec![
                TreeNode::Split {
                    feature: 0,
                    threshold: 5.0,
                    left: 1,
                    right: 2,
                },
                TreeNode::Split {
                    feature: 1,
                    threshold: 2.0,
                    left: 3,
                    right: 4,
                },
                TreeNode::Leaf { value: 30.0 },
                TreeNode::Leaf { value: 10.0 },
                TreeNode::Leaf { value: 20.0 },
            ],
        }
    }

    #[test]
    fn flat_matches_arena_walker() {
        let trees = vec![sample(), DecisionTree::leaf(-3.0), sample()];
        let flat = FlatTrees::from_trees(&trees);
        assert_eq!(flat.num_trees(), 3);
        assert_eq!(flat.num_nodes(), 11);
        let rows = vec![
            vec![4.0, 1.0],
            vec![4.0, 3.0],
            vec![6.0, 0.0],
            vec![f64::NAN, 1.0],
            vec![5.0, f64::NAN],
        ];
        let x = Matrix::from_rows(&rows);
        let mut acc = vec![0.0; rows.len()];
        flat.accumulate(&x, &mut acc);
        for (r, row) in rows.iter().enumerate() {
            let expected: f64 = trees.iter().map(|t| t.score_row(row)).sum();
            assert_eq!(acc[r], expected, "row {r}");
        }
    }

    #[test]
    fn empty_ensemble_accumulates_nothing() {
        let flat = FlatTrees::from_trees(&[]);
        let x = Matrix::from_rows(&[vec![1.0]]);
        let mut acc = vec![0.0; 1];
        flat.accumulate(&x, &mut acc);
        assert_eq!(acc, vec![0.0]);
    }

    #[test]
    fn batched_is_bit_exact_with_scalar() {
        // Mixed depths (3-deep, single-leaf, 3-deep) plus NaN rows and
        // boundary values exercise the self-loop and clamp paths.
        let trees = vec![sample(), DecisionTree::leaf(-3.0), sample()];
        let flat = FlatTrees::from_trees(&trees);
        let rows = vec![
            vec![4.0, 1.0],
            vec![4.0, 3.0],
            vec![6.0, 0.0],
            vec![f64::NAN, 1.0],
            vec![5.0, f64::NAN],
            vec![5.0, 2.0],
            vec![f64::INFINITY, f64::NEG_INFINITY],
        ];
        let x = Matrix::from_rows(&rows);
        let mut scalar = vec![0.5; rows.len()];
        flat.accumulate(&x, &mut scalar);
        let mut batched = vec![0.5; rows.len()];
        let mut scratch = BatchScratch::default();
        flat.accumulate_batched(&x, &mut batched, &mut scratch);
        for r in 0..rows.len() {
            assert_eq!(
                scalar[r].to_bits(),
                batched[r].to_bits(),
                "row {r} diverged"
            );
        }
        // Scratch reuse across a second, smaller batch stays exact.
        let x2 = Matrix::from_rows(&rows[..3]);
        let mut s2 = vec![0.0; 3];
        flat.accumulate(&x2, &mut s2);
        let mut b2 = vec![0.0; 3];
        flat.accumulate_batched(&x2, &mut b2, &mut scratch);
        assert_eq!(s2, b2);
    }

    #[test]
    fn batched_handles_unbalanced_trees() {
        // A lopsided tree (left arm 3 deep, right arm a bare leaf): rows
        // landing early self-loop through the remaining rounds while
        // deep rows keep walking — both must match the scalar walk.
        let lopsided = DecisionTree {
            nodes: vec![
                TreeNode::Split {
                    feature: 0,
                    threshold: 10.0,
                    left: 1,
                    right: 2,
                },
                TreeNode::Split {
                    feature: 1,
                    threshold: 1.0,
                    left: 3,
                    right: 4,
                },
                TreeNode::Leaf { value: 100.0 },
                TreeNode::Split {
                    feature: 0,
                    threshold: 3.0,
                    left: 5,
                    right: 6,
                },
                TreeNode::Leaf { value: 7.0 },
                TreeNode::Leaf { value: -1.0 },
                TreeNode::Leaf { value: 2.0 },
            ],
        };
        let flat = FlatTrees::from_trees(&[lopsided.clone(), sample()]);
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i as f64) * 0.4, (i % 7) as f64 * 0.5])
            .collect();
        let x = Matrix::from_rows(&rows);
        let mut scalar = vec![0.0; rows.len()];
        flat.accumulate(&x, &mut scalar);
        let mut batched = vec![0.0; rows.len()];
        let mut scratch = BatchScratch::default();
        flat.accumulate_batched(&x, &mut batched, &mut scratch);
        assert_eq!(scalar, batched);
        for (r, row) in rows.iter().enumerate() {
            let expected = lopsided.score_row(row) + sample().score_row(row);
            assert_eq!(batched[r], expected, "row {r}");
        }
    }

    #[test]
    fn batched_empty_ensemble_and_empty_batch() {
        let flat = FlatTrees::from_trees(&[]);
        let x = Matrix::from_rows(&[vec![1.0]]);
        let mut acc = vec![0.25];
        let mut scratch = BatchScratch::default();
        flat.accumulate_batched(&x, &mut acc, &mut scratch);
        assert_eq!(acc, vec![0.25]);

        let trees = vec![sample()];
        let flat = FlatTrees::from_trees(&trees);
        let empty = Matrix::zeros(0, 2);
        let mut acc: Vec<f64> = Vec::new();
        flat.accumulate_batched(&empty, &mut acc, &mut scratch);
        assert!(acc.is_empty());
    }

    #[test]
    fn depths_cover_every_leaf() {
        let trees = vec![sample(), DecisionTree::leaf(7.0)];
        let flat = FlatTrees::from_trees(&trees);
        assert_eq!(flat.depths, vec![2, 0]);
    }
}
