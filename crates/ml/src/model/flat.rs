//! Flattened tree ensembles: a struct-of-arrays node layout plus a
//! batch walk kernel.
//!
//! The arena-of-enums representation in [`tree`](super::tree) is the
//! training/serialization format; scoring it walks tagged-enum nodes per
//! row per tree. The compiled-pipeline cache instead stores ensembles in
//! this flattened layout — parallel `feature`/`threshold`/`left`/`right`
//! arrays shared by every tree, 20 bytes per node instead of an enum
//! word-aligned to 40 — and evaluates them batch-at-a-time: the row loop
//! streams the feature matrix exactly once while the compact node arrays
//! stay cache-resident, and each row walks only its own root-to-leaf
//! path (no per-level full-batch sweeps).
//!
//! Scores are bit-identical to the arena walker: the same NaN-goes-left
//! split rule, and per-row tree contributions accumulated in tree order
//! (matching the `iter().map(score_row).sum()` left fold).

use super::tree::{DecisionTree, TreeNode};
use crate::matrix::Matrix;

/// Sentinel feature index marking a leaf node.
pub const LEAF: u32 = u32::MAX;

/// One or more trees flattened into shared struct-of-arrays storage.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatTrees {
    /// Split feature per node; [`LEAF`] marks leaves.
    feature: Vec<u32>,
    /// Split threshold for internal nodes; the leaf *value* for leaves.
    threshold: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    /// Node index of each tree's root.
    roots: Vec<u32>,
}

impl FlatTrees {
    pub fn from_trees(trees: &[DecisionTree]) -> FlatTrees {
        let total: usize = trees.iter().map(DecisionTree::num_nodes).sum();
        let mut flat = FlatTrees {
            feature: Vec::with_capacity(total),
            threshold: Vec::with_capacity(total),
            left: Vec::with_capacity(total),
            right: Vec::with_capacity(total),
            roots: Vec::with_capacity(trees.len()),
        };
        for t in trees {
            let base = flat.feature.len() as u32;
            flat.roots.push(base);
            for node in &t.nodes {
                match node {
                    TreeNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        flat.feature.push(*feature as u32);
                        flat.threshold.push(*threshold);
                        flat.left.push(base + *left as u32);
                        flat.right.push(base + *right as u32);
                    }
                    TreeNode::Leaf { value } => {
                        flat.feature.push(LEAF);
                        flat.threshold.push(*value);
                        flat.left.push(0);
                        flat.right.push(0);
                    }
                }
            }
        }
        flat
    }

    pub fn num_trees(&self) -> usize {
        self.roots.len()
    }

    pub fn num_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Add every tree's prediction for every row into `acc` (length =
    /// `x.rows()`), tree by tree in order per row — the same left-fold
    /// summation order as the arena walker.
    pub fn accumulate(&self, x: &Matrix, acc: &mut [f64]) {
        debug_assert_eq!(acc.len(), x.rows());
        for (r, out) in acc.iter_mut().enumerate() {
            let row = x.row(r);
            let mut sum = 0.0;
            for &root in &self.roots {
                let mut i = root as usize;
                let mut f = self.feature[i];
                while f != LEAF {
                    let v = row[f as usize];
                    i = if v.is_nan() || v <= self.threshold[i] {
                        self.left[i]
                    } else {
                        self.right[i]
                    } as usize;
                    f = self.feature[i];
                }
                sum += self.threshold[i];
            }
            *out += sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tree::TreeNode;

    fn sample() -> DecisionTree {
        // x0 <= 5 ? (x1 <= 2 ? 10 : 20) : 30
        DecisionTree {
            nodes: vec![
                TreeNode::Split {
                    feature: 0,
                    threshold: 5.0,
                    left: 1,
                    right: 2,
                },
                TreeNode::Split {
                    feature: 1,
                    threshold: 2.0,
                    left: 3,
                    right: 4,
                },
                TreeNode::Leaf { value: 30.0 },
                TreeNode::Leaf { value: 10.0 },
                TreeNode::Leaf { value: 20.0 },
            ],
        }
    }

    #[test]
    fn flat_matches_arena_walker() {
        let trees = vec![sample(), DecisionTree::leaf(-3.0), sample()];
        let flat = FlatTrees::from_trees(&trees);
        assert_eq!(flat.num_trees(), 3);
        assert_eq!(flat.num_nodes(), 11);
        let rows = vec![
            vec![4.0, 1.0],
            vec![4.0, 3.0],
            vec![6.0, 0.0],
            vec![f64::NAN, 1.0],
            vec![5.0, f64::NAN],
        ];
        let x = Matrix::from_rows(&rows);
        let mut acc = vec![0.0; rows.len()];
        flat.accumulate(&x, &mut acc);
        for (r, row) in rows.iter().enumerate() {
            let expected: f64 = trees.iter().map(|t| t.score_row(row)).sum();
            assert_eq!(acc[r], expected, "row {r}");
        }
    }

    #[test]
    fn empty_ensemble_accumulates_nothing() {
        let flat = FlatTrees::from_trees(&[]);
        let x = Matrix::from_rows(&[vec![1.0]]);
        let mut acc = vec![0.0; 1];
        flat.accumulate(&x, &mut acc);
        assert_eq!(acc, vec![0.0]);
    }
}
