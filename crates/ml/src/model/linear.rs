//! Linear and logistic models.

use crate::matrix::{dot, Matrix};
use serde::{Deserialize, Serialize};

/// A linear scorer `w·x + b`. Used directly for regression and, through a
/// sigmoid, for binary classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    pub weights: Vec<f64>,
    pub bias: f64,
}

impl LinearModel {
    pub fn new(weights: Vec<f64>, bias: f64) -> Self {
        LinearModel { weights, bias }
    }

    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    #[inline]
    pub fn score_row(&self, x: &[f64]) -> f64 {
        dot(x, &self.weights) + self.bias
    }

    pub fn score_batch(&self, x: &Matrix) -> Vec<f64> {
        let mut out = x.matvec(&self.weights);
        for v in &mut out {
            *v += self.bias;
        }
        out
    }

    /// Indices of features with non-zero weight — the *model sparsity* the
    /// cross-optimizer's feature-pruning rule exploits.
    pub fn used_features(&self) -> Vec<bool> {
        self.weights.iter().map(|w| *w != 0.0).collect()
    }

    /// Restrict the model to a subset of features (in the given order).
    pub fn select_features(&self, keep: &[usize]) -> LinearModel {
        LinearModel {
            weights: keep.iter().map(|&i| self.weights[i]).collect(),
            bias: self.bias,
        }
    }

    /// Drop (near-)zero weights entirely, zeroing anything below `eps` —
    /// a simple magnitude-based compression.
    pub fn sparsify(&self, eps: f64) -> LinearModel {
        LinearModel {
            weights: self
                .weights
                .iter()
                .map(|w| if w.abs() < eps { 0.0 } else { *w })
                .collect(),
            bias: self.bias,
        }
    }
}

#[inline]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoring_matches_formula() {
        let m = LinearModel::new(vec![2.0, -1.0], 0.5);
        assert_eq!(m.score_row(&[3.0, 4.0]), 2.5);
        let x = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]);
        assert_eq!(m.score_batch(&x), vec![2.5, 0.5]);
    }

    #[test]
    fn sparsity_inspection() {
        let m = LinearModel::new(vec![1.0, 0.0, -0.001], 0.0);
        assert_eq!(m.used_features(), vec![true, false, true]);
        let s = m.sparsify(0.01);
        assert_eq!(s.used_features(), vec![true, false, false]);
    }

    #[test]
    fn feature_selection_projects_weights() {
        let m = LinearModel::new(vec![1.0, 2.0, 3.0], 4.0);
        let s = m.select_features(&[2, 0]);
        assert_eq!(s.weights, vec![3.0, 1.0]);
        assert_eq!(s.bias, 4.0);
        // scoring with reordered inputs matches
        assert_eq!(m.score_row(&[10.0, 0.0, 20.0]), s.score_row(&[20.0, 10.0]));
    }

    #[test]
    fn sigmoid_bounds() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
    }
}
