//! k-nearest-neighbours scorer (stores its training set — the archetypal
//! "model is derived data" case).

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnModel {
    pub k: usize,
    /// Row-major training points.
    pub points: Matrix,
    /// Target value per training point.
    pub targets: Vec<f64>,
}

impl KnnModel {
    pub fn dim(&self) -> usize {
        self.points.cols()
    }

    pub fn score_row(&self, x: &[f64]) -> f64 {
        let n = self.points.rows();
        if n == 0 {
            return 0.0;
        }
        let k = self.k.clamp(1, n);
        // partial selection of k smallest distances
        let mut dists: Vec<(f64, usize)> = (0..n)
            .map(|i| (squared_distance(self.points.row(i), x), i))
            .collect();
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let sum: f64 = dists[..k].iter().map(|(_, i)| self.targets[*i]).sum();
        sum / k as f64
    }

    pub fn score_batch(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.score_row(x.row(r))).collect()
    }
}

#[inline]
fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            // missing dimensions contribute nothing
            if x.is_nan() || y.is_nan() {
                0.0
            } else {
                (x - y) * (x - y)
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> KnnModel {
        KnnModel {
            k: 2,
            points: Matrix::from_rows(&[
                vec![0.0, 0.0],
                vec![0.1, 0.1],
                vec![10.0, 10.0],
                vec![10.1, 10.1],
            ]),
            targets: vec![0.0, 0.0, 1.0, 1.0],
        }
    }

    #[test]
    fn nearest_neighbours_vote() {
        let m = model();
        assert_eq!(m.score_row(&[0.05, 0.05]), 0.0);
        assert_eq!(m.score_row(&[10.05, 10.05]), 1.0);
    }

    #[test]
    fn k_larger_than_data_is_clamped() {
        let mut m = model();
        m.k = 100;
        assert_eq!(m.score_row(&[0.0, 0.0]), 0.5); // average of all targets
    }

    #[test]
    fn missing_dims_ignored() {
        let m = model();
        let v = m.score_row(&[f64::NAN, 0.05]);
        assert_eq!(v, 0.0);
    }
}
