//! Model zoo: every scorer the pipeline layer can embed.

pub mod bayes;
pub mod ensemble;
pub mod flat;
pub mod knn;
pub mod linear;
pub mod tree;

pub use bayes::GaussianNb;
pub use ensemble::{GbtModel, RandomForest};
pub use flat::{BatchScratch, FlatTrees};
pub use knn::KnnModel;
pub use linear::{sigmoid, LinearModel};
pub use tree::{DecisionTree, TreeNode};

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A trained model over a fixed-width feature vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Model {
    /// Linear regression: `w·x + b`.
    Linear(LinearModel),
    /// Logistic regression: `sigmoid(w·x + b)`.
    Logistic(LinearModel),
    Tree(DecisionTree),
    Forest(RandomForest),
    Gbt(GbtModel),
    NaiveBayes(GaussianNb),
    Knn(KnnModel),
}

impl Model {
    /// Score a single feature row.
    #[inline]
    pub fn score_row(&self, x: &[f64]) -> f64 {
        match self {
            Model::Linear(m) => m.score_row(x),
            Model::Logistic(m) => sigmoid(m.score_row(x)),
            Model::Tree(m) => m.score_row(x),
            Model::Forest(m) => m.score_row(x),
            Model::Gbt(m) => m.score_row(x),
            Model::NaiveBayes(m) => m.score_row(x),
            Model::Knn(m) => m.score_row(x),
        }
    }

    /// Score a whole feature matrix.
    pub fn score_batch(&self, x: &Matrix) -> Vec<f64> {
        match self {
            Model::Linear(m) => m.score_batch(x),
            Model::Logistic(m) => m.score_batch(x).into_iter().map(sigmoid).collect(),
            Model::Tree(m) => m.score_batch(x),
            Model::Forest(m) => m.score_batch(x),
            Model::Gbt(m) => m.score_batch(x),
            Model::NaiveBayes(m) => m.score_batch(x),
            Model::Knn(m) => m.score_batch(x),
        }
    }

    /// Which of the `dim` features influence the output — the sparsity
    /// signal the cross-optimizer's pruning rule consumes. Conservative:
    /// `true` means "may be used".
    pub fn used_features(&self, dim: usize) -> Vec<bool> {
        match self {
            Model::Linear(m) | Model::Logistic(m) => {
                let mut used = m.used_features();
                used.resize(dim, false);
                used
            }
            Model::Tree(m) => m.used_features(dim),
            Model::Forest(m) => m.used_features(dim),
            Model::Gbt(m) => m.used_features(dim),
            Model::NaiveBayes(m) => {
                let mut used = m.used_features();
                used.resize(dim, false);
                used
            }
            // kNN distances touch every dimension
            Model::Knn(_) => vec![true; dim],
        }
    }

    /// Restrict the model to the features in `keep` (in order). The caller
    /// guarantees every actually-used feature is kept.
    pub fn select_features(&self, keep: &[usize], old_dim: usize) -> Model {
        let mut mapping = vec![None; old_dim];
        for (new, &old) in keep.iter().enumerate() {
            mapping[old] = Some(new);
        }
        match self {
            Model::Linear(m) => Model::Linear(m.select_features(keep)),
            Model::Logistic(m) => Model::Logistic(m.select_features(keep)),
            Model::Tree(m) => Model::Tree(m.remap_features(&mapping)),
            Model::Forest(m) => Model::Forest(m.remap_features(&mapping)),
            Model::Gbt(m) => Model::Gbt(m.remap_features(&mapping)),
            Model::NaiveBayes(m) => Model::NaiveBayes(GaussianNb {
                log_prior_ratio: m.log_prior_ratio,
                class0: keep.iter().map(|&i| m.class0[i]).collect(),
                class1: keep.iter().map(|&i| m.class1[i]).collect(),
            }),
            Model::Knn(m) => Model::Knn(KnnModel {
                k: m.k,
                points: m.points.select_columns(keep),
                targets: m.targets.clone(),
            }),
        }
    }

    /// Compress using per-feature (min, max) ranges (tree-family models
    /// prune unreachable branches; linear models drop epsilon weights).
    pub fn compress(&self, ranges: &[(f64, f64)]) -> Model {
        match self {
            Model::Tree(m) => Model::Tree(m.compress(ranges)),
            Model::Forest(m) => Model::Forest(m.compress(ranges)),
            Model::Gbt(m) => Model::Gbt(m.compress(ranges)),
            Model::Linear(m) => Model::Linear(m.sparsify(1e-12)),
            Model::Logistic(m) => Model::Logistic(m.sparsify(1e-12)),
            other => other.clone(),
        }
    }

    /// Rough complexity measure (weights or tree nodes) — used by the
    /// physical-operator-selection rule and reported by ablations.
    pub fn complexity(&self) -> usize {
        match self {
            Model::Linear(m) | Model::Logistic(m) => m.dim(),
            Model::Tree(m) => m.num_nodes(),
            Model::Forest(m) => m.num_nodes(),
            Model::Gbt(m) => m.num_nodes(),
            Model::NaiveBayes(m) => m.dim() * 2,
            Model::Knn(m) => m.points.rows() * m.points.cols(),
        }
    }

    pub fn kind_name(&self) -> &'static str {
        match self {
            Model::Linear(_) => "linear",
            Model::Logistic(_) => "logistic",
            Model::Tree(_) => "tree",
            Model::Forest(_) => "forest",
            Model::Gbt(_) => "gbt",
            Model::NaiveBayes(_) => "naive_bayes",
            Model::Knn(_) => "knn",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_consistency_row_vs_batch() {
        let models = vec![
            Model::Linear(LinearModel::new(vec![1.0, -2.0], 0.5)),
            Model::Logistic(LinearModel::new(vec![1.0, -2.0], 0.0)),
            Model::Tree(DecisionTree::leaf(3.0)),
        ];
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 0.0]]);
        for m in models {
            let batch = m.score_batch(&x);
            for (r, out) in batch.iter().enumerate() {
                assert_eq!(*out, m.score_row(x.row(r)), "{}", m.kind_name());
            }
        }
    }

    #[test]
    fn select_features_matches_full_model() {
        // weight on feature 1 is zero -> prune it
        let m = Model::Linear(LinearModel::new(vec![2.0, 0.0, 3.0], 1.0));
        let used = m.used_features(3);
        assert_eq!(used, vec![true, false, true]);
        let keep: Vec<usize> = used
            .iter()
            .enumerate()
            .filter_map(|(i, u)| u.then_some(i))
            .collect();
        let pruned = m.select_features(&keep, 3);
        assert_eq!(
            m.score_row(&[1.0, 99.0, 2.0]),
            pruned.score_row(&[1.0, 2.0])
        );
    }

    #[test]
    fn complexity_is_positive() {
        let m = Model::Gbt(GbtModel {
            trees: vec![DecisionTree::leaf(0.0); 3],
            learning_rate: 0.1,
            base_score: 0.0,
            sigmoid_output: false,
        });
        assert_eq!(m.complexity(), 3);
    }
}
