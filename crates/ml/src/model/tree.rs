//! Decision trees (CART-style, axis-aligned splits, scalar leaf values).

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// One tree node. Trees are stored as an arena with the root at index 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TreeNode {
    /// Internal split: go left when `x[feature] <= threshold` (NaN goes
    /// left as well, treating missing as small).
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    Leaf {
        value: f64,
    },
}

/// A regression/scoring tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    pub nodes: Vec<TreeNode>,
}

impl DecisionTree {
    pub fn leaf(value: f64) -> Self {
        DecisionTree {
            nodes: vec![TreeNode::Leaf { value }],
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[TreeNode], i: usize) -> usize {
            match &nodes[i] {
                TreeNode::Leaf { .. } => 1,
                TreeNode::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    #[inline]
    pub fn score_row(&self, x: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                TreeNode::Leaf { value } => return *value,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = x[*feature];
                    i = if v.is_nan() || v <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    pub fn score_batch(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.score_row(x.row(r))).collect()
    }

    /// Which features any split tests.
    pub fn used_features(&self, dim: usize) -> Vec<bool> {
        let mut used = vec![false; dim];
        for n in &self.nodes {
            if let TreeNode::Split { feature, .. } = n {
                if *feature < dim {
                    used[*feature] = true;
                }
            }
        }
        used
    }

    /// Remap feature indices after column pruning. `mapping[old] = new`.
    pub fn remap_features(&self, mapping: &[Option<usize>]) -> DecisionTree {
        let nodes = self
            .nodes
            .iter()
            .map(|n| match n {
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => TreeNode::Split {
                    feature: mapping[*feature].expect("pruned feature still used"),
                    threshold: *threshold,
                    left: *left,
                    right: *right,
                },
                leaf => leaf.clone(),
            })
            .collect();
        DecisionTree { nodes }
    }

    /// **Model compression via data statistics** (paper §4.1): prune
    /// branches unreachable given per-feature [min, max] ranges of the
    /// actual input data, and collapse splits whose subtrees agree.
    /// Returns a tree that scores identically on any input within range.
    pub fn compress(&self, ranges: &[(f64, f64)]) -> DecisionTree {
        #[derive(Clone)]
        struct Bound {
            lo: Vec<f64>,
            hi: Vec<f64>,
        }
        // Build a new arena by walking reachable nodes.
        fn walk(
            old: &[TreeNode],
            i: usize,
            bound: &mut Bound,
            out: &mut Vec<TreeNode>,
        ) -> usize {
            match &old[i] {
                TreeNode::Leaf { value } => {
                    out.push(TreeNode::Leaf { value: *value });
                    out.len() - 1
                }
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let f = *feature;
                    let (lo, hi) = (bound.lo[f], bound.hi[f]);
                    // Range entirely on one side: the split never branches.
                    if hi <= *threshold {
                        return walk(old, *left, bound, out);
                    }
                    if lo > *threshold {
                        return walk(old, *right, bound, out);
                    }
                    // Recurse with tightened bounds.
                    let saved_hi = bound.hi[f];
                    bound.hi[f] = *threshold;
                    let li = walk(old, *left, bound, out);
                    bound.hi[f] = saved_hi;

                    let saved_lo = bound.lo[f];
                    bound.lo[f] = *threshold;
                    let ri = walk(old, *right, bound, out);
                    bound.lo[f] = saved_lo;

                    // Merge identical leaves.
                    if let (TreeNode::Leaf { value: a }, TreeNode::Leaf { value: b }) =
                        (&out[li], &out[ri])
                    {
                        if a == b {
                            let v = *a;
                            // roll back the two leaf pushes when possible
                            if ri == out.len() - 1 && li == out.len() - 2 {
                                out.truncate(out.len() - 2);
                            }
                            out.push(TreeNode::Leaf { value: v });
                            return out.len() - 1;
                        }
                    }
                    out.push(TreeNode::Split {
                        feature: f,
                        threshold: *threshold,
                        left: li,
                        right: ri,
                    });
                    out.len() - 1
                }
            }
        }

        let dim = ranges.len();
        let mut bound = Bound {
            lo: (0..dim).map(|i| ranges[i].0).collect(),
            hi: (0..dim).map(|i| ranges[i].1).collect(),
        };
        let mut out = Vec::new();
        let root = walk(&self.nodes, 0, &mut bound, &mut out);
        // The walker appends children before parents, so the root is last;
        // normalize so the root is at index 0 by index remapping.
        if root != 0 {
            let n = out.len();
            let remap = |i: usize| -> usize {
                if i == root {
                    0
                } else if i < root {
                    i + 1
                } else {
                    i
                }
            };
            let mut rotated: Vec<TreeNode> = Vec::with_capacity(n);
            rotated.push(out[root].clone());
            rotated.extend(out[..root].iter().cloned());
            rotated.extend(out[root + 1..].iter().cloned());
            for node in &mut rotated {
                if let TreeNode::Split { left, right, .. } = node {
                    *left = remap(*left);
                    *right = remap(*right);
                }
            }
            return DecisionTree { nodes: rotated };
        }
        DecisionTree { nodes: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x0 <= 5 ? (x1 <= 2 ? 10 : 20) : 30
    fn sample() -> DecisionTree {
        DecisionTree {
            nodes: vec![
                TreeNode::Split {
                    feature: 0,
                    threshold: 5.0,
                    left: 1,
                    right: 2,
                },
                TreeNode::Split {
                    feature: 1,
                    threshold: 2.0,
                    left: 3,
                    right: 4,
                },
                TreeNode::Leaf { value: 30.0 },
                TreeNode::Leaf { value: 10.0 },
                TreeNode::Leaf { value: 20.0 },
            ],
        }
    }

    #[test]
    fn scoring_follows_splits() {
        let t = sample();
        assert_eq!(t.score_row(&[4.0, 1.0]), 10.0);
        assert_eq!(t.score_row(&[4.0, 3.0]), 20.0);
        assert_eq!(t.score_row(&[6.0, 0.0]), 30.0);
        // NaN routes left
        assert_eq!(t.score_row(&[f64::NAN, 1.0]), 10.0);
    }

    #[test]
    fn used_features_reports_splits() {
        let t = sample();
        assert_eq!(t.used_features(3), vec![true, true, false]);
    }

    #[test]
    fn compress_prunes_unreachable_branches() {
        let t = sample();
        // data never exceeds x0 = 5 -> right branch unreachable
        let c = t.compress(&[(0.0, 5.0), (0.0, 10.0)]);
        assert!(c.num_nodes() < t.num_nodes());
        for (a, b) in [([4.0, 1.0], 10.0), ([5.0, 3.0], 20.0)] {
            assert_eq!(c.score_row(&a), b);
        }
        // x1 never exceeds 2 -> inner split also collapses
        let c2 = t.compress(&[(0.0, 5.0), (0.0, 2.0)]);
        assert_eq!(c2.num_nodes(), 1);
        assert_eq!(c2.score_row(&[1.0, 1.0]), 10.0);
    }

    #[test]
    fn compress_preserves_semantics_in_range() {
        let t = sample();
        let ranges = [(0.0, 10.0), (0.0, 10.0)];
        let c = t.compress(&ranges);
        for x0 in 0..=10 {
            for x1 in 0..=10 {
                let x = [x0 as f64, x1 as f64];
                assert_eq!(t.score_row(&x), c.score_row(&x));
            }
        }
    }

    #[test]
    fn identical_leaves_merge() {
        let t = DecisionTree {
            nodes: vec![
                TreeNode::Split {
                    feature: 0,
                    threshold: 1.0,
                    left: 1,
                    right: 2,
                },
                TreeNode::Leaf { value: 7.0 },
                TreeNode::Leaf { value: 7.0 },
            ],
        };
        let c = t.compress(&[(0.0, 2.0)]);
        assert_eq!(c.num_nodes(), 1);
    }

    #[test]
    fn depth_counts_levels() {
        assert_eq!(sample().depth(), 3);
        assert_eq!(DecisionTree::leaf(1.0).depth(), 1);
    }

    #[test]
    fn remap_features_rewrites_indices() {
        let t = sample();
        let remapped = t.remap_features(&[Some(1), Some(0), None]);
        assert_eq!(remapped.score_row(&[1.0, 4.0]), t.score_row(&[4.0, 1.0]));
    }
}
