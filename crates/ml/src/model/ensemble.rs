//! Tree ensembles: random forests and gradient-boosted trees.

use super::tree::DecisionTree;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Bagged trees averaged together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    pub trees: Vec<DecisionTree>,
}

impl RandomForest {
    pub fn score_row(&self, x: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.trees.iter().map(|t| t.score_row(x)).sum();
        sum / self.trees.len() as f64
    }

    pub fn score_batch(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.score_row(x.row(r))).collect()
    }

    pub fn used_features(&self, dim: usize) -> Vec<bool> {
        let mut used = vec![false; dim];
        for t in &self.trees {
            for (i, u) in t.used_features(dim).into_iter().enumerate() {
                used[i] |= u;
            }
        }
        used
    }

    pub fn num_nodes(&self) -> usize {
        self.trees.iter().map(DecisionTree::num_nodes).sum()
    }

    pub fn compress(&self, ranges: &[(f64, f64)]) -> RandomForest {
        RandomForest {
            trees: self.trees.iter().map(|t| t.compress(ranges)).collect(),
        }
    }

    pub fn remap_features(&self, mapping: &[Option<usize>]) -> RandomForest {
        RandomForest {
            trees: self.trees.iter().map(|t| t.remap_features(mapping)).collect(),
        }
    }
}

/// Additive tree ensemble: `base + lr * Σ tree_i(x)`, optionally squashed
/// by a sigmoid for binary classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbtModel {
    pub trees: Vec<DecisionTree>,
    pub learning_rate: f64,
    pub base_score: f64,
    /// Apply a sigmoid to the raw additive score.
    pub sigmoid_output: bool,
}

impl GbtModel {
    pub fn raw_score_row(&self, x: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.score_row(x)).sum();
        self.base_score + self.learning_rate * sum
    }

    pub fn score_row(&self, x: &[f64]) -> f64 {
        let raw = self.raw_score_row(x);
        if self.sigmoid_output {
            super::linear::sigmoid(raw)
        } else {
            raw
        }
    }

    pub fn score_batch(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.score_row(x.row(r))).collect()
    }

    pub fn used_features(&self, dim: usize) -> Vec<bool> {
        let mut used = vec![false; dim];
        for t in &self.trees {
            for (i, u) in t.used_features(dim).into_iter().enumerate() {
                used[i] |= u;
            }
        }
        used
    }

    pub fn num_nodes(&self) -> usize {
        self.trees.iter().map(DecisionTree::num_nodes).sum()
    }

    pub fn compress(&self, ranges: &[(f64, f64)]) -> GbtModel {
        GbtModel {
            trees: self.trees.iter().map(|t| t.compress(ranges)).collect(),
            learning_rate: self.learning_rate,
            base_score: self.base_score,
            sigmoid_output: self.sigmoid_output,
        }
    }

    pub fn remap_features(&self, mapping: &[Option<usize>]) -> GbtModel {
        GbtModel {
            trees: self.trees.iter().map(|t| t.remap_features(mapping)).collect(),
            learning_rate: self.learning_rate,
            base_score: self.base_score,
            sigmoid_output: self.sigmoid_output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tree::TreeNode;

    fn stump(feature: usize, threshold: f64, lo: f64, hi: f64) -> DecisionTree {
        DecisionTree {
            nodes: vec![
                TreeNode::Split {
                    feature,
                    threshold,
                    left: 1,
                    right: 2,
                },
                TreeNode::Leaf { value: lo },
                TreeNode::Leaf { value: hi },
            ],
        }
    }

    #[test]
    fn forest_averages() {
        let f = RandomForest {
            trees: vec![stump(0, 0.0, 0.0, 10.0), stump(0, 0.0, 0.0, 20.0)],
        };
        assert_eq!(f.score_row(&[1.0]), 15.0);
        assert_eq!(f.score_row(&[-1.0]), 0.0);
    }

    #[test]
    fn gbt_accumulates_with_rate_and_base() {
        let g = GbtModel {
            trees: vec![stump(0, 0.0, -1.0, 1.0), stump(0, 0.0, -1.0, 1.0)],
            learning_rate: 0.5,
            base_score: 0.25,
            sigmoid_output: false,
        };
        assert_eq!(g.score_row(&[1.0]), 1.25);
        assert_eq!(g.score_row(&[-1.0]), -0.75);
    }

    #[test]
    fn gbt_sigmoid_output_is_probability() {
        let g = GbtModel {
            trees: vec![stump(0, 0.0, -10.0, 10.0)],
            learning_rate: 1.0,
            base_score: 0.0,
            sigmoid_output: true,
        };
        assert!(g.score_row(&[1.0]) > 0.99);
        assert!(g.score_row(&[-1.0]) < 0.01);
    }

    #[test]
    fn ensemble_used_features_union() {
        let f = RandomForest {
            trees: vec![stump(0, 0.0, 0.0, 1.0), stump(2, 0.0, 0.0, 1.0)],
        };
        assert_eq!(f.used_features(4), vec![true, false, true, false]);
    }

    #[test]
    fn ensemble_compress_reduces_nodes() {
        let g = GbtModel {
            trees: vec![stump(0, 5.0, 1.0, 2.0); 4],
            learning_rate: 1.0,
            base_score: 0.0,
            sigmoid_output: false,
        };
        let c = g.compress(&[(0.0, 4.0)]); // never exceeds threshold
        assert_eq!(c.num_nodes(), 4); // each stump collapses to one leaf
        assert_eq!(c.score_row(&[3.0]), g.score_row(&[3.0]));
    }
}
