//! Error type for the ML substrate.

use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Shape mismatch (feature count, column length, ...).
    Shape(String),
    /// Referenced column missing from the input frame.
    UnknownColumn(String),
    /// Training failure (singular system, empty data, ...).
    Train(String),
    /// Serialization / deserialization failure.
    Format(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::Shape(m) => write!(f, "shape error: {m}"),
            MlError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            MlError::Train(m) => write!(f, "training error: {m}"),
            MlError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for MlError {}

pub type Result<T> = std::result::Result<T, MlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            MlError::UnknownColumn("x".into()).to_string(),
            "unknown column 'x'"
        );
        assert!(MlError::Train("bad".into()).to_string().contains("bad"));
    }
}
