//! A minimal dense row-major f64 matrix — the feature-matrix kernel every
//! model scores against.

// numeric kernels read more naturally with explicit indices
#![allow(clippy::needless_range_loop)]
use serde::{Deserialize, Serialize};

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from row-major data; panics if the length is inconsistent.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from a slice of rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged matrix rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// `X w` for a weight vector (len == cols).
    pub fn matvec(&self, w: &[f64]) -> Vec<f64> {
        assert_eq!(w.len(), self.cols, "weight length mismatch");
        (0..self.rows)
            .map(|r| dot(self.row(r), w))
            .collect()
    }

    /// Column mean, ignoring NaN entries.
    pub fn col_mean(&self, c: usize) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in 0..self.rows {
            let v = self.get(r, c);
            if !v.is_nan() {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Column standard deviation (population), ignoring NaN.
    pub fn col_std(&self, c: usize) -> f64 {
        let mean = self.col_mean(c);
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in 0..self.rows {
            let v = self.get(r, c);
            if !v.is_nan() {
                sum += (v - mean) * (v - mean);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            (sum / n as f64).sqrt()
        }
    }

    /// Select a subset of columns (in the given order).
    pub fn select_columns(&self, cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols.len());
        for r in 0..self.rows {
            for (j, &c) in cols.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }
}

/// Dense dot product, unrolled into four independent accumulators so the
/// FP adds don't serialize on one dependency chain (linear/logistic
/// scoring spends nearly all its time here).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let chunks = n / 4;
    for i in 0..chunks {
        let k = i * 4;
        s0 += a[k] * b[k];
        s1 += a[k + 1] * b[k + 1];
        s2 += a[k + 2] * b[k + 2];
        s3 += a[k + 3] * b[k + 3];
    }
    for k in chunks * 4..n {
        s0 += a[k] * b[k];
    }
    (s0 + s2) + (s1 + s3)
}

/// Solve the symmetric positive-definite system `A x = b` in place using
/// Gaussian elimination with partial pivoting. Used for the normal
/// equations in linear-regression training.
pub fn solve_linear_system(a: &mut Matrix, b: &mut [f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert_eq!(b.len(), n);
    for col in 0..n {
        // pivot
        let mut pivot = col;
        for r in col + 1..n {
            if a.get(r, col).abs() > a.get(pivot, col).abs() {
                pivot = r;
            }
        }
        if a.get(pivot, col).abs() < 1e-12 {
            return None; // singular
        }
        if pivot != col {
            for c in 0..n {
                let tmp = a.get(col, c);
                a.set(col, c, a.get(pivot, c));
                a.set(pivot, c, tmp);
            }
            b.swap(col, pivot);
        }
        // eliminate
        for r in col + 1..n {
            let factor = a.get(r, col) / a.get(col, col);
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = a.get(r, c) - factor * a.get(col, c);
                a.set(r, c, v);
            }
            b[r] -= factor * b[col];
        }
    }
    // back-substitution
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = b[r];
        for c in r + 1..n {
            acc -= a.get(r, c) * x[c];
        }
        x[r] = acc / a.get(r, r);
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn matvec_works() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn unrolled_dot_matches_naive_product() {
        // lengths 0..=17 exercise every unroll tail (0..3 leftover lanes)
        for n in 0..=17usize {
            let a: Vec<f64> = (0..n).map(|i| (i as f64) * 0.37 - 2.1).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 0.5)).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let fast = dot(&a, &b);
            assert!(
                (fast - naive).abs() <= 1e-12 * naive.abs().max(1.0),
                "n={n}: {fast} vs {naive}"
            );
        }
    }

    #[test]
    fn stats_skip_nan() {
        let m = Matrix::from_rows(&[vec![1.0], vec![f64::NAN], vec![3.0]]);
        assert_eq!(m.col_mean(0), 2.0);
        assert_eq!(m.col_std(0), 1.0);
    }

    #[test]
    fn column_selection() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let s = m.select_columns(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert_eq!(s.row(1), &[6.0, 4.0]);
    }

    #[test]
    fn linear_solver_solves() {
        // x + y = 3 ; x - y = 1 -> x=2, y=1
        let mut a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, -1.0]]);
        let mut b = vec![3.0, 1.0];
        let x = solve_linear_system(&mut a, &mut b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn singular_system_returns_none() {
        let mut a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let mut b = vec![1.0, 2.0];
        assert!(solve_linear_system(&mut a, &mut b).is_none());
    }
}
