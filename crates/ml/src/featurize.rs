//! Featurizers: per-input-column transformations producing feature slots.
//!
//! A [`ColumnPipeline`] describes how one input column becomes one or more
//! numeric features: optional numeric preprocessing steps followed by an
//! encoder. The full pipeline's feature vector is the concatenation of
//! every column's features in declaration order — a deterministic layout
//! the cross-optimizer relies on when mapping model sparsity back to
//! input columns.

use crate::error::{MlError, Result};
use crate::frame::Frame;
use serde::{Deserialize, Serialize};

/// Numeric preprocessing applied in order before encoding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NumericStep {
    /// Replace NaN with a constant.
    Impute { fill: f64 },
    /// `(x - mean) / std` (std 0 treated as 1).
    Standardize { mean: f64, std: f64 },
    /// `(x - min) / (max - min)` (degenerate range treated as width 1).
    MinMax { min: f64, max: f64 },
    /// `ln(1 + max(x, 0))`.
    Log1p,
    /// Clamp into `[lo, hi]`.
    Clip { lo: f64, hi: f64 },
}

impl NumericStep {
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            NumericStep::Impute { fill } => {
                if x.is_nan() {
                    *fill
                } else {
                    x
                }
            }
            NumericStep::Standardize { mean, std } => {
                let s = if *std == 0.0 { 1.0 } else { *std };
                (x - mean) / s
            }
            NumericStep::MinMax { min, max } => {
                let w = if max - min == 0.0 { 1.0 } else { max - min };
                (x - min) / w
            }
            NumericStep::Log1p => (1.0 + x.max(0.0)).ln(),
            NumericStep::Clip { lo, hi } => x.clamp(*lo, *hi),
        }
    }
}

/// How a (preprocessed) column turns into features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Encoder {
    /// One numeric feature, the value itself.
    Numeric,
    /// One-hot over a fixed category list; unseen categories encode to
    /// all-zeros. Produces `categories.len()` features.
    OneHot { categories: Vec<String> },
    /// Feature hashing of whitespace-tokenized text into `buckets`
    /// counting features.
    Hashing { buckets: usize },
    /// One-hot bin membership over sorted `edges`; produces
    /// `edges.len() + 1` features.
    Binned { edges: Vec<f64> },
    /// Constant pre-encoded features, broadcast to every row without
    /// reading any input column. Produced by the cross-optimizer when a
    /// query predicate fixes an input (`WHERE c = 'x'`): the original
    /// encoder is evaluated once at plan time and its output frozen here,
    /// so scoring skips both the column binding and the encode work while
    /// the model's weights stay untouched (bit-exact scores).
    Fixed { values: Vec<f64> },
}

impl Encoder {
    /// Number of feature slots this encoder produces.
    pub fn width(&self) -> usize {
        match self {
            Encoder::Numeric => 1,
            Encoder::OneHot { categories } => categories.len(),
            Encoder::Hashing { buckets } => *buckets,
            Encoder::Binned { edges } => edges.len() + 1,
            Encoder::Fixed { values } => values.len(),
        }
    }

    /// Does this encoder consume string input?
    pub fn takes_strings(&self) -> bool {
        matches!(self, Encoder::OneHot { .. } | Encoder::Hashing { .. })
    }
}

/// FNV-1a hash for feature hashing (stable across runs and platforms).
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The featurization plan for one input column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnPipeline {
    /// Input column name (matched case-insensitively in the frame).
    pub input: String,
    /// Numeric preprocessing (ignored for string encoders).
    pub steps: Vec<NumericStep>,
    pub encoder: Encoder,
}

impl ColumnPipeline {
    pub fn numeric(input: impl Into<String>) -> Self {
        ColumnPipeline {
            input: input.into(),
            steps: vec![],
            encoder: Encoder::Numeric,
        }
    }

    pub fn one_hot(input: impl Into<String>, categories: Vec<String>) -> Self {
        ColumnPipeline {
            input: input.into(),
            steps: vec![],
            encoder: Encoder::OneHot { categories },
        }
    }

    pub fn with_step(mut self, step: NumericStep) -> Self {
        self.steps.push(step);
        self
    }

    /// Feature width of this column.
    pub fn width(&self) -> usize {
        self.encoder.width()
    }

    /// Encode this column from `frame` into `out[.., offset..offset+width]`
    /// (row-major target of total width `total`).
    pub fn encode_into(
        &self,
        frame: &Frame,
        out: &mut [f64],
        offset: usize,
        total: usize,
    ) -> Result<()> {
        // Fixed features never touch the frame: the input column is not
        // even bound after specialization.
        if let Encoder::Fixed { values } = &self.encoder {
            let w = values.len();
            for r in 0..frame.num_rows() {
                out[r * total + offset..r * total + offset + w].copy_from_slice(values);
            }
            return Ok(());
        }
        let col = frame.column(&self.input)?;
        let n = col.len();
        match &self.encoder {
            Encoder::Numeric => {
                let vals = col.as_f64().ok_or_else(|| {
                    MlError::Shape(format!("column '{}' must be numeric", self.input))
                })?;
                for (r, &raw) in vals.iter().enumerate() {
                    let mut x = raw;
                    for s in &self.steps {
                        x = s.apply(x);
                    }
                    // NaN surviving preprocessing becomes 0 so models
                    // without NaN handling stay well-defined.
                    out[r * total + offset] = if x.is_nan() { 0.0 } else { x };
                }
            }
            Encoder::Binned { edges } => {
                let vals = col.as_f64().ok_or_else(|| {
                    MlError::Shape(format!("column '{}' must be numeric", self.input))
                })?;
                for (r, &raw) in vals.iter().enumerate() {
                    let mut x = raw;
                    for s in &self.steps {
                        x = s.apply(x);
                    }
                    let bin = if x.is_nan() {
                        0
                    } else {
                        edges.iter().take_while(|e| x > **e).count()
                    };
                    out[r * total + offset + bin] = 1.0;
                }
            }
            Encoder::OneHot { categories } => {
                let vals = col.as_str().ok_or_else(|| {
                    MlError::Shape(format!("column '{}' must be text", self.input))
                })?;
                for (r, v) in vals.iter().enumerate() {
                    if let Some(i) = categories.iter().position(|c| c == v) {
                        out[r * total + offset + i] = 1.0;
                    }
                }
            }
            Encoder::Hashing { buckets } => {
                let vals = col.as_str().ok_or_else(|| {
                    MlError::Shape(format!("column '{}' must be text", self.input))
                })?;
                for (r, text) in vals.iter().enumerate() {
                    for tok in text.split_whitespace() {
                        let b = (fnv1a(&tok.to_lowercase()) % *buckets as u64) as usize;
                        out[r * total + offset + b] += 1.0;
                    }
                }
            }
            Encoder::Fixed { .. } => unreachable!("handled above"),
        }
        debug_assert_eq!(n, frame.num_rows());
        Ok(())
    }

    /// Encode a single raw value (already fetched from a row). Used by the
    /// row-at-a-time interpreted scorer.
    pub fn encode_value_into(&self, value: &RawValue, out: &mut [f64]) {
        match (&self.encoder, value) {
            // Fixed ignores the input value entirely.
            (Encoder::Fixed { values }, _) => out.copy_from_slice(values),
            (Encoder::Numeric, RawValue::Num(raw)) => {
                let mut x = *raw;
                for s in &self.steps {
                    x = s.apply(x);
                }
                out[0] = if x.is_nan() { 0.0 } else { x };
            }
            (Encoder::Binned { edges }, RawValue::Num(raw)) => {
                let mut x = *raw;
                for s in &self.steps {
                    x = s.apply(x);
                }
                let bin = if x.is_nan() {
                    0
                } else {
                    edges.iter().take_while(|e| x > **e).count()
                };
                out[bin] = 1.0;
            }
            (Encoder::OneHot { categories }, RawValue::Text(v)) => {
                if let Some(i) = categories.iter().position(|c| c == v) {
                    out[i] = 1.0;
                }
            }
            (Encoder::Hashing { buckets }, RawValue::Text(text)) => {
                for tok in text.split_whitespace() {
                    let b = (fnv1a(&tok.to_lowercase()) % *buckets as u64) as usize;
                    out[b] += 1.0;
                }
            }
            // type mismatch leaves the slots zero
            _ => {}
        }
    }
}

/// A scalar input value for row-wise encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum RawValue {
    Num(f64),
    Text(String),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameCol;

    fn frame() -> Frame<'static> {
        Frame::new()
            .with("x", FrameCol::F64(vec![1.0, f64::NAN, 5.0]))
            .unwrap()
            .with(
                "c",
                FrameCol::Str(vec!["a".into(), "b".into(), "z".into()]),
            )
            .unwrap()
            .with(
                "t",
                FrameCol::Str(vec![
                    "hello world".into(),
                    "hello hello".into(),
                    "".into(),
                ]),
            )
            .unwrap()
    }

    #[test]
    fn numeric_steps_compose() {
        let cp = ColumnPipeline::numeric("x")
            .with_step(NumericStep::Impute { fill: 3.0 })
            .with_step(NumericStep::Standardize { mean: 3.0, std: 2.0 });
        let f = frame();
        let mut out = vec![0.0; 3];
        cp.encode_into(&f, &mut out, 0, 1).unwrap();
        assert_eq!(out, vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn one_hot_unknown_is_zero_vector() {
        let cp = ColumnPipeline::one_hot("c", vec!["a".into(), "b".into()]);
        let f = frame();
        let mut out = vec![0.0; 6];
        cp.encode_into(&f, &mut out, 0, 2).unwrap();
        assert_eq!(out, vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn hashing_counts_tokens() {
        let cp = ColumnPipeline {
            input: "t".into(),
            steps: vec![],
            encoder: Encoder::Hashing { buckets: 4 },
        };
        let f = frame();
        let mut out = vec![0.0; 12];
        cp.encode_into(&f, &mut out, 0, 4).unwrap();
        let row0: f64 = out[0..4].iter().sum();
        let row1: f64 = out[4..8].iter().sum();
        let row2: f64 = out[8..12].iter().sum();
        assert_eq!(row0, 2.0);
        assert_eq!(row1, 2.0);
        assert_eq!(row2, 0.0);
        // "hello hello" double-counts one bucket
        assert!(out[4..8].contains(&2.0));
    }

    #[test]
    fn binning_assigns_intervals() {
        let cp = ColumnPipeline {
            input: "x".into(),
            steps: vec![NumericStep::Impute { fill: 0.0 }],
            encoder: Encoder::Binned {
                edges: vec![2.0, 4.0],
            },
        };
        let f = frame();
        let mut out = vec![0.0; 9];
        cp.encode_into(&f, &mut out, 0, 3).unwrap();
        assert_eq!(&out[0..3], &[1.0, 0.0, 0.0]); // 1.0 -> bin 0
        assert_eq!(&out[3..6], &[1.0, 0.0, 0.0]); // imputed 0 -> bin 0
        assert_eq!(&out[6..9], &[0.0, 0.0, 1.0]); // 5.0 -> bin 2
    }

    #[test]
    fn type_mismatch_is_error() {
        let cp = ColumnPipeline::numeric("c");
        let f = frame();
        let mut out = vec![0.0; 3];
        assert!(cp.encode_into(&f, &mut out, 0, 1).is_err());
    }

    #[test]
    fn row_encoding_matches_batch() {
        let cp = ColumnPipeline::one_hot("c", vec!["a".into(), "b".into()]);
        let mut row = vec![0.0; 2];
        cp.encode_value_into(&RawValue::Text("b".into()), &mut row);
        assert_eq!(row, vec![0.0, 1.0]);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a("hello"), fnv1a("hello"));
        assert_ne!(fnv1a("hello"), fnv1a("world"));
    }
}
