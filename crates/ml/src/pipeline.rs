//! End-to-end inference pipelines: featurization + model, with the
//! introspection hooks the cross-optimizer uses (input pruning, statistics
//! compression, inlining export).

use crate::error::{MlError, Result};
use crate::featurize::{ColumnPipeline, Encoder, RawValue};
use crate::frame::Frame;
use crate::matrix::Matrix;
use crate::model::Model;
use serde::{Deserialize, Serialize};

/// A deployable inference pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    /// Per-input featurization, in feature-layout order.
    pub columns: Vec<ColumnPipeline>,
    pub model: Model,
    /// Name of the produced output column.
    pub output: String,
}

impl Pipeline {
    pub fn new(columns: Vec<ColumnPipeline>, model: Model, output: impl Into<String>) -> Self {
        Pipeline {
            columns,
            model,
            output: output.into(),
        }
    }

    /// Names of the input columns, in order.
    pub fn input_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.input.as_str()).collect()
    }

    /// Whether input `i` is consumed as text (vs numeric).
    pub fn input_is_text(&self, i: usize) -> bool {
        self.columns[i].encoder.takes_strings()
    }

    /// Indices of the input columns that must actually be bound by the
    /// caller — columns whose encoder reads input. [`Encoder::Fixed`]
    /// columns (produced by predicate specialization) are excluded: their
    /// features are plan-time constants.
    pub fn bound_columns(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| !matches!(c.encoder, Encoder::Fixed { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// Total feature-vector width.
    pub fn feature_width(&self) -> usize {
        self.columns.iter().map(ColumnPipeline::width).sum()
    }

    /// The feature-slot range `[start, end)` produced by input column `i`.
    pub fn feature_range(&self, i: usize) -> (usize, usize) {
        let start: usize = self.columns[..i].iter().map(ColumnPipeline::width).sum();
        (start, start + self.columns[i].width())
    }

    /// Featurize a frame into a dense matrix.
    pub fn featurize(&self, frame: &Frame) -> Result<Matrix> {
        let total = self.feature_width();
        let rows = frame.num_rows();
        let mut data = vec![0.0; rows * total];
        let mut offset = 0usize;
        for cp in &self.columns {
            cp.encode_into(frame, &mut data, offset, total)?;
            offset += cp.width();
        }
        Ok(Matrix::from_vec(rows, total, data))
    }

    /// Batch scoring: featurize then score (the vectorized fast path).
    pub fn score(&self, frame: &Frame) -> Result<Vec<f64>> {
        let x = self.featurize(frame)?;
        if x.cols() != self.expected_dim() {
            return Err(MlError::Shape(format!(
                "pipeline produces {} features but model expects {}",
                x.cols(),
                self.expected_dim()
            )));
        }
        Ok(self.model.score_batch(&x))
    }

    /// [`score`](Self::score) with per-stage instrumentation: featurization
    /// and model evaluation are timed and counted separately.
    pub fn score_with_metrics(
        &self,
        frame: &Frame,
        metrics: &crate::runtime::ScoringMetrics,
    ) -> Result<Vec<f64>> {
        let t = std::time::Instant::now();
        let x = self.featurize(frame)?;
        metrics.featurize.record(frame.num_rows(), t.elapsed());
        if x.cols() != self.expected_dim() {
            return Err(MlError::Shape(format!(
                "pipeline produces {} features but model expects {}",
                x.cols(),
                self.expected_dim()
            )));
        }
        let t = std::time::Instant::now();
        let scores = self.model.score_batch(&x);
        metrics.score.record(scores.len(), t.elapsed());
        Ok(scores)
    }

    /// Score one row given raw values aligned with `self.columns`. This is
    /// the slow interpreted path (fresh feature buffer per row) used as the
    /// paper's inline-UDF anchor.
    pub fn score_row_values(&self, values: &[RawValue]) -> Result<f64> {
        if values.len() != self.columns.len() {
            return Err(MlError::Shape(format!(
                "expected {} inputs, got {}",
                self.columns.len(),
                values.len()
            )));
        }
        let mut features = vec![0.0; self.feature_width()];
        let mut offset = 0usize;
        for (cp, v) in self.columns.iter().zip(values) {
            cp.encode_value_into(v, &mut features[offset..offset + cp.width()]);
            offset += cp.width();
        }
        Ok(self.model.score_row(&features))
    }

    fn expected_dim(&self) -> usize {
        self.feature_width()
    }

    // ----------------------------------------------------- introspection

    /// Per-input-column usage: does the model read *any* feature derived
    /// from input `i`?
    pub fn input_usage(&self) -> Vec<bool> {
        let used = self.model.used_features(self.feature_width());
        (0..self.columns.len())
            .map(|i| {
                let (a, b) = self.feature_range(i);
                used[a..b].iter().any(|u| *u)
            })
            .collect()
    }

    /// **Feature pruning** (paper §4.1: "automatic pruning of unused input
    /// feature-columns exploiting model-sparsity"). Returns an equivalent
    /// pipeline that only consumes the used input columns, plus the kept
    /// input names. Scores are bit-identical to the original.
    pub fn prune_unused_inputs(&self) -> (Pipeline, Vec<String>) {
        let usage = self.input_usage();
        if usage.iter().all(|u| *u) {
            return (self.clone(), self.input_names().iter().map(|s| s.to_string()).collect());
        }
        let old_dim = self.feature_width();
        let mut keep_features: Vec<usize> = Vec::new();
        let mut keep_columns: Vec<ColumnPipeline> = Vec::new();
        for (i, cp) in self.columns.iter().enumerate() {
            if usage[i] {
                let (a, b) = self.feature_range(i);
                keep_features.extend(a..b);
                keep_columns.push(cp.clone());
            }
        }
        let model = self.model.select_features(&keep_features, old_dim);
        let kept_names: Vec<String> = keep_columns.iter().map(|c| c.input.clone()).collect();
        (
            Pipeline {
                columns: keep_columns,
                model,
                output: self.output.clone(),
            },
            kept_names,
        )
    }

    /// **Model compression using input statistics** (paper §4.1). The
    /// ranges are per *input column* (post-preprocessing handled here) —
    /// numeric inputs get (min, max); categorical inputs are unbounded.
    /// Tree branches unreachable for in-range data are pruned.
    pub fn compress_with_ranges(&self, input_ranges: &[Option<(f64, f64)>]) -> Pipeline {
        let dim = self.feature_width();
        let mut feature_ranges: Vec<(f64, f64)> =
            vec![(f64::NEG_INFINITY, f64::INFINITY); dim];
        for (i, cp) in self.columns.iter().enumerate() {
            let (a, b) = self.feature_range(i);
            match &cp.encoder {
                Encoder::Numeric => {
                    if let Some(Some((lo, hi))) = input_ranges.get(i) {
                        // push the raw range through the numeric steps
                        // (all steps are monotone except Clip which is
                        // monotone non-decreasing, so endpoints map to
                        // endpoints)
                        let mut lo = *lo;
                        let mut hi = *hi;
                        for s in &cp.steps {
                            lo = s.apply(lo);
                            hi = s.apply(hi);
                        }
                        feature_ranges[a] = (lo.min(hi), lo.max(hi));
                    }
                }
                // one-hot / hashing / binned features live in [0, ∞)
                Encoder::OneHot { .. } | Encoder::Binned { .. } => {
                    for f in feature_ranges.iter_mut().take(b).skip(a) {
                        *f = (0.0, 1.0);
                    }
                }
                Encoder::Hashing { .. } => {
                    for f in feature_ranges.iter_mut().take(b).skip(a) {
                        *f = (0.0, f64::INFINITY);
                    }
                }
                // constant features have exactly one reachable value
                Encoder::Fixed { values } => {
                    for (f, v) in feature_ranges[a..b].iter_mut().zip(values) {
                        *f = (*v, *v);
                    }
                }
            }
        }
        Pipeline {
            columns: self.columns.clone(),
            model: self.model.compress(&feature_ranges),
            output: self.output.clone(),
        }
    }

    /// Model complexity (for physical operator selection and reporting).
    pub fn complexity(&self) -> usize {
        self.model.complexity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::NumericStep;
    use crate::frame::FrameCol;
    use crate::model::{LinearModel, Model};

    fn pipeline() -> Pipeline {
        Pipeline::new(
            vec![
                ColumnPipeline::numeric("age")
                    .with_step(NumericStep::Impute { fill: 30.0 }),
                ColumnPipeline::one_hot("city", vec!["nyc".into(), "sf".into()]),
                ColumnPipeline::numeric("income"),
            ],
            // weights: age, city=nyc, city=sf, income — income unused
            Model::Linear(LinearModel::new(vec![1.0, 10.0, 20.0, 0.0], 5.0)),
            "score",
        )
    }

    fn frame() -> Frame<'static> {
        Frame::new()
            .with("age", FrameCol::F64(vec![40.0, f64::NAN]))
            .unwrap()
            .with("city", FrameCol::Str(vec!["sf".into(), "nyc".into()]))
            .unwrap()
            .with("income", FrameCol::F64(vec![100.0, 200.0]))
            .unwrap()
    }

    #[test]
    fn feature_layout_is_deterministic() {
        let p = pipeline();
        assert_eq!(p.feature_width(), 4);
        assert_eq!(p.feature_range(1), (1, 3));
    }

    #[test]
    fn batch_scoring() {
        let p = pipeline();
        let scores = p.score(&frame()).unwrap();
        assert_eq!(scores, vec![40.0 + 20.0 + 5.0, 30.0 + 10.0 + 5.0]);
    }

    #[test]
    fn row_scoring_matches_batch() {
        let p = pipeline();
        let batch = p.score(&frame()).unwrap();
        let row0 = p
            .score_row_values(&[
                RawValue::Num(40.0),
                RawValue::Text("sf".into()),
                RawValue::Num(100.0),
            ])
            .unwrap();
        assert_eq!(row0, batch[0]);
        let row1 = p
            .score_row_values(&[
                RawValue::Num(f64::NAN),
                RawValue::Text("nyc".into()),
                RawValue::Num(200.0),
            ])
            .unwrap();
        assert_eq!(row1, batch[1]);
    }

    #[test]
    fn pruning_drops_unused_income() {
        let p = pipeline();
        assert_eq!(p.input_usage(), vec![true, true, false]);
        let (pruned, kept) = p.prune_unused_inputs();
        assert_eq!(kept, vec!["age".to_string(), "city".to_string()]);
        assert_eq!(pruned.feature_width(), 3);

        // identical scores on a frame missing the pruned column
        let f = Frame::new()
            .with("age", FrameCol::F64(vec![40.0]))
            .unwrap()
            .with("city", FrameCol::Str(vec!["sf".into()]))
            .unwrap();
        assert_eq!(pruned.score(&f).unwrap(), vec![65.0]);
    }

    #[test]
    fn wrong_arity_row_rejected() {
        let p = pipeline();
        assert!(p.score_row_values(&[RawValue::Num(1.0)]).is_err());
    }

    #[test]
    fn compression_with_ranges_preserves_scores() {
        use crate::model::{DecisionTree, TreeNode};
        let tree = DecisionTree {
            nodes: vec![
                TreeNode::Split {
                    feature: 0,
                    threshold: 100.0,
                    left: 1,
                    right: 2,
                },
                TreeNode::Leaf { value: 1.0 },
                TreeNode::Leaf { value: 2.0 },
            ],
        };
        let p = Pipeline::new(
            vec![ColumnPipeline::numeric("x")],
            Model::Tree(tree),
            "y",
        );
        // data never exceeds 50 -> tree collapses to a single leaf
        let c = p.compress_with_ranges(&[Some((0.0, 50.0))]);
        assert_eq!(c.complexity(), 1);
        let f = Frame::new()
            .with("x", FrameCol::F64(vec![10.0, 49.0]))
            .unwrap();
        assert_eq!(c.score(&f).unwrap(), p.score(&f).unwrap());
    }
}
