//! Training routines. These exist so the experiments can manufacture
//! *realistic* models (real split structures, real weight sparsity) rather
//! than hand-written toys; they are deliberately simple, laptop-scale
//! implementations.

// numeric kernels read more naturally with explicit indices
#![allow(clippy::needless_range_loop)]
use crate::error::{MlError, Result};
use crate::matrix::{solve_linear_system, Matrix};
use crate::model::{
    linear::sigmoid, DecisionTree, GaussianNb, GbtModel, KnnModel, LinearModel, Model,
    RandomForest, TreeNode,
};
use flock_rng::rngs::StdRng;
use flock_rng::seq::SliceRandom;
use flock_rng::{Rng, SeedableRng};

/// Ridge-regularized linear regression via the normal equations.
pub fn fit_linear(x: &Matrix, y: &[f64], ridge: f64) -> Result<LinearModel> {
    let n = x.rows();
    let d = x.cols();
    if n == 0 || y.len() != n {
        return Err(MlError::Train("empty or mismatched training data".into()));
    }
    // Augment with a bias column: solve (Z^T Z + λI) w = Z^T y.
    let dim = d + 1;
    let mut a = Matrix::zeros(dim, dim);
    let mut b = vec![0.0; dim];
    for r in 0..n {
        let row = x.row(r);
        for i in 0..dim {
            let zi = if i < d { row[i] } else { 1.0 };
            b[i] += zi * y[r];
            for j in i..dim {
                let zj = if j < d { row[j] } else { 1.0 };
                let v = a.get(i, j) + zi * zj;
                a.set(i, j, v);
            }
        }
    }
    for i in 0..dim {
        for j in 0..i {
            a.set(i, j, a.get(j, i));
        }
        if i < d {
            a.set(i, i, a.get(i, i) + ridge);
        }
    }
    let w = solve_linear_system(&mut a, &mut b)
        .ok_or_else(|| MlError::Train("singular normal equations".into()))?;
    Ok(LinearModel::new(w[..d].to_vec(), w[d]))
}

/// Logistic regression by batch gradient descent.
pub fn fit_logistic(x: &Matrix, y: &[f64], epochs: usize, lr: f64) -> Result<LinearModel> {
    let n = x.rows();
    let d = x.cols();
    if n == 0 || y.len() != n {
        return Err(MlError::Train("empty or mismatched training data".into()));
    }
    let mut w = vec![0.0; d];
    let mut bias = 0.0;
    for _ in 0..epochs {
        let mut grad_w = vec![0.0; d];
        let mut grad_b = 0.0;
        for r in 0..n {
            let row = x.row(r);
            let p = sigmoid(crate::matrix::dot(row, &w) + bias);
            let err = p - y[r];
            for (g, v) in grad_w.iter_mut().zip(row) {
                *g += err * v;
            }
            grad_b += err;
        }
        let scale = lr / n as f64;
        for (wi, g) in w.iter_mut().zip(&grad_w) {
            *wi -= scale * g;
        }
        bias -= scale * grad_b;
    }
    Ok(LinearModel::new(w, bias))
}

/// Parameters for CART tree fitting.
#[derive(Debug, Clone)]
pub struct TreeParams {
    pub max_depth: usize,
    pub min_samples_split: usize,
    /// Consider only this many random feature candidates per split
    /// (`None` = all features). Used for forests.
    pub feature_subsample: Option<usize>,
    pub seed: u64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 6,
            min_samples_split: 4,
            feature_subsample: None,
            seed: 42,
        }
    }
}

/// Variance-reduction CART regression tree. For binary classification pass
/// 0/1 targets — leaves then hold class proportions.
pub fn fit_tree(x: &Matrix, y: &[f64], params: &TreeParams) -> Result<DecisionTree> {
    let n = x.rows();
    if n == 0 || y.len() != n {
        return Err(MlError::Train("empty or mismatched training data".into()));
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut nodes = Vec::new();
    let indices: Vec<usize> = (0..n).collect();
    build_node(x, y, &indices, params, 0, &mut nodes, &mut rng);
    Ok(DecisionTree { nodes })
}

fn mean_of(y: &[f64], idx: &[usize]) -> f64 {
    if idx.is_empty() {
        return 0.0;
    }
    idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64
}

fn sse_of(y: &[f64], idx: &[usize], mean: f64) -> f64 {
    idx.iter().map(|&i| (y[i] - mean) * (y[i] - mean)).sum()
}

fn build_node(
    x: &Matrix,
    y: &[f64],
    idx: &[usize],
    params: &TreeParams,
    depth: usize,
    nodes: &mut Vec<TreeNode>,
    rng: &mut StdRng,
) -> usize {
    let mean = mean_of(y, idx);
    if depth >= params.max_depth || idx.len() < params.min_samples_split {
        nodes.push(TreeNode::Leaf { value: mean });
        return nodes.len() - 1;
    }
    let parent_sse = sse_of(y, idx, mean);
    if parent_sse <= 1e-12 {
        nodes.push(TreeNode::Leaf { value: mean });
        return nodes.len() - 1;
    }

    let d = x.cols();
    let mut candidates: Vec<usize> = (0..d).collect();
    if let Some(k) = params.feature_subsample {
        candidates.shuffle(rng);
        candidates.truncate(k.max(1).min(d));
    }

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    let mut sorted = idx.to_vec();
    for &f in &candidates {
        sorted.sort_by(|&a, &b| x.get(a, f).total_cmp(&x.get(b, f)));
        // prefix sums for O(n) best-split scan
        let mut prefix_sum = 0.0;
        let mut prefix_sq = 0.0;
        let total_sum: f64 = sorted.iter().map(|&i| y[i]).sum();
        let total_sq: f64 = sorted.iter().map(|&i| y[i] * y[i]).sum();
        for (k, &i) in sorted.iter().enumerate().take(sorted.len() - 1) {
            prefix_sum += y[i];
            prefix_sq += y[i] * y[i];
            let v = x.get(i, f);
            let next = x.get(sorted[k + 1], f);
            if v == next {
                continue; // can't split between equal values
            }
            let nl = (k + 1) as f64;
            let nr = (sorted.len() - k - 1) as f64;
            let sse_l = prefix_sq - prefix_sum * prefix_sum / nl;
            let rs = total_sum - prefix_sum;
            let sse_r = (total_sq - prefix_sq) - rs * rs / nr;
            let gain = parent_sse - sse_l - sse_r;
            if best.is_none_or(|(_, _, g)| gain > g) && gain > 1e-12 {
                best = Some((f, (v + next) / 2.0, gain));
            }
        }
    }

    let Some((feature, threshold, _)) = best else {
        nodes.push(TreeNode::Leaf { value: mean });
        return nodes.len() - 1;
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
        .iter()
        .partition(|&&i| x.get(i, feature) <= threshold);
    if left_idx.is_empty() || right_idx.is_empty() {
        nodes.push(TreeNode::Leaf { value: mean });
        return nodes.len() - 1;
    }
    // reserve a slot for this split, fill children, then patch
    let my = nodes.len();
    nodes.push(TreeNode::Leaf { value: mean }); // placeholder
    let left = build_node(x, y, &left_idx, params, depth + 1, nodes, rng);
    let right = build_node(x, y, &right_idx, params, depth + 1, nodes, rng);
    nodes[my] = TreeNode::Split {
        feature,
        threshold,
        left,
        right,
    };
    my
}

/// Bagged random forest.
pub fn fit_forest(
    x: &Matrix,
    y: &[f64],
    n_trees: usize,
    params: &TreeParams,
) -> Result<RandomForest> {
    let n = x.rows();
    if n == 0 {
        return Err(MlError::Train("empty training data".into()));
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut trees = Vec::with_capacity(n_trees);
    for t in 0..n_trees {
        // bootstrap sample
        let sample: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
        let xs: Vec<Vec<f64>> = sample.iter().map(|&i| x.row(i).to_vec()).collect();
        let ys: Vec<f64> = sample.iter().map(|&i| y[i]).collect();
        let sub = Matrix::from_rows(&xs);
        let mut p = params.clone();
        p.seed = params.seed.wrapping_add(t as u64 + 1);
        p.feature_subsample = params
            .feature_subsample
            .or(Some(((x.cols() as f64).sqrt().ceil() as usize).max(1)));
        trees.push(fit_tree(&sub, &ys, &p)?);
    }
    Ok(RandomForest { trees })
}

/// Gradient-boosted trees on squared loss (regression) or logistic loss
/// (when `classification` is set; targets must be 0/1).
pub fn fit_gbt(
    x: &Matrix,
    y: &[f64],
    n_trees: usize,
    learning_rate: f64,
    params: &TreeParams,
    classification: bool,
) -> Result<GbtModel> {
    let n = x.rows();
    if n == 0 || y.len() != n {
        return Err(MlError::Train("empty or mismatched training data".into()));
    }
    let base_score = if classification {
        let p = (y.iter().sum::<f64>() / n as f64).clamp(1e-6, 1.0 - 1e-6);
        (p / (1.0 - p)).ln() // log-odds
    } else {
        y.iter().sum::<f64>() / n as f64
    };
    let mut raw: Vec<f64> = vec![base_score; n];
    let mut trees = Vec::with_capacity(n_trees);
    for t in 0..n_trees {
        // negative gradient as the regression target
        let residuals: Vec<f64> = if classification {
            raw.iter().zip(y).map(|(r, t)| t - sigmoid(*r)).collect()
        } else {
            raw.iter().zip(y).map(|(r, t)| t - r).collect()
        };
        let mut p = params.clone();
        p.seed = params.seed.wrapping_add(1000 + t as u64);
        let tree = fit_tree(x, &residuals, &p)?;
        for r in 0..n {
            raw[r] += learning_rate * tree.score_row(x.row(r));
        }
        trees.push(tree);
    }
    Ok(GbtModel {
        trees,
        learning_rate,
        base_score,
        sigmoid_output: classification,
    })
}

/// Gaussian naive Bayes for binary 0/1 targets.
pub fn fit_naive_bayes(x: &Matrix, y: &[f64]) -> Result<GaussianNb> {
    let n = x.rows();
    let d = x.cols();
    if n == 0 || y.len() != n {
        return Err(MlError::Train("empty or mismatched training data".into()));
    }
    let pos: Vec<usize> = (0..n).filter(|&i| y[i] >= 0.5).collect();
    let neg: Vec<usize> = (0..n).filter(|&i| y[i] < 0.5).collect();
    if pos.is_empty() || neg.is_empty() {
        return Err(MlError::Train("need both classes present".into()));
    }
    let stats = |idx: &[usize]| -> Vec<(f64, f64)> {
        (0..d)
            .map(|c| {
                let vals: Vec<f64> = idx
                    .iter()
                    .map(|&i| x.get(i, c))
                    .filter(|v| !v.is_nan())
                    .collect();
                if vals.is_empty() {
                    return (0.0, 1.0);
                }
                let m = vals.iter().sum::<f64>() / vals.len() as f64;
                let var =
                    vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / vals.len() as f64;
                (m, var.max(1e-9))
            })
            .collect()
    };
    Ok(GaussianNb {
        log_prior_ratio: (pos.len() as f64 / neg.len() as f64).ln(),
        class0: stats(&neg),
        class1: stats(&pos),
    })
}

/// kNN "training" just stores the data.
pub fn fit_knn(x: &Matrix, y: &[f64], k: usize) -> Result<KnnModel> {
    if x.rows() == 0 || y.len() != x.rows() {
        return Err(MlError::Train("empty or mismatched training data".into()));
    }
    Ok(KnnModel {
        k: k.max(1),
        points: x.clone(),
        targets: y.to_vec(),
    })
}

/// Shuffle and split rows into (train, test) index sets.
///
/// `test_fraction` must be a finite value in `[0, 1]`; a NaN used to
/// slip through `clamp` and silently produce an *empty* test set, which
/// upstream callers then mistook for "evaluated on held-out data".
pub fn train_test_split(
    n: usize,
    test_fraction: f64,
    seed: u64,
) -> Result<(Vec<usize>, Vec<usize>)> {
    if !test_fraction.is_finite() || !(0.0..=1.0).contains(&test_fraction) {
        return Err(MlError::Train(format!(
            "test_fraction must be a finite value in [0, 1], got {test_fraction}"
        )));
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_test = ((n as f64) * test_fraction).round() as usize;
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    Ok((train, test))
}

/// Per-fold result of cross-validation.
#[derive(Debug, Clone)]
pub struct FoldResult {
    pub fold: usize,
    /// AUC for binary targets, R² otherwise.
    pub score: f64,
}

/// K-fold cross-validation of a model kind (the train-side hygiene the
/// paper expects "automation, tooling, and engineering best practices"
/// to provide). Returns one score per fold: AUC when the targets are
/// binary 0/1, R² otherwise.
pub fn cross_validate(
    kind: &str,
    x: &Matrix,
    y: &[f64],
    k: usize,
    seed: u64,
) -> Result<Vec<FoldResult>> {
    let n = x.rows();
    if n == 0 || y.is_empty() {
        return Err(MlError::Train(
            "cannot cross-validate empty training data".into(),
        ));
    }
    if y.len() != n {
        return Err(MlError::Train(format!(
            "target length {} does not match {n} rows",
            y.len()
        )));
    }
    // A constant target would make *every* scorer degenerate (AUC has no
    // positive/negative split to rank, R² has zero variance to explain) —
    // and worse, a constant 0 or 1 target used to pass the "binary" test
    // below and silently report AUC over one class. Reject it up front.
    if y.iter().all(|v| *v == y[0]) {
        return Err(MlError::Train(format!(
            "cannot cross-validate a constant target (all values are {})",
            y[0]
        )));
    }
    let k = k.clamp(2, n.max(2));
    if n < k {
        return Err(MlError::Train(format!(
            "{n} rows cannot be split into {k} folds"
        )));
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let binary = y.iter().all(|v| *v == 0.0 || *v == 1.0);

    let mut results = Vec::with_capacity(k);
    for fold in 0..k {
        let test: Vec<usize> = idx
            .iter()
            .copied()
            .skip(fold)
            .step_by(k)
            .collect();
        let test_set: std::collections::HashSet<usize> = test.iter().copied().collect();
        let train_rows: Vec<Vec<f64>> = idx
            .iter()
            .filter(|i| !test_set.contains(i))
            .map(|&i| x.row(i).to_vec())
            .collect();
        let train_y: Vec<f64> = idx
            .iter()
            .filter(|i| !test_set.contains(i))
            .map(|&i| y[i])
            .collect();
        let model = fit_model(kind, &Matrix::from_rows(&train_rows), &train_y)?;
        let pred: Vec<f64> = test.iter().map(|&i| model.score_row(x.row(i))).collect();
        let truth: Vec<f64> = test.iter().map(|&i| y[i]).collect();
        let score = if binary {
            crate::metrics::auc(&pred, &truth)
        } else {
            crate::metrics::r2(&pred, &truth)
        };
        results.push(FoldResult { fold, score });
    }
    Ok(results)
}

/// Hyperparameters for [`fit_model_with`]. Every field has the default
/// the corresponding kind has always used, so `FitParams::default()`
/// reproduces [`fit_model`] bit-for-bit; `CREATE MODEL ... WITH (...)`
/// overrides individual fields from the SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub struct FitParams {
    /// Seed for every stochastic choice (bootstrap samples, feature
    /// subsampling). The same seed + data must reproduce the same model.
    pub seed: u64,
    /// Ensemble size for `forest`/`gbt` (`None` = kind default: 20
    /// forest trees, 30 boosting rounds).
    pub trees: Option<usize>,
    pub max_depth: usize,
    pub min_samples_split: usize,
    /// GBT shrinkage.
    pub learning_rate: f64,
    /// Ridge strength for `linear`.
    pub ridge: f64,
    /// Gradient-descent epochs for `logistic`.
    pub epochs: usize,
    /// Gradient-descent learning rate for `logistic`.
    pub lr: f64,
    /// Neighbour count for `knn`.
    pub k: usize,
}

impl Default for FitParams {
    fn default() -> Self {
        FitParams {
            seed: 42,
            trees: None,
            max_depth: 6,
            min_samples_split: 4,
            learning_rate: 0.2,
            ridge: 1e-6,
            epochs: 200,
            lr: 0.5,
            k: 5,
        }
    }
}

impl FitParams {
    fn tree_params(&self) -> TreeParams {
        TreeParams {
            max_depth: self.max_depth,
            min_samples_split: self.min_samples_split,
            feature_subsample: None,
            seed: self.seed,
        }
    }
}

/// Convenience: fit the requested model kind with sane defaults.
pub fn fit_model(kind: &str, x: &Matrix, y: &[f64]) -> Result<Model> {
    fit_model_with(kind, x, y, &FitParams::default())
}

/// Fit the requested model kind with explicit hyperparameters.
pub fn fit_model_with(kind: &str, x: &Matrix, y: &[f64], p: &FitParams) -> Result<Model> {
    let tp = p.tree_params();
    Ok(match kind {
        "linear" => Model::Linear(fit_linear(x, y, p.ridge)?),
        "logistic" => Model::Logistic(fit_logistic(x, y, p.epochs, p.lr)?),
        "tree" => Model::Tree(fit_tree(x, y, &tp)?),
        "forest" => Model::Forest(fit_forest(x, y, p.trees.unwrap_or(20), &tp)?),
        "gbt" => Model::Gbt(fit_gbt(x, y, p.trees.unwrap_or(30), p.learning_rate, &tp, true)?),
        "gbt_regression" => {
            Model::Gbt(fit_gbt(x, y, p.trees.unwrap_or(30), p.learning_rate, &tp, false)?)
        }
        "naive_bayes" => Model::NaiveBayes(fit_naive_bayes(x, y)?),
        "knn" => Model::Knn(fit_knn(x, y, p.k)?),
        other => return Err(MlError::Train(format!("unknown model kind '{other}'"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, r2};

    fn linear_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 0.5).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn linear_regression_recovers_weights() {
        let (x, y) = linear_data(200, 1);
        let m = fit_linear(&x, &y, 1e-9).unwrap();
        assert!((m.weights[0] - 3.0).abs() < 1e-6);
        assert!((m.weights[1] + 2.0).abs() < 1e-6);
        assert!((m.bias - 0.5).abs() < 1e-6);
    }

    #[test]
    fn logistic_separates_linear_boundary() {
        let (x, raw) = linear_data(300, 2);
        let y: Vec<f64> = raw.iter().map(|v| if *v > 0.5 { 1.0 } else { 0.0 }).collect();
        let m = fit_logistic(&x, &y, 300, 1.0).unwrap();
        let pred: Vec<f64> = x
            .matvec(&m.weights)
            .into_iter()
            .map(|s| sigmoid(s + m.bias))
            .collect();
        assert!(accuracy(&pred, &y, 0.5) > 0.9);
    }

    #[test]
    fn tree_fits_step_function() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 9.0 }).collect();
        let x = Matrix::from_rows(&rows);
        let t = fit_tree(&x, &y, &TreeParams::default()).unwrap();
        assert_eq!(t.score_row(&[10.0]), 1.0);
        assert_eq!(t.score_row(&[90.0]), 9.0);
        assert!(t.depth() <= 7);
    }

    #[test]
    fn gbt_beats_single_tree_on_regression() {
        let (x, y) = linear_data(300, 3);
        let shallow = TreeParams {
            max_depth: 2,
            ..Default::default()
        };
        let tree = fit_tree(&x, &y, &shallow).unwrap();
        let gbt = fit_gbt(&x, &y, 50, 0.3, &shallow, false).unwrap();
        let tree_pred = tree.score_batch(&x);
        let gbt_pred = gbt.score_batch(&x);
        assert!(r2(&gbt_pred, &y) > r2(&tree_pred, &y));
        assert!(r2(&gbt_pred, &y) > 0.9);
    }

    #[test]
    fn forest_is_deterministic_per_seed() {
        let (x, y) = linear_data(100, 4);
        let a = fit_forest(&x, &y, 5, &TreeParams::default()).unwrap();
        let b = fit_forest(&x, &y, 5, &TreeParams::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn naive_bayes_requires_both_classes() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        assert!(fit_naive_bayes(&x, &[1.0, 1.0]).is_err());
        let x = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        let m = fit_naive_bayes(&x, &[0.0, 1.0]).unwrap();
        assert!(m.score_row(&[9.0]) > 0.5);
    }

    #[test]
    fn split_partitions_everything() {
        let (train, test) = train_test_split(100, 0.3, 7).unwrap();
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_rejects_bad_fractions() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.1, 1.5] {
            let err = train_test_split(100, bad, 7).unwrap_err();
            assert!(
                err.to_string().contains("test_fraction"),
                "fraction {bad}: {err}"
            );
        }
        // boundary values stay legal
        let (train, test) = train_test_split(10, 0.0, 7).unwrap();
        assert_eq!((train.len(), test.len()), (10, 0));
        let (train, test) = train_test_split(10, 1.0, 7).unwrap();
        assert_eq!((train.len(), test.len()), (0, 10));
    }

    #[test]
    fn fit_model_with_matches_defaults() {
        let (x, raw) = linear_data(80, 11);
        let y: Vec<f64> = raw.iter().map(|v| if *v > 0.5 { 1.0 } else { 0.0 }).collect();
        for kind in ["linear", "logistic", "tree", "forest", "gbt", "naive_bayes", "knn"] {
            let a = fit_model(kind, &x, &y).unwrap();
            let b = fit_model_with(kind, &x, &y, &FitParams::default()).unwrap();
            assert_eq!(a, b, "{kind}");
        }
    }

    #[test]
    fn fit_model_with_honours_overrides() {
        let (x, y) = linear_data(120, 12);
        let deep = fit_model_with(
            "gbt_regression",
            &x,
            &y,
            &FitParams {
                trees: Some(5),
                ..Default::default()
            },
        )
        .unwrap();
        let Model::Gbt(m) = deep else { panic!("expected gbt") };
        assert_eq!(m.trees.len(), 5);
        let seeded_a = fit_model_with(
            "forest",
            &x,
            &y,
            &FitParams {
                seed: 99,
                trees: Some(3),
                ..Default::default()
            },
        )
        .unwrap();
        let seeded_b = fit_model_with(
            "forest",
            &x,
            &y,
            &FitParams {
                seed: 99,
                trees: Some(3),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(seeded_a, seeded_b);
    }

    #[test]
    fn fit_model_dispatch() {
        let (x, raw) = linear_data(80, 9);
        let y: Vec<f64> = raw.iter().map(|v| if *v > 0.5 { 1.0 } else { 0.0 }).collect();
        for kind in ["linear", "logistic", "tree", "forest", "gbt", "naive_bayes", "knn"] {
            let m = fit_model(kind, &x, &y).unwrap();
            assert_eq!(m.score_batch(&x).len(), 80, "{kind}");
        }
        assert!(fit_model("nope", &x, &y).is_err());
    }
}

#[cfg(test)]
mod cv_tests {
    use super::*;
    use crate::metrics::auc;

    #[test]
    fn cross_validation_scores_separable_data_high() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let signal = if i % 2 == 0 { -1.0 } else { 1.0 };
                vec![signal + rng.gen_range(-0.3..0.3), rng.gen_range(-1.0..1.0)]
            })
            .collect();
        let y: Vec<f64> = (0..200).map(|i| (i % 2) as f64).collect();
        let x = Matrix::from_rows(&rows);
        let folds = cross_validate("logistic", &x, &y, 5, 1).unwrap();
        assert_eq!(folds.len(), 5);
        for f in &folds {
            assert!(f.score > 0.9, "fold {} score {}", f.fold, f.score);
        }
        let _ = auc(&[0.0], &[0.0]); // keep import used
    }

    #[test]
    fn cross_validation_rejects_tiny_data() {
        let x = Matrix::from_rows(&[vec![1.0]]);
        assert!(cross_validate("linear", &x, &[1.0], 5, 1).is_err());
    }

    #[test]
    fn cross_validation_rejects_empty_and_constant_targets() {
        let empty = Matrix::zeros(0, 1);
        let err = cross_validate("linear", &empty, &[], 3, 1).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");

        // A constant 0/1 target used to sneak past the binary-target check
        // and score AUC against a single class.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let ones = vec![1.0; 20];
        let err = cross_validate("logistic", &x, &ones, 4, 1).unwrap_err();
        assert!(err.to_string().contains("constant target"), "{err}");

        let halves = vec![0.5; 20];
        let err = cross_validate("linear", &x, &halves, 4, 1).unwrap_err();
        assert!(err.to_string().contains("constant target"), "{err}");

        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let err = cross_validate("linear", &x, &y[..10], 4, 1).unwrap_err();
        assert!(err.to_string().contains("does not match"), "{err}");
    }

    #[test]
    fn folds_partition_all_rows() {
        // every row appears in exactly one test fold: total test size == n
        let rows: Vec<Vec<f64>> = (0..37).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..37).map(|i| (i % 2) as f64).collect();
        let x = Matrix::from_rows(&rows);
        let folds = cross_validate("tree", &x, &y, 4, 9).unwrap();
        assert_eq!(folds.len(), 4);
    }
}
