//! Model monitoring: score-distribution drift detection.
//!
//! The paper's landscape (Figure 3) lists *Model Monitoring* as a core
//! serving feature, and §2 notes that "as the underlying data evolves
//! models need to be updated". This module provides the standard
//! lightweight detector: snapshot the score distribution at deployment
//! time, then compare live scores against it with the Population
//! Stability Index (PSI) plus mean/std shift.

use serde::{Deserialize, Serialize};

/// A compact summary of a score distribution: fixed-width histogram over
/// `[lo, hi]` plus moments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreProfile {
    pub lo: f64,
    pub hi: f64,
    /// Bucket proportions (sum to 1 when count > 0); first/last buckets
    /// absorb out-of-range values.
    pub buckets: Vec<f64>,
    pub mean: f64,
    pub std: f64,
    pub count: usize,
}

impl ScoreProfile {
    /// Build a profile with `n_buckets` over the observed range of
    /// `scores` (or `[0, 1]` when empty/degenerate).
    pub fn from_scores(scores: &[f64], n_buckets: usize) -> ScoreProfile {
        let n_buckets = n_buckets.max(2);
        let finite: Vec<f64> = scores.iter().copied().filter(|s| s.is_finite()).collect();
        let (lo, hi) = finite.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &s| {
            (l.min(s), h.max(s))
        });
        let (lo, hi) = if finite.is_empty() || lo >= hi {
            (0.0, 1.0)
        } else {
            (lo, hi)
        };
        Self::from_scores_with_range(&finite, n_buckets, lo, hi)
    }

    /// Build a profile over an explicit range (used to compare live scores
    /// against a baseline's binning).
    pub fn from_scores_with_range(
        scores: &[f64],
        n_buckets: usize,
        lo: f64,
        hi: f64,
    ) -> ScoreProfile {
        let n_buckets = n_buckets.max(2);
        let width = (hi - lo).max(1e-12);
        let mut counts = vec![0usize; n_buckets];
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        let mut n = 0usize;
        for &s in scores {
            if !s.is_finite() {
                continue;
            }
            let b = (((s - lo) / width) * n_buckets as f64)
                .floor()
                .clamp(0.0, (n_buckets - 1) as f64) as usize;
            counts[b] += 1;
            sum += s;
            sumsq += s * s;
            n += 1;
        }
        let mean = if n == 0 { 0.0 } else { sum / n as f64 };
        let var = if n == 0 {
            0.0
        } else {
            (sumsq / n as f64 - mean * mean).max(0.0)
        };
        let buckets = counts
            .iter()
            .map(|&c| if n == 0 { 0.0 } else { c as f64 / n as f64 })
            .collect();
        ScoreProfile {
            lo,
            hi,
            buckets,
            mean,
            std: var.sqrt(),
            count: n,
        }
    }

    /// Population Stability Index against this baseline. Standard reading:
    /// `< 0.1` stable, `0.1–0.25` moderate shift, `> 0.25` major shift.
    pub fn psi(&self, live: &ScoreProfile) -> f64 {
        const EPS: f64 = 1e-4;
        self.buckets
            .iter()
            .zip(&live.buckets)
            .map(|(&base, &cur)| {
                let b = base.max(EPS);
                let c = cur.max(EPS);
                (c - b) * (c / b).ln()
            })
            .sum()
    }

    /// Compare live raw scores against this baseline (same binning).
    pub fn check(&self, live_scores: &[f64]) -> DriftReport {
        let live = ScoreProfile::from_scores_with_range(
            live_scores,
            self.buckets.len(),
            self.lo,
            self.hi,
        );
        let psi = self.psi(&live);
        let mean_shift = if self.std > 1e-12 {
            (live.mean - self.mean).abs() / self.std
        } else {
            (live.mean - self.mean).abs()
        };
        let verdict = if psi > 0.25 || mean_shift > 3.0 {
            DriftVerdict::Major
        } else if psi > 0.1 || mean_shift > 1.5 {
            DriftVerdict::Moderate
        } else {
            DriftVerdict::Stable
        };
        DriftReport {
            psi,
            mean_shift_sigmas: mean_shift,
            baseline_mean: self.mean,
            live_mean: live.mean,
            verdict,
        }
    }
}

/// Outcome of a drift check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriftVerdict {
    Stable,
    Moderate,
    Major,
}

/// Full drift comparison result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    pub psi: f64,
    /// |live mean − baseline mean| in baseline standard deviations.
    pub mean_shift_sigmas: f64,
    pub baseline_mean: f64,
    pub live_mean: f64,
    pub verdict: DriftVerdict,
}

impl DriftReport {
    /// Should the model be revalidated/retrained?
    pub fn needs_attention(&self) -> bool {
        self.verdict != DriftVerdict::Stable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_rng::rngs::StdRng;
    use flock_rng::{Rng, SeedableRng};

    fn normal_ish(rng: &mut StdRng, mean: f64, spread: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| {
                let u: f64 = (0..6).map(|_| rng.gen_range(-1.0..1.0)).sum::<f64>() / 6.0;
                mean + spread * u
            })
            .collect()
    }

    #[test]
    fn identical_distribution_is_stable() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = normal_ish(&mut rng, 0.5, 0.2, 5000);
        let live = normal_ish(&mut rng, 0.5, 0.2, 5000);
        let profile = ScoreProfile::from_scores(&base, 10);
        let report = profile.check(&live);
        assert_eq!(report.verdict, DriftVerdict::Stable, "{report:?}");
        assert!(report.psi < 0.1);
    }

    #[test]
    fn shifted_distribution_is_flagged() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = normal_ish(&mut rng, 0.3, 0.1, 5000);
        let live = normal_ish(&mut rng, 0.7, 0.1, 5000);
        let profile = ScoreProfile::from_scores(&base, 10);
        let report = profile.check(&live);
        assert_eq!(report.verdict, DriftVerdict::Major, "{report:?}");
        assert!(report.needs_attention());
        assert!(report.psi > 0.25);
    }

    #[test]
    fn mild_shift_is_moderate_or_worse() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = normal_ish(&mut rng, 0.5, 0.2, 8000);
        let live = normal_ish(&mut rng, 0.58, 0.2, 8000);
        let profile = ScoreProfile::from_scores(&base, 10);
        let report = profile.check(&live);
        assert!(report.psi > 0.01, "{report:?}");
        assert!(report.verdict != DriftVerdict::Stable || report.psi < 0.1);
    }

    #[test]
    fn out_of_range_scores_land_in_edge_buckets() {
        let profile = ScoreProfile::from_scores(&[0.0, 0.5, 1.0], 4);
        let report = profile.check(&[-5.0, 10.0]);
        assert!(report.needs_attention());
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let empty = ScoreProfile::from_scores(&[], 8);
        assert_eq!(empty.count, 0);
        let _ = empty.check(&[]);
        let constant = ScoreProfile::from_scores(&[0.5; 100], 8);
        let report = constant.check(&[0.5; 50]);
        assert_eq!(report.verdict, DriftVerdict::Stable);
        let _ = ScoreProfile::from_scores(&[f64::NAN, f64::INFINITY], 8);
    }

    #[test]
    fn profile_serializes() {
        let p = ScoreProfile::from_scores(&[0.1, 0.9, 0.5], 4);
        let json = serde_json::to_string(&p).unwrap();
        let back: ScoreProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
