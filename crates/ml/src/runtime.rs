//! Scoring runtimes — the *standalone* baselines of the paper's Figure 4.
//!
//! * [`StandaloneRuntime`] plays the role of ONNX Runtime ("ORT"): a
//!   competent, vectorized, single-threaded scorer with no relational
//!   co-optimization.
//! * [`interpreted_score`] plays the role of naive per-row UDF scoring
//!   (the paper's "Inline SQL" 1× anchor): every row re-walks the pipeline
//!   structure and allocates a fresh feature buffer.

use crate::error::Result;
use crate::featurize::{Encoder, RawValue};
use crate::frame::{Frame, FrameCol};
use crate::pipeline::Pipeline;
use std::sync::atomic::{AtomicU64, Ordering};

/// Rows per internal scoring batch. Bounds the feature-matrix working set
/// (like real serving runtimes do) so large inputs stay cache-resident.
pub const SCORE_BATCH_ROWS: usize = 32_768;

/// Lock-free counters for one scoring-pipeline stage. Mirrors the SQL
/// executor's per-operator metrics so PREDICT-heavy queries can be broken
/// down end to end (relational operators *and* scoring stages).
#[derive(Debug, Default)]
pub struct StageMetrics {
    pub rows: AtomicU64,
    pub batches: AtomicU64,
    pub wall_ns: AtomicU64,
}

impl StageMetrics {
    /// Record one batch through this stage.
    pub fn record(&self, rows: usize, elapsed: std::time::Duration) {
        self.rows.fetch_add(rows as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.wall_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Mean cost per row, NaN before any rows were recorded.
    pub fn ns_per_row(&self) -> f64 {
        self.wall_ns.load(Ordering::Relaxed) as f64 / self.rows.load(Ordering::Relaxed) as f64
    }
}

/// Per-stage latency and row counters for the scoring runtime:
/// featurization vs. model evaluation (vectorized path), plus the
/// interpreted row-at-a-time path, which has no stage split.
#[derive(Debug, Default)]
pub struct ScoringMetrics {
    /// Raw columns → dense feature matrix.
    pub featurize: StageMetrics,
    /// Feature matrix → scores (model evaluation).
    pub score: StageMetrics,
    /// Whole-pipeline interpreted scoring (the per-row UDF path).
    pub interpret: StageMetrics,
}

/// Vectorized, single-threaded pipeline scorer (the "ORT" baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct StandaloneRuntime;

impl StandaloneRuntime {
    pub fn new() -> Self {
        StandaloneRuntime
    }

    /// Score a whole frame, featurizing and scoring in bounded batches.
    pub fn score(&self, pipeline: &Pipeline, frame: &Frame) -> Result<Vec<f64>> {
        let n = frame.num_rows();
        if n <= SCORE_BATCH_ROWS {
            return pipeline.score(frame);
        }
        let mut out = Vec::with_capacity(n);
        for chunk in frame.chunks(SCORE_BATCH_ROWS) {
            out.extend(pipeline.score(&chunk)?);
        }
        Ok(out)
    }

    /// Like [`score`](Self::score), recording per-stage latency and row
    /// counts into `metrics`.
    pub fn score_with_metrics(
        &self,
        pipeline: &Pipeline,
        frame: &Frame,
        metrics: &ScoringMetrics,
    ) -> Result<Vec<f64>> {
        let n = frame.num_rows();
        if n <= SCORE_BATCH_ROWS {
            return pipeline.score_with_metrics(frame, metrics);
        }
        let mut out = Vec::with_capacity(n);
        for chunk in frame.chunks(SCORE_BATCH_ROWS) {
            out.extend(pipeline.score_with_metrics(&chunk, metrics)?);
        }
        Ok(out)
    }
}

/// Row-at-a-time interpreted scoring: for each row, extract scalars,
/// build a fresh feature vector, walk the model. Deliberately naive —
/// this is the cost model of calling a scalar UDF per row.
pub fn interpreted_score(pipeline: &Pipeline, frame: &Frame) -> Result<Vec<f64>> {
    interpret(pipeline, frame, None)
}

/// [`interpreted_score`] with row/latency counters.
pub fn interpreted_score_with_metrics(
    pipeline: &Pipeline,
    frame: &Frame,
    metrics: &ScoringMetrics,
) -> Result<Vec<f64>> {
    interpret(pipeline, frame, Some(metrics))
}

fn interpret(
    pipeline: &Pipeline,
    frame: &Frame,
    metrics: Option<&ScoringMetrics>,
) -> Result<Vec<f64>> {
    let started = std::time::Instant::now();
    let n = frame.num_rows();
    let mut out = Vec::with_capacity(n);
    // resolve input columns once; per-row work still dominates. Fixed
    // (specialized) columns never bind a frame column — their encoder
    // ignores the placeholder value.
    let cols: Vec<Option<&FrameCol>> = pipeline
        .columns
        .iter()
        .map(|cp| {
            if matches!(cp.encoder, Encoder::Fixed { .. }) {
                Ok(None)
            } else {
                frame.column(&cp.input).map(Some)
            }
        })
        .collect::<Result<_>>()?;
    for row in 0..n {
        let values: Vec<RawValue> = cols
            .iter()
            .map(|c| match c {
                None => RawValue::Num(f64::NAN),
                Some(c) => match c.as_f64() {
                    Some(v) => RawValue::Num(v[row]),
                    None => RawValue::Text(c.as_str().unwrap()[row].clone()),
                },
            })
            .collect();
        out.push(pipeline.score_row_values(&values)?);
    }
    if let Some(m) = metrics {
        m.interpret.record(n, started.elapsed());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::ColumnPipeline;
    use crate::model::{LinearModel, Model};

    fn setup() -> (Pipeline, Frame<'static>) {
        let p = Pipeline::new(
            vec![
                ColumnPipeline::numeric("a"),
                ColumnPipeline::one_hot("b", vec!["x".into(), "y".into()]),
            ],
            Model::Linear(LinearModel::new(vec![2.0, 5.0, 7.0], 1.0)),
            "out",
        );
        let f = Frame::new()
            .with("a", FrameCol::F64(vec![1.0, 2.0, 3.0]))
            .unwrap()
            .with(
                "b",
                FrameCol::Str(vec!["x".into(), "y".into(), "z".into()]),
            )
            .unwrap();
        (p, f)
    }

    #[test]
    fn runtimes_agree() {
        let (p, f) = setup();
        let vectorized = StandaloneRuntime::new().score(&p, &f).unwrap();
        let interpreted = interpreted_score(&p, &f).unwrap();
        assert_eq!(vectorized, interpreted);
        assert_eq!(vectorized, vec![8.0, 12.0, 7.0]);
    }

    #[test]
    fn stage_metrics_accumulate_per_path() {
        let (p, f) = setup();
        let m = ScoringMetrics::default();
        let scores = StandaloneRuntime::new()
            .score_with_metrics(&p, &f, &m)
            .unwrap();
        assert_eq!(scores, vec![8.0, 12.0, 7.0]);
        // vectorized path: featurize + model-eval stages, no interpret
        assert_eq!(m.featurize.rows.load(Ordering::Relaxed), 3);
        assert_eq!(m.featurize.batches.load(Ordering::Relaxed), 1);
        assert_eq!(m.score.rows.load(Ordering::Relaxed), 3);
        assert_eq!(m.interpret.rows.load(Ordering::Relaxed), 0);
        // interpreted path lands in its own stage
        let same = interpreted_score_with_metrics(&p, &f, &m).unwrap();
        assert_eq!(same, scores);
        assert_eq!(m.interpret.rows.load(Ordering::Relaxed), 3);
        assert_eq!(m.featurize.rows.load(Ordering::Relaxed), 3);
        assert!(m.score.ns_per_row() >= 0.0);
    }

    #[test]
    fn missing_column_is_error() {
        let (p, _) = setup();
        let empty = Frame::new()
            .with("a", FrameCol::F64(vec![1.0]))
            .unwrap();
        assert!(StandaloneRuntime::new().score(&p, &empty).is_err());
        assert!(interpreted_score(&p, &empty).is_err());
    }
}
