//! Scoring runtimes — the *standalone* baselines of the paper's Figure 4.
//!
//! * [`StandaloneRuntime`] plays the role of ONNX Runtime ("ORT"): a
//!   competent, vectorized, single-threaded scorer with no relational
//!   co-optimization.
//! * [`interpreted_score`] plays the role of naive per-row UDF scoring
//!   (the paper's "Inline SQL" 1× anchor): every row re-walks the pipeline
//!   structure and allocates a fresh feature buffer.

use crate::error::Result;
use crate::featurize::RawValue;
use crate::frame::{Frame, FrameCol};
use crate::pipeline::Pipeline;

/// Rows per internal scoring batch. Bounds the feature-matrix working set
/// (like real serving runtimes do) so large inputs stay cache-resident.
pub const SCORE_BATCH_ROWS: usize = 32_768;

/// Vectorized, single-threaded pipeline scorer (the "ORT" baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct StandaloneRuntime;

impl StandaloneRuntime {
    pub fn new() -> Self {
        StandaloneRuntime
    }

    /// Score a whole frame, featurizing and scoring in bounded batches.
    pub fn score(&self, pipeline: &Pipeline, frame: &Frame) -> Result<Vec<f64>> {
        let n = frame.num_rows();
        if n <= SCORE_BATCH_ROWS {
            return pipeline.score(frame);
        }
        let mut out = Vec::with_capacity(n);
        for chunk in frame.chunks(SCORE_BATCH_ROWS) {
            out.extend(pipeline.score(&chunk)?);
        }
        Ok(out)
    }
}

/// Row-at-a-time interpreted scoring: for each row, extract scalars,
/// build a fresh feature vector, walk the model. Deliberately naive —
/// this is the cost model of calling a scalar UDF per row.
pub fn interpreted_score(pipeline: &Pipeline, frame: &Frame) -> Result<Vec<f64>> {
    let n = frame.num_rows();
    let mut out = Vec::with_capacity(n);
    // resolve input columns once; per-row work still dominates
    let cols: Vec<&FrameCol> = pipeline
        .columns
        .iter()
        .map(|cp| frame.column(&cp.input))
        .collect::<Result<_>>()?;
    for row in 0..n {
        let values: Vec<RawValue> = cols
            .iter()
            .map(|c| match c {
                FrameCol::F64(v) => RawValue::Num(v[row]),
                FrameCol::Str(v) => RawValue::Text(v[row].clone()),
            })
            .collect();
        out.push(pipeline.score_row_values(&values)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::ColumnPipeline;
    use crate::model::{LinearModel, Model};

    fn setup() -> (Pipeline, Frame) {
        let p = Pipeline::new(
            vec![
                ColumnPipeline::numeric("a"),
                ColumnPipeline::one_hot("b", vec!["x".into(), "y".into()]),
            ],
            Model::Linear(LinearModel::new(vec![2.0, 5.0, 7.0], 1.0)),
            "out",
        );
        let f = Frame::new()
            .with("a", FrameCol::F64(vec![1.0, 2.0, 3.0]))
            .unwrap()
            .with(
                "b",
                FrameCol::Str(vec!["x".into(), "y".into(), "z".into()]),
            )
            .unwrap();
        (p, f)
    }

    #[test]
    fn runtimes_agree() {
        let (p, f) = setup();
        let vectorized = StandaloneRuntime::new().score(&p, &f).unwrap();
        let interpreted = interpreted_score(&p, &f).unwrap();
        assert_eq!(vectorized, interpreted);
        assert_eq!(vectorized, vec![8.0, 12.0, 7.0]);
    }

    #[test]
    fn missing_column_is_error() {
        let (p, _) = setup();
        let empty = Frame::new()
            .with("a", FrameCol::F64(vec![1.0]))
            .unwrap();
        assert!(StandaloneRuntime::new().score(&p, &empty).is_err());
        assert!(interpreted_score(&p, &empty).is_err());
    }
}
