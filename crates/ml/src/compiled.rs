//! Compiled pipelines: the evaluation-ready artifact the compiled-pipeline
//! cache stores.
//!
//! Compilation rewrites the model into the layout the batch kernels want —
//! tree-family models become [`FlatTrees`] struct-of-arrays ensembles —
//! while featurization plans are carried through unchanged. Compiled
//! scoring is bit-identical to [`Pipeline::score`]: same featurizers, same
//! batching ([`SCORE_BATCH_ROWS`]), same split rule and summation order.

use crate::error::Result;
use crate::frame::Frame;
use crate::matrix::Matrix;
use crate::model::flat::{BatchScratch, FlatTrees};
use crate::model::{sigmoid, Model};
use crate::pipeline::Pipeline;
use crate::runtime::{ScoringMetrics, SCORE_BATCH_ROWS};

/// How the flattened-tree accumulator turns into final scores.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatKind {
    /// A single decision tree: the accumulated value is the score.
    Single,
    /// Random forest: mean of the accumulated tree values.
    ForestMean { count: usize },
    /// Gradient-boosted trees: `base + lr * sum`, optionally squashed.
    Gbt {
        learning_rate: f64,
        base_score: f64,
        sigmoid_output: bool,
    },
}

/// A model in evaluation-ready layout.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledModel {
    /// Tree-family model flattened into struct-of-arrays node storage.
    Flat { trees: FlatTrees, kind: FlatKind },
    /// Models without a compiled form fall back to the stock scorer.
    Plain(Model),
}

impl CompiledModel {
    pub fn compile(model: &Model) -> CompiledModel {
        match model {
            Model::Tree(t) => CompiledModel::Flat {
                trees: FlatTrees::from_trees(std::slice::from_ref(t)),
                kind: FlatKind::Single,
            },
            Model::Forest(f) => CompiledModel::Flat {
                trees: FlatTrees::from_trees(&f.trees),
                kind: FlatKind::ForestMean {
                    count: f.trees.len(),
                },
            },
            Model::Gbt(g) => CompiledModel::Flat {
                trees: FlatTrees::from_trees(&g.trees),
                kind: FlatKind::Gbt {
                    learning_rate: g.learning_rate,
                    base_score: g.base_score,
                    sigmoid_output: g.sigmoid_output,
                },
            },
            other => CompiledModel::Plain(other.clone()),
        }
    }

    /// Did compilation produce a kernel-friendly layout (vs. a fallback)?
    pub fn is_flat(&self) -> bool {
        matches!(self, CompiledModel::Flat { .. })
    }

    /// Score a feature batch.
    pub fn score_batch(&self, x: &Matrix) -> Vec<f64> {
        self.score_batch_inner(x, None)
    }

    /// Score a feature batch through the level-synchronous SoA kernel
    /// ([`FlatTrees::accumulate_batched`]), reusing `scratch` across
    /// calls. Bit-exact with [`score_batch`](Self::score_batch); non-tree
    /// models fall back to the stock scorer (no scratch needed).
    pub fn score_batch_batched(&self, x: &Matrix, scratch: &mut BatchScratch) -> Vec<f64> {
        self.score_batch_inner(x, Some(scratch))
    }

    fn score_batch_inner(&self, x: &Matrix, scratch: Option<&mut BatchScratch>) -> Vec<f64> {
        match self {
            CompiledModel::Plain(m) => m.score_batch(x),
            CompiledModel::Flat { trees, kind } => {
                let mut acc = vec![0.0; x.rows()];
                match scratch {
                    Some(s) => trees.accumulate_batched(x, &mut acc, s),
                    None => trees.accumulate(x, &mut acc),
                }
                match kind {
                    FlatKind::Single => {}
                    FlatKind::ForestMean { count } => {
                        if *count > 0 {
                            let c = *count as f64;
                            for v in &mut acc {
                                *v /= c;
                            }
                        }
                    }
                    FlatKind::Gbt {
                        learning_rate,
                        base_score,
                        sigmoid_output,
                    } => {
                        for v in &mut acc {
                            let raw = base_score + learning_rate * *v;
                            *v = if *sigmoid_output { sigmoid(raw) } else { raw };
                        }
                    }
                }
                acc
            }
        }
    }
}

/// A pipeline compiled for repeated in-engine scoring. Cached by the model
/// registry keyed on (model, version, specialization fingerprint).
#[derive(Debug, Clone)]
pub struct CompiledPipeline {
    /// The (possibly specialized) source pipeline: featurization plans,
    /// input binding, and output name come from here.
    pub pipeline: Pipeline,
    pub model: CompiledModel,
}

impl CompiledPipeline {
    pub fn compile(pipeline: &Pipeline) -> CompiledPipeline {
        CompiledPipeline {
            pipeline: pipeline.clone(),
            model: CompiledModel::compile(&pipeline.model),
        }
    }

    pub fn score(&self, frame: &Frame) -> Result<Vec<f64>> {
        self.score_inner(frame, None, None)
    }

    /// Like [`score`](Self::score), recording featurize/score stage
    /// latency and row counts (same stages the standalone runtime fills).
    pub fn score_with_metrics(
        &self,
        frame: &Frame,
        metrics: &ScoringMetrics,
    ) -> Result<Vec<f64>> {
        self.score_inner(frame, Some(metrics), None)
    }

    /// Like [`score_with_metrics`](Self::score_with_metrics) but scoring
    /// through the SoA batch kernel with caller-owned scratch buffers —
    /// the serving path's `PREDICT ... strategy batched` entry point.
    pub fn score_batched_with_metrics(
        &self,
        frame: &Frame,
        metrics: &ScoringMetrics,
        scratch: &mut BatchScratch,
    ) -> Result<Vec<f64>> {
        self.score_inner(frame, Some(metrics), Some(scratch))
    }

    fn score_inner(
        &self,
        frame: &Frame,
        metrics: Option<&ScoringMetrics>,
        mut scratch: Option<&mut BatchScratch>,
    ) -> Result<Vec<f64>> {
        let n = frame.num_rows();
        let mut out = Vec::with_capacity(n);
        for chunk in frame.chunks(SCORE_BATCH_ROWS) {
            let t = std::time::Instant::now();
            let x = self.pipeline.featurize(&chunk)?;
            if let Some(m) = metrics {
                m.featurize.record(chunk.num_rows(), t.elapsed());
            }
            let t = std::time::Instant::now();
            let scores = match scratch.as_deref_mut() {
                Some(s) => self.model.score_batch_batched(&x, s),
                None => self.model.score_batch(&x),
            };
            if let Some(m) = metrics {
                m.score.record(scores.len(), t.elapsed());
            }
            out.extend(scores);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::ColumnPipeline;
    use crate::frame::FrameCol;
    use crate::model::{DecisionTree, GbtModel, RandomForest, TreeNode};
    use crate::runtime::StandaloneRuntime;

    fn stump(feature: usize, threshold: f64, lo: f64, hi: f64) -> DecisionTree {
        DecisionTree {
            nodes: vec![
                TreeNode::Split {
                    feature,
                    threshold,
                    left: 1,
                    right: 2,
                },
                TreeNode::Leaf { value: lo },
                TreeNode::Leaf { value: hi },
            ],
        }
    }

    fn frame() -> Frame<'static> {
        Frame::new()
            .with("a", FrameCol::F64(vec![1.0, -2.0, f64::NAN, 0.5]))
            .unwrap()
            .with("b", FrameCol::F64(vec![10.0, 0.0, 3.0, -1.0]))
            .unwrap()
    }

    fn check_model(model: Model) {
        let p = Pipeline::new(
            vec![ColumnPipeline::numeric("a"), ColumnPipeline::numeric("b")],
            model,
            "out",
        );
        let f = frame();
        let stock = StandaloneRuntime::new().score(&p, &f).unwrap();
        let compiled = CompiledPipeline::compile(&p);
        assert_eq!(compiled.score(&f).unwrap(), stock);
        // The SoA batch kernel must agree bit-for-bit too.
        let metrics = ScoringMetrics::default();
        let mut scratch = BatchScratch::default();
        let batched = compiled
            .score_batched_with_metrics(&f, &metrics, &mut scratch)
            .unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&batched), bits(&stock));
    }

    #[test]
    fn compiled_trees_are_bit_exact() {
        check_model(Model::Tree(stump(0, 0.0, -1.0, 1.0)));
        check_model(Model::Forest(RandomForest {
            trees: vec![
                stump(0, 0.0, 1.0, 2.0),
                stump(1, 1.0, 0.1, 0.7),
                stump(0, -1.0, -5.0, 5.0),
            ],
        }));
        check_model(Model::Gbt(GbtModel {
            trees: vec![stump(0, 0.5, -1.0, 1.0), stump(1, 2.0, 0.25, -0.25)],
            learning_rate: 0.3,
            base_score: 0.5,
            sigmoid_output: true,
        }));
    }

    #[test]
    fn empty_forest_scores_zero() {
        let p = Pipeline::new(
            vec![ColumnPipeline::numeric("a")],
            Model::Forest(RandomForest { trees: vec![] }),
            "out",
        );
        let f = Frame::new().with("a", FrameCol::F64(vec![1.0])).unwrap();
        let compiled = CompiledPipeline::compile(&p);
        assert_eq!(compiled.score(&f).unwrap(), vec![0.0]);
        assert_eq!(p.score(&f).unwrap(), vec![0.0]);
    }

    #[test]
    fn non_tree_models_fall_back_to_plain() {
        let m = CompiledModel::compile(&Model::Linear(crate::model::LinearModel::new(
            vec![1.0],
            0.0,
        )));
        assert!(!m.is_flat());
    }
}
