//! Evaluation metrics.

/// Mean squared error.
pub fn mse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    mse(pred, truth).sqrt()
}

/// Classification accuracy of probabilistic predictions at a threshold.
pub fn accuracy(pred: &[f64], truth: &[f64], threshold: f64) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    let correct = pred
        .iter()
        .zip(truth)
        .filter(|(p, t)| (**p >= threshold) == (**t >= 0.5))
        .count();
    correct as f64 / pred.len() as f64
}

/// Area under the ROC curve via the rank-sum (Mann-Whitney) formulation.
pub fn auc(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    let mut pairs: Vec<(f64, bool)> = pred
        .iter()
        .zip(truth)
        .map(|(p, t)| (*p, *t >= 0.5))
        .collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let n_pos = pairs.iter().filter(|(_, t)| *t).count();
    let n_neg = pairs.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // average ranks with tie handling
    let mut rank_sum_pos = 0.0;
    let mut i = 0usize;
    while i < pairs.len() {
        let mut j = i;
        while j + 1 < pairs.len() && pairs[j + 1].0 == pairs[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for p in &pairs[i..=j] {
            if p.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// Coefficient of determination (R²).
pub fn r2(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if truth.is_empty() {
        return 0.0;
    }
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = pred
        .iter()
        .zip(truth)
        .map(|(p, t)| (t - p) * (t - p))
        .sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_and_rmse() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert!((rmse(&[0.0], &[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_thresholds() {
        let pred = [0.9, 0.2, 0.6, 0.4];
        let truth = [1.0, 0.0, 0.0, 1.0];
        assert_eq!(accuracy(&pred, &truth, 0.5), 0.5);
    }

    #[test]
    fn auc_perfect_and_random() {
        let truth = [1.0, 1.0, 0.0, 0.0];
        assert_eq!(auc(&[0.9, 0.8, 0.2, 0.1], &truth), 1.0);
        assert_eq!(auc(&[0.1, 0.2, 0.8, 0.9], &truth), 0.0);
        // all-tied predictions -> 0.5
        assert_eq!(auc(&[0.5, 0.5, 0.5, 0.5], &truth), 0.5);
    }

    #[test]
    fn r2_of_perfect_fit_is_one() {
        let t = [1.0, 2.0, 3.0];
        assert!((r2(&t, &t) - 1.0).abs() < 1e-12);
        assert!(r2(&[2.0, 2.0, 2.0], &t) < 1e-12 + 0.0 + 1e-12);
    }
}
