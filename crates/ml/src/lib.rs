//! # flock-ml
//!
//! The ML substrate of the Flock reference architecture (CIDR 2020,
//! *"Cloudy with high chance of DBMS"*). It provides everything the paper
//! assumes exists around the DBMS:
//!
//! * **featurizers** (imputation, scaling, one-hot, feature hashing,
//!   binning) and **inference pipelines** — "practical end-to-end
//!   prediction pipelines are composed of a larger variety of operators";
//! * a **model zoo** (linear, logistic, decision tree, random forest,
//!   gradient-boosted trees, naive Bayes, kNN) with batch and row scoring;
//! * **training** routines so experiments use realistic models;
//! * **FONNX**, a uniform serialized model representation (the paper's
//!   ONNX stand-in), stored by the DBMS as model payloads;
//! * scoring **runtimes**: a vectorized standalone runtime (the paper's
//!   "ONNX Runtime" baseline) and a row-at-a-time interpreter (the
//!   "Inline SQL" 1× anchor);
//! * the **introspection hooks** the cross-optimizer consumes: per-input
//!   usage from model sparsity, range-based model compression, and
//!   deterministic feature layout.

pub mod compiled;
pub mod drift;
pub mod error;
pub mod featurize;
pub mod fonnx;
pub mod frame;
pub mod matrix;
pub mod metrics;
pub mod model;
pub mod pipeline;
pub mod runtime;
pub mod specialize;
pub mod train;

pub use compiled::{CompiledModel, CompiledPipeline};
pub use drift::{DriftReport, DriftVerdict, ScoreProfile};
pub use error::{MlError, Result};
pub use featurize::{ColumnPipeline, Encoder, NumericStep, RawValue};
pub use frame::{Frame, FrameCol};
pub use matrix::Matrix;
pub use model::{
    BatchScratch, DecisionTree, GaussianNb, GbtModel, KnnModel, LinearModel, Model, RandomForest,
    TreeNode,
};
pub use pipeline::Pipeline;
pub use specialize::{specialize_mask, InputConstraint, SpecializationReport};
pub use runtime::{
    interpreted_score, interpreted_score_with_metrics, ScoringMetrics, StageMetrics,
    StandaloneRuntime,
};
