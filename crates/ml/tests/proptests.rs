//! Property-based tests of the ML substrate invariants.

use flock_ml::model::sigmoid;
use flock_ml::{
    fonnx, interpreted_score, specialize_mask, ColumnPipeline, CompiledPipeline, DecisionTree,
    Encoder, Frame, FrameCol, GbtModel, InputConstraint, LinearModel, Matrix, Model, NumericStep,
    Pipeline, RandomForest, RawValue, StandaloneRuntime, TreeNode,
};
use proptest::prelude::*;

// ---- strategies -----------------------------------------------------

fn finite_f64() -> impl Strategy<Value = f64> {
    -1e4f64..1e4
}

fn numeric_steps() -> impl Strategy<Value = Vec<NumericStep>> {
    proptest::collection::vec(
        prop_oneof![
            finite_f64().prop_map(|fill| NumericStep::Impute { fill }),
            (finite_f64(), 0.1f64..100.0)
                .prop_map(|(mean, std)| NumericStep::Standardize { mean, std }),
            (finite_f64(), 1.0f64..100.0)
                .prop_map(|(min, w)| NumericStep::MinMax { min, max: min + w }),
            Just(NumericStep::Log1p),
            (finite_f64(), 0.0f64..100.0)
                .prop_map(|(lo, w)| NumericStep::Clip { lo, hi: lo + w }),
        ],
        0..3,
    )
}

fn column_pipeline(idx: usize) -> impl Strategy<Value = ColumnPipeline> {
    let name = format!("c{idx}");
    prop_oneof![
        numeric_steps().prop_map({
            let name = name.clone();
            move |steps| ColumnPipeline {
                input: name.clone(),
                steps,
                encoder: Encoder::Numeric,
            }
        }),
        (2usize..5).prop_map({
            let name = name.clone();
            move |k| ColumnPipeline {
                input: name.clone(),
                steps: vec![],
                encoder: Encoder::OneHot {
                    categories: (0..k).map(|i| format!("cat{i}")).collect(),
                },
            }
        }),
        (2usize..8).prop_map({
            let name = name.clone();
            move |buckets| ColumnPipeline {
                input: name.clone(),
                steps: vec![],
                encoder: Encoder::Hashing { buckets },
            }
        }),
        proptest::collection::vec(finite_f64(), 1..4).prop_map(move |mut edges| {
            edges.sort_by(f64::total_cmp);
            edges.dedup();
            ColumnPipeline {
                input: name.clone(),
                steps: vec![],
                encoder: Encoder::Binned { edges },
            }
        }),
    ]
}

fn arbitrary_pipeline() -> impl Strategy<Value = Pipeline> {
    (1usize..4)
        .prop_flat_map(|ncols| {
            let cols: Vec<_> = (0..ncols).map(column_pipeline).collect();
            (cols, proptest::collection::vec(-3.0f64..3.0, 32), -2.0f64..2.0, any::<bool>())
        })
        .prop_map(|(columns, raw_weights, bias, logistic)| {
            let width: usize = columns.iter().map(|c| c.width()).sum();
            let weights: Vec<f64> = raw_weights.into_iter().cycle().take(width).collect();
            let lm = LinearModel::new(weights, bias);
            let model = if logistic {
                Model::Logistic(lm)
            } else {
                Model::Linear(lm)
            };
            Pipeline::new(columns, model, "out")
        })
}

fn frame_for(pipeline: &Pipeline, rows: usize, seed: u64) -> Frame<'_> {
    use flock_rng::rngs::StdRng;
    use flock_rng::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut frame = Frame::new();
    for (i, cp) in pipeline.columns.iter().enumerate() {
        let _ = i;
        if cp.encoder.takes_strings() {
            let vals: Vec<String> = (0..rows)
                .map(|_| match rng.gen_range(0..4) {
                    0 => format!("cat{}", rng.gen_range(0..5)),
                    1 => "token one two".to_string(),
                    2 => String::new(),
                    _ => format!("w{} w{}", rng.gen_range(0..9), rng.gen_range(0..9)),
                })
                .collect();
            frame.push(cp.input.clone(), FrameCol::Str(vals)).unwrap();
        } else {
            let vals: Vec<f64> = (0..rows)
                .map(|_| {
                    if rng.gen_bool(0.1) {
                        f64::NAN
                    } else {
                        rng.gen_range(-1e3..1e3)
                    }
                })
                .collect();
            frame.push(cp.input.clone(), FrameCol::F64(vals)).unwrap();
        }
    }
    frame
}

// ---- properties ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FONNX serialization is lossless for arbitrary pipelines.
    #[test]
    fn fonnx_roundtrip_identity(p in arbitrary_pipeline()) {
        let bytes = fonnx::to_bytes(&p).unwrap();
        let back = fonnx::from_bytes(&bytes).unwrap();
        prop_assert_eq!(p, back);
    }

    /// The vectorized runtime and the row-at-a-time interpreter agree
    /// bit-for-bit on arbitrary pipelines and inputs.
    #[test]
    fn runtimes_agree(p in arbitrary_pipeline(), seed in any::<u64>()) {
        let frame = frame_for(&p, 17, seed);
        let vectorized = StandaloneRuntime::new().score(&p, &frame).unwrap();
        let interpreted = interpreted_score(&p, &frame).unwrap();
        prop_assert_eq!(vectorized, interpreted);
    }

    /// Pruning unused inputs never changes scores.
    #[test]
    fn pruning_preserves_scores(p in arbitrary_pipeline(), seed in any::<u64>()) {
        // zero out the weights of the first column's features to create
        // guaranteed sparsity
        let mut p = p;
        let (a, b) = p.feature_range(0);
        if let Model::Linear(lm) | Model::Logistic(lm) = &mut p.model {
            for w in &mut lm.weights[a..b] {
                *w = 0.0;
            }
        }
        let frame = frame_for(&p, 11, seed);
        let before = StandaloneRuntime::new().score(&p, &frame).unwrap();
        let (pruned, kept) = p.prune_unused_inputs();
        prop_assert!(kept.len() <= p.columns.len());
        let after = StandaloneRuntime::new().score(&pruned, &frame).unwrap();
        prop_assert_eq!(before, after);
    }

    /// Tree compression with true data ranges preserves every in-range
    /// prediction.
    #[test]
    fn tree_compression_is_semantics_preserving(
        splits in proptest::collection::vec((0usize..3, -100.0f64..100.0), 1..15),
        xs in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 3),
            1..30,
        ),
    ) {
        let tree = balanced_tree(&splits);
        let dim = 3;
        // ranges from the actual data
        let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); dim];
        for row in &xs {
            for (d, v) in row.iter().enumerate() {
                ranges[d].0 = ranges[d].0.min(*v);
                ranges[d].1 = ranges[d].1.max(*v);
            }
        }
        let compressed = tree.compress(&ranges);
        prop_assert!(compressed.num_nodes() <= tree.num_nodes());
        for row in &xs {
            prop_assert_eq!(tree.score_row(row), compressed.score_row(row));
        }
    }

    /// Linear feature selection keeps scores identical when only
    /// zero-weight features are dropped.
    #[test]
    fn linear_select_zero_features_identity(
        weights in proptest::collection::vec(prop_oneof![Just(0.0), -5.0f64..5.0], 1..10),
        x in proptest::collection::vec(-100.0f64..100.0, 10),
    ) {
        let lm = LinearModel::new(weights.clone(), 1.5);
        let x = &x[..weights.len()];
        let keep: Vec<usize> = lm
            .used_features()
            .iter()
            .enumerate()
            .filter_map(|(i, u)| u.then_some(i))
            .collect();
        let selected = lm.select_features(&keep);
        let xs: Vec<f64> = keep.iter().map(|&i| x[i]).collect();
        prop_assert!((lm.score_row(x) - selected.score_row(&xs)).abs() < 1e-12);
    }

    /// Sigmoid is monotone and bounded.
    #[test]
    fn sigmoid_properties(a in -50.0f64..50.0, b in -50.0f64..50.0) {
        let (sa, sb) = (sigmoid(a), sigmoid(b));
        prop_assert!((0.0..=1.0).contains(&sa));
        if a < b {
            prop_assert!(sa <= sb);
        }
    }

    /// Row encoding matches the batch encoder for every encoder kind.
    #[test]
    fn row_and_batch_encoding_agree(p in arbitrary_pipeline(), seed in any::<u64>()) {
        let frame = frame_for(&p, 5, seed);
        let batch = p.featurize(&frame).unwrap();
        for row in 0..frame.num_rows() {
            let values: Vec<RawValue> = p
                .columns
                .iter()
                .map(|cp| {
                    let col = frame.column(&cp.input).unwrap();
                    match col.as_f64() {
                        Some(v) => RawValue::Num(v[row]),
                        None => RawValue::Text(col.as_str().unwrap()[row].clone()),
                    }
                })
                .collect();
            let mut features = vec![0.0; p.feature_width()];
            let mut offset = 0;
            for (cp, v) in p.columns.iter().zip(&values) {
                cp.encode_value_into(v, &mut features[offset..offset + cp.width()]);
                offset += cp.width();
            }
            prop_assert_eq!(batch.row(row), &features[..]);
        }
    }

    /// Matrix solve actually solves (residual check) on well-conditioned
    /// diagonally-dominant systems.
    #[test]
    fn linear_solver_residuals_vanish(
        n in 1usize..6,
        seed in any::<u64>(),
    ) {
        use flock_rng::rngs::StdRng;
        use flock_rng::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a.set(r, c, rng.gen_range(-1.0..1.0));
            }
            let diag = a.get(r, r);
            a.set(r, r, diag + n as f64 * 2.0); // diagonal dominance
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        let x = flock_ml::matrix::solve_linear_system(&mut a2, &mut b2).unwrap();
        for (r, expected) in b.iter().enumerate() {
            let got: f64 = (0..n).map(|c| a.get(r, c) * x[c]).sum();
            prop_assert!((got - expected).abs() < 1e-6, "row {r}: {got} vs {expected}");
        }
    }
}

// ---- specialization & compiled-kernel properties ---------------------
//
// A fixed column layout shared by every tree-family case: feature slots
// 0 = c0 (numeric), 1..4 = c1 (one-hot over cat0/cat1/cat2), 4 = c2
// (numeric). Constraints and conforming frames are generated against it.

const SPEC_WIDTH: usize = 5;

fn spec_columns() -> Vec<ColumnPipeline> {
    vec![
        ColumnPipeline::numeric("c0"),
        ColumnPipeline::one_hot(
            "c1",
            vec!["cat0".to_string(), "cat1".to_string(), "cat2".to_string()],
        ),
        ColumnPipeline::numeric("c2"),
    ]
}

fn spec_tree() -> impl Strategy<Value = DecisionTree> {
    // thresholds straddle both the one-hot 0/1 slots and the numeric
    // ranges so every feature kind can actually branch
    proptest::collection::vec(
        (0usize..SPEC_WIDTH, prop_oneof![-2.0f64..2.0, -60.0f64..60.0]),
        1..7,
    )
    .prop_map(|splits| balanced_tree(&splits))
}

fn spec_model() -> impl Strategy<Value = Model> {
    prop_oneof![
        spec_tree().prop_map(Model::Tree),
        proptest::collection::vec(spec_tree(), 1..4)
            .prop_map(|trees| Model::Forest(RandomForest { trees })),
        (
            proptest::collection::vec(spec_tree(), 1..4),
            0.05f64..0.5,
            -1.0f64..1.0,
            any::<bool>(),
        )
            .prop_map(|(trees, learning_rate, base_score, sigmoid_output)| {
                Model::Gbt(GbtModel {
                    trees,
                    learning_rate,
                    base_score,
                    sigmoid_output,
                })
            }),
        (
            proptest::collection::vec(-3.0f64..3.0, SPEC_WIDTH),
            -2.0f64..2.0,
            any::<bool>(),
        )
            .prop_map(|(w, b, logistic)| {
                let lm = LinearModel::new(w, b);
                if logistic {
                    Model::Logistic(lm)
                } else {
                    Model::Linear(lm)
                }
            }),
    ]
}

fn spec_pipeline() -> impl Strategy<Value = Pipeline> {
    spec_model().prop_map(|m| Pipeline::new(spec_columns(), m, "out"))
}

fn numeric_constraint() -> impl Strategy<Value = Option<InputConstraint>> {
    prop_oneof![
        Just(None),
        (-40.0f64..40.0).prop_map(|v| Some(InputConstraint::FixedNum(v))),
        (-40.0f64..0.0, 1.0f64..40.0)
            .prop_map(|(lo, w)| Some(InputConstraint::Range { lo, hi: lo + w })),
    ]
}

fn text_constraint() -> impl Strategy<Value = Option<InputConstraint>> {
    prop_oneof![
        Just(None),
        Just(Some(InputConstraint::FixedText("cat1".to_string()))),
        // unseen category: the one-hot block encodes to all zeros
        Just(Some(InputConstraint::FixedText("never-seen".to_string()))),
    ]
}

/// A frame whose every row satisfies `cs`; unconstrained columns still
/// carry NaNs, empty strings, and unseen categories.
fn conforming_frame(cs: &[Option<InputConstraint>], rows: usize, seed: u64) -> Frame<'static> {
    use flock_rng::rngs::StdRng;
    use flock_rng::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut frame = Frame::new();
    for (name, c, is_str) in [
        ("c0", &cs[0], false),
        ("c1", &cs[1], true),
        ("c2", &cs[2], false),
    ] {
        if is_str {
            let vals: Vec<String> = (0..rows)
                .map(|_| match c {
                    Some(InputConstraint::FixedText(s)) => s.clone(),
                    _ => match rng.gen_range(0..5) {
                        0 => String::new(),
                        1 => "never-a-category".to_string(),
                        k => format!("cat{}", k - 2),
                    },
                })
                .collect();
            frame.push(name, FrameCol::Str(vals)).unwrap();
        } else {
            let vals: Vec<f64> = (0..rows)
                .map(|_| match c {
                    Some(InputConstraint::FixedNum(v)) => *v,
                    Some(InputConstraint::Range { lo, hi }) => rng.gen_range(*lo..*hi),
                    _ => {
                        if rng.gen_bool(0.15) {
                            f64::NAN
                        } else {
                            rng.gen_range(-60.0..60.0)
                        }
                    }
                })
                .collect();
            frame.push(name, FrameCol::F64(vals)).unwrap();
        }
    }
    frame
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compiled (flattened struct-of-arrays) scorer is bit-exact with
    /// both stock runtimes for every model family, including NaN and
    /// unseen-category inputs.
    #[test]
    fn compiled_pipeline_matches_runtimes(p in spec_pipeline(), seed in any::<u64>()) {
        let frame = conforming_frame(&[None, None, None], 19, seed);
        let vectorized = StandaloneRuntime::new().score(&p, &frame).unwrap();
        let interpreted = interpreted_score(&p, &frame).unwrap();
        let compiled = CompiledPipeline::compile(&p).score(&frame).unwrap();
        prop_assert_eq!(&vectorized, &interpreted);
        prop_assert_eq!(&vectorized, &compiled);
    }

    /// Predicate specialization never changes a score on rows satisfying
    /// the constraints, whichever runtime scores the specialized
    /// pipeline, and the deterministic bound mask agrees with what the
    /// specializer actually kept bound.
    #[test]
    fn specialization_is_score_preserving(
        p in spec_pipeline(),
        c0 in numeric_constraint(),
        c1 in text_constraint(),
        c2 in numeric_constraint(),
        seed in any::<u64>(),
    ) {
        let cs = vec![c0, c1, c2];
        let mask = specialize_mask(&p, &cs);
        let spec = p.specialize(&cs);
        prop_assert_eq!(mask.is_some(), spec.is_some());
        if let (Some(mask), Some((sp, report))) = (mask, spec) {
            // the mask is the contract the SQL layer uses to drop
            // PREDICT arguments on a cache hit
            let bound = sp.bound_columns().len();
            prop_assert_eq!(report.inputs_after, bound);
            prop_assert_eq!(bound, mask.iter().filter(|b| **b).count());

            let frame = conforming_frame(&cs, 23, seed);
            let base = StandaloneRuntime::new().score(&p, &frame).unwrap();
            let spec_vec = StandaloneRuntime::new().score(&sp, &frame).unwrap();
            let spec_interp = interpreted_score(&sp, &frame).unwrap();
            let spec_compiled = CompiledPipeline::compile(&sp).score(&frame).unwrap();
            prop_assert_eq!(&base, &spec_vec);
            prop_assert_eq!(&base, &spec_interp);
            prop_assert_eq!(&base, &spec_compiled);
        }
    }
}

/// Build a small tree from a split list (leaves hold distinct values).
fn balanced_tree(splits: &[(usize, f64)]) -> flock_ml::DecisionTree {
    fn build(
        splits: &[(usize, f64)],
        i: usize,
        nodes: &mut Vec<TreeNode>,
        next_leaf: &mut f64,
    ) -> usize {
        if i >= splits.len() {
            nodes.push(TreeNode::Leaf { value: *next_leaf });
            *next_leaf += 1.0;
            return nodes.len() - 1;
        }
        let my = nodes.len();
        nodes.push(TreeNode::Leaf { value: -1.0 }); // placeholder
        let left = build(splits, 2 * i + 1, nodes, next_leaf);
        let right = build(splits, 2 * i + 2, nodes, next_leaf);
        nodes[my] = TreeNode::Split {
            feature: splits[i].0,
            threshold: splits[i].1,
            left,
            right,
        };
        my
    }
    let mut nodes = Vec::new();
    let mut next_leaf = 0.0;
    build(splits, 0, &mut nodes, &mut next_leaf);
    flock_ml::DecisionTree { nodes }
}
