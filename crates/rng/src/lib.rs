//! Deterministic pseudo-random numbers for the workspace's data
//! generators, trainers, and tests.
//!
//! This crate exists so the tier-1 build is *hermetic*: nothing in the
//! workspace needs a crates.io RNG, so `cargo build --offline` works from
//! a bare checkout, and every "random" corpus, shuffle, or synthetic
//! benchmark dataset is reproducible bit-for-bit across machines and
//! releases.
//!
//! The API mirrors the subset of `rand` 0.8 the workspace used
//! (`StdRng::seed_from_u64`, `gen_range`, `gen`, `gen_bool`, slice
//! `shuffle`/`choose`), so call sites read the same. The core is
//! xorshift64* seeded through splitmix64 — statistically fine for data
//! generation, and deliberately NOT cryptographic.

pub mod rngs {
    /// Deterministic 64-bit generator (xorshift64* seeded via splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    pub type SmallRng = StdRng;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 to spread low-entropy seeds (0, 1, 2, ... are common)
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        // xorshift state must be non-zero
        rngs::StdRng { state: z.max(1) }
    }
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

/// A type whose values can be drawn uniformly from a range.
pub trait SampleUniform: Sized {}
macro_rules! uniform {
    ($($t:ty),*) => { $( impl SampleUniform for $t {} )* }
}
uniform!(f32, f64, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*}
}
int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*}
}
float_range!(f32, f64);

/// Types producible by `rng.gen()` (the standard distribution: floats in
/// `[0, 1)`, integers over their full range).
pub trait StandardDist: Sized {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}
impl StandardDist for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl StandardDist for f32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::gen_standard(rng) as f32
    }
}
impl StandardDist for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl StandardDist for u64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardDist for i64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl StandardDist for u32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
    fn gen<T: StandardDist>(&mut self) -> T {
        T::gen_standard(self)
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::gen_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A fixed-seed generator for ad-hoc use. Unlike `rand::thread_rng` this
/// is fully deterministic — same sequence in every process.
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::seed_from_u64(0xC0FFEE)
}

pub mod seq {
    use super::RngCore;

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() as usize) % self.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    /// The raw sequence is part of the crate's contract: corpus generators
    /// bake these numbers into golden test expectations, so a silent
    /// algorithm change must fail here first.
    #[test]
    fn golden_sequence_is_stable() {
        let mut rng = StdRng::seed_from_u64(42);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(42);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        // different seeds diverge immediately
        let mut other = StdRng::seed_from_u64(43);
        assert_ne!(first[0], other.next_u64());
    }

    #[test]
    fn zero_seed_still_generates() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(0usize..=9);
            assert!(u <= 9);
            let f = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(3));
        b.shuffle(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        assert_ne!(a, (0..50).collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_the_slice() {
        let items = [1, 2, 3];
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
