//! The policy engine: evaluate, apply, remember.
//!
//! "The module continuously monitors the output of the ML models and
//! applies the specified policies before taking any further action in the
//! application domain. It also maintains the system state and actions
//! taken over time allowing to easily debug and explain the system's
//! actions." (paper §4.1)

use crate::context::DecisionContext;
use crate::policy::{Policy, PolicyAction};
use flock_sql::Result;

/// Final verdict for one decision.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    Proceed,
    Denied { reason: String },
    Escalated { to: String },
}

/// The result of running the policies over one context.
#[derive(Debug, Clone)]
pub struct Decision {
    pub id: u64,
    pub outcome: Outcome,
    /// The (possibly modified) context after overrides/caps.
    pub context: DecisionContext,
    /// Names of the policies that matched, in application order.
    pub applied: Vec<String>,
    /// Whether any value differs from the model's raw output.
    pub overridden: bool,
}

/// One history record, kept for debugging/explanation.
#[derive(Debug, Clone)]
pub struct DecisionRecord {
    pub id: u64,
    pub before: DecisionContext,
    pub after: DecisionContext,
    pub outcome: Outcome,
    pub applied: Vec<String>,
}

/// Evaluates policies in priority order and keeps the decision history.
#[derive(Debug, Default)]
pub struct PolicyEngine {
    policies: Vec<Policy>,
    history: Vec<DecisionRecord>,
    next_id: u64,
}

impl PolicyEngine {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, policy: Policy) {
        self.policies.push(policy);
        self.policies.sort_by_key(|p| p.priority);
    }

    pub fn policies(&self) -> &[Policy] {
        &self.policies
    }

    pub fn history(&self) -> &[DecisionRecord] {
        &self.history
    }

    /// Run the policies over one decision context.
    pub fn decide(&mut self, raw: DecisionContext) -> Result<Decision> {
        self.next_id += 1;
        let id = self.next_id;
        let before = raw.clone();
        let mut ctx = raw;
        let mut applied = Vec::new();
        let mut outcome = Outcome::Proceed;

        for policy in &self.policies {
            if !policy.matches(&ctx)? {
                continue;
            }
            applied.push(policy.name.clone());
            match &policy.action {
                PolicyAction::Override { field, value } => ctx.set_number(field, *value),
                PolicyAction::Cap { field, max } => {
                    if let Some(v) = ctx.number(field) {
                        if v > *max {
                            ctx.set_number(field, *max);
                        }
                    }
                }
                PolicyAction::Floor { field, min } => {
                    if let Some(v) = ctx.number(field) {
                        if v < *min {
                            ctx.set_number(field, *min);
                        }
                    }
                }
                PolicyAction::Deny { reason } => {
                    outcome = Outcome::Denied {
                        reason: reason.clone(),
                    };
                }
                PolicyAction::Escalate { to } => {
                    outcome = Outcome::Escalated { to: to.clone() };
                }
                PolicyAction::Allow => {}
            }
            if policy.terminal {
                break;
            }
        }

        let overridden = ctx != before;
        self.history.push(DecisionRecord {
            id,
            before,
            after: ctx.clone(),
            outcome: outcome.clone(),
            applied: applied.clone(),
        });
        Ok(Decision {
            id,
            outcome,
            context: ctx,
            applied,
            overridden,
        })
    }

    /// Human-readable explanation of a past decision — "end-to-end
    /// accountability".
    pub fn explain(&self, id: u64) -> Option<String> {
        let r = self.history.iter().find(|r| r.id == id)?;
        let mut s = format!("decision #{}\n  input:  {}\n", r.id, r.before.describe());
        if r.applied.is_empty() {
            s.push_str("  no policies matched\n");
        } else {
            for p in &r.applied {
                s.push_str(&format!("  applied policy: {p}\n"));
            }
        }
        s.push_str(&format!("  output: {}\n", r.after.describe()));
        s.push_str(&format!("  outcome: {:?}\n", r.outcome));
        Some(s)
    }

    /// How often policies overrode the model (for monitoring dashboards).
    pub fn override_rate(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        let n = self
            .history
            .iter()
            .filter(|r| r.after != r.before || r.outcome != Outcome::Proceed)
            .count();
        n as f64 / self.history.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> PolicyEngine {
        let mut e = PolicyEngine::new();
        e.add(
            Policy::new(
                "cap-parallelism",
                "predicted_tokens > 100",
                PolicyAction::Cap {
                    field: "predicted_tokens".into(),
                    max: 100.0,
                },
            )
            .unwrap()
            .with_priority(10),
        );
        e.add(
            Policy::new(
                "deny-extreme-risk",
                "risk > 0.95",
                PolicyAction::Deny {
                    reason: "risk exceeds the regulatory ceiling".into(),
                },
            )
            .unwrap()
            .with_priority(1),
        );
        e
    }

    #[test]
    fn cap_overrides_model_output() {
        let mut e = engine();
        let d = e
            .decide(DecisionContext::new().with_number("predicted_tokens", 250.0))
            .unwrap();
        assert_eq!(d.outcome, Outcome::Proceed);
        assert_eq!(d.context.number("predicted_tokens"), Some(100.0));
        assert!(d.overridden);
        assert_eq!(d.applied, vec!["cap-parallelism".to_string()]);
    }

    #[test]
    fn deny_terminates_evaluation() {
        let mut e = engine();
        let d = e
            .decide(
                DecisionContext::new()
                    .with_number("risk", 0.99)
                    .with_number("predicted_tokens", 500.0),
            )
            .unwrap();
        assert!(matches!(d.outcome, Outcome::Denied { .. }));
        // deny has priority 1 and is terminal; the cap never ran
        assert_eq!(d.applied, vec!["deny-extreme-risk".to_string()]);
        assert_eq!(d.context.number("predicted_tokens"), Some(500.0));
    }

    #[test]
    fn clean_input_passes_untouched() {
        let mut e = engine();
        let d = e
            .decide(DecisionContext::new().with_number("predicted_tokens", 50.0))
            .unwrap();
        assert!(!d.overridden);
        assert!(d.applied.is_empty());
    }

    #[test]
    fn history_and_explanation() {
        let mut e = engine();
        let d = e
            .decide(DecisionContext::new().with_number("predicted_tokens", 250.0))
            .unwrap();
        let text = e.explain(d.id).unwrap();
        assert!(text.contains("cap-parallelism"));
        assert!(text.contains("predicted_tokens=250"));
        assert!(text.contains("predicted_tokens=100"));
        assert!(e.explain(999).is_none());
        assert!(e.override_rate() > 0.0);
    }

    #[test]
    fn priorities_order_application() {
        let mut e = PolicyEngine::new();
        e.add(
            Policy::new(
                "second",
                "x > 0",
                PolicyAction::Override {
                    field: "x".into(),
                    value: 2.0,
                },
            )
            .unwrap()
            .with_priority(20),
        );
        e.add(
            Policy::new(
                "first",
                "x > 0",
                PolicyAction::Override {
                    field: "x".into(),
                    value: 1.0,
                },
            )
            .unwrap()
            .with_priority(10),
        );
        let d = e
            .decide(DecisionContext::new().with_number("x", 5.0))
            .unwrap();
        assert_eq!(d.applied, vec!["first".to_string(), "second".to_string()]);
        assert_eq!(d.context.number("x"), Some(2.0));
    }
}
