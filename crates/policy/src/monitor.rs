//! Continuous monitoring of the model→decision loop.

use crate::context::DecisionContext;
use crate::engine::{Decision, Outcome, PolicyEngine};
use flock_sql::Result;
use std::collections::BTreeMap;

/// Aggregate statistics over a stream of decisions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MonitorReport {
    pub decisions: usize,
    pub proceeded: usize,
    pub denied: usize,
    pub escalated: usize,
    pub overridden: usize,
    /// How many times each policy fired.
    pub policy_hits: BTreeMap<String, usize>,
}

impl MonitorReport {
    pub fn override_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.overridden as f64 / self.decisions as f64
        }
    }
}

/// Wraps a [`PolicyEngine`] and aggregates what happens to predictions as
/// they stream through.
#[derive(Debug, Default)]
pub struct ContinuousMonitor {
    engine: PolicyEngine,
    report: MonitorReport,
}

impl ContinuousMonitor {
    pub fn new(engine: PolicyEngine) -> Self {
        ContinuousMonitor {
            engine,
            report: MonitorReport::default(),
        }
    }

    pub fn engine(&self) -> &PolicyEngine {
        &self.engine
    }

    /// Feed one prediction context through the policies.
    pub fn observe(&mut self, ctx: DecisionContext) -> Result<Decision> {
        let d = self.engine.decide(ctx)?;
        self.report.decisions += 1;
        match &d.outcome {
            Outcome::Proceed => self.report.proceeded += 1,
            Outcome::Denied { .. } => self.report.denied += 1,
            Outcome::Escalated { .. } => self.report.escalated += 1,
        }
        if d.overridden {
            self.report.overridden += 1;
        }
        for p in &d.applied {
            *self.report.policy_hits.entry(p.clone()).or_default() += 1;
        }
        Ok(d)
    }

    pub fn report(&self) -> &MonitorReport {
        &self.report
    }
}

/// The monitor re-expressed as an **in-database continuous query**: model
/// outputs stream through a windowed aggregate whose `WHEN` clause is the
/// policy's breach condition, and a breach fires the engine's
/// transactional action — audit row plus model hold — in the same commit
/// as the window's emission. This moves the observe-loop of
/// [`ContinuousMonitor`] from client-side calls to where the data lives:
/// the scheduler evaluates it on every closed window, crash-safe and
/// audited, with no monitoring process to keep alive.
#[derive(Debug, Clone)]
pub struct StreamingMonitor {
    /// Continuous-query name registered in the catalog.
    pub name: String,
    /// Stream of model outputs to watch.
    pub stream: String,
    /// Tumbling window size (ms) over which scores are aggregated.
    pub window_ms: i64,
    /// Sink table receiving each closed window's aggregates.
    pub sink: String,
    /// The windowed aggregate (`SELECT ... FROM <stream> GROUP BY ...`);
    /// its output columns are what the breach condition sees.
    pub select: String,
    /// Breach condition in SQL expression syntax over the sink columns
    /// (same dialect as [`crate::policy::Policy`] conditions).
    pub breach: String,
    /// Model the breach action applies to.
    pub model: String,
    /// What happens to the model when the condition holds for any
    /// emitted row.
    pub action: BreachAction,
}

/// The transactional action a [`StreamingMonitor`] breach triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreachAction {
    /// Put the model on hold: scoring is blocked until a new version is
    /// deployed (the circuit-breaker response).
    Hold,
    /// Re-run the model's recorded training statement on current data and
    /// deploy the result as a new version, in the same commit as the
    /// window's emission (the drift-refresh response).
    Retrain,
}

impl StreamingMonitor {
    /// Build from a [`crate::policy::Policy`]: the policy's condition
    /// becomes the `WHEN` clause verbatim (both sides share the SQL
    /// expression dialect). The default breach action is [`BreachAction::Hold`];
    /// use [`with_action`](Self::with_action) for retrain-on-drift.
    pub fn from_policy(
        policy: &crate::policy::Policy,
        stream: &str,
        window_ms: i64,
        sink: &str,
        select: &str,
        model: &str,
    ) -> Self {
        StreamingMonitor {
            name: format!("{}_monitor", policy.name),
            stream: stream.to_string(),
            window_ms,
            sink: sink.to_string(),
            select: select.to_string(),
            breach: policy.condition.to_string(),
            model: model.to_string(),
            action: BreachAction::Hold,
        }
    }

    pub fn with_action(mut self, action: BreachAction) -> Self {
        self.action = action;
        self
    }

    /// Render the `CREATE CONTINUOUS QUERY` DDL that deploys this monitor
    /// into a flock-sql database.
    pub fn as_continuous_query(&self) -> String {
        let action = match self.action {
            BreachAction::Hold => "HOLD",
            BreachAction::Retrain => "RETRAIN",
        };
        format!(
            "CREATE CONTINUOUS QUERY {} ON {} WINDOW TUMBLING ({}) \
             EMIT INTO {} AS {} WHEN {} THEN {action} MODEL {}",
            self.name, self.stream, self.window_ms, self.sink, self.select, self.breach,
            self.model
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Policy, PolicyAction};

    #[test]
    fn monitor_aggregates_outcomes() {
        let mut engine = PolicyEngine::new();
        engine.add(
            Policy::new(
                "cap",
                "score > 10",
                PolicyAction::Cap {
                    field: "score".into(),
                    max: 10.0,
                },
            )
            .unwrap(),
        );
        engine.add(
            Policy::new(
                "deny",
                "score > 100",
                PolicyAction::Deny {
                    reason: "absurd".into(),
                },
            )
            .unwrap()
            .with_priority(1),
        );
        let mut mon = ContinuousMonitor::new(engine);
        for score in [5.0, 50.0, 500.0, 7.0] {
            mon.observe(DecisionContext::new().with_number("score", score))
                .unwrap();
        }
        let r = mon.report();
        assert_eq!(r.decisions, 4);
        assert_eq!(r.denied, 1);
        assert_eq!(r.proceeded, 3);
        assert_eq!(r.policy_hits.get("cap"), Some(&1));
        assert!(r.override_rate() > 0.0);
    }

    /// A pass-through scorer so the deployed monitor can PREDICT-free
    /// aggregate raw scores; the policy condition does the judging.
    struct IdentityScorer;

    impl flock_sql::udf::InferenceProvider for IdentityScorer {
        fn output_type(&self, _m: &str) -> Result<flock_sql::DataType> {
            Ok(flock_sql::DataType::Float)
        }
        fn input_arity(&self, _m: &str) -> Result<usize> {
            Ok(1)
        }
        fn predict(
            &self,
            _model: &str,
            inputs: &[flock_sql::ColumnVector],
            _strategy: flock_sql::ast::PredictStrategy,
            _user: &str,
        ) -> Result<flock_sql::ColumnVector> {
            Ok(inputs[0].clone())
        }
    }

    /// A deterministic stand-in for the Flock training layer: the policy
    /// crate only cares that a breach re-runs the recorded statement and
    /// commits a new version, not how the fit works.
    struct StubTrainer;

    impl flock_sql::trainer::ModelTrainer for StubTrainer {
        fn train(
            &self,
            spec: &flock_sql::trainer::TrainSpec,
            data: &flock_sql::RecordBatch,
        ) -> Result<flock_sql::trainer::TrainedArtifact> {
            Ok(flock_sql::trainer::TrainedArtifact {
                payload: format!("stub:{}:{}", spec.kind, data.num_rows()).into_bytes(),
                metadata: serde_json::from_str("{}").unwrap(),
                train_rows: data.num_rows(),
                eval_rows: 0,
            })
        }
    }

    #[test]
    fn deployed_monitor_retrains_model_on_breach() {
        let policy = Policy::new(
            "drift_refresh",
            "mean_score > 0.9",
            PolicyAction::Deny {
                reason: "score drift".into(),
            },
        )
        .unwrap();
        let mon = StreamingMonitor::from_policy(
            &policy,
            "scores",
            100,
            "score_windows",
            "SELECT model_id, AVG(score) AS mean_score FROM scores GROUP BY model_id",
            "churn",
        )
        .with_action(BreachAction::Retrain);
        let ddl = mon.as_continuous_query();
        assert!(ddl.contains("THEN RETRAIN MODEL churn"), "{ddl}");

        let db = flock_sql::Database::new();
        db.set_inference_provider(std::sync::Arc::new(IdentityScorer));
        db.set_model_trainer(std::sync::Arc::new(StubTrainer));
        db.execute("CREATE TABLE observations (x DOUBLE, y INT)").unwrap();
        db.execute("INSERT INTO observations VALUES (1.0, 0), (2.0, 1), (3.0, 1)")
            .unwrap();
        // v1 records its training statement in the lineage; RETRAIN re-runs it
        db.execute("CREATE MODEL churn KIND gbt TARGET y AS SELECT x, y FROM observations")
            .unwrap();
        db.execute("CREATE STREAM scores (et INT, model_id INT, score DOUBLE) WATERMARK (et, 0)")
            .unwrap();
        db.execute(&ddl).unwrap();

        // a drifting window, then a flush event to close it
        db.execute("INSERT INTO scores VALUES (10, 1, 0.95), (20, 1, 0.97), (300, 1, 0.1)")
            .unwrap();
        db.stream_tick_now();

        // the breach retrained the model, transactionally with the emission
        let audit = db.audit_log();
        assert!(audit.iter().any(|r| r.action == "POLICY BREACH"));
        assert!(
            audit
                .iter()
                .any(|r| r.action == "MODEL RETRAIN" && r.object == "churn"),
            "actions: {:?}",
            audit.iter().map(|r| r.action.clone()).collect::<Vec<_>>()
        );
        // the retrain deployed a new catalog version through the same
        // extension-object transaction path as CREATE MODEL
        let catalog = db.catalog();
        let obj = catalog.extension("model", "churn").unwrap();
        assert_eq!(obj.current().version, 2);
    }

    #[test]
    fn deployed_monitor_holds_model_on_breach() {
        let policy = Policy::new(
            "risk_cap",
            "mean_score > 0.9",
            PolicyAction::Deny {
                reason: "score drift".into(),
            },
        )
        .unwrap();
        let mon = StreamingMonitor::from_policy(
            &policy,
            "scores",
            100,
            "score_windows",
            "SELECT model_id, COUNT(*) AS n, AVG(score) AS mean_score \
             FROM scores GROUP BY model_id",
            "churn",
        );
        let ddl = mon.as_continuous_query();
        assert!(ddl.contains("WHEN (mean_score > 0.9) THEN HOLD MODEL churn"), "{ddl}");

        let db = flock_sql::Database::new();
        db.set_inference_provider(std::sync::Arc::new(IdentityScorer));
        let mut admin = db.session("admin");
        admin
            .create_extension_object("model", "churn", vec![], serde_json::from_str("{}").unwrap())
            .unwrap();
        db.execute("CREATE STREAM scores (et INT, model_id INT, score DOUBLE) WATERMARK (et, 0)")
            .unwrap();
        db.execute(&ddl).unwrap();

        // calm window, then a drifting one, then a flush event to close it
        db.execute("INSERT INTO scores VALUES (10, 1, 0.2), (20, 1, 0.3)")
            .unwrap();
        db.execute("INSERT INTO scores VALUES (110, 1, 0.95), (120, 1, 0.97), (300, 1, 0.1)")
            .unwrap();
        db.stream_tick_now();

        // the breach held the model, transactionally with the emission
        let audit = db.audit_log();
        assert!(audit.iter().any(|r| r.action == "POLICY BREACH"));
        assert!(audit.iter().any(|r| r.action == "MODEL HOLD" && r.object == "churn"));
        let err = db
            .query("SELECT PREDICT(churn, score) FROM scores")
            .unwrap_err();
        assert!(err.to_string().contains("on hold"), "{err}");
        // the calm window emitted without breaching
        let b = db
            .query("SELECT COUNT(*) FROM score_windows WHERE mean_score <= 0.9")
            .unwrap();
        assert!(matches!(b.column(0).get(0), flock_sql::Value::Int(n) if n >= 1));
    }
}
