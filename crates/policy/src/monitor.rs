//! Continuous monitoring of the model→decision loop.

use crate::context::DecisionContext;
use crate::engine::{Decision, Outcome, PolicyEngine};
use flock_sql::Result;
use std::collections::BTreeMap;

/// Aggregate statistics over a stream of decisions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MonitorReport {
    pub decisions: usize,
    pub proceeded: usize,
    pub denied: usize,
    pub escalated: usize,
    pub overridden: usize,
    /// How many times each policy fired.
    pub policy_hits: BTreeMap<String, usize>,
}

impl MonitorReport {
    pub fn override_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.overridden as f64 / self.decisions as f64
        }
    }
}

/// Wraps a [`PolicyEngine`] and aggregates what happens to predictions as
/// they stream through.
#[derive(Debug, Default)]
pub struct ContinuousMonitor {
    engine: PolicyEngine,
    report: MonitorReport,
}

impl ContinuousMonitor {
    pub fn new(engine: PolicyEngine) -> Self {
        ContinuousMonitor {
            engine,
            report: MonitorReport::default(),
        }
    }

    pub fn engine(&self) -> &PolicyEngine {
        &self.engine
    }

    /// Feed one prediction context through the policies.
    pub fn observe(&mut self, ctx: DecisionContext) -> Result<Decision> {
        let d = self.engine.decide(ctx)?;
        self.report.decisions += 1;
        match &d.outcome {
            Outcome::Proceed => self.report.proceeded += 1,
            Outcome::Denied { .. } => self.report.denied += 1,
            Outcome::Escalated { .. } => self.report.escalated += 1,
        }
        if d.overridden {
            self.report.overridden += 1;
        }
        for p in &d.applied {
            *self.report.policy_hits.entry(p.clone()).or_default() += 1;
        }
        Ok(d)
    }

    pub fn report(&self) -> &MonitorReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Policy, PolicyAction};

    #[test]
    fn monitor_aggregates_outcomes() {
        let mut engine = PolicyEngine::new();
        engine.add(
            Policy::new(
                "cap",
                "score > 10",
                PolicyAction::Cap {
                    field: "score".into(),
                    max: 10.0,
                },
            )
            .unwrap(),
        );
        engine.add(
            Policy::new(
                "deny",
                "score > 100",
                PolicyAction::Deny {
                    reason: "absurd".into(),
                },
            )
            .unwrap()
            .with_priority(1),
        );
        let mut mon = ContinuousMonitor::new(engine);
        for score in [5.0, 50.0, 500.0, 7.0] {
            mon.observe(DecisionContext::new().with_number("score", score))
                .unwrap();
        }
        let r = mon.report();
        assert_eq!(r.decisions, 4);
        assert_eq!(r.denied, 1);
        assert_eq!(r.proceeded, 3);
        assert_eq!(r.policy_hits.get("cap"), Some(&1));
        assert!(r.override_rate() > 0.0);
    }
}
