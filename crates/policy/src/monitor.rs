//! Continuous monitoring of the model→decision loop.

use crate::context::DecisionContext;
use crate::engine::{Decision, Outcome, PolicyEngine};
use flock_sql::Result;
use std::collections::BTreeMap;

/// Aggregate statistics over a stream of decisions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MonitorReport {
    pub decisions: usize,
    pub proceeded: usize,
    pub denied: usize,
    pub escalated: usize,
    pub overridden: usize,
    /// How many times each policy fired.
    pub policy_hits: BTreeMap<String, usize>,
}

impl MonitorReport {
    pub fn override_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.overridden as f64 / self.decisions as f64
        }
    }
}

/// Wraps a [`PolicyEngine`] and aggregates what happens to predictions as
/// they stream through.
#[derive(Debug, Default)]
pub struct ContinuousMonitor {
    engine: PolicyEngine,
    report: MonitorReport,
}

impl ContinuousMonitor {
    pub fn new(engine: PolicyEngine) -> Self {
        ContinuousMonitor {
            engine,
            report: MonitorReport::default(),
        }
    }

    pub fn engine(&self) -> &PolicyEngine {
        &self.engine
    }

    /// Feed one prediction context through the policies.
    pub fn observe(&mut self, ctx: DecisionContext) -> Result<Decision> {
        let d = self.engine.decide(ctx)?;
        self.report.decisions += 1;
        match &d.outcome {
            Outcome::Proceed => self.report.proceeded += 1,
            Outcome::Denied { .. } => self.report.denied += 1,
            Outcome::Escalated { .. } => self.report.escalated += 1,
        }
        if d.overridden {
            self.report.overridden += 1;
        }
        for p in &d.applied {
            *self.report.policy_hits.entry(p.clone()).or_default() += 1;
        }
        Ok(d)
    }

    pub fn report(&self) -> &MonitorReport {
        &self.report
    }
}

/// The monitor re-expressed as an **in-database continuous query**: model
/// outputs stream through a windowed aggregate whose `WHEN` clause is the
/// policy's breach condition, and a breach fires the engine's
/// transactional action — audit row plus model hold — in the same commit
/// as the window's emission. This moves the observe-loop of
/// [`ContinuousMonitor`] from client-side calls to where the data lives:
/// the scheduler evaluates it on every closed window, crash-safe and
/// audited, with no monitoring process to keep alive.
#[derive(Debug, Clone)]
pub struct StreamingMonitor {
    /// Continuous-query name registered in the catalog.
    pub name: String,
    /// Stream of model outputs to watch.
    pub stream: String,
    /// Tumbling window size (ms) over which scores are aggregated.
    pub window_ms: i64,
    /// Sink table receiving each closed window's aggregates.
    pub sink: String,
    /// The windowed aggregate (`SELECT ... FROM <stream> GROUP BY ...`);
    /// its output columns are what the breach condition sees.
    pub select: String,
    /// Breach condition in SQL expression syntax over the sink columns
    /// (same dialect as [`crate::policy::Policy`] conditions).
    pub breach: String,
    /// Model placed on hold when the condition holds for any emitted row.
    pub hold_model: String,
}

impl StreamingMonitor {
    /// Build from a [`crate::policy::Policy`]: the policy's condition
    /// becomes the `WHEN` clause verbatim (both sides share the SQL
    /// expression dialect).
    pub fn from_policy(
        policy: &crate::policy::Policy,
        stream: &str,
        window_ms: i64,
        sink: &str,
        select: &str,
        hold_model: &str,
    ) -> Self {
        StreamingMonitor {
            name: format!("{}_monitor", policy.name),
            stream: stream.to_string(),
            window_ms,
            sink: sink.to_string(),
            select: select.to_string(),
            breach: policy.condition.to_string(),
            hold_model: hold_model.to_string(),
        }
    }

    /// Render the `CREATE CONTINUOUS QUERY` DDL that deploys this monitor
    /// into a flock-sql database.
    pub fn as_continuous_query(&self) -> String {
        format!(
            "CREATE CONTINUOUS QUERY {} ON {} WINDOW TUMBLING ({}) \
             EMIT INTO {} AS {} WHEN {} THEN HOLD MODEL {}",
            self.name, self.stream, self.window_ms, self.sink, self.select, self.breach,
            self.hold_model
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Policy, PolicyAction};

    #[test]
    fn monitor_aggregates_outcomes() {
        let mut engine = PolicyEngine::new();
        engine.add(
            Policy::new(
                "cap",
                "score > 10",
                PolicyAction::Cap {
                    field: "score".into(),
                    max: 10.0,
                },
            )
            .unwrap(),
        );
        engine.add(
            Policy::new(
                "deny",
                "score > 100",
                PolicyAction::Deny {
                    reason: "absurd".into(),
                },
            )
            .unwrap()
            .with_priority(1),
        );
        let mut mon = ContinuousMonitor::new(engine);
        for score in [5.0, 50.0, 500.0, 7.0] {
            mon.observe(DecisionContext::new().with_number("score", score))
                .unwrap();
        }
        let r = mon.report();
        assert_eq!(r.decisions, 4);
        assert_eq!(r.denied, 1);
        assert_eq!(r.proceeded, 3);
        assert_eq!(r.policy_hits.get("cap"), Some(&1));
        assert!(r.override_rate() > 0.0);
    }

    /// A pass-through scorer so the deployed monitor can PREDICT-free
    /// aggregate raw scores; the policy condition does the judging.
    struct IdentityScorer;

    impl flock_sql::udf::InferenceProvider for IdentityScorer {
        fn output_type(&self, _m: &str) -> Result<flock_sql::DataType> {
            Ok(flock_sql::DataType::Float)
        }
        fn input_arity(&self, _m: &str) -> Result<usize> {
            Ok(1)
        }
        fn predict(
            &self,
            _model: &str,
            inputs: &[flock_sql::ColumnVector],
            _strategy: flock_sql::ast::PredictStrategy,
            _user: &str,
        ) -> Result<flock_sql::ColumnVector> {
            Ok(inputs[0].clone())
        }
    }

    #[test]
    fn deployed_monitor_holds_model_on_breach() {
        let policy = Policy::new(
            "risk_cap",
            "mean_score > 0.9",
            PolicyAction::Deny {
                reason: "score drift".into(),
            },
        )
        .unwrap();
        let mon = StreamingMonitor::from_policy(
            &policy,
            "scores",
            100,
            "score_windows",
            "SELECT model_id, COUNT(*) AS n, AVG(score) AS mean_score \
             FROM scores GROUP BY model_id",
            "churn",
        );
        let ddl = mon.as_continuous_query();
        assert!(ddl.contains("WHEN (mean_score > 0.9) THEN HOLD MODEL churn"), "{ddl}");

        let db = flock_sql::Database::new();
        db.set_inference_provider(std::sync::Arc::new(IdentityScorer));
        let mut admin = db.session("admin");
        admin
            .create_extension_object("model", "churn", vec![], serde_json::from_str("{}").unwrap())
            .unwrap();
        db.execute("CREATE STREAM scores (et INT, model_id INT, score DOUBLE) WATERMARK (et, 0)")
            .unwrap();
        db.execute(&ddl).unwrap();

        // calm window, then a drifting one, then a flush event to close it
        db.execute("INSERT INTO scores VALUES (10, 1, 0.2), (20, 1, 0.3)")
            .unwrap();
        db.execute("INSERT INTO scores VALUES (110, 1, 0.95), (120, 1, 0.97), (300, 1, 0.1)")
            .unwrap();
        db.stream_tick_now();

        // the breach held the model, transactionally with the emission
        let audit = db.audit_log();
        assert!(audit.iter().any(|r| r.action == "POLICY BREACH"));
        assert!(audit.iter().any(|r| r.action == "MODEL HOLD" && r.object == "churn"));
        let err = db
            .query("SELECT PREDICT(churn, score) FROM scores")
            .unwrap_err();
        assert!(err.to_string().contains("on hold"), "{err}");
        // the calm window emitted without breaching
        let b = db
            .query("SELECT COUNT(*) FROM score_windows WHERE mean_score <= 0.9")
            .unwrap();
        assert!(matches!(b.column(0).get(0), flock_sql::Value::Int(n) if n >= 1));
    }
}
