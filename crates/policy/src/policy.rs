//! Policies: declarative business rules over decision contexts.
//!
//! Conditions are written in SQL expression syntax (reusing the engine's
//! parser), e.g. `"p_default > 0.8 AND amount > 50000"`. Actions can
//! override or bound the model output, deny the decision outright, or
//! escalate to a human — "business rules expressed as policies then
//! override the model" (paper §4.1).

use crate::context::DecisionContext;
use flock_sql::ast::{BinOp, Expr, UnOp};
use flock_sql::parser::parse_expr;
use flock_sql::{Result, SqlError, Value};

/// What a matched policy does.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyAction {
    /// Replace a context number.
    Override { field: String, value: f64 },
    /// Clamp a context number from above ("user-specified caps").
    Cap { field: String, max: f64 },
    /// Clamp from below.
    Floor { field: String, min: f64 },
    /// Refuse to act.
    Deny { reason: String },
    /// Route to a human queue.
    Escalate { to: String },
    /// Explicitly accept (useful as a terminal low-priority rule).
    Allow,
}

/// A named rule: when `condition` holds, perform `action`.
#[derive(Debug, Clone)]
pub struct Policy {
    pub name: String,
    /// Lower numbers run first.
    pub priority: i32,
    pub condition: Expr,
    pub action: PolicyAction,
    /// Stop evaluating further policies once this one matches.
    pub terminal: bool,
}

impl Policy {
    /// Build a policy from a SQL-syntax condition string.
    pub fn new(name: &str, condition: &str, action: PolicyAction) -> Result<Policy> {
        let terminal = action_terminality(&action);
        Ok(Policy {
            name: name.to_string(),
            priority: 100,
            condition: parse_expr(condition)?,
            action,
            terminal,
        })
    }

    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    pub fn non_terminal(mut self) -> Self {
        self.terminal = false;
        self
    }

    /// Does this policy match the context?
    pub fn matches(&self, ctx: &DecisionContext) -> Result<bool> {
        Ok(eval_condition(&self.condition, ctx)?.as_bool() == Some(true))
    }
}

fn action_terminality(action: &PolicyAction) -> bool {
    matches!(action, PolicyAction::Deny { .. } | PolicyAction::Escalate { .. })
}

/// Evaluate a SQL expression against a decision context. Unknown fields
/// evaluate to NULL (so policies can be written defensively).
pub fn eval_condition(e: &Expr, ctx: &DecisionContext) -> Result<Value> {
    Ok(match e {
        Expr::Column { name, .. } => match ctx.number(name) {
            Some(v) => Value::Float(v),
            None => match ctx.text(name) {
                Some(s) => Value::Text(s.to_string()),
                None => Value::Null,
            },
        },
        Expr::Literal(v) => v.clone(),
        Expr::Binary { left, op, right } => {
            let l = eval_condition(left, ctx)?;
            let r = eval_condition(right, ctx)?;
            flock_sql::exec::expr::eval_binary(&l, *op, &r)?
        }
        Expr::Unary { op, expr } => {
            let v = eval_condition(expr, ctx)?;
            match op {
                UnOp::Not => match v.as_bool() {
                    Some(b) => Value::Bool(!b),
                    None => Value::Null,
                },
                UnOp::Neg => match v {
                    Value::Int(i) => Value::Int(-i),
                    Value::Float(f) => Value::Float(-f),
                    _ => Value::Null,
                },
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_condition(expr, ctx)?;
            Value::Bool(v.is_null() != *negated)
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_condition(expr, ctx)?;
            let lo = eval_condition(low, ctx)?;
            let hi = eval_condition(high, ctx)?;
            let ge = flock_sql::exec::expr::eval_binary(&v, BinOp::GtEq, &lo)?;
            let le = flock_sql::exec::expr::eval_binary(&v, BinOp::LtEq, &hi)?;
            let both = flock_sql::exec::expr::eval_binary(&ge, BinOp::And, &le)?;
            match (both.as_bool(), negated) {
                (Some(b), n) => Value::Bool(b != *n),
                (None, _) => Value::Null,
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_condition(expr, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in list {
                let iv = eval_condition(item, ctx)?;
                if v == iv {
                    found = true;
                    break;
                }
            }
            Value::Bool(found != *negated)
        }
        other => {
            return Err(SqlError::Plan(format!(
                "unsupported construct in policy condition: {other}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> DecisionContext {
        DecisionContext::new()
            .with_number("risk", 0.9)
            .with_number("amount", 60000.0)
            .with_text("region", "EU")
    }

    #[test]
    fn simple_comparison_matches() {
        let p = Policy::new("high-risk", "risk > 0.8", PolicyAction::Deny {
            reason: "too risky".into(),
        })
        .unwrap();
        assert!(p.matches(&ctx()).unwrap());
        let p2 = Policy::new("low", "risk < 0.5", PolicyAction::Allow).unwrap();
        assert!(!p2.matches(&ctx()).unwrap());
    }

    #[test]
    fn compound_conditions() {
        let p = Policy::new(
            "big-eu",
            "amount > 50000 AND region = 'EU'",
            PolicyAction::Escalate { to: "review".into() },
        )
        .unwrap();
        assert!(p.matches(&ctx()).unwrap());
        let p2 = Policy::new(
            "either",
            "risk BETWEEN 0.85 AND 0.95 OR amount < 0",
            PolicyAction::Allow,
        )
        .unwrap();
        assert!(p2.matches(&ctx()).unwrap());
    }

    #[test]
    fn unknown_fields_are_null_not_errors() {
        let p = Policy::new("ghost", "nonexistent > 5", PolicyAction::Allow).unwrap();
        assert!(!p.matches(&ctx()).unwrap());
        let p2 = Policy::new("isnull", "nonexistent IS NULL", PolicyAction::Allow).unwrap();
        assert!(p2.matches(&ctx()).unwrap());
    }

    #[test]
    fn deny_and_escalate_are_terminal_by_default() {
        let deny = Policy::new("d", "risk > 0", PolicyAction::Deny { reason: "r".into() })
            .unwrap();
        assert!(deny.terminal);
        let cap = Policy::new(
            "c",
            "risk > 0",
            PolicyAction::Cap {
                field: "x".into(),
                max: 1.0,
            },
        )
        .unwrap();
        assert!(!cap.terminal);
    }

    #[test]
    fn in_list_over_text() {
        let p = Policy::new(
            "regions",
            "region IN ('EU', 'UK')",
            PolicyAction::Allow,
        )
        .unwrap();
        assert!(p.matches(&ctx()).unwrap());
    }
}
