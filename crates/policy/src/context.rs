//! The decision context: the values a policy can inspect and act on.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A flat bag of named numeric and text values describing one pending
/// decision: the model's prediction(s) plus the application-domain fields
/// (amounts, user categories, ...).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DecisionContext {
    numbers: BTreeMap<String, f64>,
    texts: BTreeMap<String, String>,
}

impl DecisionContext {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_number(mut self, key: &str, value: f64) -> Self {
        self.set_number(key, value);
        self
    }

    pub fn with_text(mut self, key: &str, value: &str) -> Self {
        self.set_text(key, value);
        self
    }

    pub fn set_number(&mut self, key: &str, value: f64) {
        self.numbers.insert(key.to_ascii_lowercase(), value);
    }

    pub fn set_text(&mut self, key: &str, value: &str) {
        self.texts
            .insert(key.to_ascii_lowercase(), value.to_string());
    }

    pub fn number(&self, key: &str) -> Option<f64> {
        self.numbers.get(&key.to_ascii_lowercase()).copied()
    }

    pub fn text(&self, key: &str) -> Option<&str> {
        self.texts.get(&key.to_ascii_lowercase()).map(|s| s.as_str())
    }

    pub fn numbers(&self) -> impl Iterator<Item = (&String, &f64)> {
        self.numbers.iter()
    }

    /// Render for history/debugging.
    pub fn describe(&self) -> String {
        let mut parts: Vec<String> = self
            .numbers
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        parts.extend(self.texts.iter().map(|(k, v)| format!("{k}='{v}'")));
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_case_insensitive() {
        let ctx = DecisionContext::new()
            .with_number("Risk", 0.9)
            .with_text("Region", "EU");
        assert_eq!(ctx.number("risk"), Some(0.9));
        assert_eq!(ctx.text("REGION"), Some("EU"));
        assert_eq!(ctx.number("missing"), None);
    }

    #[test]
    fn describe_renders_both_kinds() {
        let ctx = DecisionContext::new()
            .with_number("a", 1.0)
            .with_text("b", "x");
        let d = ctx.describe();
        assert!(d.contains("a=1"));
        assert!(d.contains("b='x'"));
    }
}
