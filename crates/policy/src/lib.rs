//! # flock-policy
//!
//! The Flock policy module (paper §4.1, "Bridging the model-application
//! divide"): declarative business rules evaluated over model outputs
//! before any action reaches the application domain.
//!
//! * conditions in SQL expression syntax (`"risk > 0.8 AND amount >
//!   50000"`), parsed by the engine's own parser;
//! * actions: override / cap / floor the prediction, deny, escalate;
//! * a **continuous monitor** with per-policy hit counts and override
//!   rates;
//! * **transactional** application of domain actions with rollback on
//!   failure;
//! * a decision **history with explanations** for debugging and
//!   end-to-end accountability.

pub mod context;
pub mod engine;
pub mod monitor;
pub mod policy;
pub mod txn;

pub use context::DecisionContext;
pub use engine::{Decision, DecisionRecord, Outcome, PolicyEngine};
pub use monitor::{BreachAction, ContinuousMonitor, MonitorReport, StreamingMonitor};
pub use policy::{eval_condition, Policy, PolicyAction};
pub use txn::{apply_transactional, ActionError, ActionSink, DomainAction, MemorySink};
