//! Transactional action application with rollback.
//!
//! "It makes sure that the actions happen in a transactional way, rolling
//! back in case of failures when needed." Actions are applied through an
//! [`ActionSink`]; if any application fails, the already-applied prefix is
//! undone in reverse order.

use std::collections::BTreeMap;
use std::fmt;

/// One side-effecting action in the application domain.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainAction {
    pub target: String,
    pub value: f64,
}

/// Failure applying an action.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionError(pub String);

impl fmt::Display for ActionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "action failed: {}", self.0)
    }
}

impl std::error::Error for ActionError {}

/// The system the actions apply to. `apply` returns an undo token (the
/// previous value) so a failed batch can roll back.
pub trait ActionSink {
    fn apply(&mut self, action: &DomainAction) -> Result<Option<f64>, ActionError>;
    fn undo(&mut self, action: &DomainAction, previous: Option<f64>);
}

/// Apply all actions or none. Returns how many were applied on success.
pub fn apply_transactional(
    sink: &mut dyn ActionSink,
    actions: &[DomainAction],
) -> Result<usize, ActionError> {
    let mut journal: Vec<(usize, Option<f64>)> = Vec::with_capacity(actions.len());
    for (i, action) in actions.iter().enumerate() {
        match sink.apply(action) {
            Ok(prev) => journal.push((i, prev)),
            Err(e) => {
                for (j, prev) in journal.into_iter().rev() {
                    sink.undo(&actions[j], prev);
                }
                return Err(e);
            }
        }
    }
    Ok(actions.len())
}

/// An in-memory key→value system state, with optional failure injection
/// for testing rollback.
#[derive(Debug, Default)]
pub struct MemorySink {
    pub state: BTreeMap<String, f64>,
    /// Targets that fail on apply (failure injection).
    pub poisoned: Vec<String>,
}

impl ActionSink for MemorySink {
    fn apply(&mut self, action: &DomainAction) -> Result<Option<f64>, ActionError> {
        if self.poisoned.contains(&action.target) {
            return Err(ActionError(format!("target '{}' unavailable", action.target)));
        }
        Ok(self.state.insert(action.target.clone(), action.value))
    }

    fn undo(&mut self, action: &DomainAction, previous: Option<f64>) {
        match previous {
            Some(v) => {
                self.state.insert(action.target.clone(), v);
            }
            None => {
                self.state.remove(&action.target);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn actions() -> Vec<DomainAction> {
        vec![
            DomainAction {
                target: "job.parallelism".into(),
                value: 64.0,
            },
            DomainAction {
                target: "job.memory_gb".into(),
                value: 8.0,
            },
            DomainAction {
                target: "job.priority".into(),
                value: 2.0,
            },
        ]
    }

    #[test]
    fn all_apply_on_success() {
        let mut sink = MemorySink::default();
        let n = apply_transactional(&mut sink, &actions()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(sink.state.get("job.memory_gb"), Some(&8.0));
    }

    #[test]
    fn failure_rolls_back_everything() {
        let mut sink = MemorySink {
            state: BTreeMap::from([("job.parallelism".to_string(), 16.0)]),
            poisoned: vec!["job.priority".to_string()],
        };
        let err = apply_transactional(&mut sink, &actions());
        assert!(err.is_err());
        // pre-existing value restored, new keys removed
        assert_eq!(sink.state.get("job.parallelism"), Some(&16.0));
        assert!(!sink.state.contains_key("job.memory_gb"));
        assert!(!sink.state.contains_key("job.priority"));
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut sink = MemorySink::default();
        assert_eq!(apply_transactional(&mut sink, &[]).unwrap(), 0);
    }
}
