//! Property-based tests of policy invariants.

use flock_policy::{
    apply_transactional, DecisionContext, DomainAction, MemorySink, Policy, PolicyAction,
    PolicyEngine,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A cap policy guarantees the capped field never exceeds the bound.
    #[test]
    fn caps_always_bound(
        value in -1e6f64..1e6,
        max in -1e3f64..1e3,
    ) {
        let mut engine = PolicyEngine::new();
        engine.add(
            Policy::new(
                "cap",
                &format!("x > {max}"),
                PolicyAction::Cap { field: "x".into(), max },
            )
            .unwrap(),
        );
        let d = engine
            .decide(DecisionContext::new().with_number("x", value))
            .unwrap();
        let out = d.context.number("x").unwrap();
        prop_assert!(out <= max.max(value.min(max)) + 1e-12);
        prop_assert!(out <= value.max(max)); // never increases past input
        if value <= max {
            prop_assert_eq!(out, value, "untouched when already under the cap");
        }
    }

    /// Floor + cap sandwich always lands inside the band.
    #[test]
    fn floor_and_cap_band(
        value in -1e6f64..1e6,
        lo in -100.0f64..0.0,
        width in 0.0f64..200.0,
    ) {
        let hi = lo + width;
        let mut engine = PolicyEngine::new();
        engine.add(
            Policy::new("f", &format!("x < {lo}"), PolicyAction::Floor {
                field: "x".into(),
                min: lo,
            })
            .unwrap()
            .with_priority(1),
        );
        engine.add(
            Policy::new("c", &format!("x > {hi}"), PolicyAction::Cap {
                field: "x".into(),
                max: hi,
            })
            .unwrap()
            .with_priority(2),
        );
        let d = engine
            .decide(DecisionContext::new().with_number("x", value))
            .unwrap();
        let out = d.context.number("x").unwrap();
        prop_assert!(out >= lo - 1e-9 && out <= hi + 1e-9, "{out} not in [{lo}, {hi}]");
    }

    /// Transactional application: on failure the sink state is exactly the
    /// pre-state, whatever the action sequence.
    #[test]
    fn rollback_restores_exact_state(
        initial in proptest::collection::btree_map("[a-e]", -100.0f64..100.0, 0..5),
        actions in proptest::collection::vec(("[a-h]", -100.0f64..100.0), 1..10),
        poison_idx in any::<prop::sample::Index>(),
    ) {
        let actions: Vec<DomainAction> = actions
            .into_iter()
            .map(|(target, value)| DomainAction { target, value })
            .collect();
        let poisoned = actions[poison_idx.index(actions.len())].target.clone();
        let mut sink = MemorySink {
            state: initial.clone(),
            poisoned: vec![poisoned],
        };
        let result = apply_transactional(&mut sink, &actions);
        prop_assert!(result.is_err());
        prop_assert_eq!(sink.state, initial);
    }

    /// Without poison, all actions land and the final state reflects the
    /// last write per target.
    #[test]
    fn commit_applies_last_write_wins(
        actions in proptest::collection::vec(("[a-d]", -100.0f64..100.0), 1..12),
    ) {
        let actions: Vec<DomainAction> = actions
            .into_iter()
            .map(|(target, value)| DomainAction { target, value })
            .collect();
        let mut sink = MemorySink::default();
        let n = apply_transactional(&mut sink, &actions).unwrap();
        prop_assert_eq!(n, actions.len());
        let mut expected: BTreeMap<String, f64> = BTreeMap::new();
        for a in &actions {
            expected.insert(a.target.clone(), a.value);
        }
        prop_assert_eq!(sink.state, expected);
    }

    /// The decision history always records exactly one entry per decision,
    /// with before/after consistent with the overridden flag.
    #[test]
    fn history_is_faithful(values in proptest::collection::vec(-10.0f64..10.0, 1..20)) {
        let mut engine = PolicyEngine::new();
        engine.add(
            Policy::new("zero-floor", "x < 0", PolicyAction::Floor {
                field: "x".into(),
                min: 0.0,
            })
            .unwrap(),
        );
        for v in &values {
            let d = engine
                .decide(DecisionContext::new().with_number("x", *v))
                .unwrap();
            prop_assert_eq!(d.overridden, *v < 0.0);
        }
        prop_assert_eq!(engine.history().len(), values.len());
        for (record, v) in engine.history().iter().zip(&values) {
            prop_assert_eq!(record.before.number("x"), Some(*v));
            prop_assert_eq!(record.after.number("x"), Some(v.max(0.0)));
        }
    }

    /// Policy conditions never panic on arbitrary numeric contexts.
    #[test]
    fn conditions_never_panic(
        fields in proptest::collection::btree_map("[a-c]", -1e9f64..1e9, 0..4),
    ) {
        let mut ctx = DecisionContext::new();
        for (k, v) in &fields {
            ctx.set_number(k, *v);
        }
        for cond in ["a > b", "a + b * c < 100", "a IS NULL", "missing > 5", "a BETWEEN b AND c"] {
            if let Ok(p) = Policy::new("p", cond, PolicyAction::Allow) {
                let _ = p.matches(&ctx);
            }
        }
    }
}
