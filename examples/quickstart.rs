//! Quickstart: the Flock loop in one file.
//!
//! Create a table, train a model *inside* the database, score it with
//! `PREDICT` in plain SQL, and inspect the lineage the engine recorded —
//! "an ML model is software derived from data".
//!
//! Run with: `cargo run --example quickstart`

use flock::core::FlockDb;

fn main() {
    let db = FlockDb::new();

    // 1. data lives in the DBMS
    db.execute(
        "CREATE TABLE loans (income DOUBLE, debt DOUBLE, years_employed DOUBLE, approved INT)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO loans VALUES \
         (95.0, 10.0, 8.0, 1), (20.0, 50.0, 1.0, 0), (80.0, 20.0, 5.0, 1), \
         (15.0, 60.0, 0.5, 0), (120.0, 15.0, 12.0, 1), (30.0, 45.0, 2.0, 0), \
         (70.0, 25.0, 6.0, 1), (25.0, 55.0, 1.5, 0)",
    )
    .unwrap();

    // 2. train + deploy in one DDL statement; the engine records lineage
    let result = db
        .execute("CREATE MODEL approval KIND logistic FROM loans TARGET approved")
        .unwrap();
    println!("> {}", result.message);

    // 3. scoring is just SQL — inference runs next to the data
    let batch = db
        .query(
            "SELECT income, debt, PREDICT(approval, income, debt, years_employed) AS p_approve \
             FROM loans ORDER BY p_approve DESC",
        )
        .unwrap();
    println!("\nScores:\n{}", batch.pretty());

    // 4. PREDICT composes with the whole relational algebra
    let good = db
        .query(
            "SELECT COUNT(*) AS strong_applicants FROM loans \
             WHERE PREDICT(approval, income, debt, years_employed) > 0.7",
        )
        .unwrap();
    println!("\nStrong applicants:\n{}", good.pretty());

    // 5. the model is governed like data: versioned, owned, with lineage
    let models = db.query("SHOW MODELS").unwrap();
    println!("\nDeployed models:\n{}", models.pretty());
    let md = db.model_metadata("approval").unwrap();
    println!(
        "\nlineage: trained by '{}' on table '{}' version {} — metrics {:?}",
        md.lineage.trained_by,
        md.lineage.training_table.as_deref().unwrap_or("?"),
        md.lineage.training_table_version.unwrap_or(0),
        md.lineage.metrics
    );

    // 6. and every access was audited
    let audit = db.database().audit_log();
    println!("\naudit trail ({} records), last 3:", audit.len());
    for record in audit.iter().rev().take(3) {
        println!("  [{}] {} {} {}", record.seq, record.user, record.action, record.object);
    }
}
