//! "Train in the Cloud. … Score in the DBMS" — the paper's split, end to
//! end: a model is trained in the *cloud* database instance (big data,
//! fresh hardware), packaged as a FONNX artifact, shipped, and imported
//! into an *edge/on-prem* database where inference runs next to the local
//! data — with lineage from the cloud preserved, and scores
//! bit-identical to the training environment.
//!
//! Run with: `cargo run --example edge_deployment`

use flock::core::{FlockDb, ModelPackage};
use flock::corpus::tabular::TabularDataset;

fn main() {
    // ---------------- cloud side: big data, training ----------------
    println!("[cloud]  loading 50,000 training rows...");
    let cloud = FlockDb::new();
    let training = TabularDataset::generate(50_000, 99);
    training.load_into(cloud.database()).unwrap();

    println!("[cloud]  training in-engine with CREATE MODEL...");
    let mut cloud_session = cloud.session("admin");
    let msg = cloud_session
        .execute(
            "CREATE MODEL churn KIND gbt FROM customers TARGET label \
             FEATURES age, income, debt, tenure, city",
        )
        .unwrap();
    println!("[cloud]  {}", msg.message);
    let md = cloud.model_metadata("churn").unwrap();
    println!(
        "[cloud]  training metrics: accuracy {:.3}, auc {:.3}",
        md.lineage.metrics["accuracy"], md.lineage.metrics["auc"]
    );

    // reference scores to verify the edge reproduces them exactly
    let reference = cloud
        .query(
            "SELECT PREDICT(churn, age, income, debt, tenure, city) AS p \
             FROM customers ORDER BY age LIMIT 5",
        )
        .unwrap();

    // ---------------- packaging: the FONNX artifact -----------------
    let package = cloud_session.export_model("churn").unwrap();
    let wire = package.to_bytes();
    println!(
        "\n[ship]   exported '{}' v{} as a {}-byte self-contained package",
        package.name,
        package.version,
        wire.len()
    );

    // ---------------- edge side: local data, scoring ----------------
    let edge = FlockDb::new();
    let local = TabularDataset::generate(2_000, 7); // the edge's own data
    local.load_into(edge.database()).unwrap();

    let received = ModelPackage::from_bytes(&wire).unwrap();
    let mut edge_session = edge.session("admin");
    edge_session.import_model(&received).unwrap();
    println!("[edge]   imported; lineage travels with the model:");
    let emd = edge.model_metadata("churn").unwrap();
    println!(
        "[edge]     trained by '{}' on '{}' v{} (cloud instance)",
        emd.lineage.trained_by,
        emd.lineage.training_table.as_deref().unwrap_or("?"),
        emd.lineage.training_table_version.unwrap_or(0),
    );

    // scoring next to the edge's data — no exfiltration, no containers
    let local_scores = edge
        .query(
            "SELECT COUNT(*) AS flagged FROM customers \
             WHERE PREDICT(churn, age, income, debt, tenure, city) > 0.5",
        )
        .unwrap();
    println!(
        "[edge]   scored 2,000 local rows in-DB; {} flagged",
        local_scores.column(0).get(0)
    );

    // behaviour preservation: re-load 5 cloud rows on the edge and verify
    // bit-identical predictions
    let cloud_rows = cloud
        .query("SELECT age, income, debt, tenure, city FROM customers ORDER BY age LIMIT 5")
        .unwrap();
    println!("\n[verify] same inputs, cloud vs edge:");
    let mut all_equal = true;
    for r in 0..cloud_rows.num_rows() {
        let score = edge_session
            .predict_one(
                "churn",
                &[
                    cloud_rows.column(0).get(r),
                    cloud_rows.column(1).get(r),
                    cloud_rows.column(2).get(r),
                    cloud_rows.column(3).get(r),
                    cloud_rows.column(4).get(r),
                ],
            )
            .unwrap();
        let expected = reference.column(0).get(r).as_f64().unwrap();
        let ok = (score - expected).abs() < 1e-15;
        all_equal &= ok;
        println!("  row {r}: cloud {expected:.6}  edge {score:.6}  {}", if ok { "==" } else { "!!" });
    }
    println!(
        "\nexact behaviour preserved across environments: {all_equal} \
         (no 'hope enough of the container environment is preserved')"
    );
}
