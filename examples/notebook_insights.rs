//! Figure-2-style corpus analysis: how much of the data-science ecosystem
//! does a platform cover if it optimizes only the top-K packages?
//!
//! "Systems aiming to support EGML must provide broad coverage, but can
//! focus on optimizing a core set of ML packages."
//!
//! Run with: `cargo run --example notebook_insights`

use flock::corpus::notebooks::{NotebookCorpus, SnapshotParams, FIGURE2_KS};

fn bar(pct: f64) -> String {
    let filled = (pct / 2.5) as usize;
    format!("{}{}", "█".repeat(filled), "░".repeat(40usize.saturating_sub(filled)))
}

fn main() {
    let n = 50_000;
    println!("Analyzing two synthetic notebook corpora of {n} notebooks each...");
    let c2017 = NotebookCorpus::generate(SnapshotParams::year_2017(n));
    let c2019 = NotebookCorpus::generate(SnapshotParams::year_2019(n));

    println!(
        "\n2017: {} packages in the ecosystem, {} actually imported",
        c2017.params.packages,
        c2017.distinct_packages()
    );
    println!(
        "2019: {} packages in the ecosystem, {} actually imported (3x more packages)",
        c2019.params.packages,
        c2019.distinct_packages()
    );

    println!("\ncoverage: % of notebooks fully supported by the top-K packages\n");
    println!("{:>6}  {:<44} {:<44}", "top-K", "2017", "2019");
    for &k in &FIGURE2_KS {
        let a = c2017.coverage(k);
        let b = c2019.coverage(k);
        println!("{k:>6}  {} {a:5.1}%  {} {b:5.1}%", bar(a), bar(b));
    }

    let shift = c2019.coverage(10) - c2017.coverage(10);
    println!(
        "\ntop-10 packages cover {shift:+.1} points more notebooks in 2019 — \
         the head is consolidating (numpy/pandas/sklearn) even as the long \
         tail triples."
    );
    println!(
        "=> an EGML platform can focus its cross-optimizer on a small package \
         core and still cover the majority of real pipelines."
    );
}
