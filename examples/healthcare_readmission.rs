//! The paper's regulated-industry scenario: "a health insurance agency
//! aiming to predict patient recidivism" — where "copying CSV files on a
//! laptop and maximizing average model accuracy just doesn't cut it".
//!
//! Demonstrates governance everywhere:
//! * access control on tables *and* models (a data scientist without
//!   EXECUTE cannot score, and every denial is audited);
//! * time-travel reads and version-pinned model lineage;
//! * provenance: "why was this predicted" via backward lineage, and
//!   impact analysis when the upstream table changes.
//!
//! Run with: `cargo run --example healthcare_readmission`

use flock::core::FlockDb;
use flock::provenance::{
    backward_lineage, capture_models, capture_log, dependent_models, NodeKind, ProvCatalog,
};

fn main() {
    let db = FlockDb::new();
    db.execute(
        "CREATE TABLE patients (id INT, age DOUBLE, prior_admissions DOUBLE, \
         chronic_conditions DOUBLE, los_days DOUBLE, readmitted INT)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO patients VALUES \
         (1, 74.0, 3.0, 2.0, 9.0, 1), (2, 33.0, 0.0, 0.0, 2.0, 0), \
         (3, 61.0, 2.0, 1.0, 6.0, 1), (4, 45.0, 1.0, 0.0, 3.0, 0), \
         (5, 82.0, 4.0, 3.0, 12.0, 1), (6, 29.0, 0.0, 0.0, 1.0, 0), \
         (7, 57.0, 1.0, 2.0, 5.0, 1), (8, 38.0, 0.0, 1.0, 2.0, 0)",
    )
    .unwrap();

    // the clinical data science team trains in-engine; lineage pins the
    // exact data version
    db.execute(
        "CREATE MODEL readmission KIND logistic FROM patients TARGET readmitted \
         FEATURES age, prior_admissions, chronic_conditions, los_days",
    )
    .unwrap();
    let md = db.model_metadata("readmission").unwrap();
    println!(
        "model 'readmission' v1 trained on patients v{} (auc {:.2})",
        md.lineage.training_table_version.unwrap(),
        md.lineage.metrics.get("auc").copied().unwrap_or(0.0)
    );

    // ---- access control -------------------------------------------------
    db.execute("CREATE USER research_intern").unwrap();
    db.execute("GRANT SELECT ON TABLE patients TO research_intern").unwrap();
    let mut intern = db.session("research_intern");
    let denied = intern.query(
        "SELECT id, PREDICT(readmission, age, prior_admissions, chronic_conditions, los_days) \
         FROM patients",
    );
    println!(
        "\nintern scoring without EXECUTE on the model -> {}",
        denied.err().map(|e| e.to_string()).unwrap_or_default()
    );
    db.execute("GRANT EXECUTE ON MODEL readmission TO research_intern").unwrap();
    let allowed = intern
        .query(
            "SELECT id, ROUND(PREDICT(readmission, age, prior_admissions, \
             chronic_conditions, los_days), 2) AS p_readmit FROM patients \
             WHERE age > 55 ORDER BY p_readmit DESC",
        )
        .unwrap();
    println!("after GRANT EXECUTE ON MODEL:\n{}", allowed.pretty());

    // ---- data evolves; old versions stay queryable ----------------------
    db.execute("INSERT INTO patients VALUES (9, 69.0, 2.0, 2.0, 8.0, 1)").unwrap();
    let now = db.query("SELECT COUNT(*) FROM patients").unwrap();
    let then = db.query("SELECT COUNT(*) FROM patients VERSION 2").unwrap();
    println!(
        "patients now: {} rows; at the model's training version: {} rows",
        now.column(0).get(0),
        then.column(0).get(0)
    );

    // ---- provenance: derivation and impact ------------------------------
    let mut prov = ProvCatalog::new();
    capture_log(&mut prov, &db.database().query_log());
    capture_models(&mut prov, &db.database().catalog(), "model");
    let graph = prov.graph();
    println!(
        "\nprovenance graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    let model_node = graph
        .find(NodeKind::ModelVersion, "readmission", Some(1))
        .expect("model captured");
    let lineage = backward_lineage(graph, model_node);
    println!("backward lineage of readmission v1:");
    for id in lineage.iter().take(10) {
        let n = graph.node(*id);
        println!("  {:?} {}{}", n.kind, n.name,
            n.version.map(|v| format!(" v{v}")).unwrap_or_default());
    }

    // impact analysis: the chronic_conditions column is being re-coded —
    // which models must be revalidated?
    let col = graph
        .find(NodeKind::Column, "patients.chronic_conditions", None)
        .expect("column captured");
    let impacted = dependent_models(graph, col);
    println!(
        "\nchanging 'patients.chronic_conditions' impacts {} model(s):",
        impacted.len()
    );
    for id in impacted {
        println!("  {}", graph.node(id).name);
    }

    // the audit trail has the denial on record
    let denials = db
        .database()
        .audit_log()
        .into_iter()
        .filter(|a| a.action == "ACCESS DENIED")
        .count();
    println!("\naudit log records {denials} access denial(s) — compliance-ready");
}
