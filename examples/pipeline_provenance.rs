//! End-to-end, cross-system provenance (paper §4.2, challenge C3):
//! the SQL provenance module captures the warehouse-side ETL, the Python
//! provenance module statically analyzes a training script, and the shared
//! catalog joins them — so a deployed model's lineage reaches all the way
//! back to the raw tables, across system boundaries.
//!
//! Run with: `cargo run --example pipeline_provenance`

use flock::provenance::{
    backward_lineage, capture_sql, compress, dependent_models, export, NodeKind, ProvCatalog,
};
use flock::pyprov::{analyze, ingest, KnowledgeBase};

const TRAINING_SCRIPT: &str = r#"
import pandas as pd
from sklearn.model_selection import train_test_split
from sklearn.ensemble import GradientBoostingClassifier
from sklearn.metrics import roc_auc_score

conn = warehouse_connection()
df = pd.read_sql('SELECT age, income, churned FROM customer_features', conn)
X = df[['age', 'income']]
y = df['churned']
X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.2)
model = GradientBoostingClassifier(n_estimators=200, max_depth=3)
model.fit(X_tr, y_tr)
scores = model.predict_proba(X_te)
auc = roc_auc_score(y_te, scores)
"#;

fn main() {
    let mut prov = ProvCatalog::new();

    // ---- SQL side: the ETL that builds the feature table ---------------
    println!("capturing warehouse-side SQL provenance (eager mode)...");
    for sql in [
        "CREATE TABLE customer_features (age INT, income DOUBLE, churned INT)",
        "INSERT INTO customer_features \
         SELECT c.age, c.income, e.churned FROM raw_customers c \
         JOIN crm_events e ON c.id = e.customer_id WHERE e.valid = 1",
        "UPDATE customer_features SET income = income / 1000.0 WHERE income > 1000",
    ] {
        capture_sql(&mut prov, sql, "etl_service").unwrap();
    }

    // ---- Python side: static analysis of the training script -----------
    println!("analyzing the training script statically...");
    let kb = KnowledgeBase::standard();
    let analysis = analyze(TRAINING_SCRIPT, &kb);
    for m in &analysis.models {
        println!(
            "  found model '{}' ({}) hyperparams {:?} metrics {:?}",
            m.var, m.class_path, m.hyperparams, m.metrics
        );
        for d in &m.training_datasets {
            println!("  trained on: {}", d.describe());
        }
    }
    println!("  features referenced: {:?}", analysis.features);
    ingest(&mut prov, "train_churn.py", &analysis);

    // ---- the joined graph ----------------------------------------------
    let graph = prov.graph();
    println!(
        "\nshared catalog now holds {} nodes / {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    let model = graph
        .nodes_of_kind(NodeKind::Model)
        .into_iter()
        .find(|n| n.name.contains("train_churn.py"))
        .expect("model node");
    println!("\nbackward lineage of '{}':", model.name);
    let lineage = backward_lineage(graph, model.id);
    for id in &lineage {
        let n = graph.node(*id);
        println!("  {:?} {}", n.kind, n.name);
    }
    let reaches_raw = lineage
        .iter()
        .any(|id| graph.node(*id).name == "raw_customers");
    println!(
        "\ncross-system lineage reaches the raw warehouse table: {reaches_raw}"
    );

    // impact analysis in the other direction
    let raw = graph.find(NodeKind::Table, "crm_events", None).unwrap();
    let impacted = dependent_models(graph, raw);
    println!(
        "a schema change on 'crm_events' would invalidate {} model(s)",
        impacted.len()
    );

    // compression (the paper's capture optimization) and export
    let (small, stats) = compress(graph);
    println!(
        "\ncompressed graph: {} -> {} elements ({:.1}x)",
        stats.nodes_before + stats.edges_before,
        stats.nodes_after + stats.edges_after,
        stats.ratio()
    );
    let json = export::to_json(&small);
    println!("exported {} bytes of catalog JSON (Atlas-interchange style)", json.len());
}
