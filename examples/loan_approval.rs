//! The paper's motivating enterprise scenario: "a financial institution
//! seeking to streamline its loan approval process."
//!
//! Demonstrates the full Flock loop:
//! * scoring inside the DBMS (no data exfiltration);
//! * business-rule **policies** that override the model (caps, denials,
//!   human escalation) with a transactional action journal;
//! * **atomic multi-model deployment** — the risk and pricing models flip
//!   to new versions in one COMMIT;
//! * an audit trail covering both data and model access.
//!
//! Run with: `cargo run --example loan_approval`

use flock::core::{FlockDb, Lineage};
use flock::ml::{ColumnPipeline, LinearModel, Model, NumericStep, Pipeline};
use flock::policy::{
    apply_transactional, ContinuousMonitor, DecisionContext, DomainAction, MemorySink, Outcome,
    Policy, PolicyAction, PolicyEngine,
};

fn risk_model() -> Pipeline {
    // P(default) — logistic over income/debt/amount
    Pipeline::new(
        vec![
            ColumnPipeline::numeric("income")
                .with_step(NumericStep::Standardize { mean: 60.0, std: 30.0 }),
            ColumnPipeline::numeric("debt")
                .with_step(NumericStep::Standardize { mean: 30.0, std: 20.0 }),
            ColumnPipeline::numeric("amount")
                .with_step(NumericStep::Standardize { mean: 200.0, std: 120.0 }),
        ],
        Model::Logistic(LinearModel::new(vec![-1.2, 1.5, 0.6], -0.4)),
        "p_default",
    )
}

fn pricing_model(base_rate: f64) -> Pipeline {
    // offered interest rate
    Pipeline::new(
        vec![
            ColumnPipeline::numeric("income"),
            ColumnPipeline::numeric("debt"),
        ],
        Model::Linear(LinearModel::new(vec![-0.005, 0.02], base_rate)),
        "rate",
    )
}

fn main() {
    let db = FlockDb::new();
    db.execute(
        "CREATE TABLE applications (id INT, name VARCHAR, income DOUBLE, debt DOUBLE, \
         amount DOUBLE, region VARCHAR)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO applications VALUES \
         (1, 'Ada',   110.0, 12.0, 150.0, 'EU'), \
         (2, 'Grace',  45.0, 38.0, 300.0, 'US'), \
         (3, 'Alan',   22.0, 65.0, 420.0, 'EU'), \
         (4, 'Edsger', 85.0, 20.0, 180.0, 'EU'), \
         (5, 'Barbara',60.0, 55.0, 510.0, 'US')",
    )
    .unwrap();

    let mut session = db.session("admin");
    session.deploy_model("default_risk", &risk_model(), Lineage::default()).unwrap();
    session.deploy_model("pricing", &pricing_model(5.0), Lineage::default()).unwrap();

    // in-DB scoring: both models in one query
    let scored = db
        .query(
            "SELECT id, name, amount, \
             PREDICT(default_risk, income, debt, amount) AS p_default, \
             PREDICT(pricing, income, debt) AS rate \
             FROM applications ORDER BY id",
        )
        .unwrap();
    println!("Model outputs (in-DB, one query):\n{}", scored.pretty());

    // the policy layer: business rules override the raw predictions
    let mut engine = PolicyEngine::new();
    engine.add(
        Policy::new(
            "regulatory-risk-ceiling",
            "p_default > 0.8",
            PolicyAction::Deny { reason: "risk above the regulatory ceiling".into() },
        )
        .unwrap()
        .with_priority(1),
    );
    engine.add(
        Policy::new(
            "large-loan-review",
            "amount > 400 AND p_default > 0.4",
            PolicyAction::Escalate { to: "senior-underwriter".into() },
        )
        .unwrap()
        .with_priority(2),
    );
    engine.add(
        Policy::new(
            "rate-cap",
            "rate > 7.5",
            PolicyAction::Cap { field: "rate".into(), max: 7.5 },
        )
        .unwrap()
        .with_priority(10),
    );
    let mut monitor = ContinuousMonitor::new(engine);

    println!("Decisions after policy application:");
    let mut approved_actions = Vec::new();
    for row in 0..scored.num_rows() {
        let id = scored.column(0).get(row);
        let name = scored.column(1).get(row).to_string();
        let ctx = DecisionContext::new()
            .with_number("amount", scored.column(2).get(row).as_f64().unwrap())
            .with_number("p_default", scored.column(3).get(row).as_f64().unwrap())
            .with_number("rate", scored.column(4).get(row).as_f64().unwrap());
        let decision = monitor.observe(ctx).unwrap();
        let verdict = match &decision.outcome {
            Outcome::Proceed => {
                approved_actions.push(DomainAction {
                    target: format!("loan.{id}.rate"),
                    value: decision.context.number("rate").unwrap(),
                });
                format!("APPROVE at {:.2}%", decision.context.number("rate").unwrap())
            }
            Outcome::Denied { reason } => format!("DENY ({reason})"),
            Outcome::Escalated { to } => format!("ESCALATE -> {to}"),
        };
        let flag = if decision.overridden { " [policy override]" } else { "" };
        println!("  #{id} {name:<8} -> {verdict}{flag}");
    }

    // actions apply transactionally to the loan system
    let mut sink = MemorySink::default();
    let applied = apply_transactional(&mut sink, &approved_actions).unwrap();
    println!("\n{applied} approval action(s) applied transactionally: {:?}", sink.state);

    let report = monitor.report();
    println!(
        "\nmonitor: {} decisions, {} denied, {} escalated, override rate {:.0}%",
        report.decisions,
        report.denied,
        report.escalated,
        100.0 * report.override_rate()
    );

    // atomic multi-model update: risk v2 and pricing v2 go live together
    println!("\nDeploying updated risk + pricing models atomically...");
    session.begin().unwrap();
    session
        .update_model("default_risk", &risk_model(), Lineage::default())
        .unwrap();
    session
        .update_model("pricing", &pricing_model(5.5), Lineage::default())
        .unwrap();
    session.commit().unwrap();
    let models = db.query("SHOW MODELS").unwrap();
    println!("{}", models.pretty());

    println!(
        "audit log holds {} records covering data, models and policies",
        db.database().audit_log().len()
    );
}
