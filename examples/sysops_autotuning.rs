//! The paper's own §4.1 case study: "we have built models to automate the
//! selection of parallelism for large big data jobs to avoid resource
//! wastage (in the context of Cosmos clusters). While models are generally
//! accurate, they occasionally predict resource requirements in excess of
//! the amounts allowed by user-specified caps. Business rules expressed as
//! policies then override the model."
//!
//! This example closes that loop end to end: train the parallelism
//! predictor in-engine, score incoming jobs, apply user caps and cluster
//! policies, commit the resource actions transactionally (rolling back on
//! failure), and watch the monitor + drift detector.
//!
//! Run with: `cargo run --example sysops_autotuning`

use flock::core::FlockDb;
use flock::ml::{DriftVerdict, ScoreProfile};
use flock::policy::{
    apply_transactional, ContinuousMonitor, DecisionContext, DomainAction, MemorySink, Outcome,
    Policy, PolicyAction, PolicyEngine,
};

fn main() {
    let db = FlockDb::new();

    // historical job telemetry: input size, operator count, shuffle
    // volume -> the parallelism that worked well
    db.execute(
        "CREATE TABLE job_history (input_gb DOUBLE, operators DOUBLE, \
         shuffle_gb DOUBLE, best_parallelism INT)",
    )
    .unwrap();
    let mut rows = Vec::new();
    for i in 0..400 {
        let input = 1.0 + (i % 100) as f64 * 5.0;
        let ops = 2.0 + (i % 20) as f64;
        let shuffle = input * 0.3 + (i % 7) as f64;
        let best = (input * 0.4 + shuffle * 0.2 + ops).round();
        rows.push(format!("({input}, {ops}, {shuffle}, {best})"));
    }
    db.execute(&format!("INSERT INTO job_history VALUES {}", rows.join(", ")))
        .unwrap();

    // train the predictor in-engine
    let msg = db
        .execute(
            "CREATE MODEL parallelism KIND linear FROM job_history \
             TARGET best_parallelism",
        )
        .unwrap();
    println!("> {}", msg.message);
    let md = db.model_metadata("parallelism").unwrap();
    println!(
        "> training r2 = {:.4}\n",
        md.lineage.metrics.get("r2").copied().unwrap_or(0.0)
    );

    // cluster policies: user caps + sanity floors (the paper's override)
    let mut engine = PolicyEngine::new();
    engine.add(
        Policy::new(
            "deny-absurd",
            "parallelism > 10000",
            PolicyAction::Deny { reason: "prediction exceeds cluster capacity".into() },
        )
        .unwrap()
        .with_priority(1),
    );
    engine.add(
        Policy::new(
            "floor-one",
            "parallelism < 1",
            PolicyAction::Floor { field: "parallelism".into(), min: 1.0 },
        )
        .unwrap()
        .with_priority(5),
    );
    engine.add(
        Policy::new(
            "respect-user-cap",
            "parallelism > user_cap AND user_cap > 0",
            PolicyAction::Cap { field: "parallelism".into(), max: 256.0 },
        )
        .unwrap()
        .with_priority(10),
    );
    let mut monitor = ContinuousMonitor::new(engine);

    // incoming jobs (last one engineered to exceed its cap)
    let jobs = [
        (12.0, 6.0, 4.0, 512.0),
        (220.0, 14.0, 70.0, 512.0),
        (900.0, 24.0, 300.0, 256.0), // big job, user capped at 256
        (3.0, 2.0, 0.5, 512.0),
    ];
    let mut session = db.session("admin");
    let mut actions = Vec::new();
    let mut live_scores = Vec::new();
    println!("job admission decisions:");
    for (i, (input, ops, shuffle, cap)) in jobs.iter().enumerate() {
        let predicted = session
            .predict_one(
                "parallelism",
                &[
                    flock::sql::Value::Float(*input),
                    flock::sql::Value::Float(*ops),
                    flock::sql::Value::Float(*shuffle),
                ],
            )
            .unwrap();
        live_scores.push(predicted);
        let ctx = DecisionContext::new()
            .with_number("parallelism", predicted)
            .with_number("user_cap", *cap);
        let decision = monitor.observe(ctx).unwrap();
        match &decision.outcome {
            Outcome::Proceed => {
                let p = decision.context.number("parallelism").unwrap().round();
                let overridden = if decision.overridden { "  [policy override]" } else { "" };
                println!(
                    "  job {i}: predicted {predicted:.0} -> allocate {p:.0} tasks{overridden}"
                );
                actions.push(DomainAction {
                    target: format!("job.{i}.parallelism"),
                    value: p,
                });
            }
            Outcome::Denied { reason } => println!("  job {i}: DENIED ({reason})"),
            Outcome::Escalated { to } => println!("  job {i}: escalated to {to}"),
        }
    }

    // transactional application to the (simulated) cluster controller
    let mut cluster = MemorySink::default();
    let n = apply_transactional(&mut cluster, &actions).unwrap();
    println!("\n{n} allocation(s) applied transactionally: {:?}", cluster.state);

    // accountability: every decision is explainable after the fact
    println!("\nexplanation of the capped decision:");
    print!("{}", monitor.engine().explain(3).unwrap());

    // drift: the deployment-time profile vs this traffic
    let baseline_scores: Vec<f64> = {
        let b = db
            .query(
                "SELECT PREDICT(parallelism, input_gb, operators, shuffle_gb) \
                 FROM job_history",
            )
            .unwrap();
        (0..b.num_rows())
            .map(|r| b.column(0).get(r).as_f64().unwrap())
            .collect()
    };
    let profile = ScoreProfile::from_scores(&baseline_scores, 10);
    let report = profile.check(&live_scores);
    println!(
        "\ndrift check on live traffic: psi {:.3}, verdict {:?}{}",
        report.psi,
        report.verdict,
        if report.verdict == DriftVerdict::Stable { "" } else { " -> schedule revalidation" }
    );
}
